"""Bootstrapping-shaped workload (paper §II-A: bootstrapping reduces to
HAdd/HMult/HRot).

Times the encrypted linear-transform -> polynomial -> inverse-transform
pipeline and records the kernel mix (rotations vs multiplications) that
an accelerator would schedule — the reason automorphism hardware
efficiency matters for bootstrapping throughput."""

import numpy as np
import pytest

from conftest import record
from repro.accel import Accelerator
from repro.fhe.ckks import CkksContext
from repro.fhe.linear import encrypted_matvec_bsgs, required_rotations
from repro.fhe.params import CkksParams
from repro.fhe.polyeval import evaluate_power_basis

DIM = 8
POLY = [0.0, 1.2, 0.0, -0.15]


@pytest.fixture(scope="module")
def ctx():
    context = CkksContext(
        CkksParams(n=512, levels=6, scale_bits=27, prime_bits=29), seed=12)
    context.generate_galois_keys(sorted(set(
        required_rotations(DIM, bsgs=True) + required_rotations(DIM))))
    return context


def pipeline(ctx, ct, forward, inverse):
    ct = encrypted_matvec_bsgs(ctx, ct, forward)
    ct = evaluate_power_basis(ctx, ct, POLY)
    return encrypted_matvec_bsgs(ctx, ct, inverse)


def test_bootstrap_pipeline(benchmark, ctx, results_dir):
    rng = np.random.default_rng(5)
    theta = 0.7
    forward = np.eye(DIM)
    c, s = np.cos(theta), np.sin(theta)
    for i in range(0, DIM - 1, 2):
        forward[i, i], forward[i, i + 1] = c, -s
        forward[i + 1, i], forward[i + 1, i + 1] = s, c
    inverse = forward.T
    x = rng.uniform(-0.8, 0.8, DIM)
    ct0 = ctx.encrypt(np.tile(x, ctx.params.slots // DIM))

    out_ct = benchmark(pipeline, ctx, ct0, forward, inverse)
    got = ctx.decrypt(out_ct)[:DIM].real
    y = forward @ x
    y = POLY[1] * y + POLY[3] * y ** 3
    expected = inverse @ y
    assert np.abs(got - expected).max() < 2e-2

    acc = Accelerator(num_vpus=8, lanes=64)
    level = ctx.params.top_level
    hrot = Accelerator.total_makespan(acc.schedule_hrot(512, level))
    hmult = Accelerator.total_makespan(acc.schedule_hmult(512, level))
    rots = 2 * len(required_rotations(DIM, bsgs=True))
    record(
        results_dir, "bootstrap_workload",
        f"bootstrapping-shaped pipeline (CoeffToSlot-like, EvalMod-like, "
        f"SlotToCoeff-like) at N=512:\n"
        f"  ~{rots} HRot x {hrot} cycles + ~6 HMult x {hmult} cycles on an "
        f"8-VPU chip\n"
        f"  HRot : HMult cycle ratio per op = {hrot / hmult:.2f} -- the "
        f"automorphism path sits on the critical path of bootstrapping.",
    )
