"""Table III: throughput utilization of NTT and automorphism on the VPU
for N = 2^10 .. 2^20.

The utilization numbers come from the analytic cycle model; the timed
kernel *executes* a compiled full NTT on the behavioral VPU at an
executable size and cross-checks that the model's compute/transpose
terms match the program instruction-for-instruction."""

import numpy as np
import pytest

from conftest import record
from repro.core import NttStage, VectorProcessingUnit
from repro.core.isa import NetworkPass
from repro.mapping import compile_ntt, pack_for_ntt, required_registers
from repro.perf import PAPER_TABLE_III, table3_rows
from repro.perf.cycles import ntt_cycle_model
from repro.perf.utilization import format_table3

Q = 998244353


def run_executable_ntt(m=16, n=4096):
    from repro.mapping import unpack_ntt_result
    from repro.ntt import vec_ntt_dif
    from repro.ntt.tables import get_tables

    vpu = VectorProcessingUnit(m=m, q=Q,
                               regfile_entries=required_registers(m),
                               memory_rows=2 * n // m)
    x = np.random.default_rng(0).integers(0, Q, n, dtype=np.uint64)
    vpu.memory.data[:n // m] = pack_for_ntt(x, m)
    prog = compile_ntt(n, m, Q)
    stats = vpu.run_fresh(prog)
    t = get_tables(n, Q)
    expected = np.empty(n, dtype=np.uint64)
    expected[t.bitrev] = vec_ntt_dif(x, t)
    assert np.array_equal(unpack_ntt_result(vpu.memory, n, m), expected)
    return prog, stats


def test_table3(benchmark, results_dir):
    prog, stats = benchmark(run_executable_ntt)
    # Model validation against the executed program (m=16, N=4096 = 16^3).
    model = ntt_cycle_model(4096, 16)
    assert prog.count(NttStage) == model.compute_cycles
    assert prog.count(NetworkPass) == model.network_only_cycles
    assert stats.by_type["NttStage"] == model.compute_cycles

    rows = table3_rows()
    record(results_dir, "table3_utilization", format_table3(rows))
    for row in rows:
        paper_ntt, paper_autom = PAPER_TABLE_III[row.n]
        assert abs(row.ntt_utilization - paper_ntt) < 0.05
        assert row.automorphism_utilization == paper_autom == 1.0


@pytest.mark.parametrize("n", [2**10, 2**12, 2**14])
def test_table3_rows_live_at_64_lanes(benchmark, n):
    """Execute Table III rows natively at m = 64 — including the ragged
    sizes (2^10 = 64x16, 2^14 = 64x64x4, packed grouped-CG layout) —
    and confirm the cycle model's compute/transpose terms against the
    running program."""
    _, stats = benchmark.pedantic(lambda: run_executable_ntt(m=64, n=n),
                                  rounds=1, iterations=1)
    model = ntt_cycle_model(n, 64)
    assert stats.by_type["NttStage"] == model.compute_cycles
    assert stats.by_type.get("NetworkPass", 0) == model.network_only_cycles
