"""Ablation (§III-A): why the lanes use Barrett instead of Montgomery.

Keyswitch base conversion consumes residues produced under one modulus
directly under another, so Montgomery-form operands would need explicit
conversions at every hand-off.  This bench counts the extra reduction
operations Montgomery pays on a keyswitch-shaped workload and times both
reducers."""

import numpy as np

from conftest import record
from repro.arith import BarrettReducer, MontgomeryReducer

Q1, Q2 = 998244353, 754974721


def barrett_base_conversion(values, out_red):
    """Residues under q1 arrive and are consumed under q2: one Barrett
    multiply each, no representation changes."""
    return [out_red.mul(v, 12345) for v in values]


def montgomery_base_conversion(values, out_red):
    """Same hand-off with Montgomery lanes: every cross-modulus operand
    must be converted into the destination's Montgomery form first."""
    return [out_red.from_mont(out_red.mul(out_red.to_mont(v),
                                          out_red.to_mont(12345)))
            for v in values]


def test_barrett_vs_montgomery(benchmark, results_dir):
    rng = np.random.default_rng(0)
    values = [int(v) for v in rng.integers(0, Q2, 2048)]
    barrett = BarrettReducer(Q2)
    montgomery = MontgomeryReducer(Q2)

    got_b = benchmark(barrett_base_conversion, values, barrett)
    got_m = montgomery_base_conversion(values, montgomery)
    assert got_b == got_m  # same math, different datapaths

    # Operation accounting: REDC invocations per useful multiply.
    barrett_muls_per_op = 1
    montgomery_redcs_per_op = 3  # to_mont(x), to_mont(c) or mul, from_mont
    record(
        results_dir, "ablation_barrett_montgomery",
        f"cross-modulus multiply (keyswitch base conversion pattern):\n"
        f"  Barrett   : {barrett_muls_per_op} reduction per operand pair\n"
        f"  Montgomery: {montgomery_redcs_per_op} REDC ops per operand pair "
        f"(explicit form conversions)\n"
        f"matching §III-A's rationale for Barrett lanes.",
    )
