"""§V-C claim: "for any automorphism, data only go through the inter-lane
network once" — and what the same operation costs the baselines.

Times the compiled full-length automorphism (N = 4096 on 64 lanes)
executed on the VPU and records the pass-count comparison against the
F1-style uniform-shift network."""

import numpy as np

from conftest import record
from repro.automorphism import paper_sigma
from repro.core import VectorProcessingUnit
from repro.mapping import (
    automorphism_layout_pack,
    automorphism_layout_unpack,
    compile_automorphism,
)
from repro.perf.cycles import baseline_automorphism_passes

Q = 998244353
N, M = 4096, 64


def run(vpu, prog, packed):
    vpu.memory.data[:N // M] = packed
    return vpu.run_fresh(prog)


def test_single_pass_automorphism(benchmark, results_dir):
    vpu = VectorProcessingUnit(m=M, q=Q, memory_rows=2 * N // M)
    perm = paper_sigma(N, 3)
    x = np.random.default_rng(2).integers(0, Q, N).astype(np.uint64)
    packed = automorphism_layout_pack(x, M)
    prog = compile_automorphism(perm, M)
    stats = benchmark(run, vpu, prog, packed)
    out = automorphism_layout_unpack(vpu.memory, N, M, base_row=N // M)
    np.testing.assert_array_equal(out, perm.apply(x))
    assert stats.network_passes == N // M  # exactly one traversal/element

    ours = baseline_automorphism_passes(N, M, "ours")
    f1 = baseline_automorphism_passes(N, M, "f1")
    record(
        results_dir, "automorphism_single_pass",
        f"N={N}, m={M}: ours/BTS/ARK/SHARP = {ours} passes "
        f"(one traversal per element, 100% throughput);\n"
        f"F1 uniform-shift schedule = {f1} masked passes "
        f"({f1 / ours:.1f}x more network work).",
    )
