"""End-to-end FHE operation benchmarks (the workload of §II-A).

Times HAdd / HMult / HRot at N = 4096 with six RNS limbs on the numpy
kernel path, and records the per-op makespan the accelerator scheduler
predicts for the same operations on an 8-VPU chip."""

import numpy as np
import pytest

from conftest import record
from repro.accel import Accelerator
from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams


@pytest.fixture(scope="module")
def ctx():
    context = CkksContext(CkksParams(n=4096, levels=6), seed=1)
    context.generate_galois_keys([1])
    return context


@pytest.fixture(scope="module")
def cts(ctx):
    rng = np.random.default_rng(0)
    z1 = rng.uniform(-1, 1, ctx.params.slots)
    z2 = rng.uniform(-1, 1, ctx.params.slots)
    return ctx.encrypt(z1), ctx.encrypt(z2), z1, z2


def test_hadd(benchmark, ctx, cts):
    ct1, ct2, z1, z2 = cts
    out = benchmark(ctx.add, ct1, ct2)
    np.testing.assert_allclose(ctx.decrypt(out), z1 + z2, atol=1e-3)


def test_hmult(benchmark, ctx, cts):
    ct1, ct2, z1, z2 = cts
    out = benchmark(ctx.multiply, ct1, ct2)
    np.testing.assert_allclose(ctx.decrypt(out), z1 * z2, atol=2e-3)


def test_hrot(benchmark, ctx, cts):
    ct1, _, z1, _ = cts
    out = benchmark(ctx.rotate, ct1, 1)
    np.testing.assert_allclose(ctx.decrypt(out), np.roll(z1, -1), atol=2e-3)


def test_accelerator_makespan(benchmark, results_dir):
    acc = Accelerator(num_vpus=8, lanes=64)

    def schedule():
        return {
            "HMult": Accelerator.total_makespan(acc.schedule_hmult(4096, 5)),
            "HRot": Accelerator.total_makespan(acc.schedule_hrot(4096, 5)),
            "HAdd": acc.schedule_elementwise(4096, 6).makespan_cycles,
        }

    spans = benchmark(schedule)
    chip = acc.cost()
    record(
        results_dir, "fhe_ops_makespan",
        "\n".join([f"{op:6s}: {cycles:7d} cycles @1GHz on 8x64-lane VPUs"
                   for op, cycles in spans.items()]
                  + [f"chip: {chip.area_um2 / 1e6:.2f} mm^2, "
                     f"{chip.power_mw / 1e3:.2f} W"]),
    )
    assert spans["HAdd"] < spans["HRot"] <= spans["HMult"] * 2
