"""§II-B motivation quantified: why decompose NTTs at all.

The paper motivates multi-dimensional decomposition with off-chip
behaviour — strided butterfly accesses of a direct large NTT thrash DRAM
bursts, while the four-step schedule streams sequential SRAM-resident
tiles.  This bench regenerates that argument as numbers: off-chip bytes,
transfer time, and energy for both schedules across N."""

from conftest import record
from repro.accel.dram import (
    DramModel,
    decomposed_ntt_traffic,
    decomposition_advantage,
    naive_ntt_traffic,
)

SRAM_BYTES = 1 << 20  # 1 MiB scratchpad
DRAM = DramModel()


def sweep():
    rows = []
    for log_n in [14, 16, 18, 20, 22]:
        n = 1 << log_n
        naive = naive_ntt_traffic(n, SRAM_BYTES, DRAM)
        decomposed = decomposed_ntt_traffic(n, 64, SRAM_BYTES, DRAM)
        rows.append((log_n, naive, decomposed))
    return rows


def render(rows) -> str:
    lines = [f"{'N':>6s} {'naive MB':>10s} {'eff':>6s} {'4-step MB':>10s} "
             f"{'ratio':>7s} {'naive uJ':>9s} {'4-step uJ':>10s}"]
    for log_n, naive, decomposed in rows:
        ratio = naive.burst_bytes_moved / decomposed.burst_bytes_moved
        lines.append(
            f"2^{log_n:<4d} {naive.burst_bytes_moved / 2**20:10.1f} "
            f"{100 * naive.burst_efficiency:5.0f}% "
            f"{decomposed.burst_bytes_moved / 2**20:10.1f} {ratio:6.1f}x "
            f"{DRAM.energy_nj(naive.burst_bytes_moved) / 1e3:9.1f} "
            f"{DRAM.energy_nj(decomposed.burst_bytes_moved) / 1e3:10.1f}"
        )
    return "\n".join(lines)


def test_decomposition_motivation(benchmark, results_dir):
    rows = benchmark(sweep)
    record(results_dir, "decomposition_motivation", render(rows))
    # On-chip sizes: both schedules are equivalent.
    small_naive, small_dec = rows[0][1], rows[0][2]
    assert small_naive.burst_bytes_moved == small_dec.burst_bytes_moved
    # Off-chip sizes: order-of-magnitude traffic savings (§II-B).
    assert decomposition_advantage(1 << 20, 64, SRAM_BYTES, DRAM) > 10
