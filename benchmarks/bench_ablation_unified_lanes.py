"""Ablation (§V-B note): the comparison in Table II is *conservative*
because most baselines also separate their NTT arithmetic from their
element-wise arithmetic, duplicating modular multipliers and adders.

This bench prices the split-lane alternative — a VPU with one arithmetic
bank for element-wise work plus a dedicated butterfly bank for NTT —
against the paper's unified lanes that reuse one modmul/modadd for both,
and also prices the automorphism control table (the ~2 kbit SRAM the
unified design spends to keep controls off the critical path)."""

from conftest import record
from repro.hwmodel import (
    barrett_multiplier_cost,
    lane_cost,
    modular_adder_cost,
    our_network_cost,
    vpu_cost,
)
from repro.hwmodel.components import CostReport
from repro.hwmodel.network_cost import control_table_cost


def split_lane_cost() -> CostReport:
    """A lane with duplicated arithmetic: element-wise bank + NTT bank."""
    unified = lane_cost()
    duplicated = barrett_multiplier_cost() + modular_adder_cost()
    return CostReport(unified.area_um2 + duplicated.area_um2,
                      unified.power_mw + duplicated.power_mw * 0.5,
                      "split lane")


def evaluate(m: int = 64):
    net = our_network_cost(m)
    unified = vpu_cost(m, net)
    split_lanes = split_lane_cost()
    split = CostReport(split_lanes.area_um2 * m + net.area_um2,
                       split_lanes.power_mw * m + net.power_mw,
                       "split VPU")
    return unified, split


def test_unified_vs_split_lanes(benchmark, results_dir):
    unified, split = benchmark(evaluate)
    saving_area = split.area_um2 / unified.area_um2
    saving_power = split.power_mw / unified.power_mw
    table = control_table_cost(64)
    record(
        results_dir, "ablation_unified_lanes",
        f"unified VPU : {unified.area_um2:12.2f} um^2  {unified.power_mw:8.2f} mW\n"
        f"split VPU   : {split.area_um2:12.2f} um^2  {split.power_mw:8.2f} mW\n"
        f"duplicating NTT arithmetic costs {saving_area:.2f}x area / "
        f"{saving_power:.2f}x power on top of Table II's ratios;\n"
        f"automorphism control table: {table.area_um2:.0f} um^2, "
        f"{table.power_mw:.3f} mW ('a small area cost', §IV-B).",
    )
    assert saving_area > 1.4  # duplicated multipliers dominate
    assert table.area_um2 < 0.1 * unified.area_um2
