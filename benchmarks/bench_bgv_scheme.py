"""BGV on the same substrate (paper §II-A: "other schemes like BGV, BFV
can also be similarly supported given their similar computation
patterns").

Times BGV HMult (tensor + the *identical* digit keyswitch machinery the
CKKS path uses + exact modulus switch) and records the kernel-sharing
evidence."""

import numpy as np
import pytest

from conftest import record
from repro.fhe.bgv import BgvContext, BgvParams

T = 65537


@pytest.fixture(scope="module")
def ctx():
    return BgvContext(BgvParams(n=256, levels=3, plaintext_modulus=T,
                                prime_bits=28), seed=7)


@pytest.fixture(scope="module")
def cts(ctx):
    rng = np.random.default_rng(0)
    v1 = rng.integers(0, T, 256).astype(np.int64)
    v2 = rng.integers(0, T, 256).astype(np.int64)
    return ctx.encrypt(v1), ctx.encrypt(v2), v1, v2


def test_bgv_hmult(benchmark, ctx, cts, results_dir):
    ct1, ct2, v1, v2 = cts
    out = benchmark(ctx.multiply, ct1, ct2)
    expected = (v1.astype(object) * v2) % T
    np.testing.assert_array_equal(ctx.decrypt(out), expected.astype(np.int64))
    record(
        results_dir, "bgv_scheme",
        "BGV HMult verified exact (slot-wise integer products mod 65537);\n"
        "relinearization uses the identical digit-decomposition keyswitch\n"
        "as CKKS (repro.fhe.keyswitch) -- one hardware substrate, two "
        "schemes, as §II-A anticipates.",
    )


def test_bgv_hadd(benchmark, ctx, cts):
    ct1, ct2, v1, v2 = cts
    out = benchmark(ctx.add, ct1, ct2)
    np.testing.assert_array_equal(ctx.decrypt(out), (v1 + v2) % T)
