"""Per-limb vs limb-batched vs compiled kernel dispatch microbenchmarks.

Times the three kernels the paper's workload analysis is built on — the
negacyclic NTT, the evaluation-domain automorphism, and the full digit
keyswitch — in three dispatch regimes:

* **per-limb** (the seed implementation): one backend call per residue
  row, object-dtype big-int digit reduction, non-fused accumulation;
* **batched** (the numpy engine): the whole ``(L, n)`` residue matrix
  per dispatch, broadcast reduction, fused multiply-accumulate;
* **compiled** (:mod:`repro.kernels`): the whole transform / keyswitch
  inner loop as a single JIT-compiled, allocation-free kernel call.

Outputs are checked bit-for-bit across all regimes (and, for the
keyswitch, between the numpy, compiled and VPU backends) before any
number is recorded.  Results land in machine-readable
``BENCH_kernels.json`` at the repository root so future PRs have a perf
trajectory; the compiled keyswitch ``speedup_compiled`` on
``keyswitch_small_params`` is the >= 10x acceptance gate.

Run:  PYTHONPATH=src python benchmarks/bench_kernel_batching.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.arith.primes import find_ntt_primes
from repro.automorphism.mapping import galois_eval_permutation
from repro.fhe.backend import NumpyBackend, VpuBackend, use_backend
from repro.fhe.ckks import CkksContext
from repro.fhe.keyswitch import KeySwitchKey, apply_keyswitch
from repro.fhe.params import CkksParams, small_params
from repro.fhe.polynomial import RnsPoly
from repro.kernels import CompiledBackend
from repro.ntt.tables import get_tables
from repro.obs.export import host_envelope

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_kernels.json"


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _best_of_group(fns, repeats: int) -> list[float]:
    """Min-of-N timing with all candidates interleaved per round, so
    background load hits every measurement window instead of skewing
    whichever candidate happened to run during a spike."""
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            t0 = time.perf_counter()
            fn()
            best[i] = min(best[i], time.perf_counter() - t0)
    return best


def _best_of_pair(fn_a, fn_b, repeats: int) -> tuple[float, float]:
    best_a, best_b = _best_of_group([fn_a, fn_b], repeats)
    return best_a, best_b


# ---------------------------------------------------------------------------
# Seed (pre-batching) reference implementations, replicated from the seed
# commit so the perf trajectory keeps measuring against the same baseline
# even as the live kernels improve.  The seed transform rebuilt the stage
# twiddle gather on every call and reduced every butterfly with a true
# ``%``; the seed negacyclic wrapper dispatched one transform per limb.
# ---------------------------------------------------------------------------


def _seed_vec_ntt_dif(x: np.ndarray, tables) -> np.ndarray:
    n, q = tables.n, np.uint64(tables.q)
    a = (np.asarray(x, dtype=np.uint64) % q).reshape(-1, n).copy()
    length = n // 2
    while length >= 1:
        step = n // (2 * length)
        tw = tables.omega_powers[(np.arange(length) * step) % n]
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length]
        v = blocks[:, :, length:]
        total = u + v
        diff = (u + q) - v
        blocks[:, :, :length] = total % q
        blocks[:, :, length:] = (diff % q) * tw % q
        length //= 2
    return a.reshape(x.shape)


def _seed_vec_intt_dit(x: np.ndarray, tables) -> np.ndarray:
    n, q = tables.n, np.uint64(tables.q)
    a = (np.asarray(x, dtype=np.uint64) % q).reshape(-1, n).copy()
    length = 1
    while length < n:
        step = n // (2 * length)
        tw = tables.omega_inv_powers[(np.arange(length) * step) % n]
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length].copy()
        v = blocks[:, :, length:] * tw % q
        blocks[:, :, :length] = (u + v) % q
        blocks[:, :, length:] = ((u + q) - v) % q
        length *= 2
    a = a * np.uint64(tables.n_inv) % q
    return a.reshape(x.shape)


def seed_forward_ntt_rows(backend, rows: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
    out = np.empty_like(rows)
    for i, q in enumerate(primes):
        t = get_tables(rows.shape[1], q)
        x = rows[i] % np.uint64(q) * t.psi_powers % np.uint64(q)
        out[i][t.bitrev] = _seed_vec_ntt_dif(x, t)
    return out


def seed_inverse_ntt_rows(backend, rows: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
    out = np.empty_like(rows)
    for i, q in enumerate(primes):
        t = get_tables(rows.shape[1], q)
        x = _seed_vec_intt_dit(rows[i][t.bitrev], t)
        out[i] = x * t.psi_inv_powers % np.uint64(q)
    return out


def seed_automorphism_rows(rows: np.ndarray, galois_k: int) -> np.ndarray:
    perm = galois_eval_permutation(rows.shape[1], galois_k)
    out = np.empty_like(rows)
    for i in range(rows.shape[0]):
        out[i] = perm.apply(rows[i])
    return out


def seed_apply_keyswitch(x: RnsPoly, ksk: KeySwitchKey,
                         params: CkksParams) -> tuple[RnsPoly, RnsPoly]:
    """The seed keyswitch: object-dtype digit reduction, one NTT call per
    residue row, per-limb multiply loops, non-fused accumulation."""
    backend = NumpyBackend()
    coeff_rows = seed_inverse_ntt_rows(backend, x.residues, x.primes)
    target = x.primes + (params.special_prime,)
    digits = []
    for i, q_i in enumerate(x.primes):
        row = coeff_rows[i].astype(np.int64)
        lifted = np.where(row > q_i // 2, row - q_i, row).astype(object)
        rows = np.stack([(lifted % q).astype(np.uint64) for q in target])
        digits.append(RnsPoly(seed_forward_ntt_rows(backend, rows, target),
                              target, is_eval=True))

    def mul(a: RnsPoly, b_rows: np.ndarray) -> np.ndarray:
        out = np.empty_like(a.residues)
        for j, q in enumerate(target):
            out[j] = a.residues[j] * b_rows[j] % np.uint64(q)
        return out

    def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.empty_like(a)
        for j, q in enumerate(target):
            out[j] = (a[j] + b[j]) % np.uint64(q)
        return out

    keep = list(range(x.num_limbs)) + [params.levels]
    t0 = t1 = None
    for i, digit in enumerate(digits):
        b_i, a_i = ksk.pairs[i]
        tb = mul(digit, b_i.residues[keep])
        ta = mul(digit, a_i.residues[keep])
        t0 = tb if t0 is None else add(t0, tb)
        t1 = ta if t1 is None else add(t1, ta)
    return (RnsPoly(t0, target, is_eval=True),
            RnsPoly(t1, target, is_eval=True))


# ---------------------------------------------------------------------------
# Benchmark sections
# ---------------------------------------------------------------------------


def bench_ntt(n: int, levels: int, repeats: int,
              compiled: CompiledBackend | None) -> dict:
    primes = tuple(find_ntt_primes(2 * n, 29, levels))
    rng = np.random.default_rng(n)
    rows = np.stack([rng.integers(0, q, n, dtype=np.uint64) for q in primes])
    backend = NumpyBackend()
    # Warm every table/plan cache before timing.
    per_limb = seed_forward_ntt_rows(backend, rows, primes)
    batched = backend.forward_ntt_batch(rows, primes)
    np.testing.assert_array_equal(per_limb, batched)
    result = {"n": n, "limbs": levels, "bit_identical": True}
    fns = [lambda: seed_forward_ntt_rows(backend, rows, primes),
           lambda: backend.forward_ntt_batch(rows, primes)]
    if compiled is not None:
        np.testing.assert_array_equal(
            compiled.forward_ntt_batch(rows, primes), batched)
        fns.append(lambda: compiled.forward_ntt_batch(rows, primes))
    times = _best_of_group(fns, repeats)
    result.update({"per_limb_s": times[0], "batched_s": times[1],
                   "speedup": times[0] / times[1]})
    if compiled is not None:
        result.update({"compiled_s": times[2],
                       "speedup_compiled": times[0] / times[2]})
    return result


def bench_automorphism(n: int, levels: int, repeats: int,
                       compiled: CompiledBackend | None) -> dict:
    primes = tuple(find_ntt_primes(2 * n, 29, levels))
    rng = np.random.default_rng(n + 1)
    rows = np.stack([rng.integers(0, q, n, dtype=np.uint64) for q in primes])
    backend = NumpyBackend()
    galois_k = 5
    per_limb = seed_automorphism_rows(rows, galois_k)
    batched = backend.automorphism_eval_batch(rows, galois_k, primes)
    np.testing.assert_array_equal(per_limb, batched)
    result = {"n": n, "limbs": levels, "bit_identical": True}
    fns = [lambda: seed_automorphism_rows(rows, galois_k),
           lambda: backend.automorphism_eval_batch(rows, galois_k, primes)]
    if compiled is not None:
        np.testing.assert_array_equal(
            compiled.automorphism_eval_batch(rows, galois_k, primes), batched)
        fns.append(
            lambda: compiled.automorphism_eval_batch(rows, galois_k, primes))
    times = _best_of_group(fns, repeats)
    result.update({"per_limb_s": times[0], "batched_s": times[1],
                   "speedup": times[0] / times[1]})
    if compiled is not None:
        result.update({"compiled_s": times[2],
                       "speedup_compiled": times[0] / times[2]})
    return result


def bench_keyswitch(repeats: int, compiled: CompiledBackend | None,
                    check_vpu: bool = True) -> dict:
    """Full digit keyswitch on ``small_params`` (the acceptance gate)."""
    params = small_params()
    ctx = CkksContext(params, seed=42)
    rng = np.random.default_rng(7)
    x = RnsPoly(
        np.stack([rng.integers(0, q, params.n, dtype=np.uint64)
                  for q in params.primes]),
        params.primes, is_eval=True)

    seed_t0, seed_t1 = seed_apply_keyswitch(x, ctx.relin_key, params)
    new_t0, new_t1 = apply_keyswitch(x, ctx.relin_key, params)
    np.testing.assert_array_equal(seed_t0.residues, new_t0.residues)
    np.testing.assert_array_equal(seed_t1.residues, new_t1.residues)

    def compiled_keyswitch():
        with use_backend(compiled):
            return apply_keyswitch(x, ctx.relin_key, params)

    backends_identical = None
    if check_vpu:
        vpu = VpuBackend(m=16)
        with use_backend(vpu):
            vpu_t0, vpu_t1 = apply_keyswitch(x, ctx.relin_key, params)
        np.testing.assert_array_equal(new_t0.residues, vpu_t0.residues)
        np.testing.assert_array_equal(new_t1.residues, vpu_t1.residues)
        backends_identical = True
    if compiled is not None:
        c_t0, c_t1 = compiled_keyswitch()
        np.testing.assert_array_equal(new_t0.residues, c_t0.residues)
        np.testing.assert_array_equal(new_t1.residues, c_t1.residues)
        if backends_identical is not False:
            backends_identical = True

    fns = [lambda: seed_apply_keyswitch(x, ctx.relin_key, params),
           lambda: apply_keyswitch(x, ctx.relin_key, params)]
    if compiled is not None:
        fns.append(compiled_keyswitch)
    times = _best_of_group(fns, repeats)
    result = {"params": "small_params", "n": params.n, "limbs": params.levels,
              "seed_per_limb_s": times[0], "batched_s": times[1],
              "speedup": times[0] / times[1], "bit_identical": True,
              "backends_bit_identical": backends_identical}
    if compiled is not None:
        result.update({"compiled_s": times[2],
                       "speedup_compiled": times[0] / times[2]})
    return result


def bench_vpu_program_cache(n: int = 1024, levels: int = 3) -> dict:
    """Compile-once/replay-per-limb on the VPU: the dispatch engine's
    other half.  Reports wall-clock for the first (compiling) batch vs a
    cached batch, plus the compile-invocation reduction."""
    primes = tuple(find_ntt_primes(2 * n, 29, levels))
    rng = np.random.default_rng(3)
    rows = np.stack([rng.integers(0, q, n, dtype=np.uint64) for q in primes])
    backend = VpuBackend(m=16)
    t0 = time.perf_counter()
    backend.forward_ntt_batch(rows, primes)
    first = time.perf_counter() - t0
    compiles_after_first = backend.program_compilations
    t0 = time.perf_counter()
    backend.forward_ntt_batch(rows, primes)
    cached = time.perf_counter() - t0
    repeats = 6
    for _ in range(repeats - 2):
        backend.forward_ntt_batch(rows, primes)
    return {"n": n, "limbs": levels, "first_dispatch_s": first,
            "cached_dispatch_s": cached,
            "program_compilations": backend.program_compilations,
            "kernel_invocations": backend.kernel_invocations,
            "compile_reduction":
                backend.kernel_invocations / backend.program_compilations,
            "cache_hit_all_repeats":
                backend.program_compilations == compiles_after_first}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: n=1024 only, 2 repeats, no VPU")
    parser.add_argument("--out", type=Path, default=OUT_PATH,
                        help="artifact path (default BENCH_kernels.json at "
                             "the repo root); the regression sentinel points "
                             "this at a scratch file")
    args = parser.parse_args()
    out_path = args.out

    repeats = 2 if args.quick else 9
    # Larger rings get the deeper limb chains a real modulus ladder
    # carries at that size.
    sizes = {1024: 4} if args.quick else {1024: 4, 4096: 4, 8192: 8,
                                          16384: 8}
    compiled = CompiledBackend()
    if compiled.provider_name is None:
        print("[compiled] no JIT provider available "
              "(numba or a C compiler); skipping compiled columns")
        compiled = None

    results = host_envelope("kernel_batching")
    results.update({
        "quick": args.quick,
        "compiled_provider":
            None if compiled is None else compiled.provider_name,
        "ntt": {}, "automorphism": {},
    })
    for n, levels in sizes.items():
        print(f"[ntt] n={n} L={levels} ...")
        results["ntt"][str(n)] = bench_ntt(n, levels, repeats, compiled)
        print(f"[automorphism] n={n} L={levels} ...")
        results["automorphism"][str(n)] = bench_automorphism(
            n, levels, repeats, compiled)

    print("[keyswitch] small_params ...")
    results["keyswitch_small_params"] = bench_keyswitch(
        repeats, compiled, check_vpu=not args.quick)
    if not args.quick:
        print("[vpu] program cache ...")
        results["vpu_program_cache"] = bench_vpu_program_cache()

    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out_path}")
    def _compiled_cols(r: dict) -> str:
        if "compiled_s" not in r:
            return ""
        return (f"  compiled {r['compiled_s']*1e3:8.3f} ms"
                f" ({r['speedup_compiled']:5.2f}x)")

    for section in ("ntt", "automorphism"):
        for n, r in results[section].items():
            print(f"  {section:13s} n={n}: per-limb {r['per_limb_s']*1e3:8.3f} ms"
                  f"  batched {r['batched_s']*1e3:8.3f} ms"
                  f"  speedup {r['speedup']:5.2f}x" + _compiled_cols(r))
    ks = results["keyswitch_small_params"]
    print(f"  keyswitch     small_params: seed {ks['seed_per_limb_s']*1e3:8.3f} ms"
          f"  batched {ks['batched_s']*1e3:8.3f} ms"
          f"  speedup {ks['speedup']:5.2f}x" + _compiled_cols(ks))
    if "vpu_program_cache" in results:
        vp = results["vpu_program_cache"]
        print(f"  vpu cache     n={vp['n']}: {vp['program_compilations']} compiles"
              f" for {vp['kernel_invocations']} kernel invocations"
              f" ({vp['compile_reduction']:.1f}x reduction)")


if __name__ == "__main__":
    main()
