"""Fig. 3: dimension transposes on the shift network.

Times the compiled two-pass diagonal transpose of a 64x64 tile executed
on the VPU and records the pass accounting: 2 network traversals per
element (2m passes per tile), plus the generic router's verdict that the
Fig. 3(b) irregular patterns indeed cannot route as pure shifts (the
reason the CG stage assists on the way back)."""

import numpy as np
import pytest

from conftest import record
from repro.automorphism import RoutingConflictError, route_distance_map
from repro.core import VectorProcessingUnit
from repro.mapping import compile_tile_transpose
from repro.mapping.transpose import tile_transpose_pass_count

Q = 998244353
M = 64


def run_transpose(vpu, tile, prog):
    for r in range(M):
        vpu.regfile.write(2 + r, tile[r])
    vpu.execute(prog)
    return np.stack([vpu.regfile.read(2 + M + r) for r in range(M)])


def test_fig3_transpose(benchmark, results_dir):
    vpu = VectorProcessingUnit(m=M, q=Q, regfile_entries=2 * M + 2)
    tile = np.random.default_rng(1).integers(0, Q, (M, M)).astype(np.uint64)
    prog = compile_tile_transpose(M, 2, 2 + M)
    out = benchmark(run_transpose, vpu, tile, prog)
    np.testing.assert_array_equal(out, tile.T)
    assert len(prog) == tile_transpose_pass_count(M) == 2 * M

    # Fig. 3(b): the irregular return-transpose distances (example: a
    # column needing shifts 0,1,3,0) cannot route as shifts alone.
    with pytest.raises(RoutingConflictError):
        route_distance_map(4, np.array([0, 1, 3, 0]))

    record(
        results_dir, "fig3_transpose",
        f"64x64 tile transpose: {len(prog)} network passes "
        f"(2 per element-row, as derived in §IV-A);\n"
        f"irregular Fig.3(b) pattern [0,1,3,0]: RoutingConflictError -> "
        f"CG-assisted pass required, matching the paper.",
    )
