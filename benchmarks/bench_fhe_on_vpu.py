"""Flagship integration bench: CKKS running entirely on the VPU model.

A homomorphic multiplication at the paper's polynomial degree (N = 4096,
matching the 64-lane VPU's native 64x64 decomposition) where *every*
NTT and automorphism kernel executes through the mux-level inter-lane
network — then checked bit-for-bit against the numpy path.

Also executes the Table III N = 2^18 row live: a 64^3 three-dimensional
NTT compiled and run on the 64-lane VPU, instruction counts matching the
analytic cycle model exactly."""

import numpy as np
import pytest

from conftest import record
from repro.core import NttStage, VectorProcessingUnit
from repro.core.isa import NetworkPass
from repro.fhe.backend import VpuBackend, use_backend
from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams
from repro.mapping import compile_ntt, pack_for_ntt, required_registers
from repro.perf.cycles import ntt_cycle_model

Q = 998244353


def test_ckks_hmult_on_vpu(benchmark, results_dir):
    params = CkksParams(n=4096, levels=2, scale_bits=27, prime_bits=30)
    rng = np.random.default_rng(3)
    z1 = rng.uniform(-1, 1, params.slots)
    z2 = rng.uniform(-1, 1, params.slots)

    # Reference on numpy kernels.
    ctx = CkksContext(params, seed=21)
    ref = ctx.multiply(ctx.encrypt(z1), ctx.encrypt(z2))

    backend = VpuBackend(m=64)

    def on_vpu():
        with use_backend(backend):
            ctx2 = CkksContext(params, seed=21)
            return ctx2.multiply(ctx2.encrypt(z1), ctx2.encrypt(z2)), ctx2

    (ct, ctx2) = benchmark.pedantic(on_vpu, rounds=1, iterations=1)
    for p_ref, p_vpu in zip(ref.parts, ct.parts):
        np.testing.assert_array_equal(p_ref.residues, p_vpu.residues)
    with use_backend(backend):
        out = ctx2.decrypt(ct)
    np.testing.assert_allclose(out.real, (z1 * z2), atol=2e-3)
    record(
        results_dir, "fhe_on_vpu",
        f"CKKS HMult at N=4096 with every NTT/automorphism kernel executed "
        f"on the 64-lane VPU model:\n"
        f"  {backend.kernel_invocations} kernel invocations, ciphertext "
        f"bit-identical to the numpy path.",
    )


def test_table3_row_2pow18_live(benchmark, results_dir):
    """Execute the N = 2^18 = 64^3 NTT on the 64-lane VPU — the exact
    configuration of Table III's best row — and check the cycle model."""
    m, n = 64, 1 << 18
    vpu = VectorProcessingUnit(m=m, q=Q,
                               regfile_entries=required_registers(m),
                               memory_rows=n // m)
    x = np.random.default_rng(0).integers(0, Q, n, dtype=np.uint64)
    vpu.memory.data[:n // m] = pack_for_ntt(x, m)
    prog = compile_ntt(n, m, Q)

    stats = benchmark.pedantic(lambda: vpu.run_fresh(prog),
                               rounds=1, iterations=1)
    model = ntt_cycle_model(n, m)
    assert stats.by_type["NttStage"] == model.compute_cycles
    assert stats.by_type["NetworkPass"] == model.network_only_cycles
    # Full output verification against the vectorized reference.
    from repro.mapping import unpack_ntt_result
    from repro.ntt import vec_ntt_dif
    from repro.ntt.tables import get_tables

    t = get_tables(n, Q)
    expected = np.empty(n, dtype=np.uint64)
    expected[t.bitrev] = vec_ntt_dif(x, t)
    assert np.array_equal(unpack_ntt_result(vpu.memory, n, m), expected)
    record(
        results_dir, "table3_2pow18_live",
        f"N=2^18 on 64 lanes executed live: {stats.cycles} instructions, "
        f"{model.compute_cycles} fused NTT stages + "
        f"{model.network_only_cycles} transpose passes "
        f"-> {100 * model.utilization:.2f}% utilization "
        f"(paper: 81.81%).",
    )
