"""Table II: area and power of the permutation network and the full VPU,
ours versus F1 / BTS / ARK / SHARP, all ported to 64 lanes at 7 nm.

Regenerates both halves of the table from the structural cost models and
records model-vs-paper deltas.  The timed kernel is the full five-design
evaluation (the models are analytic, so this doubles as a regression
canary for accidental complexity)."""

import pytest

from conftest import record
from repro.baselines import (
    ark_network_cost,
    bts_network_cost,
    f1_network_cost,
    sharp_network_cost,
)
from repro.hwmodel import our_network_cost, vpu_cost

PAPER = {
    "F1": (55616.42, 300306.61, 93.50, 842.12),
    "BTS": (19405.16, 264095.35, 45.13, 793.75),
    "ARK": (9480.50, 254170.69, 46.35, 794.97),
    "SHARP": (44453.51, 289143.70, 44.04, 792.66),
    "Ours": (5913.62, 250603.81, 15.59, 764.21),
}

COSTS = {
    "F1": f1_network_cost,
    "BTS": bts_network_cost,
    "ARK": ark_network_cost,
    "SHARP": sharp_network_cost,
    "Ours": our_network_cost,
}


def evaluate_all(m: int = 64):
    nets = {name: fn(m) for name, fn in COSTS.items()}
    vpus = {name: vpu_cost(m, net) for name, net in nets.items()}
    return nets, vpus


def render(nets, vpus) -> str:
    ours_net = nets["Ours"]
    lines = [
        f"{'design':7s} {'net area um^2':>14s} {'ratio':>6s} {'paper':>6s} "
        f"{'net mW':>8s} {'ratio':>6s} {'paper':>6s} "
        f"{'VPU area um^2':>14s} {'VPU mW':>8s}",
    ]
    for name in ["F1", "BTS", "ARK", "SHARP", "Ours"]:
        net, vpu = nets[name], vpus[name]
        ra, rp = net.ratio_to(ours_net)
        pa = PAPER[name][0] / PAPER["Ours"][0]
        pp = PAPER[name][2] / PAPER["Ours"][2]
        lines.append(
            f"{name:7s} {net.area_um2:14.2f} {ra:5.2f}x {pa:5.2f}x "
            f"{net.power_mw:8.2f} {rp:5.2f}x {pp:5.2f}x "
            f"{vpu.area_um2:14.2f} {vpu.power_mw:8.2f}"
        )
    return "\n".join(lines)


def test_table2(benchmark, results_dir):
    nets, vpus = benchmark(evaluate_all)
    record(results_dir, "table2_area_power", render(nets, vpus))
    from repro.hwmodel.report import (
        network_breakdown,
        render_breakdown,
        vpu_breakdown,
    )

    record(results_dir, "vpu_breakdown",
           render_breakdown(vpu_breakdown(64), title="VPU m=64 (ours)")
           + "\n\n"
           + render_breakdown(network_breakdown(64),
                              title="inter-lane network m=64"))
    # The headline savings must reproduce.
    ra, rp = nets["F1"].ratio_to(nets["Ours"])
    assert ra == pytest.approx(9.4, rel=0.1)
    assert rp == pytest.approx(6.0, rel=0.1)
    va, vp = vpus["F1"].ratio_to(vpus["Ours"])
    assert va == pytest.approx(1.2, rel=0.05)
    assert vp == pytest.approx(1.1, rel=0.05)
