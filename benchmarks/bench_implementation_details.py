"""Implementation-detail artifacts: roofline placement and compiled-
program analysis.

Not a paper table — these are the secondary artifacts an accelerator
paper's implementation section reports, generated from the same models:
where each FHE op sits against the scratchpad roofline, and what the
compiled NTT/automorphism programs demand of the register files."""

from conftest import record
from repro.accel import Accelerator
from repro.automorphism import paper_sigma
from repro.mapping import (
    analyze_program,
    compile_automorphism,
    compile_ntt,
    render_analysis,
    required_registers,
)
from repro.perf.roofline import render_roofline, roofline_table

Q = 998244353


def build_artifacts():
    acc = Accelerator(num_vpus=8, lanes=64)
    roofline = roofline_table(acc)
    ntt_analysis = analyze_program(compile_ntt(4096, 64, Q))
    autom_analysis = analyze_program(
        compile_automorphism(paper_sigma(4096, 3), 64))
    return roofline, ntt_analysis, autom_analysis


def test_implementation_details(benchmark, results_dir):
    roofline, ntt_a, autom_a = benchmark(build_artifacts)
    record(
        results_dir, "implementation_details",
        render_roofline(roofline) + "\n\n"
        + render_analysis(ntt_a, "NTT-4096 on 64 lanes") + "\n\n"
        + render_analysis(autom_a, "automorphism-4096 on 64 lanes"),
    )
    # Compiled programs honour the declared register budget.
    assert ntt_a.register_pressure <= required_registers(64)
    assert autom_a.register_pressure <= 2
    # The automorphism program is pure data movement: no arithmetic.
    assert autom_a.multiplier_ops == 0 and autom_a.adder_ops == 0
    assert autom_a.network_passes == 4096 // 64
