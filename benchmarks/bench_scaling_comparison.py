"""Figure-style series: how every design's permutation hardware scales
with lane count.

The paper reports only our network's scaling (Table IV) and a single
m = 64 comparison point (Table II).  This bench extends the comparison
across m = 8 .. 256 with the same structural models, exposing the
asymptotics that drive the Table II gaps: the BTS crossbar grows ~m^2,
the SRAM-buffer designs grow ~m^2 with a big constant, ARK grows like
ours times its duplication factor, and the unified network grows
~m log m."""

import pytest

from conftest import record
from repro.baselines import (
    ark_network_cost,
    bts_network_cost,
    f1_network_cost,
    sharp_network_cost,
)
from repro.hwmodel import our_network_cost

DESIGNS = {
    "Ours": our_network_cost,
    "ARK": ark_network_cost,
    "BTS": bts_network_cost,
    "F1": f1_network_cost,
    "SHARP": sharp_network_cost,
}
LANES = [8, 16, 32, 64, 128, 256]


def sweep():
    return {name: [fn(m) for m in LANES] for name, fn in DESIGNS.items()}


def render(series) -> str:
    lines = [f"{'m':>4s} " + "".join(f"{name:>12s}" for name in DESIGNS)]
    for i, m in enumerate(LANES):
        row = f"{m:4d} " + "".join(
            f"{series[name][i].area_um2:12.0f}" for name in DESIGNS)
        lines.append(row)
    lines.append("area growth factor m=8 -> m=256:")
    for name in DESIGNS:
        g = series[name][-1].area_um2 / series[name][0].area_um2
        lines.append(f"  {name:6s} {g:8.1f}x")
    return "\n".join(lines)


def test_scaling_comparison(benchmark, results_dir):
    series = benchmark(sweep)
    record(results_dir, "scaling_comparison_area_um2", render(series))

    growth = {name: series[name][-1].area_um2 / series[name][0].area_um2
              for name in DESIGNS}
    # The crossbar's quadratic growth dominates everything else.
    assert growth["BTS"] > 2 * growth["Ours"]
    # Model finding: a tiny crossbar (m = 8) is actually *smaller* than
    # the unified network — the m^2 vs m log m crossover sits between
    # m = 8 and m = 16, and from there the unified design is cheapest at
    # every scale the paper evaluates.
    assert series["BTS"][0].area_um2 < series["Ours"][0].area_um2
    for i, m in enumerate(LANES):
        if m < 16:
            continue
        ours = series["Ours"][i].area_um2
        for name in ["ARK", "BTS", "F1", "SHARP"]:
            assert series[name][i].area_um2 > ours, (name, m)
    # The advantage over BTS widens with m (m^2 vs m log m).
    first = series["BTS"][0].area_um2 / series["Ours"][0].area_um2
    last = series["BTS"][-1].area_um2 / series["Ours"][-1].area_um2
    assert last > first


def test_utilization_across_lane_counts(benchmark, results_dir):
    """Table III generalized: the utilization shape holds for other VPU
    widths too (dips whenever log2 N crosses a multiple of log2 m)."""
    from repro.perf import utilization_report

    def sweep_util():
        table = {}
        for m in [16, 32, 64, 128]:
            table[m] = [utilization_report(1 << logn, m).ntt_utilization
                        for logn in range(10, 21, 2)]
        return table

    table = benchmark(sweep_util)
    lines = [f"{'N':>6s} " + "".join(f"{'m=' + str(m):>9s}"
                                     for m in sorted(table))]
    for i, logn in enumerate(range(10, 21, 2)):
        lines.append(f"2^{logn:<4d} " + "".join(
            f"{100 * table[m][i]:8.2f}%" for m in sorted(table)))
    record(results_dir, "utilization_by_lane_count", "\n".join(lines))
    for m, series in table.items():
        assert all(0.6 < u <= 1.0 for u in series)
