"""Hoisted rotations: the shared-decomposition optimization, measured
functionally and scheduled on the accelerator.

Bootstrapping's BSGS phases rotate one ciphertext by many amounts; the
digit decomposition (an NTT batch) can be hoisted out of the loop, and
each additional rotation then rides on single-pass automorphisms — the
operation the paper's network makes cheap."""

import numpy as np
import pytest

from conftest import record
from repro.accel import Accelerator
from repro.fhe.ckks import CkksContext
from repro.fhe.params import toy_params

STEPS = [1, 2, 3, 4]


@pytest.fixture(scope="module")
def ctx():
    context = CkksContext(toy_params(), seed=91)
    context.generate_galois_keys(STEPS)
    return context


def test_hoisted_rotations(benchmark, ctx, results_dir):
    z = np.random.default_rng(0).uniform(-1, 1, ctx.params.slots)
    ct = ctx.encrypt(z)
    results = benchmark(ctx.rotate_hoisted, ct, STEPS)
    for steps, out in zip(STEPS, results):
        np.testing.assert_allclose(ctx.decrypt(out).real, np.roll(z, -steps),
                                   atol=3e-3)

    acc = Accelerator(num_vpus=8, lanes=64)
    n, level = 4096, 5
    individual = len(STEPS) * Accelerator.total_makespan(
        acc.schedule_hrot(n, level))
    hoisted = Accelerator.total_makespan(
        acc.schedule_hrot_hoisted(n, level, len(STEPS)))
    record(
        results_dir, "hoisting",
        f"{len(STEPS)} rotations of one ciphertext (N={n}, level {level}) "
        f"on an 8-VPU chip:\n"
        f"  individual : {individual} cycles\n"
        f"  hoisted    : {hoisted} cycles  "
        f"({individual / hoisted:.2f}x faster — one digit decomposition "
        f"instead of {len(STEPS)})",
    )
    assert hoisted < individual


def test_individual_rotations_baseline(benchmark, ctx):
    z = np.random.default_rng(1).uniform(-1, 1, ctx.params.slots)
    ct = ctx.encrypt(z)

    def rotate_all():
        return [ctx.rotate(ct, s) for s in STEPS]

    results = benchmark(rotate_all)
    for steps, out in zip(STEPS, results):
        np.testing.assert_allclose(ctx.decrypt(out).real, np.roll(z, -steps),
                                   atol=3e-3)
