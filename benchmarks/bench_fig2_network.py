"""Fig. 2 structure claims: the inter-lane network's stage/control-bit
counts and single-traversal latency.

Times one full automorphism network traversal at m = 64 (the mux-level
behavioral model) and records the structural facts the figure asserts:
8 stages at m = 64, CG merging at m = 4, m-1 shift control bits, and a
~2 kbit pre-generated control table."""

import numpy as np

from conftest import record
from repro.automorphism import affine_controls, control_table_size_bits
from repro.core import InterLaneNetwork, NetworkConfig


def traverse_once(net, x, config):
    return net.traverse(x, config)


def render() -> str:
    lines = []
    for m in [4, 8, 16, 32, 64, 128, 256]:
        net = InterLaneNetwork(m)
        lines.append(
            f"m={m:3d}: stages={net.stage_count:2d} "
            f"(CG {'merged' if net.merged_cg else 'x2':>6s} + "
            f"{m.bit_length() - 1} shift), live control bits="
            f"{net.control_bit_count:3d}, table={control_table_size_bits(m)} b"
        )
    return "\n".join(lines)


def test_control_table_artifact(benchmark, results_dir):
    """Reproduce the authors' open-sourced artifact: the full pre-
    generated control table for m = 64 (all 32 distinct automorphisms,
    63 bits each — the ~2 kbit SRAM of §IV-B), verified to route."""
    from repro.automorphism import AffinePermutation, affine_controls

    m = 64
    table = benchmark(
        lambda: {k: affine_controls(m, k) for k in range(1, m, 2)})
    lines = [f"pre-generated automorphism control table, m={m} "
             f"({len(table)} entries x {m - 1} bits):"]
    for k, controls in sorted(table.items()):
        word = "".join(
            "".join(str(b) for b in controls.group_bits[bi])
            for bi in reversed(range(len(controls.group_bits))))
        lines.append(f"  k={k:2d}: {word}")
        out = controls.apply(np.arange(m))
        assert np.array_equal(out, AffinePermutation(m, k).apply(np.arange(m)))
    record(results_dir, "control_table_m64", "\n".join(lines))


def test_fig2_network(benchmark, results_dir):
    m = 64
    net = InterLaneNetwork(m)
    x = np.random.default_rng(0).integers(0, 1 << 30, m).astype(np.uint64)
    config = NetworkConfig(shift=affine_controls(m, 5))
    out = benchmark(traverse_once, net, x, config)
    assert len(out) == m
    assert net.stage_count == 8
    assert net.control_bit_count == 2 + 63
    assert control_table_size_bits(64) == 2016  # ~2 kbit, §IV-B
    record(results_dir, "fig2_network_structure", render())
