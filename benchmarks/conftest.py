"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figure-level claims
and records the reproduced numbers under ``benchmarks/out/`` so that
EXPERIMENTS.md can be refreshed from a single run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Write one reproduced table to disk and echo it to the terminal."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
