"""Kernel-level NTT throughput: the software substrate's own numbers.

Not a paper table — this documents the repository's kernel performance
(vectorized DIF/DIT, constant-geometry form, negacyclic wrap) so changes
that slow the golden models get caught."""

import numpy as np
import pytest

from repro.ntt import NegacyclicNtt, cg_dif_ntt, ntt_dif, vec_ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353


@pytest.mark.parametrize("n", [1024, 4096])
def test_vectorized_forward(benchmark, n):
    t = get_tables(n, Q)
    x = np.random.default_rng(0).integers(0, Q, n, dtype=np.uint64)
    out = benchmark(vec_ntt_dif, x, t)
    assert len(out) == n


def test_negacyclic_roundtrip(benchmark):
    n = 4096
    ntt = NegacyclicNtt(n, Q)
    x = np.random.default_rng(1).integers(0, Q, n, dtype=np.uint64)

    def roundtrip():
        return ntt.inverse(ntt.forward(x))

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, x)


def test_scalar_constant_geometry(benchmark):
    n = 256
    t = get_tables(n, Q)
    x = [int(v) for v in np.random.default_rng(2).integers(0, Q, n)]
    got = benchmark(cg_dif_ntt, x, t)
    assert got == ntt_dif(x, t)


def test_merged_psi_forward(benchmark):
    """The merged-psi (Longa–Naehrig) form: one multiply per butterfly
    and no fold pass — the kernel shape hardware twiddle SRAM feeds."""
    from repro.ntt.merged import merged_forward

    n = 4096
    t = get_tables(n, Q)
    x = np.random.default_rng(4).integers(0, Q, n, dtype=np.uint64)
    out = benchmark(merged_forward, x, t)
    np.testing.assert_array_equal(out, NegacyclicNtt(n, Q).forward_bitrev(x))


def test_batched_limbs(benchmark):
    """The FHE shape: six RNS limbs transformed as one batch."""
    n, limbs = 4096, 6
    t = get_tables(n, Q)
    x = np.random.default_rng(3).integers(0, Q, (limbs, n), dtype=np.uint64)
    out = benchmark(vec_ntt_dif, x, t)
    assert out.shape == (limbs, n)
