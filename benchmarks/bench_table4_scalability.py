"""Table IV: area and power of our inter-lane network for m = 4 .. 256.

Checks the published design points and the §V-D scaling claim
(~2.27x area / ~2.24x power per lane-count doubling)."""

import pytest

from conftest import record
from repro.hwmodel import our_network_cost

PAPER = {
    4: (208.99, 0.59),
    8: (509.45, 1.38),
    16: (1180.83, 3.13),
    32: (2664.50, 7.02),
    64: (5913.62, 15.59),
    128: (12975.47, 34.28),
    256: (28226.38, 75.02),
}


def sweep():
    return {m: our_network_cost(m) for m in sorted(PAPER)}


def render(costs) -> str:
    lines = [f"{'lanes':>5s} {'area um^2':>12s} {'paper':>12s} {'err':>7s} "
             f"{'power mW':>9s} {'paper':>7s} {'err':>7s}"]
    for m, c in costs.items():
        pa, pp = PAPER[m]
        lines.append(
            f"{m:5d} {c.area_um2:12.2f} {pa:12.2f} {c.area_um2 / pa - 1:+6.1%} "
            f"{c.power_mw:9.2f} {pp:7.2f} {c.power_mw / pp - 1:+6.1%}"
        )
    a_ratio = (costs[256].area_um2 / costs[4].area_um2) ** (1 / 6)
    p_ratio = (costs[256].power_mw / costs[4].power_mw) ** (1 / 6)
    lines.append(f"growth per doubling: area {a_ratio:.2f}x (paper ~2.27x), "
                 f"power {p_ratio:.2f}x (paper ~2.24x)")
    return "\n".join(lines)


def test_table4(benchmark, results_dir):
    costs = benchmark(sweep)
    record(results_dir, "table4_scalability", render(costs))
    for m, c in costs.items():
        assert c.area_um2 == pytest.approx(PAPER[m][0], rel=0.10)
        assert c.power_mw == pytest.approx(PAPER[m][1], rel=0.10)
