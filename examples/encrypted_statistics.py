#!/usr/bin/env python3
"""Encrypted statistics: mean and variance over an encrypted dataset.

The scenario the paper's introduction motivates — outsourced computation
on private data.  A client encrypts a batch of sensor readings; the
(untrusted) server computes mean and variance homomorphically with the
rotate-and-add pattern that makes HRot (automorphism + keyswitch) the
hot kernel; the client decrypts the two aggregates.

Run:  python examples/encrypted_statistics.py
"""

import numpy as np

from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams


def rotate_sum(ctx, ct, width):
    """Sum ``width`` neighbouring slots into every slot (log-depth)."""
    steps = 1
    while steps < width:
        ct = ctx.add(ct, ctx.rotate(ct, steps))
        steps *= 2
    return ct


def main() -> None:
    params = CkksParams(n=2048, levels=4, scale_bits=26, prime_bits=29)
    ctx = CkksContext(params, seed=42)
    batch = 256  # readings per ciphertext (must divide slot count)
    ctx.generate_galois_keys([1 << i for i in range((batch - 1).bit_length())])

    # --- client side: encrypt the readings -----------------------------
    rng = np.random.default_rng(7)
    readings = rng.normal(0.2, 0.35, batch)
    padded = np.zeros(params.slots)
    padded[:batch] = readings
    ct = ctx.encrypt(padded)
    print(f"encrypted {batch} readings into one ciphertext "
          f"(N={params.n}, {params.levels} limbs)")

    # --- server side: homomorphic mean and variance --------------------
    ct_sum = rotate_sum(ctx, ct, batch)
    ct_mean = ctx.multiply_plain(ct_sum, np.full(params.slots, 1.0 / batch))
    # E[x^2] via one squaring, then the same rotate-sum.
    ct_sq = ctx.square(ct)
    ct_sq_mean = ctx.multiply_plain(rotate_sum(ctx, ct_sq, batch),
                                    np.full(params.slots, 1.0 / batch))
    # var = E[x^2] - mean^2.  The two paths sit at different scales
    # (mean^2 went through one more multiplicative depth), so align
    # E[x^2] with a multiply by the all-ones plaintext before the sub.
    ct_mean_sq = ctx.square(ct_mean)
    ct_sq_mean = ctx.multiply_plain(ct_sq_mean, np.ones(params.slots))
    ct_var = ctx.sub(ct_sq_mean, ct_mean_sq)

    # --- client side: decrypt and compare ------------------------------
    mean = ctx.decrypt(ct_mean)[0].real
    var = ctx.decrypt(ct_var)[0].real
    true_mean = readings.mean()
    true_var = readings.var()
    print(f"homomorphic mean     = {mean:+.6f}   (true {true_mean:+.6f}, "
          f"err {abs(mean - true_mean):.2e})")
    print(f"homomorphic variance = {var:+.6f}   (true {true_var:+.6f}, "
          f"err {abs(var - true_var):.2e})")
    assert abs(mean - true_mean) < 1e-2
    assert abs(var - true_var) < 1e-2
    print("server never saw a single plaintext reading.")


if __name__ == "__main__":
    main()
