#!/usr/bin/env python3
"""A guided walk through the inter-lane network (paper Figs. 2 and §IV-B).

Reproduces the paper's m = 8 worked example step by step: the CG stage
pairing butterfly operands, the per-cycle shift-stage control signals,
the recursive automorphism decomposition into strided shifts, and the
merge into a single network traversal.

Run:  python examples/network_walkthrough.py
"""

import numpy as np

from repro.automorphism import (
    AffinePermutation,
    affine_controls,
    control_table_size_bits,
    merge_shifts,
    recursive_shift_decomposition,
)
from repro.core import InterLaneNetwork, NetworkConfig

M = 8


def fmt(a):
    return [int(v) for v in a]


def main() -> None:
    net = InterLaneNetwork(M)
    x = np.arange(M)
    print(f"inter-lane network, m = {M}: {net.stage_count} stages "
          f"(2 CG + {M.bit_length() - 1} shift), "
          f"{net.control_bit_count} live control bits\n")

    # --- 1. the constant-geometry stage -------------------------------
    print("1. CG-DIF stage: gathers butterfly pairs (j, j+m/2) into")
    print("   adjacent lanes -- the same wiring serves every NTT stage:")
    gathered = net.traverse(x, NetworkConfig(cg="dif"))
    print(f"   in : {fmt(x)}")
    print(f"   out: {fmt(gathered)}   (pairs: "
          + ", ".join(f"({gathered[2*j]},{gathered[2*j+1]})" for j in range(M // 2))
          + ")\n")

    # --- 2. the paper's independent-group shift example -----------------
    # §IV-B: sub-columns [0,2,4,6] -> [4,6,0,2] and [1,3,5,7] -> [7,1,3,5]:
    # distances 4 for the evens, 6 for the odds, in one traversal.
    from repro.automorphism import route_distance_map

    print("2. the paper's m=8 example: even lanes move distance 4,")
    print("   odd lanes distance 6 upward (= 2 downward in this library's")
    print("   convention), merged into one traversal:")
    distances = np.array([4, 2] * (M // 2))
    controls = route_distance_map(M, distances)
    for b in reversed(range(len(controls.group_bits))):
        print(f"     distance {1 << b}: signals {list(controls.group_bits[b])}")
    out = net.traverse(x, NetworkConfig(shift=controls))
    print(f"   {fmt(x)} -> {fmt(out)}")
    assert fmt(out[0::2]) == [4, 6, 0, 2]
    assert fmt(out[1::2]) == [7, 1, 3, 5]
    print("   evens [4,6,0,2] and odds [7,1,3,5], as in the paper.\n")

    # --- 3. a real automorphism: recursive decomposition + merge --------
    sigma = AffinePermutation(M, 5)
    print("3. automorphism sigma(i) = 5*i mod 8 decomposed recursively")
    print("   (C'=2 columns until the multiplier collapses to 1):")
    shifts = recursive_shift_decomposition(sigma)
    for s in shifts:
        sub = list(range(s.offset, M, s.stride))
        print(f"   stride {s.stride} offset {s.offset}: lanes {sub} "
              f"shift by {s.amount} sub-slot(s)")
    merged = merge_shifts(shifts, M)
    print(f"   merged per-element distances: {fmt(merged)}")
    controls = affine_controls(M, sigma.multiplier)
    out = net.traverse(x, NetworkConfig(shift=controls))
    assert np.array_equal(out, sigma.apply(x))
    print(f"   one traversal: {fmt(x)} -> {fmt(out)}\n")

    # --- 4. the pre-generated control table ----------------------------
    print("4. control storage (paper §IV-B):")
    print(f"   m/2 = {M // 2} distinct automorphisms x (m-1) = {M - 1} bits"
          f" = {control_table_size_bits(M)} bits total")
    print(f"   (at m = 64: {control_table_size_bits(64)} bits ~ 2 kbit, "
          "'a small area cost')")


if __name__ == "__main__":
    main()
