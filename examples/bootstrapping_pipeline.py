#!/usr/bin/env python3
"""A bootstrapping-shaped pipeline: linear transform -> polynomial ->
inverse transform, all under encryption.

CKKS bootstrapping (paper §II-A: "it involves the same basic operations
including HAdd, HMult, and HRot") is structurally CoeffToSlot (a
homomorphic DFT-like linear transform), EvalMod (a polynomial
approximation of modular reduction), and SlotToCoeff (the inverse
transform).  This example runs that exact kernel sequence at toy scale —
an orthogonal mixing matrix, a degree-3 odd polynomial, and the inverse
matrix — and counts the operation mix that lands on the accelerator.

Run:  python examples/bootstrapping_pipeline.py
"""

import numpy as np

from repro.fhe.ckks import CkksContext
from repro.fhe.linear import encrypted_matvec_bsgs, required_rotations
from repro.fhe.params import CkksParams
from repro.fhe.polyeval import evaluate_power_basis

DIM = 8
POLY = [0.0, 1.2, 0.0, -0.15]  # odd cubic, an EvalMod-style shape


def rotation_matrix(dim: int, angle: float) -> np.ndarray:
    """A block-rotation orthogonal matrix (a stand-in for the DFT
    factors CoeffToSlot uses)."""
    m = np.eye(dim)
    c, s = np.cos(angle), np.sin(angle)
    for i in range(0, dim - 1, 2):
        m[i, i], m[i, i + 1] = c, -s
        m[i + 1, i], m[i + 1, i + 1] = s, c
    return m


def main() -> None:
    params = CkksParams(n=512, levels=6, scale_bits=27, prime_bits=29)
    ctx = CkksContext(params, seed=12)
    rotations = sorted(set(required_rotations(DIM, bsgs=True)
                           + required_rotations(DIM)))
    ctx.generate_galois_keys(rotations)

    forward = rotation_matrix(DIM, 0.7)
    inverse = forward.T  # orthogonal

    rng = np.random.default_rng(5)
    x = rng.uniform(-0.8, 0.8, DIM)
    ct = ctx.encrypt(np.tile(x, params.slots // DIM))
    print(f"bootstrapping-shaped pipeline at N={params.n}, "
          f"{params.levels} limbs, {DIM}-dim transform")

    # Phase 1: CoeffToSlot surrogate (homomorphic matvec, BSGS).
    ct = encrypted_matvec_bsgs(ctx, ct, forward)
    # Phase 2: EvalMod surrogate (odd cubic polynomial).
    ct = evaluate_power_basis(ctx, ct, POLY)
    # Phase 3: SlotToCoeff surrogate (inverse transform).
    ct = encrypted_matvec_bsgs(ctx, ct, inverse)

    got = ctx.decrypt(ct)[:DIM].real
    y = forward @ x
    y = POLY[1] * y + POLY[3] * y ** 3
    expected = inverse @ y
    err = np.abs(got - expected).max()
    print(f"pipeline error vs plaintext: {err:.2e} "
          f"(final level {ct.level}, scale 2^{np.log2(ct.scale):.1f})")
    assert err < 2e-2

    # The kernel mix this workload sends to the accelerator.
    from repro.accel import Accelerator

    acc = Accelerator(num_vpus=8, lanes=64)
    level = params.top_level
    rot_count = 2 * (len(required_rotations(DIM, bsgs=True)))
    mult_count = 6  # polynomial + transform multiplies (order of magnitude)
    hrot = Accelerator.total_makespan(acc.schedule_hrot(params.n, level))
    hmult = Accelerator.total_makespan(acc.schedule_hmult(params.n, level))
    print(f"on an 8-VPU chip: ~{rot_count} HRots ({rot_count * hrot} cycles) "
          f"+ ~{mult_count} HMults ({mult_count * hmult} cycles)")
    print("rotations dominate -> the single-pass automorphism network is "
          "the bootstrapping enabler.")


if __name__ == "__main__":
    main()
