#!/usr/bin/env python3
"""The same encrypted computation in all three schemes: CKKS, BGV, BFV.

Computes ``x*y + y`` under encryption three ways, showing what §II-A
means by "similar computation patterns": identical NTT/automorphism/
element-wise kernels and the very same keyswitch module, with only the
plaintext embedding differing — approximate reals (CKKS), noise-adjacent
integers (BGV), top-of-modulus integers (BFV).

Run:  python examples/three_schemes.py
"""

import numpy as np

from repro.fhe.bfv import BfvContext
from repro.fhe.bgv import BgvContext, BgvParams
from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams

N_INT = 64      # ring degree for the integer schemes
T = 257         # plaintext modulus, T === 1 (mod 2*N_INT)


def main() -> None:
    rng = np.random.default_rng(17)

    # --- CKKS: approximate complex/real slots ---------------------------
    ckks = CkksContext(CkksParams(n=256, levels=3, scale_bits=26,
                                  prime_bits=28), seed=1)
    x = rng.uniform(-1, 1, ckks.params.slots)
    y = rng.uniform(-1, 1, ckks.params.slots)
    ct = ckks.multiply(ckks.encrypt(x), ckks.encrypt(y))
    ct = ckks.add_plain(ct, y)
    err = np.abs(ckks.decrypt(ct).real - (x * y + y)).max()
    print(f"CKKS (N=256, {ckks.params.slots} complex slots): "
          f"x*y + y with error {err:.2e}  -- approximate by design")

    # --- BGV: exact integers, noise-adjacent embedding -------------------
    bgv = BgvContext(BgvParams(n=N_INT, levels=2, plaintext_modulus=T,
                               prime_bits=28), seed=1)
    xi = rng.integers(0, T, N_INT)
    yi = rng.integers(0, T, N_INT)
    ct = bgv.multiply(bgv.encrypt(xi), bgv.encrypt(yi), switch_modulus=False)
    ct = bgv.add_plain(ct, yi)
    exact = np.array_equal(
        bgv.decrypt(ct),
        ((xi.astype(object) * yi + yi) % T).astype(np.int64))
    print(f"BGV  (N={N_INT}, {N_INT} integer slots mod {T}): "
          f"x*y + y exact = {exact}  -- m + t*e embedding, mod-switch ladder")

    # --- BFV: exact integers, scale-invariant embedding ------------------
    bfv = BfvContext(BgvParams(n=N_INT, levels=2, plaintext_modulus=T,
                               prime_bits=28), seed=1)
    ct = bfv.multiply(bfv.encrypt(xi), bfv.encrypt(yi))
    ct = bfv.add_plain(ct, yi)
    exact = np.array_equal(
        bfv.decrypt(ct),
        ((xi.astype(object) * yi + yi) % T).astype(np.int64))
    print(f"BFV  (N={N_INT}, {N_INT} integer slots mod {T}): "
          f"x*y + y exact = {exact}  -- Delta*m embedding, t/Q rescaling")

    # --- the point --------------------------------------------------------
    from repro.fhe.keyswitch import KeySwitchKey

    assert all(isinstance(c.relin_key, KeySwitchKey) for c in (ckks, bgv, bfv))
    print("\nall three schemes relinearize through the *same* digit-keyswitch")
    print("module and run the same NTT/automorphism kernels -- one unified")
    print("VPU serves them all (paper §II-A).")


if __name__ == "__main__":
    main()
