#!/usr/bin/env python3
"""Private inference through a small MLP, end to end under encryption.

Two linear layers with a square activation between them — the classic
CryptoNets-style network shape.  Every building block maps to the
accelerator's kernels: the linear layers are rotation-heavy diagonal
matvecs (automorphisms + keyswitches), the activation is one ciphertext
multiplication, and everything stays encrypted from input to logits.

Run:  python examples/private_mlp.py
"""

import numpy as np

from repro.fhe.ckks import CkksContext
from repro.fhe.linear import encrypted_matvec, required_rotations
from repro.fhe.params import CkksParams

DIM = 8


def main() -> None:
    params = CkksParams(n=1024, levels=6, scale_bits=27, prime_bits=29)
    ctx = CkksContext(params, seed=23)
    ctx.generate_galois_keys(required_rotations(DIM))

    rng = np.random.default_rng(9)
    w1 = rng.normal(0, 0.4, (DIM, DIM))
    w2 = rng.normal(0, 0.4, (DIM, DIM))
    x = rng.uniform(-1, 1, DIM)

    ct = ctx.encrypt(np.tile(x, params.slots // DIM))
    print(f"encrypted input ({DIM} features) -> "
          f"linear({DIM}) -> square -> linear({DIM})")

    # Layer 1: rotation-based matvec.
    ct = encrypted_matvec(ctx, ct, w1)
    # Activation: square (one HMult).
    ct = ctx.square(ct)
    # Layer 2.
    ct = encrypted_matvec(ctx, ct, w2)

    logits = ctx.decrypt(ct)[:DIM].real
    expected = w2 @ ((w1 @ x) ** 2)
    err = np.abs(logits - expected).max()
    print(f"encrypted logits error vs plaintext MLP: {err:.2e} "
          f"(levels left: {ct.level})")
    assert err < 2e-2
    winner = int(np.argmax(logits))
    print(f"predicted class: {winner} "
          f"(plaintext model agrees: {winner == int(np.argmax(expected))})")

    # What the accelerator pays for this network.
    from repro.accel import Accelerator

    acc = Accelerator(num_vpus=8, lanes=64)
    level = params.top_level
    rots = 2 * (DIM - 1)
    hrot_reports = acc.schedule_hrot(params.n, level)
    hmult_reports = acc.schedule_hmult(params.n, level)
    cycles = (rots * Accelerator.total_makespan(hrot_reports)
              + 3 * Accelerator.total_makespan(hmult_reports))
    energy = (rots * acc.operation_energy_nj(hrot_reports)
              + 3 * acc.operation_energy_nj(hmult_reports))
    print(f"on an 8-VPU chip: ~{cycles} cycles (~{cycles / 1e6:.2f} ms at "
          f"1 GHz), ~{energy / 1e3:.1f} uJ")


if __name__ == "__main__":
    main()
