#!/usr/bin/env python3
"""Exact encrypted tallying with BGV.

CKKS computes on approximate reals; elections need exact integers.  The
same accelerator substrate supports BGV (paper §II-A), and this example
uses it: each voter submits an encrypted one-hot ballot over the
candidate slots, the server homomorphically adds the ballots and applies
an exact plaintext weighting — never seeing an individual vote — and the
election authority decrypts only the final tally.

Run:  python examples/exact_voting_bgv.py
"""

import numpy as np

from repro.fhe.bgv import BgvContext, BgvParams

CANDIDATES = 5
VOTERS = 40


def main() -> None:
    params = BgvParams(n=256, levels=2, plaintext_modulus=65537,
                       prime_bits=28)
    authority = BgvContext(params, seed=31)
    t = params.plaintext_modulus
    rng = np.random.default_rng(11)

    # --- voters: encrypted one-hot ballots -----------------------------
    true_tally = np.zeros(CANDIDATES, dtype=np.int64)
    ballots = []
    for _ in range(VOTERS):
        choice = int(rng.integers(0, CANDIDATES))
        true_tally[choice] += 1
        ballot = np.zeros(params.n, dtype=np.int64)
        ballot[choice] = 1
        ballots.append(authority.encrypt(ballot))
    print(f"{VOTERS} voters cast encrypted one-hot ballots "
          f"({CANDIDATES} candidates, BGV N={params.n}, t={t})")

    # --- tally server: pure ciphertext additions -----------------------
    total = ballots[0]
    for ballot in ballots[1:]:
        total = authority.add(total, ballot)

    # Weighted variant: the server can also apply exact integer weights
    # (e.g. shares in a weighted poll) with one plaintext multiply.
    weights = np.zeros(params.n, dtype=np.int64)
    weights[:CANDIDATES] = 3
    weighted = authority.multiply_plain(total, weights)

    # --- authority: decrypt only aggregates -----------------------------
    tally = authority.decrypt(total)[:CANDIDATES]
    weighted_tally = authority.decrypt(weighted)[:CANDIDATES]
    print("tally            :", tally.tolist(), " (true:", true_tally.tolist(), ")")
    print("3x weighted tally:", weighted_tally.tolist())
    assert np.array_equal(tally, true_tally)
    assert np.array_equal(weighted_tally, 3 * true_tally)
    assert int(tally.sum()) == VOTERS
    print("exact to the last vote — no approximation error, by construction.")


if __name__ == "__main__":
    main()
