#!/usr/bin/env python3
"""Private inference: an encrypted linear layer (matrix-vector product).

Homomorphic matrix-vector products use the Halevi–Shoup diagonal method:
``y = sum_d diag_d(W) * rot(x, d)`` — one rotation and one plaintext
multiply per nonzero diagonal.  Rotations dominate, which is exactly why
the paper's single-pass automorphism matters for private ML inference.

Run:  python examples/encrypted_linear_layer.py
"""

import numpy as np

from repro.fhe.ckks import CkksContext
from repro.fhe.params import CkksParams


def diagonal(matrix: np.ndarray, d: int) -> np.ndarray:
    """The d-th generalized diagonal: ``diag_d[i] = W[i][(i + d) % n]``."""
    n = matrix.shape[0]
    i = np.arange(n)
    return matrix[i, (i + d) % n]


def encrypted_matvec(ctx, ct_x, matrix, slots):
    """Halevi–Shoup: y = sum_d diag_d * rot(x, d)."""
    n = matrix.shape[0]
    acc = None
    for d in range(n):
        diag = diagonal(matrix, d)
        if not diag.any():
            continue
        padded = np.zeros(slots)
        padded[:n] = diag
        rotated = ctx.rotate(ct_x, d) if d else ct_x
        term = ctx.multiply_plain(rotated, padded)
        acc = term if acc is None else ctx.add(acc, term)
    return acc


def main() -> None:
    params = CkksParams(n=2048, levels=3, scale_bits=26, prime_bits=29)
    ctx = CkksContext(params, seed=5)
    dim = 16  # layer width
    ctx.generate_galois_keys(list(range(1, dim)))

    rng = np.random.default_rng(3)
    weights = rng.normal(0, 0.4, (dim, dim))
    x = rng.uniform(-1, 1, dim)

    # The input vector must tile the slot ring so cyclic slot rotations
    # emulate the length-`dim` rotations the diagonal method needs.
    tiled = np.tile(x, params.slots // dim)
    ct_x = ctx.encrypt(tiled)
    print(f"encrypted a {dim}-dim activation (tiled over {params.slots} slots)")

    ct_y = encrypted_matvec(ctx, ct_x, weights, params.slots)
    y = ctx.decrypt(ct_y)[:dim].real
    expected = weights @ x
    err = np.abs(y - expected).max()
    print(f"encrypted W@x ({dim}x{dim}, {dim} rotations): max err {err:.2e}")
    assert err < 1e-2
    for i in range(4):
        print(f"  y[{i}] = {y[i]:+.5f}   (plaintext {expected[i]:+.5f})")
    print("linear layer evaluated without decrypting the activations.")


if __name__ == "__main__":
    main()
