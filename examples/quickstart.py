#!/usr/bin/env python3
"""Quickstart: the unified VPU in five minutes.

Builds a 64-lane VPU, runs a 4096-point NTT and a full-length
automorphism through the mux-level inter-lane network, verifies both
against golden models, and prints the headline area/power comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.automorphism import paper_sigma
from repro.baselines import f1_network_cost
from repro.core import VectorProcessingUnit
from repro.hwmodel import our_network_cost, vpu_cost
from repro.mapping import (
    automorphism_layout_pack,
    automorphism_layout_unpack,
    compile_automorphism,
    compile_ntt,
    pack_for_ntt,
    required_registers,
    unpack_ntt_result,
)
from repro.ntt import vec_ntt_dif
from repro.ntt.tables import get_tables

Q = 998244353  # a 30-bit NTT prime
N, M = 4096, 64


def main() -> None:
    vpu = VectorProcessingUnit(m=M, q=Q,
                               regfile_entries=required_registers(M),
                               memory_rows=2 * N // M)
    rng = np.random.default_rng(0)
    x = rng.integers(0, Q, N, dtype=np.uint64)

    # --- NTT: decomposed into two 64-point dimensions, butterflies on the
    # CG network stage, transposes on the shift stages (paper §IV-A).
    vpu.memory.data[:N // M] = pack_for_ntt(x, M)
    stats = vpu.run_fresh(compile_ntt(N, M, Q))
    got = unpack_ntt_result(vpu.memory, N, M)
    tables = get_tables(N, Q)
    expected = np.empty(N, dtype=np.uint64)
    expected[tables.bitrev] = vec_ntt_dif(x, tables)
    assert np.array_equal(got, expected), "NTT mismatch!"
    busy = stats.multiplier_busy
    active = stats.cycles - stats.loads - stats.stores
    print(f"NTT-{N} on {M} lanes: OK   "
          f"({stats.by_type['NttStage']} fused stages, "
          f"{stats.by_type.get('NetworkPass', 0)} transpose passes, "
          f"{100 * busy / active:.1f}% lane utilization)")

    # --- Automorphism: sigma_{5,3} in one network traversal per element
    # (paper §IV-B).
    sigma = paper_sigma(N, 3)
    vpu.memory.data[:N // M] = automorphism_layout_pack(x, M)
    stats = vpu.run_fresh(compile_automorphism(sigma, M))
    out = automorphism_layout_unpack(vpu.memory, N, M, base_row=N // M)
    assert np.array_equal(out, sigma.apply(x)), "automorphism mismatch!"
    print(f"automorphism sigma_(5,3) on {N} elements: OK   "
          f"({stats.network_passes} passes = N/m, one traversal per element)")

    # --- The headline numbers (paper Table II).
    ours = our_network_cost(M)
    f1 = f1_network_cost(M)
    ra, rp = f1.ratio_to(ours)
    va, vp = vpu_cost(M, f1).ratio_to(vpu_cost(M, ours))
    print(f"inter-lane network vs F1-style unit: {ra:.1f}x area, "
          f"{rp:.1f}x power savings")
    print(f"whole VPU: {va:.2f}x area, {vp:.2f}x power savings")


if __name__ == "__main__":
    main()
