#!/usr/bin/env python3
"""Chip-level report: scheduling FHE operations on a multi-VPU accelerator.

Builds the Fig. 1(a) top level — eight 64-lane unified VPUs, a shared
scratchpad and a ring NoC — schedules HAdd / HRot / HMult across the
RNS-limb parallelism, and prices the whole chip, comparing against the
same chip built with each baseline permutation unit.

Run:  python examples/accelerator_report.py
"""

from repro.accel import Accelerator
from repro.baselines import (
    ark_network_cost,
    bts_network_cost,
    f1_network_cost,
    sharp_network_cost,
)
from repro.hwmodel import our_network_cost, vpu_cost

N, LEVEL = 4096, 5
NETWORKS = {
    "Ours": our_network_cost,
    "ARK": ark_network_cost,
    "BTS": bts_network_cost,
    "SHARP": sharp_network_cost,
    "F1": f1_network_cost,
}


def main() -> None:
    acc = Accelerator(num_vpus=8, lanes=64)
    print(f"accelerator: {acc.num_vpus} x {acc.lanes}-lane VPUs, "
          f"{acc.sram.capacity_bytes >> 20} MiB scratchpad, "
          f"{acc.noc.nodes}-stop ring NoC")
    print(f"workload: CKKS N={N}, level {LEVEL} ({LEVEL + 1} limbs)\n")

    ops = {
        "HAdd": [acc.schedule_elementwise(N, LEVEL + 1)],
        "HRot": acc.schedule_hrot(N, LEVEL),
        "HMult": acc.schedule_hmult(N, LEVEL),
    }
    print(f"{'op':6s} {'phases':>6s} {'makespan':>9s} {'bound by':>9s}")
    for name, reports in ops.items():
        total = Accelerator.total_makespan(reports)
        bound = "compute" if all(r.compute_bound for r in reports) else "memory"
        print(f"{name:6s} {len(reports):6d} {total:8d}c {bound:>9s}")

    print("\nchip cost with each permutation-unit choice (8 VPUs):")
    print(f"{'design':7s} {'chip area mm^2':>14s} {'chip power W':>13s}")
    baseline_chip = None
    for name, fn in NETWORKS.items():
        vpus = vpu_cost(64, fn(64))
        chip_area = vpus.area_um2 * 8 + acc.sram.cost().area_um2 \
            + acc.noc.cost().area_um2
        chip_power = vpus.power_mw * 8 + acc.sram.cost().power_mw \
            + acc.noc.cost().power_mw
        marker = ""
        if name == "Ours":
            baseline_chip = (chip_area, chip_power)
        else:
            marker = (f"  (+{chip_area / baseline_chip[0] - 1:.1%} area, "
                      f"+{chip_power / baseline_chip[1] - 1:.1%} power)")
        print(f"{name:7s} {chip_area / 1e6:14.3f} {chip_power / 1e3:13.3f}"
              f"{marker}")


if __name__ == "__main__":
    main()
