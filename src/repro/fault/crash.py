"""Process-level crash sites: seeded SIGKILL injection for the
durable-execution layer.

The sites in :mod:`repro.fault.injector` corrupt *data* inside a live
process; the sites here kill the *process itself*, the failure mode the
write-ahead log in :mod:`repro.recover` exists to survive.  A
:class:`CrashSpec` names one seeded crash point:

* ``op_boundary`` — the worker is SIGKILLed between two journaled ops
  (all completed work is on disk; the journal tail is whole).
* ``wal_mid_record`` — the worker is SIGKILLed halfway through a WAL
  append, after only a prefix of the record's bytes reached the file
  (a *torn write*; recovery must detect and truncate the tail).

Like the data-fault hooks, the crash hook is a process-global installed
by the campaign driver inside the forked worker; production code paths
consult it through :func:`crash_point` (op boundaries) and
:func:`pending_tear` (the WAL append path), both exact no-ops when no
hook is installed.  The kill is a real ``SIGKILL`` to ``os.getpid()`` —
no Python-level cleanup, no atexit, no flushed buffers — so the worker
dies exactly the way a power loss or OOM kill would.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass

__all__ = [
    "PROCESS_SITES",
    "SITE_OP_BOUNDARY",
    "SITE_WAL_MID_RECORD",
    "CrashInjector",
    "CrashSpec",
    "crash_point",
    "current_crash_hook",
    "install_crash_hook",
    "pending_tear",
]

SITE_OP_BOUNDARY = "op_boundary"
SITE_WAL_MID_RECORD = "wal_mid_record"

#: Every process-level crash site the kill campaign sweeps.
PROCESS_SITES = (SITE_OP_BOUNDARY, SITE_WAL_MID_RECORD)


@dataclass(frozen=True)
class CrashSpec:
    """One seeded process crash.

    ``at`` counts occurrences of the site (0-based): the ``at``-th op
    boundary, or the ``at``-th WAL append.  ``tear_fraction`` applies
    only to ``wal_mid_record`` — the fraction of the record's bytes
    flushed to disk before the kill (clamped so at least one byte is
    written and at least one is missing).
    """

    site: str
    at: int
    tear_fraction: float = 0.5

    def kill(self) -> None:
        """SIGKILL to self, bypassing all cleanup — called by the WAL
        after it has flushed the torn prefix of the record."""
        os.kill(os.getpid(), signal.SIGKILL)

    def __post_init__(self) -> None:
        if self.site not in PROCESS_SITES:
            raise ValueError(f"unknown crash site {self.site!r}; "
                             f"choose from {PROCESS_SITES}")
        if self.at < 0:
            raise ValueError(f"crash occurrence must be >= 0, got {self.at}")


class CrashInjector:
    """Counts site occurrences and SIGKILLs the process at the spec.

    One injector carries at most one spec per site; the campaign runs
    one spec per forked worker, mirroring the one-fault-per-run
    discipline of the data-fault campaigns.
    """

    def __init__(self, specs: "list[CrashSpec] | tuple[CrashSpec, ...]"):
        self.specs = {spec.site: spec for spec in specs}
        self.counts = {site: 0 for site in PROCESS_SITES}

    def _hit(self, site: str) -> "CrashSpec | None":
        """Advance the site counter; return the spec if this occurrence
        is the seeded crash point."""
        spec = self.specs.get(site)
        index = self.counts[site]
        self.counts[site] = index + 1
        if spec is not None and index == spec.at:
            return spec
        return None

    def kill(self) -> None:
        """The actual crash: SIGKILL to self, bypassing all cleanup."""
        os.kill(os.getpid(), signal.SIGKILL)


_ACTIVE_CRASH_HOOK: CrashInjector | None = None


def install_crash_hook(hook: CrashInjector | None) -> CrashInjector | None:
    """Install the process-global crash injector (None disables);
    returns the previous hook so callers can restore it."""
    global _ACTIVE_CRASH_HOOK
    previous = _ACTIVE_CRASH_HOOK
    _ACTIVE_CRASH_HOOK = hook
    return previous


def current_crash_hook() -> CrashInjector | None:
    """The process-global crash injector, or None when disabled."""
    return _ACTIVE_CRASH_HOOK


def crash_point(site: str) -> None:
    """Declare a crash site; SIGKILLs the process when the installed
    spec names this occurrence.  Exact no-op when no hook is installed."""
    hook = current_crash_hook()
    if hook is not None:
        if hook._hit(site) is not None:
            hook.kill()


def pending_tear() -> "CrashSpec | None":
    """The WAL-append crash site: advance the ``wal_mid_record`` counter
    and return the spec when *this* append is the seeded torn write.

    The WAL needs the spec (not just a yes/no) because the tear happens
    mid-write: it flushes ``tear_fraction`` of the record, fsyncs, and
    only then calls :meth:`CrashInjector.kill`.
    """
    hook = current_crash_hook()
    if hook is not None:
        return hook._hit(SITE_WAL_MID_RECORD)
    return None
