"""Command-line fault campaigns: ``python -m repro.fault``.

Examples::

    python -m repro.fault --campaign smoke
    python -m repro.fault --campaign smoke --policy off --seed 7
    python -m repro.fault --campaign keyswitch --json BENCH_faults.json
    python -m repro.fault --campaign smoke --audit --injections 24

Exit status is non-zero when a detecting policy let a silent corruption
through, or when the determinism audit finds two equal-seed runs that
differ — both are CI-failing conditions.
"""

from __future__ import annotations

import argparse

from repro.fault.campaign import (
    CampaignConfig,
    audit_determinism,
    deep_config,
    keyswitch_config,
    run_campaign,
    smoke_config,
)
from repro.fault.policy import IntegrityPolicy
from repro.fault.report import FaultReport

_CAMPAIGNS = {
    "smoke": smoke_config,
    "deep": deep_config,
    "keyswitch": keyswitch_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault",
        description="Deterministic fault-injection campaigns over the "
                    "behavioral VPU model and the ABFT integrity layer.")
    parser.add_argument("--campaign", choices=sorted(_CAMPAIGNS),
                        default="smoke", help="preset to run")
    parser.add_argument("--policy", type=IntegrityPolicy.parse, default=None,
                        metavar="POLICY",
                        help="integrity policy: off | detect | retry | "
                             "degrade (default: the preset's)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--injections", type=int, default=None)
    parser.add_argument("-n", type=int, default=None, dest="n",
                        help="transform length (vpu-ntt workload)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON")
    parser.add_argument("--audit", action="store_true",
                        help="run the seeded-determinism audit (two runs, "
                             "byte-identical JSON) instead of one campaign")
    return parser


def _config_from(args: argparse.Namespace) -> CampaignConfig:
    overrides: dict = {}
    if args.policy is not None:
        overrides["policy"] = args.policy
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.injections is not None:
        overrides["injections"] = args.injections
    if args.n is not None:
        overrides["n"] = args.n
    return _CAMPAIGNS[args.campaign](**overrides)


def _print_summary(report: FaultReport) -> None:
    print(f"fault campaign: workload={report.workload} "
          f"policy={report.policy} seed={report.seed} "
          f"injections={report.injections}")
    counts = report.outcome_counts()
    print("outcomes: " + ", ".join(f"{k}={v}" for k, v in counts.items()))
    print(f"live detection rate: {report.detection_rate_live:.4f}")
    for site, row in report.per_site().items():
        cells = ", ".join(f"{k}={v}" for k, v in row.items())
        print(f"  {site:10s} {cells}")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config_from(args)
    if args.audit:
        ok = audit_determinism(config)
        print(f"determinism audit ({config.injections} injections, "
              f"seed {config.seed}): "
              + ("byte-identical" if ok else "MISMATCH"))
        return 0 if ok else 1
    report = run_campaign(config)
    _print_summary(report)
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.json}")
    silent = report.outcome_counts().get("silent", 0)
    if config.policy is not IntegrityPolicy.OFF and silent:
        print(f"FAIL: {silent} silent corruption(s) under a detecting "
              f"policy")
        return 1
    return 0
