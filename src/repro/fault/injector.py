"""Deterministic fault injection into the behavioral model.

The engine models the classic single-fault menagerie at the sites the
paper's unified datapath actually exposes:

========== ==================================================================
site       what gets corrupted
========== ==================================================================
`regfile`  one register-file word (``core/register_file.py``) — state flips
           hit the stored array directly, stuck/transient faults ride the
           read port
`network`  the mux network's control state (``core/network.py``): CG
           activation lines, per-cycle shift group bits, or a *raw* mux
           select line inside one shift stage (which may break the
           co-control bijection — the model raises, i.e. the hardware
           would drive two sources onto one lane)
`alu`      one lane of a modmul/modadd/modsub result (``core/vpu.py``)
`sram`     one scratchpad word — the VPU's :class:`VectorMemory` rows or
           an :class:`~repro.accel.sram.OnChipSram` staging buffer
`dram`     one in-flight word of an off-chip transfer
           (``accel/dram.py``)
`keyswitch` one word of the lazy keyswitch accumulator just before its
           final reduction (``fhe/keyswitch.py``)
========== ==================================================================

Fault kinds: ``bitflip`` (a one-shot upset of *stored* state at an armed
cycle), ``transient`` (one in-flight value corrupted at the first
exposure after arming; for value sites ``bitflip`` behaves the same),
``stuck0``/``stuck1`` (the bit is forced on every exposure from the
armed cycle on).

Hook contract (enforced by the FHC005 lint): production code touches a
hook only through a guard — ``hook = <something>fault_hook`` followed by
``if hook is not None: hook.method(...)`` — so disabled injection costs
one predictable branch and **zero** modeled cycles.

Everything is deterministic: a :class:`FaultSpec` fully describes one
fault, and the injector keeps no hidden randomness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

SITE_REGFILE = "regfile"
SITE_NETWORK = "network"
SITE_ALU = "alu"
SITE_SRAM = "sram"
SITE_DRAM = "dram"
SITE_KEYSWITCH = "keyswitch"

#: The VPU-resident site classes a smoke campaign sweeps.
CORE_SITES = (SITE_REGFILE, SITE_NETWORK, SITE_ALU, SITE_SRAM)
#: Sites reached through buffer staging rather than the execute loop.
BUFFER_SITES = (SITE_DRAM, SITE_KEYSWITCH)
ALL_SITES = CORE_SITES + BUFFER_SITES

KIND_BITFLIP = "bitflip"
KIND_TRANSIENT = "transient"
KIND_STUCK0 = "stuck0"
KIND_STUCK1 = "stuck1"
KINDS = (KIND_BITFLIP, KIND_TRANSIENT, KIND_STUCK0, KIND_STUCK1)

#: Sites where ``bit`` indexes a 64-bit data word (network faults index
#: control lines instead and may exceed 64).
_WORD_SITES = (SITE_REGFILE, SITE_ALU, SITE_SRAM, SITE_DRAM, SITE_KEYSWITCH)


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    ``cycle`` arms the fault: for VPU sites it counts issued
    instructions; for buffer sites it counts staging operations on that
    site.  ``word``/``lane`` address the target — for ``network`` faults
    ``word == 0`` selects the flat control word (``bit`` 0 = CG-DIT
    active, 1 = CG-DIF active, ``2..m`` = shift group bits largest
    distance first) and ``word == 1 + s`` selects the raw mux select of
    ``lane`` in shift stage ``s``.  Buffer sites use ``lane`` as a flat
    word index into the staged array.
    """

    site: str
    kind: str
    cycle: int
    bit: int
    word: int = 0
    lane: int = 0

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(f"unknown fault site {self.site!r}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 0 or self.bit < 0 or self.word < 0 or self.lane < 0:
            raise ValueError("cycle/bit/word/lane must be non-negative")
        if self.site in _WORD_SITES and self.bit >= 64:
            raise ValueError(f"bit {self.bit} out of the 64-bit word")

    def to_dict(self) -> dict:
        return {"site": self.site, "kind": self.kind, "cycle": self.cycle,
                "bit": self.bit, "word": self.word, "lane": self.lane}


def _apply_fault(value: np.uint64, kind: str, bit: int) -> np.uint64:
    mask = np.uint64(1) << np.uint64(bit)
    if kind in (KIND_BITFLIP, KIND_TRANSIENT):
        return value ^ mask
    if kind == KIND_STUCK0:
        return value & ~mask
    return value | mask


@dataclass
class _FaultState:
    spec: FaultSpec
    fired_cycle: int | None = None  # first cycle the fault changed anything
    acknowledged: bool = False      # a detection has been credited


class FaultInjector:
    """Drives a set of :class:`FaultSpec` into a run.

    One injector instance is one experiment: install it on a VPU
    (``vpu.install_fault_hook``) and/or globally
    (:func:`install_fault_hook`) for the buffer sites, run the workload,
    then read ``fired``, ``exposures`` and ``detection_latencies``.
    """

    def __init__(self, specs: "tuple[FaultSpec, ...] | list[FaultSpec]" = ()):
        self.specs = list(specs)
        self._state = [_FaultState(spec) for spec in self.specs]
        self.cycles = 0
        self.exposures: dict[str, int] = {}
        self._buffer_ops: dict[str, int] = {}
        self.detection_latencies: list[int] = []

    # -- introspection ------------------------------------------------------

    @property
    def fired(self) -> list[FaultSpec]:
        """Specs that actually changed state/data at least once."""
        return [st.spec for st in self._state if st.fired_cycle is not None]

    def _fire(self, st: _FaultState) -> None:
        if st.fired_cycle is None:
            st.fired_cycle = max(self.cycles - 1, 0)

    def _armed(self, spec: FaultSpec) -> bool:
        return self.cycles - 1 >= spec.cycle

    # -- VPU execute-loop hooks ---------------------------------------------

    def on_cycle(self, vpu) -> None:
        """Called once per issued instruction, before dispatch.

        Advances the fault clock and lands one-shot *state* bit-flips
        (register file / scratchpad words) at their armed cycle.
        """
        cycle = self.cycles
        self.cycles += 1
        for st in self._state:
            spec = st.spec
            if st.fired_cycle is not None or cycle < spec.cycle:
                continue
            if spec.kind != KIND_BITFLIP or spec.site not in (SITE_REGFILE,
                                                              SITE_SRAM):
                continue
            target = (vpu.regfile.data if spec.site == SITE_REGFILE
                      else vpu.memory.data)
            if spec.word < target.shape[0] and spec.lane < target.shape[1]:
                target[spec.word, spec.lane] ^= (
                    np.uint64(1) << np.uint64(spec.bit))
                st.fired_cycle = cycle

    def filter_regfile_read(self, reg: int, value: np.ndarray) -> np.ndarray:
        self.exposures[SITE_REGFILE] = self.exposures.get(SITE_REGFILE, 0) + 1
        return self._filter_word(SITE_REGFILE, reg, value)

    def filter_memory_read(self, addr: int, value: np.ndarray) -> np.ndarray:
        self.exposures[SITE_SRAM] = self.exposures.get(SITE_SRAM, 0) + 1
        return self._filter_word(SITE_SRAM, addr, value)

    def _filter_word(self, site: str, word: int,
                     value: np.ndarray) -> np.ndarray:
        for st in self._state:
            spec = st.spec
            if spec.site != site or spec.kind == KIND_BITFLIP:
                continue
            if not self._armed(spec) or spec.word != word:
                continue
            if spec.lane >= len(value):
                continue
            if spec.kind == KIND_TRANSIENT and st.fired_cycle is not None:
                continue
            new = _apply_fault(value[spec.lane], spec.kind, spec.bit)
            if new != value[spec.lane]:
                value[spec.lane] = new
                self._fire(st)
        return value

    def filter_alu(self, op: str, value: np.ndarray) -> np.ndarray:
        """Corrupt one lane of a modmul/modadd/modsub result."""
        self.exposures[SITE_ALU] = self.exposures.get(SITE_ALU, 0) + 1
        for st in self._state:
            spec = st.spec
            if spec.site != SITE_ALU or not self._armed(spec):
                continue
            if spec.lane >= len(value):
                continue
            if spec.kind in (KIND_BITFLIP, KIND_TRANSIENT) \
                    and st.fired_cycle is not None:
                continue
            new = _apply_fault(value[spec.lane], spec.kind, spec.bit)
            if new != value[spec.lane]:
                value[spec.lane] = new
                self._fire(st)
        return value

    # -- network control faults ---------------------------------------------

    def filter_network_config(self, config, m: int):
        """Corrupt the control word of one network traversal."""
        self.exposures[SITE_NETWORK] = self.exposures.get(SITE_NETWORK, 0) + 1
        for st in self._state:
            spec = st.spec
            if spec.site != SITE_NETWORK or spec.word != 0:
                continue
            if not self._armed(spec):
                continue
            if spec.kind in (KIND_BITFLIP, KIND_TRANSIENT) \
                    and st.fired_cycle is not None:
                continue
            mutated = self._mutate_config(config, m, spec)
            if mutated is not None:
                config = mutated
                self._fire(st)
        return config

    def filter_mux_selects(self, stage_index: int,
                           selects: np.ndarray) -> np.ndarray:
        """Corrupt a raw per-lane mux select inside one shift stage.

        Unlike group-bit faults these are *not* co-controlled, so the
        corrupted pattern may stop being a bijection — the stage raises
        :class:`~repro.core.stages.MuxConflictError`, the model's analog
        of two sources driving one output lane.
        """
        for st in self._state:
            spec = st.spec
            if spec.site != SITE_NETWORK or spec.word != stage_index + 1:
                continue
            if not self._armed(spec) or spec.lane >= len(selects):
                continue
            if spec.kind in (KIND_BITFLIP, KIND_TRANSIENT) \
                    and st.fired_cycle is not None:
                continue
            current = bool(selects[spec.lane])
            if spec.kind == KIND_STUCK0:
                target = False
            elif spec.kind == KIND_STUCK1:
                target = True
            else:
                target = not current
            if target != current:
                selects = selects.copy()
                selects[spec.lane] = target
                self._fire(st)
        return selects

    def _mutate_config(self, config, m: int, spec: FaultSpec):
        """Corrupted copy of a NetworkConfig, or None when the stuck
        value agrees with the line (no observable change)."""
        from dataclasses import replace

        from repro.core.network import _identity_controls

        force: bool | None = None
        if spec.kind == KIND_STUCK0:
            force = False
        elif spec.kind == KIND_STUCK1:
            force = True
        if spec.bit in (0, 1):
            which = "dit" if spec.bit == 0 else "dif"
            active = config.cg == which
            target = (not active) if force is None else force
            if target == active:
                return None
            return replace(config, cg=which if target else None,
                           cg_group_size=None)
        flat = spec.bit - 2
        controls = config.shift or _identity_controls(m)
        groups = [list(g) for g in controls.group_bits]
        # group_bits[b] holds the 2**b signals of the distance-2**b
        # stage; the flat index walks them smallest-b first.
        for b, group in enumerate(groups):
            if flat < len(group):
                current = bool(group[flat])
                target = (not current) if force is None else force
                if target == current:
                    return None
                group[flat] = int(target)
                from repro.automorphism.controls import ShiftControls

                shift = ShiftControls(m, tuple(tuple(g) for g in groups))
                return replace(config, shift=shift)
            flat -= len(group)
        return None  # beyond the physical control word

    # -- buffer staging faults -----------------------------------------------

    def corrupt_buffer(self, site: str, buffer: np.ndarray) -> np.ndarray:
        """Corrupt words of a staged buffer in place (sites ``dram``,
        ``sram`` staging, ``keyswitch``); ``cycle`` counts the staging
        operations seen on that site."""
        ops = self._buffer_ops.get(site, 0)
        self._buffer_ops[site] = ops + 1
        self.exposures[site] = self.exposures.get(site, 0) + 1
        flat = buffer.reshape(-1)
        for st in self._state:
            spec = st.spec
            if spec.site != site or ops < spec.cycle:
                continue
            if spec.kind in (KIND_BITFLIP, KIND_TRANSIENT) \
                    and st.fired_cycle is not None:
                continue
            if flat.size == 0:
                continue
            idx = spec.lane % flat.size
            new = _apply_fault(flat[idx], spec.kind, spec.bit)
            if new != flat[idx]:
                flat[idx] = new
                self._fire(st)
        return buffer

    # -- detection accounting -------------------------------------------------

    def note_detection(self) -> None:
        """Called by the integrity layer when a check fails: credits the
        detection to every fired-but-unacknowledged fault and records
        the detection latency in fault-clock cycles."""
        for st in self._state:
            if st.fired_cycle is not None and not st.acknowledged:
                st.acknowledged = True
                self.detection_latencies.append(
                    max(self.cycles - st.fired_cycle, 0))


_ACTIVE_INJECTOR: FaultInjector | None = None


def install_fault_hook(hook: FaultInjector | None) -> FaultInjector | None:
    """Install the process-global fault hook (used by the buffer sites
    and the integrity layer); returns the previous one."""
    global _ACTIVE_INJECTOR
    previous = _ACTIVE_INJECTOR
    _ACTIVE_INJECTOR = hook
    return previous


def current_fault_hook() -> FaultInjector | None:
    """The process-global fault hook, or None when injection is off."""
    return _ACTIVE_INJECTOR


@contextmanager
def use_fault_hook(hook: FaultInjector | None):
    """Temporarily install the global fault hook."""
    previous = install_fault_hook(hook)
    try:
        yield hook
    finally:
        install_fault_hook(previous)
