"""ABFT checks: O(n) algorithm-based verification of kernel batches.

**NTT batches.**  The negacyclic NTT is a linear map over ``Z_q``, so
for batch rows ``x_r`` sharing a modulus ``q`` with outputs ``y_r`` and
random nonzero coefficients ``c_r``:

    ``sum_r c_r * y_r  ==  NTT(sum_r c_r * x_r)   (mod q)``

The check folds a whole ``(L, n)`` batch into one combination row per
distinct modulus (O(n) per row) plus **one** trusted golden transform
per modulus — instead of re-running L transforms.  A single corrupted
row is detected with certainty: ``q`` is prime and ``c_r != 0``, so a
nonzero row error cannot cancel out of the combination.  Multi-row
corruptions escape only if their weighted errors cancel exactly — a
``~1/q`` coincidence against random coefficients.

**Automorphism batches** are prime-independent permutations; the check
recomputes the permutation scatter (cached index table) and compares
exactly.

**Keyswitch accumulation** uses a spare modulus (redundant residue):
the lazy path's *unreduced* uint64 accumulator ``A = sum_i d_i * k_i``
is exact (the bound analyzer gates the lazy path on it fitting uint64),
so it must satisfy

    ``A mod q_s  ==  sum_i (d_i mod q_s)(k_i mod q_s)   (mod q_s)``

for the spare prime ``q_s < 2**20`` — an independent arithmetic channel
whose products stay below 2**40 and cannot themselves overflow.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.mapping import galois_eval_permutation
from repro.ntt.negacyclic import NegacyclicNtt

#: Spare (redundant-residue) prime: small enough that the spare-channel
#: products are exact in uint64, coprime to every chain prime.
SPARE_MODULUS = 1_048_573


def _combine_rows(rows: np.ndarray, idx: list[int], coeffs: np.ndarray,
                  q: int) -> np.ndarray:
    """``sum_r coeffs[r] * rows[idx[r]] mod q`` — O(n) per row."""
    if q < (1 << 31):
        qq = np.uint64(q)
        acc = np.zeros(rows.shape[1], dtype=np.uint64)
        for c, i in zip(coeffs, idx):
            term = np.asarray(rows[i], dtype=np.uint64) % qq
            acc = (acc + np.uint64(c) * term % qq) % qq
        return acc
    acc_obj = np.zeros(rows.shape[1], dtype=object)
    for c, i in zip(coeffs, idx):
        acc_obj = (acc_obj + int(c) * rows[i].astype(object)) % q
    return acc_obj


def _rows_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if getattr(a, "dtype", None) == object or \
            getattr(b, "dtype", None) == object:
        return all(int(x) == int(y) for x, y in zip(a, b))
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


class AbftChecker:
    """Stateful checker: one seeded coefficient stream + check counters.

    The coefficient stream is deterministic per seed, so a campaign with
    a fixed seed produces byte-identical reports.
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.checks = 0
        self.mismatches = 0

    def _record(self, ok: bool) -> bool:
        self.checks += 1
        if not ok:
            self.mismatches += 1
        return ok

    # -- NTT / automorphism batches ------------------------------------------

    def check_ntt_batch(self, inputs: np.ndarray, outputs: np.ndarray,
                        primes: tuple[int, ...],
                        inverse: bool = False) -> bool:
        """Verify a batched (inverse) negacyclic NTT via random
        combinations, grouping rows that share a modulus."""
        inputs = np.asarray(inputs)
        outputs = np.asarray(outputs)
        groups: dict[int, list[int]] = {}
        for i, q in enumerate(primes):
            groups.setdefault(int(q), []).append(i)
        ok = True
        for q in sorted(groups):
            idx = groups[q]
            coeffs = self._rng.integers(1, q, size=len(idx), dtype=np.uint64)
            combo_in = _combine_rows(inputs, idx, coeffs, q)
            combo_out = _combine_rows(outputs, idx, coeffs, q)
            golden = NegacyclicNtt(inputs.shape[1], q)
            ref = golden.inverse(combo_in) if inverse \
                else golden.forward(combo_in)
            ok = ok and _rows_equal(ref, combo_out)
        return self._record(ok)

    def check_automorphism_batch(self, inputs: np.ndarray,
                                 outputs: np.ndarray,
                                 galois_k: int) -> bool:
        """Verify a batched Galois action by exact permutation replay
        (the permutation is prime-independent and cached)."""
        inputs = np.asarray(inputs)
        perm = galois_eval_permutation(inputs.shape[1], galois_k)
        expected = np.empty_like(inputs)
        expected[:, perm.destinations()] = inputs
        return self._record(bool(np.array_equal(expected,
                                                np.asarray(outputs))))

    def check_cyclic_ntt_row(self, x_row: np.ndarray, y_row: np.ndarray,
                             q: int) -> bool:
        """Verify one plain cyclic NTT row (natural order) as produced
        by the multi-VPU pool's ``compile_ntt`` programs."""
        from repro.ntt.cooley_tukey import vec_ntt_dif
        from repro.ntt.tables import get_tables

        qq = np.uint64(q)
        c = np.uint64(int(self._rng.integers(1, q)))
        t = get_tables(len(x_row), q)
        combo_in = np.asarray(x_row, dtype=np.uint64) % qq * c % qq
        ref = np.empty_like(combo_in)
        ref[t.bitrev] = vec_ntt_dif(combo_in, t)
        combo_out = np.asarray(y_row, dtype=np.uint64) % qq * c % qq
        return self._record(bool(np.array_equal(ref, combo_out)))

    # -- keyswitch spare-modulus check ----------------------------------------

    def check_keyswitch_accumulation(self, acc_raw: np.ndarray,
                                     digit_stack: np.ndarray,
                                     key_stack: np.ndarray) -> bool:
        """Spare-modulus verification of one lazy keyswitch accumulator.

        ``acc_raw`` is the **unreduced** ``(L, n)`` uint64 accumulator
        ``sum_i digit_i * key_i``; ``digit_stack``/``key_stack`` are the
        ``(D, L, n)`` reduced operands it was accumulated from.
        """
        qs = np.uint64(SPARE_MODULUS)
        spare = (digit_stack % qs) * (key_stack % qs) % qs
        expected = spare.sum(axis=0, dtype=np.uint64) % qs
        return self._record(bool(np.array_equal(acc_raw % qs, expected)))
