"""Structured results of a fault-injection campaign.

Outcome classes per injection:

* ``masked`` — the fault never changed live state, or its effect was
  absorbed (output bit-identical to golden, nothing detected).
* ``corrected`` — the integrity layer detected the corruption and the
  final output still matches golden (bounded replay / degradation won).
* ``detected`` — detected, but the surfaced output is still wrong
  (retries exhausted under a persistent fault, or policy is
  detect-only).
* ``silent`` — output differs from golden and **nothing** detected it:
  the outcome campaigns exist to drive to zero.
* ``crash`` — the model raised (e.g. a mux-select fault broke the
  routing bijection).

Serialization is deliberately deterministic — sorted keys, stable event
order — so equal seeds produce byte-identical JSON (the seeded-
determinism audit depends on it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.fault.injector import FaultSpec

OUTCOMES = ("masked", "corrected", "detected", "silent", "crash")


@dataclass(frozen=True)
class FaultEvent:
    """One injection experiment and its classified outcome."""

    index: int
    spec: FaultSpec
    outcome: str
    fired: bool
    detection_latency: int | None
    retries: int
    degrade_level: int

    def to_dict(self) -> dict:
        out = {"index": self.index, "outcome": self.outcome,
               "fired": self.fired,
               "detection_latency": self.detection_latency,
               "retries": self.retries, "degrade_level": self.degrade_level}
        out.update(self.spec.to_dict())
        return out


@dataclass
class FaultReport:
    """The full campaign record (counters + per-event detail)."""

    workload: str
    policy: str
    seed: int
    n: int
    m: int
    q: int
    sites: tuple[str, ...]
    events: list[FaultEvent] = field(default_factory=list)

    @property
    def injections(self) -> int:
        return len(self.events)

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.outcome] = counts.get(event.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def per_site(self) -> dict[str, dict[str, int]]:
        """Outcome counts per fault-site class (coverage table)."""
        table: dict[str, dict[str, int]] = {}
        for event in self.events:
            row = table.setdefault(event.spec.site, {})
            row[event.outcome] = row.get(event.outcome, 0) + 1
        return {site: dict(sorted(row.items()))
                for site, row in sorted(table.items())}

    @property
    def detection_rate_live(self) -> float:
        """Detected fraction of injections that reached live output:
        ``(corrected + detected) / (corrected + detected + silent)``.
        Masked and crashed injections are excluded — there is nothing
        for a checksum to catch."""
        counts = self.outcome_counts()
        detected = counts.get("corrected", 0) + counts.get("detected", 0)
        live = detected + counts.get("silent", 0)
        return 1.0 if live == 0 else detected / live

    def to_dict(self) -> dict:
        from repro.obs.export import host_envelope

        latencies = sorted(event.detection_latency for event in self.events
                           if event.detection_latency is not None)
        out = host_envelope("faults")
        out.update({
            "workload": self.workload,
            "policy": self.policy,
            "seed": self.seed,
            "n": self.n,
            "m": self.m,
            "q": self.q,
            "sites": list(self.sites),
            "injections": self.injections,
            "outcomes": self.outcome_counts(),
            "per_site": self.per_site(),
            "detection_rate_live": round(self.detection_rate_live, 4),
            "detection_latency_cycles": {
                "count": len(latencies),
                "mean": (round(sum(latencies) / len(latencies), 3)
                         if latencies else None),
                "max": latencies[-1] if latencies else None,
            },
            "retries": sum(event.retries for event in self.events),
            "degradations": sum(1 for event in self.events
                                if event.degrade_level > 0),
            "events": [event.to_dict() for event in self.events],
        })
        return out

    def to_json(self) -> str:
        """Deterministic JSON: byte-identical for equal campaign seeds."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
