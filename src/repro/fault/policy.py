"""The integrity-policy ladder of the runtime ABFT layer.

A policy decides what happens when an integrity check fails:

* ``OFF`` — no checks at all.  The hot paths must be bit-identical to a
  build without the integrity layer (enforced by tests and the FHC005
  lint: dormant hooks are guard-checked no-ops).
* ``DETECT`` — run the checks, count detections, but keep the (possibly
  corrupted) result.  The caller reads the counters.
* ``DETECT_RETRY`` — bounded replay: re-run the failed kernel up to
  ``max_retries`` times (recompiling the cached program first, since the
  program itself may be the poisoned artifact).
* ``DETECT_DEGRADE`` — everything ``DETECT_RETRY`` does, then quarantine
  the offending compiled program and walk down the degradation ladder:
  inner backend -> clamped numpy batched path -> golden per-row path.
"""

from __future__ import annotations

import enum


class IntegrityPolicy(enum.Enum):
    """Response of the integrity layer to a failed runtime check."""

    OFF = "off"
    DETECT = "detect"
    DETECT_RETRY = "detect-retry"
    DETECT_DEGRADE = "detect-degrade"

    @classmethod
    def parse(cls, text: "str | IntegrityPolicy") -> "IntegrityPolicy":
        """Accept enum values plus the CLI short forms ``retry``/``degrade``."""
        if isinstance(text, cls):
            return text
        key = str(text).strip().lower()
        aliases = {
            "retry": cls.DETECT_RETRY,
            "detect+retry": cls.DETECT_RETRY,
            "degrade": cls.DETECT_DEGRADE,
            "detect+degrade": cls.DETECT_DEGRADE,
        }
        if key in aliases:
            return aliases[key]
        try:
            return cls(key)
        except ValueError:
            choices = [p.value for p in cls] + ["retry", "degrade"]
            raise ValueError(
                f"unknown integrity policy {text!r}; expected one of {choices}"
            ) from None

    def __str__(self) -> str:
        return self.value
