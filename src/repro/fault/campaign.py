"""Deterministic fault-injection campaigns over the behavioral model.

A campaign sweeps fault **site x kind x cycle x bit** with a seeded RNG:
every injection builds a fresh workload backend, installs a one-fault
:class:`~repro.fault.injector.FaultInjector`, runs the workload under
the configured :class:`~repro.fault.policy.IntegrityPolicy`, and
classifies the outcome against a pre-computed golden result
(``masked`` / ``corrected`` / ``detected`` / ``silent`` / ``crash`` —
see :mod:`repro.fault.report`).

Workloads:

* ``vpu-ntt`` — an ``(L, n)`` negacyclic NTT batch executed on the
  behavioral VPU behind :class:`~repro.fhe.backend.IntegrityBackend`,
  with DRAM staging attached.  Covers the register-file, mux-network,
  lane-ALU, scratchpad and DRAM sites.
* ``keyswitch`` — a full digit-decomposition keyswitch on the toy CKKS
  ring, covering the spare-modulus (``keyswitch``) site.

Everything is seeded: equal configs produce byte-identical report JSON
(:func:`audit_determinism` asserts exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.accel.dram import DramModel
from repro.fault.injector import (
    CORE_SITES,
    KINDS,
    FaultInjector,
    FaultSpec,
    SITE_ALU,
    SITE_DRAM,
    SITE_KEYSWITCH,
    SITE_NETWORK,
    SITE_REGFILE,
    SITE_SRAM,
    install_fault_hook,
)
from repro.fault.policy import IntegrityPolicy
from repro.fault.report import FaultEvent, FaultReport
from repro.fhe.backend import (
    IntegrityBackend,
    NumpyBackend,
    VpuBackend,
    use_backend,
)
from repro.ntt.negacyclic import NegacyclicNtt


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign, fully determined (the seed covers spec generation,
    workload data, and the ABFT coefficient streams)."""

    workload: str = "vpu-ntt"
    policy: IntegrityPolicy = IntegrityPolicy.DETECT_RETRY
    seed: int = 2025
    injections: int = 200
    n: int = 64
    m: int = 16
    limbs: int = 3
    prime_bits: int = 28
    sites: tuple[str, ...] = CORE_SITES
    max_retries: int = 2
    quarantine_threshold: int = 2


def smoke_config(**overrides) -> CampaignConfig:
    """The CI smoke campaign: small ring, ~200 injections, core sites."""
    return replace(CampaignConfig(), **overrides)


def deep_config(**overrides) -> CampaignConfig:
    """A wider sweep: more injections and the DRAM staging site."""
    base = CampaignConfig(injections=600, sites=CORE_SITES + (SITE_DRAM,))
    return replace(base, **overrides)


def keyswitch_config(**overrides) -> CampaignConfig:
    """Spare-modulus channel campaign on the toy CKKS keyswitch."""
    base = CampaignConfig(workload="keyswitch", injections=48, n=256,
                          sites=(SITE_KEYSWITCH,))
    return replace(base, **overrides)


# -- workloads ---------------------------------------------------------------


class _VpuNttWorkload:
    """An (L, n) negacyclic NTT batch on the VPU behind the integrity
    layer, inputs staged through the DRAM model."""

    sites = CORE_SITES + (SITE_DRAM,)

    def __init__(self, config: CampaignConfig, rng: np.random.Generator):
        from repro.arith.primes import find_ntt_primes

        self.config = config
        self.primes = tuple(find_ntt_primes(2 * config.n, config.prime_bits,
                                            config.limbs))
        self.q = self.primes[0]
        self.rows = np.stack([
            rng.integers(0, q, size=config.n, dtype=np.uint64)
            for q in self.primes
        ])
        self.golden = np.stack([
            NegacyclicNtt(config.n, q).forward(self.rows[i])
            for i, q in enumerate(self.primes)
        ])

    def make_backend(self) -> IntegrityBackend:
        c = self.config
        return IntegrityBackend(
            VpuBackend(c.m), c.policy, seed=c.seed,
            max_retries=c.max_retries,
            quarantine_threshold=c.quarantine_threshold, dram=DramModel())

    def attach(self, backend: IntegrityBackend,
               injector: FaultInjector | None) -> None:
        backend.inner.vpu.install_fault_hook(injector)

    def run(self, backend: IntegrityBackend) -> np.ndarray:
        return backend.forward_ntt_batch(self.rows, self.primes)

    def matches_golden(self, out) -> bool:
        return bool(np.array_equal(np.asarray(out, dtype=np.uint64),
                                   self.golden))


class _KeyswitchWorkload:
    """A full toy-ring keyswitch; the spare-modulus channel guards the
    lazy accumulators (site ``keyswitch``)."""

    sites = (SITE_KEYSWITCH,)

    def __init__(self, config: CampaignConfig, rng: np.random.Generator):
        from repro.fhe.keyswitch import apply_keyswitch, generate_keyswitch_key
        from repro.fhe.params import toy_params
        from repro.fhe.sampling import sample_uniform_poly

        self.config = config
        self.params = toy_params()
        self.q = self.params.primes[0]
        full = self.params.primes + (self.params.special_prime,)
        s_from = sample_uniform_poly(self.params.n, full, rng)
        s_to = sample_uniform_poly(self.params.n, full, rng)
        self.ksk = generate_keyswitch_key(self.params, s_from, s_to, rng)
        self.x = sample_uniform_poly(self.params.n, self.params.primes, rng)
        #: Flat size of one lazy accumulator: (levels + 1) limb rows.
        self.keyswitch_words = (self.params.levels + 1) * self.params.n
        self._apply = apply_keyswitch
        with use_backend(NumpyBackend()):
            g0, g1 = apply_keyswitch(self.x, self.ksk, self.params)
        self.golden = (g0.residues.copy(), g1.residues.copy())

    def make_backend(self) -> IntegrityBackend:
        c = self.config
        return IntegrityBackend(
            NumpyBackend(), c.policy, seed=c.seed,
            max_retries=c.max_retries,
            quarantine_threshold=c.quarantine_threshold)

    def attach(self, backend: IntegrityBackend,
               injector: FaultInjector | None) -> None:
        pass  # the global hook reaches every buffer site

    def run(self, backend: IntegrityBackend):
        with use_backend(backend):
            return self._apply(self.x, self.ksk, self.params)

    def matches_golden(self, out) -> bool:
        p0, p1 = out
        return (bool(np.array_equal(p0.residues, self.golden[0]))
                and bool(np.array_equal(p1.residues, self.golden[1])))


_WORKLOADS = {"vpu-ntt": _VpuNttWorkload, "keyswitch": _KeyswitchWorkload}


# -- spec generation ---------------------------------------------------------


def _probe(workload, config: CampaignConfig) -> dict:
    """Clean instrumented run: fault-clock length and per-site buffer op
    counts, plus a golden-match sanity check."""
    backend = workload.make_backend()
    injector = FaultInjector(())
    workload.attach(backend, injector)
    previous = install_fault_hook(injector)
    try:
        out = workload.run(backend)
    finally:
        install_fault_hook(previous)
        workload.attach(backend, None)
    if not workload.matches_golden(out):
        raise RuntimeError("clean probe run diverged from golden")
    return {
        "cycles": injector.cycles,
        "buffer_ops": dict(injector._buffer_ops),
        "regfile_entries": 2 * config.m + 2,
        "sram_rows": 2 * max(config.n // config.m, 2),
        "keyswitch_words": getattr(workload, "keyswitch_words", config.n),
    }


def _random_spec(site: str, kind: str, rng: np.random.Generator,
                 config: CampaignConfig, probe: dict) -> FaultSpec:
    cycle = int(rng.integers(0, max(probe["cycles"], 1)))
    bit = int(rng.integers(0, 64))
    lane = int(rng.integers(0, config.m))
    if site == SITE_REGFILE:
        return FaultSpec(site, kind, cycle, bit,
                         word=int(rng.integers(0, probe["regfile_entries"])),
                         lane=lane)
    if site == SITE_SRAM:
        return FaultSpec(site, kind, cycle, bit,
                         word=int(rng.integers(0, probe["sram_rows"])),
                         lane=lane)
    if site == SITE_ALU:
        return FaultSpec(site, kind, cycle, bit, lane=lane)
    if site == SITE_NETWORK:
        stages = config.m.bit_length() - 1
        if int(rng.integers(0, 4)) == 0:
            # A raw mux select line inside one shift stage.
            return FaultSpec(site, kind, cycle, 0,
                             word=1 + int(rng.integers(0, stages)), lane=lane)
        # The flat control word: CG lines + shift group bits.
        return FaultSpec(site, kind, cycle,
                         int(rng.integers(0, config.m + 1)))
    # Buffer sites: cycle counts staging ops, lane is a flat word index.
    ops = probe["buffer_ops"].get(site, 1)
    cycle = int(rng.integers(0, max(ops, 1)))
    if site == SITE_DRAM:
        words = config.limbs * config.n
    else:
        words = probe.get("keyswitch_words", config.n)
    return FaultSpec(site, kind, cycle, bit,
                     lane=int(rng.integers(0, max(words, 1))))


# -- the campaign loop -------------------------------------------------------


def _run_one(workload, index: int, spec: FaultSpec) -> FaultEvent:
    backend = workload.make_backend()
    injector = FaultInjector([spec])
    workload.attach(backend, injector)
    previous = install_fault_hook(injector)
    crashed = False
    out = None
    try:
        out = workload.run(backend)
    except Exception:
        crashed = True
    finally:
        install_fault_hook(previous)
        workload.attach(backend, None)
    fired = bool(injector.fired)
    latency = (injector.detection_latencies[0]
               if injector.detection_latencies else None)
    if crashed:
        outcome = "crash"
    else:
        matches = workload.matches_golden(out)
        if backend.detections:
            outcome = "corrected" if matches else "detected"
        else:
            outcome = "masked" if matches else "silent"
    return FaultEvent(index, spec, outcome, fired, latency,
                      backend.retries, backend.degrade_level)


def run_campaign(config: CampaignConfig) -> FaultReport:
    """Run one full campaign and return its structured report."""
    workload_cls = _WORKLOADS.get(config.workload)
    if workload_cls is None:
        raise ValueError(f"unknown workload {config.workload!r} "
                         f"(have {sorted(_WORKLOADS)})")
    unsupported = [s for s in config.sites if s not in workload_cls.sites]
    if unsupported:
        raise ValueError(f"workload {config.workload!r} does not expose "
                         f"sites {unsupported}")
    if not config.sites:
        raise ValueError("campaign needs at least one fault site")
    rng = np.random.default_rng(config.seed)
    workload = workload_cls(config, rng)
    probe = _probe(workload, config)
    report = FaultReport(workload=config.workload, policy=str(config.policy),
                         seed=config.seed, n=config.n, m=config.m,
                         q=workload.q, sites=tuple(config.sites))
    for k in range(config.injections):
        # Round-robin site and kind so every class is covered even in
        # short campaigns; cycle/bit/word/lane are drawn from the RNG.
        site = config.sites[k % len(config.sites)]
        kind = KINDS[(k // len(config.sites)) % len(KINDS)]
        spec = _random_spec(site, kind, rng, config, probe)
        report.events.append(_run_one(workload, k, spec))
    return report


def audit_determinism(config: CampaignConfig) -> bool:
    """Satellite check: the same seed must produce **byte-identical**
    report JSON across two independent campaign runs."""
    first = run_campaign(config).to_json()
    second = run_campaign(config).to_json()
    return first == second
