"""Fault injection and runtime integrity (ABFT) for the behavioral model.

* :mod:`repro.fault.injector` — deterministic fault specs and the
  injection engine (register file, mux network, lane ALUs, SRAM/DRAM
  words, keyswitch accumulators).
* :mod:`repro.fault.integrity` — O(n) ABFT checks: random-combination
  NTT checksums, exact automorphism replay, spare-modulus keyswitch
  verification.
* :mod:`repro.fault.policy` — the runtime response ladder (off /
  detect / detect+retry / detect+degrade).
* :mod:`repro.fault.report` — structured campaign results.
* :mod:`repro.fault.campaign` / :mod:`repro.fault.cli` — seeded
  site x kind x cycle x bit sweeps (``python -m repro.fault``); import
  them directly, they are kept out of this namespace so the FHE backend
  can import the leaf modules without a cycle.
"""

from repro.fault.injector import (
    ALL_SITES,
    BUFFER_SITES,
    CORE_SITES,
    KINDS,
    FaultInjector,
    FaultSpec,
    current_fault_hook,
    install_fault_hook,
    use_fault_hook,
)
from repro.fault.integrity import SPARE_MODULUS, AbftChecker
from repro.fault.policy import IntegrityPolicy
from repro.fault.report import OUTCOMES, FaultEvent, FaultReport

__all__ = [
    "ALL_SITES",
    "BUFFER_SITES",
    "CORE_SITES",
    "KINDS",
    "OUTCOMES",
    "SPARE_MODULUS",
    "AbftChecker",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "IntegrityPolicy",
    "current_fault_hook",
    "install_fault_hook",
    "use_fault_hook",
]
