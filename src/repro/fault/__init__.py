"""Fault injection and runtime integrity (ABFT) for the behavioral model.

* :mod:`repro.fault.injector` — deterministic fault specs and the
  injection engine (register file, mux network, lane ALUs, SRAM/DRAM
  words, keyswitch accumulators).
* :mod:`repro.fault.integrity` — O(n) ABFT checks: random-combination
  NTT checksums, exact automorphism replay, spare-modulus keyswitch
  verification.
* :mod:`repro.fault.crash` — process-level crash sites (seeded SIGKILL
  at op boundaries and mid-WAL-record torn writes) for the
  durable-execution kill campaign (:mod:`repro.recover`).
* :mod:`repro.fault.policy` — the runtime response ladder (off /
  detect / detect+retry / detect+degrade).
* :mod:`repro.fault.report` — structured campaign results.
* :mod:`repro.fault.campaign` / :mod:`repro.fault.cli` — seeded
  site x kind x cycle x bit sweeps (``python -m repro.fault``); import
  them directly, they are kept out of this namespace so the FHE backend
  can import the leaf modules without a cycle.
"""

from repro.fault.crash import (
    PROCESS_SITES,
    SITE_OP_BOUNDARY,
    SITE_WAL_MID_RECORD,
    CrashInjector,
    CrashSpec,
    crash_point,
    current_crash_hook,
    install_crash_hook,
    pending_tear,
)
from repro.fault.injector import (
    ALL_SITES,
    BUFFER_SITES,
    CORE_SITES,
    KINDS,
    FaultInjector,
    FaultSpec,
    current_fault_hook,
    install_fault_hook,
    use_fault_hook,
)
from repro.fault.integrity import SPARE_MODULUS, AbftChecker
from repro.fault.policy import IntegrityPolicy
from repro.fault.report import OUTCOMES, FaultEvent, FaultReport

__all__ = [
    "ALL_SITES",
    "BUFFER_SITES",
    "CORE_SITES",
    "KINDS",
    "OUTCOMES",
    "PROCESS_SITES",
    "SITE_OP_BOUNDARY",
    "SITE_WAL_MID_RECORD",
    "SPARE_MODULUS",
    "AbftChecker",
    "CrashInjector",
    "CrashSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "IntegrityPolicy",
    "crash_point",
    "current_crash_hook",
    "current_fault_hook",
    "install_crash_hook",
    "install_fault_hook",
    "pending_tear",
    "use_fault_hook",
]
