"""Entry point for ``python -m repro.fault``."""

from repro.fault.cli import main

raise SystemExit(main())
