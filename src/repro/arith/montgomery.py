"""Montgomery modular multiplier, used as a design-space comparison point.

The paper (§III-A) picks Barrett reduction for the lanes because FHE
keyswitch performs base conversion between RNS moduli: residues produced
under one modulus are immediately consumed under another, so a Montgomery
representation would need explicit conversions at every hand-off.  We model
Montgomery anyway so the ablation benchmark can quantify the conversion
overhead that motivates that choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arith.modular import mod_inverse


@dataclass
class MontgomeryReducer:
    """Montgomery multiplier for an odd modulus ``q``.

    Values are handled in Montgomery form ``a_mont = a * R mod q`` with
    ``R = 2**width``.
    """

    q: int
    width: int = field(init=False)
    r: int = field(init=False)
    r_mask: int = field(init=False)
    q_inv_neg: int = field(init=False)
    r_squared: int = field(init=False)

    def __post_init__(self) -> None:
        if self.q <= 2 or self.q % 2 == 0:
            raise ValueError(f"Montgomery requires an odd modulus > 2, got {self.q}")
        self.width = self.q.bit_length()
        self.r = 1 << self.width
        self.r_mask = self.r - 1
        self.q_inv_neg = (-mod_inverse(self.q, self.r)) % self.r
        self.r_squared = (self.r * self.r) % self.q

    def to_mont(self, a: int) -> int:
        """Convert ``a`` into Montgomery form (one REDC with R^2)."""
        return self.redc((a % self.q) * self.r_squared)

    def from_mont(self, a_mont: int) -> int:
        """Convert a Montgomery-form value back to a plain residue."""
        return self.redc(a_mont)

    def redc(self, z: int) -> int:
        """Montgomery reduction: return ``z * R^{-1} mod q`` for ``z < q*R``."""
        if z < 0 or z >= self.q * self.r:
            raise ValueError(f"REDC input out of range [0, q*R): {z}")
        m = ((z & self.r_mask) * self.q_inv_neg) & self.r_mask
        t = (z + m * self.q) >> self.width
        return t - self.q if t >= self.q else t

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Multiply two Montgomery-form values, result in Montgomery form."""
        return self.redc(a_mont * b_mont)

    def mul_plain(self, a: int, b: int) -> int:
        """Multiply two plain residues (converting in and out).

        This is the expensive pattern base conversion would force: three
        REDC operations per useful multiply instead of one.
        """
        return self.from_mont(self.mul(self.to_mont(a), self.to_mont(b)))
