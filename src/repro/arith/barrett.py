"""Bit-accurate model of the Barrett-reduction modular multiplier.

Each VPU lane contains one modular multiplier built around Barrett
reduction (paper §III-A).  The paper chooses Barrett over Montgomery
because keyswitch base conversion mixes residues across moduli, which a
Montgomery representation would force in and out of Montgomery form.

This module models the datapath at the word level so that hardware cost
accounting (:mod:`repro.hwmodel.components`) can point at concrete
multiplier/adder widths, and so the functional unit tests can confirm the
reduction never needs more than the documented correction steps.

The classic Barrett scheme for a ``w``-bit modulus ``q``:

* precompute ``mu = floor(2**(2w) / q)`` (a ``w+1``-bit constant);
* for a product ``z = a*b < q**2``:
  ``t = z - floor((z >> (w - 1)) * mu >> (w + 1)) * q``;
* then ``t < 3q`` (classic Barrett quotient error <= 2) and at most two
  conditional subtractions finish the reduction.

We track the maximum number of correction subtractions actually used so
tests can assert the classic two-correction bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BarrettReducer:
    """A Barrett modular multiplier for a fixed modulus.

    Parameters
    ----------
    q:
        The modulus.  Must satisfy ``2 < q < 2**62`` so that the modelled
        128-bit internal product path suffices.

    Attributes
    ----------
    width:
        Bit width ``w`` of the modulus (``2**(w-1) <= q < 2**w``).
    mu:
        Precomputed reciprocal ``floor(2**(2w) / q)``.
    max_corrections_seen:
        Largest number of conditional subtractions any reduction needed;
        classic Barrett guarantees this stays <= 2 for the chosen shifts.
    """

    q: int
    width: int = field(init=False)
    mu: int = field(init=False)
    max_corrections_seen: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 2 < self.q < (1 << 62):
            raise ValueError(f"modulus out of supported range: {self.q}")
        self.width = self.q.bit_length()
        self.mu = (1 << (2 * self.width)) // self.q

    # -- scalar datapath ---------------------------------------------------

    def reduce(self, z: int) -> int:
        """Reduce ``z`` (``0 <= z < q**2``) modulo ``q``.

        Mirrors the hardware datapath: one ``(w+1) x (w+1)`` multiply by
        ``mu``, one ``w x w`` multiply by ``q``, one subtraction, and at
        most two correction subtractions.
        """
        if z < 0 or z >= self.q * self.q:
            raise ValueError(f"Barrett input out of range [0, q^2): {z}")
        w = self.width
        q_hat = ((z >> (w - 1)) * self.mu) >> (w + 1)
        t = z - q_hat * self.q
        corrections = 0
        while t >= self.q:
            t -= self.q
            corrections += 1
        if corrections > self.max_corrections_seen:
            self.max_corrections_seen = corrections
        return t

    def mul(self, a: int, b: int) -> int:
        """Return ``a * b mod q`` through the Barrett datapath."""
        a %= self.q
        b %= self.q
        return self.reduce(a * b)

    def add(self, a: int, b: int) -> int:
        """Return ``a + b mod q`` (the lane's modular adder)."""
        t = (a % self.q) + (b % self.q)
        return t - self.q if t >= self.q else t

    def sub(self, a: int, b: int) -> int:
        """Return ``a - b mod q`` (the lane's modular subtractor)."""
        t = (a % self.q) - (b % self.q)
        return t + self.q if t < 0 else t

    # -- vectorized datapath -----------------------------------------------

    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized ``a * b mod q`` (requires ``q < 2**31``).

        Implements the same shift/multiply structure as :meth:`reduce`
        using uint64 intermediates; used by the numpy fast paths while
        remaining faithful to the hardware algorithm.
        """
        if self.q >= (1 << 31):
            raise ValueError("vectorized Barrett requires q < 2**31")
        w = np.uint64(self.width)
        qq = np.uint64(self.q)
        mu = np.uint64(self.mu)
        z = np.asarray(a, dtype=np.uint64) * np.asarray(b, dtype=np.uint64)
        q_hat = ((z >> (w - np.uint64(1))) * mu) >> (w + np.uint64(1))
        t = z - q_hat * qq
        t = np.where(t >= qq, t - qq, t)
        t = np.where(t >= qq, t - qq, t)
        return t

    def mul_count_ops(self, a: int, b: int) -> tuple[int, dict[str, int]]:
        """Return ``a*b mod q`` plus the operation tally of the datapath.

        The tally feeds the power model: each Barrett multiply costs two
        wide multiplies (by ``mu`` and by ``q``) on top of the operand
        product, one subtraction and up to one correction.
        """
        before = self.max_corrections_seen
        result = self.mul(a, b)
        corrections = self.max_corrections_seen if self.max_corrections_seen > before else 0
        ops = {
            "wide_multiplies": 3,  # a*b, (z>>..)*mu, q_hat*q
            "subtractions": 1 + corrections,  # corrections <= 2
        }
        return result, ops
