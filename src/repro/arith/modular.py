"""Plain modular arithmetic helpers.

These are the golden-model operations: simple, obviously-correct Python
integer arithmetic.  The hardware-shaped implementations in
:mod:`repro.arith.barrett` and :mod:`repro.arith.montgomery` are tested
against these.

All functions accept Python ints.  The vectorized variants
(:func:`vec_mod_mul` etc.) operate on ``numpy.uint64`` arrays and require the
modulus to be below 2**31 so that a product of two residues fits in 64 bits
without overflow; the FHE layer picks its RNS primes accordingly.
"""

from __future__ import annotations

import numpy as np

#: Largest modulus for which the vectorized uint64 paths are safe:
#: ``(q - 1)**2`` must fit in an unsigned 64-bit integer.
MAX_VECTOR_MODULUS = 1 << 31


def _check_modulus(q: int) -> None:
    if q <= 1:
        raise ValueError(f"modulus must be > 1, got {q}")


def mod_add(a: int, b: int, q: int) -> int:
    """Return ``(a + b) mod q``."""
    _check_modulus(q)
    return (a + b) % q


def mod_sub(a: int, b: int, q: int) -> int:
    """Return ``(a - b) mod q``."""
    _check_modulus(q)
    return (a - b) % q


def mod_neg(a: int, q: int) -> int:
    """Return ``(-a) mod q``."""
    _check_modulus(q)
    return (-a) % q


def mod_mul(a: int, b: int, q: int) -> int:
    """Return ``(a * b) mod q``."""
    _check_modulus(q)
    return (a * b) % q


def mod_exp(base: int, exponent: int, q: int) -> int:
    """Return ``base ** exponent mod q`` (non-negative exponent)."""
    _check_modulus(q)
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    return pow(base % q, exponent, q)


def mod_inverse(a: int, q: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``q``.

    Raises :class:`ValueError` if ``a`` is not invertible.
    """
    _check_modulus(q)
    a %= q
    g, x = _extended_gcd(a, q)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {q} (gcd = {g})")
    return x % q


def _extended_gcd(a: int, b: int) -> tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x === gcd (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
    return old_r, old_x


# ---------------------------------------------------------------------------
# Vectorized variants (uint64, modulus < 2**31)
# ---------------------------------------------------------------------------


def _check_vector_modulus(q: int) -> None:
    _check_modulus(q)
    if q >= MAX_VECTOR_MODULUS:
        raise ValueError(
            f"vectorized paths require q < 2**31 to avoid uint64 overflow, got {q}"
        )


def _as_u64(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.uint64)


def vec_mod_add(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a + b) mod q`` on uint64 arrays."""
    _check_vector_modulus(q)
    return (_as_u64(a) + _as_u64(b)) % np.uint64(q)


def vec_mod_sub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a - b) mod q`` on uint64 arrays."""
    _check_vector_modulus(q)
    qq = np.uint64(q)
    return (_as_u64(a) + (qq - _as_u64(b) % qq)) % qq


def vec_mod_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(a * b) mod q`` on uint64 arrays (q < 2**31)."""
    _check_vector_modulus(q)
    return (_as_u64(a) * _as_u64(b)) % np.uint64(q)


def vec_mod_neg(a: np.ndarray, q: int) -> np.ndarray:
    """Element-wise ``(-a) mod q`` on uint64 arrays."""
    _check_vector_modulus(q)
    qq = np.uint64(q)
    return (qq - _as_u64(a) % qq) % qq


def vec_mod_exp(a: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Element-wise ``a ** exponent mod q`` by square-and-multiply."""
    _check_vector_modulus(q)
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    base = _as_u64(a) % np.uint64(q)
    result = np.ones_like(base)
    e = exponent
    while e > 0:
        if e & 1:
            result = vec_mod_mul(result, base, q)
        base = vec_mod_mul(base, base, q)
        e >>= 1
    return result


def balanced_representation(a: np.ndarray, q: int) -> np.ndarray:
    """Map residues in ``[0, q)`` to the balanced range ``(-q/2, q/2]``.

    Returned as int64.  Used when reconstructing signed plaintext values
    from RNS residues.
    """
    _check_vector_modulus(q)
    a = _as_u64(a) % np.uint64(q)
    signed = a.astype(np.int64)
    return np.where(signed > q // 2, signed - q, signed)
