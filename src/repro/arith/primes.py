"""NTT-friendly prime search and primitive-root finding.

NTT over ``Z_q`` of length ``n`` (power of two) needs a primitive ``n``-th
root of unity, which exists iff ``n | q - 1``.  The negacyclic transform
used by the CKKS ring ``Z_q[X]/(X^n + 1)`` needs a ``2n``-th root, i.e.
``q === 1 (mod 2n)``.  This module finds such primes deterministically
(Miller–Rabin with the proven deterministic witness set for q < 3.3e24)
and locates generators / roots of unity.
"""

from __future__ import annotations

from functools import lru_cache

# Deterministic Miller-Rabin witnesses: correct for all n < 3,317,044,064,
# 679,887,385,961,981 (> 2**64), per Sorenson & Webster.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic primality test, valid for all ``n < 2**64`` and
    probabilistically overwhelming beyond."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _factorize(n: int) -> dict[int, int]:
    """Trial-division factorization (adequate for q-1 of NTT primes,
    which is ``2**k * small``)."""
    factors: dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def find_primitive_root(q: int) -> int:
    """Return a generator of the multiplicative group of ``Z_q`` (q prime)."""
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    if q == 2:
        return 1
    group_order = q - 1
    prime_factors = list(_factorize(group_order))
    for candidate in range(2, q):
        if all(pow(candidate, group_order // p, q) != 1 for p in prime_factors):
            return candidate
    raise ArithmeticError(f"no primitive root found for {q}")  # pragma: no cover


def nth_root_of_unity(n: int, q: int) -> int:
    """Return a primitive ``n``-th root of unity modulo prime ``q``.

    Requires ``n | q - 1``.
    """
    if (q - 1) % n != 0:
        raise ValueError(f"no order-{n} subgroup: {n} does not divide {q}-1")
    g = find_primitive_root(q)
    root = pow(g, (q - 1) // n, q)
    # Sanity: root has exact order n.
    if pow(root, n, q) != 1:
        raise ArithmeticError("root order check failed")  # pragma: no cover
    if n % 2 == 0 and pow(root, n // 2, q) == 1:
        raise ArithmeticError("root is not primitive")  # pragma: no cover
    return root


@lru_cache(maxsize=None)
def find_ntt_prime(order: int, bits: int, index: int = 0) -> int:
    """Find the ``index``-th prime ``q === 1 (mod order)`` just below
    ``2**bits``.

    Searching downward keeps the primes as large as possible for the given
    width, which maximizes CKKS precision per limb.
    """
    if order & (order - 1):
        raise ValueError(f"order must be a power of two, got {order}")
    if bits < order.bit_length() + 1:
        raise ValueError(f"{bits} bits too small for order {order}")
    found = 0
    candidate = ((1 << bits) - 1) // order * order + 1
    while candidate > order:
        if candidate.bit_length() == bits and is_prime(candidate):
            if found == index:
                return candidate
            found += 1
        candidate -= order
    raise ValueError(f"no {bits}-bit prime === 1 mod {order} at index {index}")


def find_ntt_primes(order: int, bits: int, count: int) -> list[int]:
    """Return ``count`` distinct primes ``=== 1 (mod order)`` of the given
    bit width (descending)."""
    return [find_ntt_prime(order, bits, i) for i in range(count)]
