"""Modular-arithmetic substrate.

This package provides the arithmetic primitives that everything above it is
built on:

* :mod:`repro.arith.modular` — plain scalar and vectorized modular
  add/sub/mul/pow/inverse helpers.
* :mod:`repro.arith.barrett` — a bit-accurate model of the Barrett-reduction
  modular multiplier used in each VPU lane (paper §III-A).
* :mod:`repro.arith.montgomery` — a Montgomery multiplier used as a
  comparison point (the paper argues Barrett suits FHE base conversion
  better).
* :mod:`repro.arith.primes` — Miller–Rabin primality testing, NTT-friendly
  prime search and primitive-root finding.
"""

from repro.arith.barrett import BarrettReducer
from repro.arith.modular import (
    mod_add,
    mod_exp,
    mod_inverse,
    mod_mul,
    mod_neg,
    mod_sub,
)
from repro.arith.montgomery import MontgomeryReducer
from repro.arith.primes import (
    find_ntt_prime,
    find_ntt_primes,
    find_primitive_root,
    is_prime,
    nth_root_of_unity,
)

__all__ = [
    "BarrettReducer",
    "MontgomeryReducer",
    "find_ntt_prime",
    "find_ntt_primes",
    "find_primitive_root",
    "is_prime",
    "mod_add",
    "mod_exp",
    "mod_inverse",
    "mod_mul",
    "mod_neg",
    "mod_sub",
    "nth_root_of_unity",
]
