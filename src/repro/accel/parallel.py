"""Functional multi-VPU execution (paper §IV: "It is easy to extend the
mapping to multiple VPUs for parallel execution").

FHE workloads carry embarrassing parallelism across RNS limbs and
ciphertext polynomials: each limb's NTT/automorphism is independent.
:class:`ParallelVpuPool` owns several behavioral VPU instances and
executes a batch of kernel instances across them, checking results stay
bit-identical to single-VPU execution and reporting the makespan the
scheduler predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import VectorProcessingUnit
from repro.core.isa import Program
from repro.mapping import (
    compile_ntt,
    pack_for_ntt,
    required_registers,
    unpack_ntt_result,
)


@dataclass
class ParallelRunReport:
    """Outcome of one batched run."""

    instances: int
    per_vpu_cycles: tuple[int, ...]

    @property
    def makespan_cycles(self) -> int:
        return max(self.per_vpu_cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.per_vpu_cycles)

    @property
    def speedup(self) -> float:
        """Parallel speedup over a single VPU running everything."""
        return self.total_cycles / self.makespan_cycles if self.makespan_cycles else 1.0


class ParallelVpuPool:
    """A pool of identical VPUs executing independent kernel instances."""

    def __init__(self, num_vpus: int, m: int, q: int, memory_rows: int = 512):
        if num_vpus < 1:
            raise ValueError("need at least one VPU")
        self.num_vpus = num_vpus
        self.m = m
        self.q = q
        self.vpus = [
            VectorProcessingUnit(m=m, q=q,
                                 regfile_entries=required_registers(m),
                                 memory_rows=memory_rows)
            for _ in range(num_vpus)
        ]

    def run_ntt_batch(self, limbs: np.ndarray, n: int) -> tuple[np.ndarray, ParallelRunReport]:
        """Transform a batch of length-``n`` vectors (one per RNS limb),
        distributing them round-robin over the pool.

        Returns the natural-order NTT results (batch-major) and the run
        report.  Every VPU runs the identical compiled program; only the
        data differs — the SIMD regularity the vector architecture
        exploits.
        """
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.ndim != 2 or limbs.shape[1] != n:
            raise ValueError(f"expected (batch, {n}) input, got {limbs.shape}")
        program: Program = compile_ntt(n, self.m, self.q)
        rows = n // self.m
        outputs = np.empty_like(limbs)
        cycles = [0] * self.num_vpus
        for idx, data in enumerate(limbs):
            vpu = self.vpus[idx % self.num_vpus]
            vpu.memory.data[:rows] = pack_for_ntt(data, self.m)
            stats = vpu.run_fresh(program)
            outputs[idx] = unpack_ntt_result(vpu.memory, n, self.m)
            cycles[idx % self.num_vpus] += stats.cycles
        return outputs, ParallelRunReport(len(limbs), tuple(cycles))
