"""Functional multi-VPU execution (paper §IV: "It is easy to extend the
mapping to multiple VPUs for parallel execution").

FHE workloads carry embarrassing parallelism across RNS limbs and
ciphertext polynomials: each limb's NTT/automorphism is independent.
:class:`ParallelVpuPool` owns several behavioral VPU instances and
executes a batch of kernel instances across them, checking results stay
bit-identical to single-VPU execution and reporting the makespan the
scheduler predicts.

The pool doubles as the integrity layer's multi-unit story: under a
non-``OFF`` :class:`~repro.fault.policy.IntegrityPolicy` every limb's
result is ABFT-verified per row, failing limbs replay on a *different*
VPU (the redundant unit), persistently failing VPUs are quarantined out
of the round-robin, and under ``DETECT_DEGRADE`` a limb whose replays
are exhausted falls back to the numpy golden transform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import VectorProcessingUnit
from repro.core.isa import Program
from repro.fault.integrity import AbftChecker
from repro.fault.policy import IntegrityPolicy
from repro.mapping import (
    compile_ntt,
    pack_for_ntt,
    required_registers,
    unpack_ntt_result,
)
from repro.obs import current_obs_hook


class PoolExhaustedError(RuntimeError):
    """Every VPU in the pool is retired — no healthy unit can accept
    work.  Raised by :meth:`ParallelVpuPool.retire` instead of letting a
    capacity-zero pool deadlock its callers; the serving layer maps it
    to a typed rejection."""


@dataclass
class ParallelRunReport:
    """Outcome of one batched run."""

    instances: int
    per_vpu_cycles: tuple[int, ...]
    detections: int = 0
    retries: int = 0
    quarantined_vpus: tuple[int, ...] = ()
    degraded: int = 0

    @property
    def makespan_cycles(self) -> int:
        return max(self.per_vpu_cycles)

    @property
    def total_cycles(self) -> int:
        return sum(self.per_vpu_cycles)

    @property
    def speedup(self) -> float:
        """Parallel speedup over a single VPU running everything."""
        return self.total_cycles / self.makespan_cycles if self.makespan_cycles else 1.0

    @property
    def utilization(self) -> float:
        """Fraction of the pool's cycle budget (``num_vpus *
        makespan``) spent doing work — ``speedup / num_vpus``.  Cycles
        burned on a later-retired VPU still count as spent work: the
        unit ran them before it was quarantined."""
        budget = self.makespan_cycles * len(self.per_vpu_cycles)
        return self.total_cycles / budget if budget else 1.0


class ParallelVpuPool:
    """A pool of identical VPUs executing independent kernel instances."""

    def __init__(self, num_vpus: int, m: int, q: int, memory_rows: int = 512,
                 policy: IntegrityPolicy | str = IntegrityPolicy.OFF,
                 integrity_seed: int = 0, max_retries: int = 2):
        if num_vpus < 1:
            raise ValueError("need at least one VPU")
        self.num_vpus = num_vpus
        self.m = m
        self.q = q
        self.policy = IntegrityPolicy.parse(policy)
        self.max_retries = max_retries
        #: VPU indices retired from scheduling after a failed replay.
        self.quarantined: set[int] = set()
        self._checker = (AbftChecker(integrity_seed)
                         if self.policy is not IntegrityPolicy.OFF else None)
        self.vpus = [
            VectorProcessingUnit(m=m, q=q,
                                 regfile_entries=required_registers(m),
                                 memory_rows=memory_rows)
            for _ in range(num_vpus)
        ]

    @property
    def healthy_units(self) -> tuple[int, ...]:
        """Indices of VPUs still in the scheduling rotation."""
        return tuple(i for i in range(self.num_vpus)
                     if i not in self.quarantined)

    def retire(self, index: int) -> None:
        """Explicitly retire one VPU from the rotation (the serving
        layer's capacity-shrink path, also used by chaos campaigns).

        Raises :class:`PoolExhaustedError` when the retirement would
        leave no healthy unit — the pool refuses to become a deadlock
        and the caller must reject or re-route instead.  Retiring an
        already-retired unit is a no-op.
        """
        if not 0 <= index < self.num_vpus:
            raise ValueError(f"VPU index {index} out of range "
                             f"[0, {self.num_vpus})")
        if index in self.quarantined:
            return
        remaining = [i for i in self.healthy_units if i != index]
        if not remaining:
            raise PoolExhaustedError(
                f"refusing to retire VPU {index}: it is the last healthy "
                f"unit of {self.num_vpus} (the pool would deadlock)")
        self.quarantined.add(index)
        obs = current_obs_hook()
        if obs is not None:
            obs.count("pool.retirements")
            obs.gauge("pool.quarantined_vpus", len(self.quarantined))
            obs.gauge("pool.healthy_vpus", len(remaining))

    def _pick_vpu(self, idx: int, attempt: int) -> int:
        """Round-robin over the healthy units; a retry (attempt > 0)
        lands on a different VPU than the failing one whenever a second
        healthy unit exists."""
        healthy = [i for i in range(self.num_vpus) if i not in self.quarantined]
        if not healthy:
            healthy = list(range(self.num_vpus))  # nothing left: best effort
        return healthy[(idx + attempt) % len(healthy)]

    def _golden_row(self, data: np.ndarray, n: int) -> np.ndarray:
        """Software fallback matching the compiled program's output
        convention (natural-order plain cyclic NTT)."""
        from repro.ntt.cooley_tukey import vec_ntt_dif
        from repro.ntt.tables import get_tables

        t = get_tables(n, self.q)
        out = np.empty(n, dtype=np.uint64)
        out[t.bitrev] = vec_ntt_dif(
            np.asarray(data, dtype=np.uint64) % np.uint64(self.q), t)
        return out

    def run_ntt_batch(self, limbs: np.ndarray, n: int) -> tuple[np.ndarray, ParallelRunReport]:
        """Transform a batch of length-``n`` vectors (one per RNS limb),
        distributing them round-robin over the pool.

        Returns the natural-order NTT results (batch-major) and the run
        report.  Every VPU runs the identical compiled program; only the
        data differs — the SIMD regularity the vector architecture
        exploits.
        """
        limbs = np.asarray(limbs, dtype=np.uint64)
        if limbs.ndim != 2 or limbs.shape[1] != n:
            raise ValueError(f"expected (batch, {n}) input, got {limbs.shape}")
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("pool.run_ntt_batch", cat="pool", instances=len(limbs),
                      n=n, num_vpus=self.num_vpus)
        program: Program = compile_ntt(n, self.m, self.q)
        rows = n // self.m
        outputs = np.empty_like(limbs)
        cycles = [0] * self.num_vpus
        detections = 0
        retries = 0
        degraded = 0
        for idx, data in enumerate(limbs):
            attempt = 0
            while True:
                which = self._pick_vpu(idx, attempt)
                vpu = self.vpus[which]
                vpu.memory.data[:rows] = pack_for_ntt(data, self.m)
                stats = vpu.run_fresh(program)
                out = unpack_ntt_result(vpu.memory, n, self.m)
                cycles[which] += stats.cycles
                if self._checker is None or self._checker.check_cyclic_ntt_row(
                        data, out, self.q):
                    outputs[idx] = out
                    break
                detections += 1
                if (self.policy is IntegrityPolicy.DETECT
                        or attempt >= self.max_retries):
                    if (self.policy is IntegrityPolicy.DETECT_DEGRADE):
                        outputs[idx] = self._golden_row(data, n)
                        degraded += 1
                    else:
                        outputs[idx] = out  # flagged, surfaced as-is
                    break
                # Replay on a spare unit; retire the failing one so the
                # round-robin stops feeding it work.
                self.quarantined.add(which)
                attempt += 1
                retries += 1
        report = ParallelRunReport(
            len(limbs), tuple(cycles), detections, retries,
            tuple(sorted(self.quarantined)), degraded)
        if obs is not None:
            # The pool's scheduling figures, scrapable per run.  The
            # invariant the regression tests pin down: total_cycles sums
            # *every* unit's cycles, retired ones included.
            obs.gauge("pool.makespan_cycles", report.makespan_cycles)
            obs.gauge("pool.total_cycles", report.total_cycles)
            obs.gauge("pool.utilization", round(report.utilization, 6))
            obs.gauge("pool.quarantined_vpus", len(self.quarantined))
            obs.count("pool.instances", report.instances)
            obs.count("pool.detections", detections)
            obs.count("pool.retries", retries)
            obs.count("pool.degraded", degraded)
            obs.end(makespan_cycles=report.makespan_cycles,
                    total_cycles=report.total_cycles)
        return outputs, report
