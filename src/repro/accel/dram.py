"""Off-chip memory model and the §II-B decomposition motivation.

The paper motivates NTT decomposition with off-chip behaviour: "when N
is large and the elements do not all fit in the local buffer, fetching
the strided input elements exhibits irregular data access patterns with
little locality, resulting in excessive expensive accesses to the
off-chip memory".  This module quantifies that claim:

* :class:`DramModel` — bandwidth/energy of an HBM-like interface with a
  fixed burst (row-fragment) granularity; strided accesses waste the
  unused portion of every burst.
* :func:`naive_ntt_traffic` — a direct large NTT touching all N elements
  per stage with power-of-two strides: once the stride exceeds the burst,
  every element fetch drags a full burst.
* :func:`decomposed_ntt_traffic` — the four-step schedule: each dimension
  streams sequential tiles that live in on-chip SRAM while processed, so
  off-chip traffic is one read + one write of the dataset per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import current_obs_hook

WORD_BYTES = 8


@dataclass(frozen=True)
class DramModel:
    """An HBM-ish off-chip interface."""

    bandwidth_gbps: float = 512.0
    burst_bytes: int = 64
    energy_pj_per_byte: float = 15.0  # ~2 orders above on-chip SRAM

    def transfer_ns(self, bytes_moved: int) -> float:
        return bytes_moved / self.bandwidth_gbps  # GB/s == bytes/ns

    def energy_nj(self, bytes_moved: int) -> float:
        return bytes_moved * self.energy_pj_per_byte / 1e3

    def transfer(self, buffer: np.ndarray,
                 fault_hook=None) -> "tuple[np.ndarray, float]":
        """Stream a uint64 buffer across the interface.

        Returns the received copy and the transfer time in ns.  With a
        fault hook the in-flight words are exposed to injection (site
        ``"dram"``) — the model of an upset on the link or in a DRAM
        row, which ECC on real HBM narrows but does not eliminate.
        """
        out = np.array(buffer, dtype=np.uint64)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("dram.transfer", cat="mem", words=out.size)
        ns = self.transfer_ns(out.size * WORD_BYTES)
        if fault_hook is not None:
            fault_hook.corrupt_buffer("dram", out)
        if obs is not None:
            obs.count("dram.bytes", out.size * WORD_BYTES)
            obs.observe_value("dram.transfer_ns", ns)
            obs.end(ns=round(ns, 3))
        return out, ns


@dataclass(frozen=True)
class TrafficReport:
    """Off-chip bytes moved by one NTT schedule."""

    label: str
    useful_bytes: int
    burst_bytes_moved: int

    @property
    def burst_efficiency(self) -> float:
        return self.useful_bytes / self.burst_bytes_moved


def naive_ntt_traffic(n: int, sram_bytes: int,
                      dram: DramModel = DramModel()) -> TrafficReport:
    """Traffic of a direct length-``n`` NTT with strided stage access.

    Stages with stride below the burst granularity ride within bursts
    (sequential-ish); once the dataset exceeds SRAM, each strided element
    of the remaining stages costs a whole burst in and out.
    """
    if n & (n - 1) or n <= 0:
        raise ValueError(f"n must be a power of two, got {n}")
    data_bytes = n * WORD_BYTES
    useful = 0
    moved = 0
    if data_bytes <= sram_bytes:
        # Fits on chip: one read in, one write out.
        return TrafficReport("naive (fits on-chip)", 2 * data_bytes,
                             2 * data_bytes)
    words_per_burst = dram.burst_bytes // WORD_BYTES
    log_n = n.bit_length() - 1
    for stage in range(log_n):
        stride = n >> (stage + 1)
        useful += 2 * data_bytes  # read + write every element each stage
        if stride < words_per_burst:
            # Neighbouring butterfly operands share bursts.
            moved += 2 * data_bytes
        else:
            # Every operand pulls its own burst, twice (read + write).
            moved += 2 * n * dram.burst_bytes
    return TrafficReport("naive strided", useful, moved)


def decomposed_ntt_traffic(n: int, m: int, sram_bytes: int,
                           dram: DramModel = DramModel()) -> TrafficReport:
    """Traffic of the four-step schedule on ``m``-lane hardware.

    Each of the ``d`` dimensions streams the dataset sequentially once in
    and once out (tiles are SRAM-resident while processed); sequential
    streams use full bursts.
    """
    from repro.ntt.decomposition import choose_dimensions

    dims = choose_dimensions(n, m)
    data_bytes = n * WORD_BYTES
    tile_bytes = m * m * WORD_BYTES
    if tile_bytes > sram_bytes:
        raise ValueError(
            f"an {m}x{m} tile ({tile_bytes} B) must fit in SRAM "
            f"({sram_bytes} B)"
        )
    if data_bytes <= sram_bytes:
        return TrafficReport("decomposed (fits on-chip)", 2 * data_bytes,
                             2 * data_bytes)
    per_dim = 2 * data_bytes
    total = per_dim * len(dims)
    return TrafficReport(f"decomposed {len(dims)}-dim", total, total)


def decomposition_advantage(n: int, m: int, sram_bytes: int,
                            dram: DramModel = DramModel()) -> float:
    """Off-chip traffic ratio: naive strided over decomposed."""
    naive = naive_ntt_traffic(n, sram_bytes, dram)
    decomposed = decomposed_ntt_traffic(n, m, sram_bytes, dram)
    return naive.burst_bytes_moved / decomposed.burst_bytes_moved
