"""Ring network-on-chip between the VPUs and the scratchpad.

A deliberately simple model: unidirectional ring, one 64-bit-word flit
per link per cycle, per-hop latency and energy.  Polynomial limbs are
large sequential transfers, so bandwidth (not latency) dominates and a
ring is the common choice in FHE accelerators of this scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport


@dataclass
class RingNoc:
    """A unidirectional word-wide ring with ``nodes`` stops."""

    nodes: int
    link_words: int = 8
    hop_latency: int = 1
    total_flits: int = field(default=0, init=False)
    total_hops: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ValueError(f"a ring needs >= 2 nodes, got {self.nodes}")
        if self.link_words <= 0:
            raise ValueError("link_words must be positive")

    def hops(self, src: int, dst: int) -> int:
        """Hop count from src to dst on the unidirectional ring."""
        self._check_node(src)
        self._check_node(dst)
        return (dst - src) % self.nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")

    def transfer_cycles(self, src: int, dst: int, words: int) -> int:
        """Cycles to move ``words`` 64-bit words from src to dst.

        Pipelined: head latency = hops, then ``link_words`` words drain
        per cycle.
        """
        if words < 0:
            raise ValueError("words must be non-negative")
        if words == 0 or src == dst:
            return 0
        h = self.hops(src, dst)
        flits = -(-words // self.link_words)
        self.total_flits += flits
        self.total_hops += flits * h
        return h * self.hop_latency + flits - 1

    def cost(self) -> CostReport:
        """Links priced as word-wide wire+mux structures per node."""
        per_node = (self.link_words * 64 * tech.MUX2_AREA_PER_BIT * 4,
                    self.link_words * 64 * tech.MUX2_POWER_PER_BIT * 2)
        return CostReport(per_node[0] * self.nodes, per_node[1] * self.nodes,
                          f"ring NoC ({self.nodes} nodes)")
