"""Accelerator top level (paper Fig. 1a).

Multiple VPUs connected by a NoC, fed from on-chip SRAM.  The paper's
contribution lives inside the VPU; this layer reproduces the surrounding
structure so workload-level numbers (keyswitch, HMult, HRot across all
RNS limbs and both ciphertext polynomials) can be scheduled and priced.

* :mod:`repro.accel.sram` — banked on-chip SRAM with bandwidth/energy
  accounting.
* :mod:`repro.accel.noc` — a ring NoC with per-hop latency/energy.
* :mod:`repro.accel.accelerator` — the multi-VPU scheduler and the
  full-chip cost roll-up.
"""

from repro.accel.accelerator import Accelerator, ScheduleReport
from repro.accel.dram import DramModel
from repro.accel.noc import RingNoc
from repro.accel.parallel import ParallelRunReport, ParallelVpuPool
from repro.accel.sram import OnChipSram

__all__ = [
    "Accelerator",
    "DramModel",
    "OnChipSram",
    "ParallelRunReport",
    "ParallelVpuPool",
    "RingNoc",
    "ScheduleReport",
]
