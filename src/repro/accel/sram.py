"""Banked on-chip SRAM model.

The accelerator's scratchpad caches ciphertext limbs "for maximum reuse"
(paper Fig. 1a).  The model tracks capacity, per-cycle bandwidth, and
access energy; the scheduler charges it for every vector row moved in or
out of a VPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hwmodel.components import CostReport
from repro.hwmodel.sram import SramMacro
from repro.obs import current_obs_hook


@dataclass
class OnChipSram:
    """The shared scratchpad.

    Parameters
    ----------
    capacity_bytes:
        Total capacity (default 4 MiB, enough for several N=4096
        six-limb ciphertexts).
    banks:
        Independently addressable banks; aggregate bandwidth is
        ``banks * words_per_bank_per_cycle`` 64-bit words per cycle.
    words_per_bank_per_cycle:
        Port width of each bank in 64-bit words.
    """

    capacity_bytes: int = 4 << 20
    banks: int = 16
    words_per_bank_per_cycle: int = 64
    reads: int = field(default=0, init=False)
    writes: int = field(default=0, init=False)
    #: Optional fault-injection hook (guard-checked no-op when None).
    fault_hook: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.banks <= 0:
            raise ValueError("capacity and banks must be positive")

    @property
    def words_per_cycle(self) -> int:
        """Aggregate 64-bit words deliverable per cycle."""
        return self.banks * self.words_per_bank_per_cycle

    def access_cycles(self, words: int, write: bool = False) -> int:
        """Cycles to stream ``words`` 64-bit words (ideal banking)."""
        if words < 0:
            raise ValueError("words must be non-negative")
        if write:
            self.writes += words
        else:
            self.reads += words
        return -(-words // self.words_per_cycle)

    def stage(self, buffer: np.ndarray,
              write: bool = False) -> "tuple[np.ndarray, int]":
        """Stage a uint64 buffer through the scratchpad: charges the
        bandwidth model and exposes the resident words to the (optional)
        fault hook — site ``"sram"``.  Returns the staged copy and the
        access cycles."""
        out = np.array(buffer, dtype=np.uint64)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("sram.stage", cat="mem", words=out.size,
                      write=bool(write))
        cycles = self.access_cycles(out.size, write)
        hook = self.fault_hook
        if hook is not None:
            hook.corrupt_buffer("sram", out)
        if obs is not None:
            obs.count("sram.bytes", out.size * 8)
            obs.count("sram.stage_cycles", cycles)
            obs.end(cycles=cycles)
        return out, cycles

    def fits(self, words: int) -> bool:
        """Whether a working set of 64-bit words fits on chip."""
        return words * 8 <= self.capacity_bytes

    def cost(self) -> CostReport:
        """Area/power via the shared SRAM macro model (one macro/bank)."""
        per_bank_bits = (self.capacity_bytes * 8) // self.banks
        macro = SramMacro(
            bits=per_bank_bits,
            io_bits=self.words_per_bank_per_cycle * 64,
            ports=1,
            duty=0.5,
            label="scratchpad bank",
        )
        bank = macro.cost()
        return CostReport(bank.area_um2 * self.banks,
                          bank.power_mw * self.banks,
                          f"on-chip SRAM ({self.capacity_bytes >> 20} MiB)")
