"""The multi-VPU accelerator and its workload scheduler.

Homomorphic operations parallelize naturally across RNS limbs and
ciphertext polynomials (each limb of each polynomial is an independent
length-N kernel).  The scheduler distributes those kernel instances
round-robin over the VPUs, charges SRAM/NoC movement for operand
staging, and reports makespan and lane utilization using the same cycle
models that reproduce Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.noc import RingNoc
from repro.accel.sram import OnChipSram
from repro.hwmodel.components import CostReport
from repro.hwmodel.network_cost import our_network_cost
from repro.hwmodel.vpu_cost import vpu_cost
from repro.perf.cycles import automorphism_cycle_model, ntt_cycle_model


@dataclass(frozen=True)
class ScheduleReport:
    """Result of scheduling one ciphertext-level operation."""

    operation: str
    kernel_instances: int
    cycles_per_kernel: int
    vpu_cycles: tuple[int, ...]
    movement_cycles: int

    @property
    def makespan_cycles(self) -> int:
        """Compute makespan overlapped with (or bounded by) data movement."""
        return max(max(self.vpu_cycles), self.movement_cycles)

    @property
    def compute_bound(self) -> bool:
        return max(self.vpu_cycles) >= self.movement_cycles

    @property
    def vpu_load_balance(self) -> float:
        """Min/max VPU busy cycles (1.0 = perfectly balanced)."""
        peak = max(self.vpu_cycles)
        return min(self.vpu_cycles) / peak if peak else 1.0


@dataclass
class Accelerator:
    """Fig. 1a: ``num_vpus`` unified VPUs + scratchpad + ring NoC."""

    num_vpus: int = 8
    lanes: int = 64
    sram: OnChipSram = field(default_factory=OnChipSram)

    def __post_init__(self) -> None:
        if self.num_vpus < 1:
            raise ValueError("need at least one VPU")
        self.noc = RingNoc(nodes=self.num_vpus + 1)  # +1 = SRAM stop

    # -- scheduling ------------------------------------------------------------

    def _distribute(self, instances: int, cycles_each: int) -> tuple[int, ...]:
        base, extra = divmod(instances, self.num_vpus)
        return tuple(
            (base + (1 if v < extra else 0)) * cycles_each
            for v in range(self.num_vpus)
        )

    def _movement(self, instances: int, n: int, passes: int = 2) -> int:
        """SRAM + NoC cycles to stage each kernel in and out once."""
        total_words = instances * n * passes
        sram_cycles = self.sram.access_cycles(total_words // 2) + \
            self.sram.access_cycles(total_words - total_words // 2, write=True)
        per_instance = self.noc.transfer_cycles(0, 1 + (instances % self.num_vpus),
                                                n) if instances else 0
        return sram_cycles + per_instance

    def schedule_ntt(self, n: int, limbs: int, polys: int = 2) -> ScheduleReport:
        """All NTTs of one ciphertext-level op: limbs x polys instances."""
        instances = limbs * polys
        cycles = ntt_cycle_model(n, self.lanes).total_cycles
        return ScheduleReport(
            operation=f"ntt-{n}",
            kernel_instances=instances,
            cycles_per_kernel=cycles,
            vpu_cycles=self._distribute(instances, cycles),
            movement_cycles=self._movement(instances, n),
        )

    def schedule_automorphism(self, n: int, limbs: int,
                              polys: int = 2) -> ScheduleReport:
        """All automorphism kernels of one HRot: limbs x polys single-pass
        column streams."""
        instances = limbs * polys
        cycles = automorphism_cycle_model(n, self.lanes).total_cycles
        return ScheduleReport(
            operation=f"automorphism-{n}",
            kernel_instances=instances,
            cycles_per_kernel=cycles,
            vpu_cycles=self._distribute(instances, cycles),
            movement_cycles=self._movement(instances, n),
        )

    def schedule_elementwise(self, n: int, limbs: int, polys: int = 2,
                             ops: int = 1) -> ScheduleReport:
        """Element-wise passes (HAdd, twiddles, pointwise products)."""
        instances = limbs * polys
        cycles = (n // self.lanes) * ops
        return ScheduleReport(
            operation=f"elementwise-{n}",
            kernel_instances=instances,
            cycles_per_kernel=cycles,
            vpu_cycles=self._distribute(instances, cycles),
            movement_cycles=self._movement(instances, n),
        )

    def schedule_keyswitch(self, n: int, level: int) -> list[ScheduleReport]:
        """The §II-A keyswitch kernel mix at a given level.

        Digit decomposition: one inverse NTT per limb, then per digit a
        forward-NTT batch over every limb (plus special), element-wise
        multiply-accumulates against the key, and the final ModDown
        (inverse NTTs + element-wise fix-up).
        """
        limbs = level + 1
        reports = [
            self.schedule_ntt(n, limbs, polys=1),                     # to coeff
            self.schedule_ntt(n, limbs * (limbs + 1), polys=1),       # digits up
            self.schedule_elementwise(n, limbs + 1, polys=2, ops=limbs),  # MACs
            self.schedule_ntt(n, limbs + 1, polys=2),                 # ModDown iNTT
            self.schedule_elementwise(n, limbs, polys=2, ops=2),      # sub + scale
        ]
        return reports

    def schedule_hrot(self, n: int, level: int) -> list[ScheduleReport]:
        """HRot = automorphism + keyswitch (paper §II-A)."""
        return ([self.schedule_automorphism(n, level + 1)]
                + self.schedule_keyswitch(n, level))

    def schedule_hrot_hoisted(self, n: int, level: int,
                              rotations: int) -> list[ScheduleReport]:
        """``rotations`` rotations of one ciphertext with hoisting.

        The digit decomposition (the §II-A NTT batch) runs **once**; each
        rotation then costs only the automorphism passes on the digits
        plus the multiply-accumulates and its own ModDown — the
        optimization BSGS matvecs and bootstrapping rely on
        (cf. :meth:`repro.fhe.ckks.CkksContext.rotate_hoisted`).
        """
        if rotations < 1:
            raise ValueError("need at least one rotation")
        limbs = level + 1
        reports = [
            self.schedule_ntt(n, limbs, polys=1),                # to coeff, once
            self.schedule_ntt(n, limbs * (limbs + 1), polys=1),  # digits, once
        ]
        for _ in range(rotations):
            reports.extend([
                # Automorphism on c0 and on every digit (single passes).
                self.schedule_automorphism(n, limbs * (limbs + 1) + limbs,
                                           polys=1),
                self.schedule_elementwise(n, limbs + 1, polys=2, ops=limbs),
                self.schedule_ntt(n, limbs + 1, polys=2),        # ModDown
                self.schedule_elementwise(n, limbs, polys=2, ops=2),
            ])
        return reports

    def schedule_hmult(self, n: int, level: int) -> list[ScheduleReport]:
        """HMult = pointwise tensor products + keyswitch + rescale."""
        limbs = level + 1
        return ([self.schedule_elementwise(n, limbs, polys=2, ops=2)]
                + self.schedule_keyswitch(n, level)
                + [self.schedule_ntt(n, limbs, polys=2)])  # rescale iNTT/NTT

    @staticmethod
    def total_makespan(reports: list[ScheduleReport]) -> int:
        return sum(r.makespan_cycles for r in reports)

    def operation_energy_nj(self, reports: list[ScheduleReport]) -> float:
        """Energy of one scheduled operation in nanojoules.

        Busy VPU cycles burn the full per-VPU power; idle VPUs and the
        makespan tail burn only the fabric's leakage-ish floor (taken as
        15% of active power).  At 1 GHz, mW * cycles = pJ.
        """
        per_vpu_mw = vpu_cost(self.lanes, our_network_cost(self.lanes)).power_mw
        idle_fraction = 0.15
        total_pj = 0.0
        for r in reports:
            busy = sum(r.vpu_cycles)
            idle = r.makespan_cycles * self.num_vpus - busy
            total_pj += busy * per_vpu_mw + max(idle, 0) * per_vpu_mw * idle_fraction
            total_pj += r.movement_cycles * self.sram.cost().power_mw
        return total_pj / 1e3

    # -- cost roll-up -------------------------------------------------------------

    def cost(self) -> CostReport:
        """Whole-chip area/power: VPUs + scratchpad + NoC."""
        one_vpu = vpu_cost(self.lanes, our_network_cost(self.lanes))
        total = CostReport(one_vpu.area_um2 * self.num_vpus,
                           one_vpu.power_mw * self.num_vpus,
                           f"{self.num_vpus} VPUs")
        return total + self.sram.cost() + self.noc.cost()
