"""Merged-psi negacyclic NTT (Longa–Naehrig style).

The :class:`~repro.ntt.negacyclic.NegacyclicNtt` wrapper folds
``psi^j`` into the inputs with an explicit element-wise pass.  Real
implementations avoid that pass entirely by absorbing the ``psi`` powers
into the stage twiddles: the forward transform becomes Cooley–Tukey
butterflies over a bit-reversed ``psi``-power table, and the inverse a
Gentleman–Sande sweep over the inverse table — one multiply per
butterfly and no pre/post scaling.

Both functions below use the natural-in / bit-reversed-out (forward) and
bit-reversed-in / natural-out (inverse) convention of the rest of the
repository and are verified against the fold-based wrapper bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.bitrev import bit_reverse_indices
from repro.ntt.tables import NttTables


def _psi_rev_tables(tables: NttTables) -> tuple[np.ndarray, np.ndarray]:
    """``psi``/``psi^{-1}`` powers indexed in bit-reversed order."""
    bitrev = bit_reverse_indices(tables.n)
    return tables.psi_powers[bitrev], tables.psi_inv_powers[bitrev]


def merged_forward(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Forward negacyclic NTT with psi merged into the twiddles.

    Natural-order coefficients in, bit-reversed evaluation values out —
    identical output to ``NegacyclicNtt.forward_bitrev`` with one fewer
    full multiply pass.
    """
    if tables.q >= (1 << 31):
        raise ValueError("merged NTT requires q < 2**31")
    n, q = tables.n, np.uint64(tables.q)
    a = (np.asarray(x, dtype=np.uint64) % q).copy()
    if len(a) != n:
        raise ValueError(f"expected length {n}, got {len(a)}")
    psi_rev, _ = _psi_rev_tables(tables)
    blocks = 1
    t = n
    while blocks < n:
        t //= 2
        view = a.reshape(blocks, 2 * t)
        u = view[:, :t].copy()
        s = psi_rev[blocks:2 * blocks].reshape(blocks, 1)
        v = view[:, t:] * s % q
        view[:, :t] = (u + v) % q
        view[:, t:] = ((u + q) - v) % q
        blocks *= 2
    return a


def merged_inverse(values: np.ndarray, tables: NttTables) -> np.ndarray:
    """Inverse negacyclic NTT with psi^{-1} merged into the twiddles.

    Bit-reversed evaluation values in, natural-order coefficients out —
    identical to ``NegacyclicNtt.inverse_bitrev``.
    """
    if tables.q >= (1 << 31):
        raise ValueError("merged NTT requires q < 2**31")
    n, q = tables.n, np.uint64(tables.q)
    a = (np.asarray(values, dtype=np.uint64) % q).copy()
    if len(a) != n:
        raise ValueError(f"expected length {n}, got {len(a)}")
    _, psi_inv_rev = _psi_rev_tables(tables)
    blocks = n // 2
    t = 1
    while blocks >= 1:
        view = a.reshape(blocks, 2 * t)
        u = view[:, :t].copy()
        v = view[:, t:].copy()
        s = psi_inv_rev[blocks:2 * blocks].reshape(blocks, 1)
        view[:, :t] = (u + v) % q
        view[:, t:] = ((u + q) - v) % q * s % q
        blocks //= 2
        t *= 2
    return a * np.uint64(tables.n_inv) % q
