"""Stockham autosort NTT — the other hardware-friendly organization.

Pease's constant geometry (what the paper's CG stages implement) fixes
the *interconnect* across stages at the cost of bit-reversed output;
Stockham's autosort variant instead reshapes the data between two
ping-pong buffers so the output comes out in **natural order** with no
bit-reversal pass — the organization bandwidth-bound software NTTs and
some streaming FFT pipelines prefer.

Including it lets the test-suite demonstrate *why* the paper picks CG
for a lane-based VPU: Stockham's stage-varying strides would need a
different inter-lane wiring per stage (exactly what the unified network
avoids), while its autosorting property buys nothing on hardware that
chains DIF into DIT anyway (§III-A).
"""

from __future__ import annotations

import numpy as np

from repro.ntt.tables import NttTables


def stockham_forward(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Forward cyclic NTT, natural order in *and* out.

    Radix-2 DIF Stockham with ping-pong buffers: at each level the
    working array is a ``(n_cur, s)`` matrix of ``s`` interleaved
    sub-problems of length ``n_cur``; butterflies pair rows ``p`` and
    ``p + n_cur/2`` and write to rows ``(2p, 2p+1)`` of the other
    buffer, doubling the interleave ``s``.  The write-side shuffle is
    what sorts the output — no bit-reversal pass ever happens.
    """
    if tables.q >= (1 << 31):
        raise ValueError("vectorized Stockham requires q < 2**31")
    n, q = tables.n, np.uint64(tables.q)
    a = (np.asarray(x, dtype=np.uint64) % q).copy()
    if len(a) != n:
        raise ValueError(f"expected length {n}, got {len(a)}")
    n_cur, s = n, 1
    while n_cur > 1:
        m = n_cur // 2
        view = a.reshape(n_cur, s)
        u = view[:m]
        v = view[m:]
        # Sub-problem root: omega^(n / n_cur), powered by the row index.
        tw = tables.omega_powers[
            (np.arange(m) * (n // n_cur)) % n].reshape(m, 1)
        out = np.empty((m, 2, s), dtype=np.uint64)
        out[:, 0, :] = (u + v) % q
        out[:, 1, :] = ((u + q) - v) % q * tw % q
        a = out.reshape(-1)
        n_cur, s = m, 2 * s
    return a
