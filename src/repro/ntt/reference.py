"""Naive O(N²) reference transforms — the golden model.

Everything else in :mod:`repro.ntt` (and the VPU-mapped kernels) is tested
against these direct-summation implementations.
"""

from __future__ import annotations

from repro.arith.modular import mod_inverse


def naive_ntt(x: list[int] | tuple[int, ...], omega: int, q: int) -> list[int]:
    """Forward cyclic NTT: ``X[k] = sum_j x[j] * omega**(j*k) mod q``.

    ``omega`` must be a primitive ``len(x)``-th root of unity mod ``q``.
    """
    n = len(x)
    return [
        sum(int(x[j]) * pow(omega, j * k, q) for j in range(n)) % q
        for k in range(n)
    ]


def naive_intt(big_x: list[int] | tuple[int, ...], omega: int, q: int) -> list[int]:
    """Inverse cyclic NTT: ``x[j] = n^{-1} sum_k X[k] * omega**(-j*k)``."""
    n = len(big_x)
    omega_inv = mod_inverse(omega, q)
    n_inv = mod_inverse(n, q)
    return [
        n_inv * sum(int(big_x[k]) * pow(omega_inv, j * k, q) for k in range(n)) % q
        for j in range(n)
    ]


def naive_negacyclic_poly_mul(
    a: list[int] | tuple[int, ...], b: list[int] | tuple[int, ...], q: int
) -> list[int]:
    """Schoolbook multiplication in ``Z_q[X] / (X^n + 1)``.

    ``X^n = -1``, so coefficient products that wrap around pick up a sign
    flip.  Quadratic, but unimpeachable.
    """
    n = len(a)
    if len(b) != n:
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    result = [0] * n
    for i in range(n):
        ai = int(a[i]) % q
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * (int(b[j]) % q)
            if k < n:
                result[k] = (result[k] + term) % q
            else:
                result[k - n] = (result[k - n] - term) % q
    return result


def naive_cyclic_poly_mul(
    a: list[int] | tuple[int, ...], b: list[int] | tuple[int, ...], q: int
) -> list[int]:
    """Schoolbook multiplication in ``Z_q[X] / (X^n - 1)`` (cyclic)."""
    n = len(a)
    if len(b) != n:
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    result = [0] * n
    for i in range(n):
        ai = int(a[i]) % q
        if ai == 0:
            continue
        for j in range(n):
            result[(i + j) % n] = (result[(i + j) % n] + ai * (int(b[j]) % q)) % q
    return result
