"""Iterative O(N log N) NTTs: Gentleman–Sande DIF and Cooley–Tukey DIT.

Conventions (shared across the repository):

* ``ntt_dif``: natural-order input, **bit-reversed** output, forward
  transform with root ``omega``.
* ``intt_dit``: **bit-reversed** input, natural-order output, inverse
  transform (uses ``omega^{-1}`` internally and scales by ``n^{-1}``).

Chaining them needs no bit-reversal pass — the property the VPU exploits
by providing both DIT and DIF butterflies (paper §III-A).

Scalar versions operate on Python ints (any modulus width); the ``vec_*``
versions are vectorized numpy paths for ``q < 2**31``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import unclamped_dit_ok
from repro.ntt.tables import NttTables


def ntt_dif(x: list[int], tables: NttTables) -> list[int]:
    """Forward DIF NTT.  Natural-order input, bit-reversed output."""
    n, q = tables.n, tables.q
    if len(x) != n:
        raise ValueError(f"expected length {n}, got {len(x)}")
    a = [int(v) % q for v in x]
    length = n // 2
    while length >= 1:
        # Stage twiddle step: omega^(n / (2*length)).
        step = n // (2 * length)
        for start in range(0, n, 2 * length):
            for j in range(length):
                u = a[start + j]
                v = a[start + j + length]
                a[start + j] = (u + v) % q
                a[start + j + length] = (u - v) * tables.omega_power(j * step) % q
        length //= 2
    return a


def intt_dit(x: list[int], tables: NttTables) -> list[int]:
    """Inverse DIT NTT.  Bit-reversed input, natural-order output."""
    n, q = tables.n, tables.q
    if len(x) != n:
        raise ValueError(f"expected length {n}, got {len(x)}")
    a = [int(v) % q for v in x]
    length = 1
    while length < n:
        step = n // (2 * length)
        for start in range(0, n, 2 * length):
            for j in range(length):
                u = a[start + j]
                v = a[start + j + length] * tables.omega_inv_power(j * step) % q
                a[start + j] = (u + v) % q
                a[start + j + length] = (u - v) % q
        length *= 2
    n_inv = tables.n_inv
    return [v * n_inv % q for v in a]


# ---------------------------------------------------------------------------
# Vectorized numpy paths (q < 2**31)
# ---------------------------------------------------------------------------


def _check_vec(tables: NttTables) -> None:
    if tables.q >= (1 << 31):
        raise ValueError("vectorized NTT requires q < 2**31")


def vec_ntt_dif(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Vectorized forward DIF NTT (natural in, bit-reversed out).

    Accepts an array whose **last axis** has length ``n``; transforms all
    leading axes independently (batched NTT over RNS limbs).
    """
    _check_vec(tables)
    n, q = tables.n, np.uint64(tables.q)
    x = np.asarray(x, dtype=np.uint64)
    if x.shape[-1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[-1]}")
    a = (x % q).reshape(-1, n).copy()
    length = n // 2
    for tw in tables.dif_stage_twiddles:
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length]
        v = blocks[:, :, length:]
        total = u + v
        diff = (u + q) - v
        blocks[:, :, :length] = total % q
        blocks[:, :, length:] = (diff % q) * tw % q
        length //= 2
    return a.reshape(x.shape)


def vec_intt_dit(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Vectorized inverse DIT NTT (bit-reversed in, natural out)."""
    _check_vec(tables)
    n, q = tables.n, np.uint64(tables.q)
    x = np.asarray(x, dtype=np.uint64)
    if x.shape[-1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[-1]}")
    a = (x % q).reshape(-1, n).copy()
    length = 1
    for tw in tables.dit_stage_twiddles:
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length].copy()
        v = blocks[:, :, length:] * tw % q
        blocks[:, :, :length] = (u + v) % q
        blocks[:, :, length:] = ((u + q) - v) % q
        length *= 2
    a = a * np.uint64(tables.n_inv) % q
    return a.reshape(x.shape)


# ---------------------------------------------------------------------------
# Limb-batched paths: one dispatch over a stack of rows, each with its
# own prime modulus (the shape keyswitch and ring conversions produce).
#
# The stage loops use lazy reduction: uint64 `%` by a broadcast divisor
# is numpy's slowest elementwise op, so the add/sub halves of every
# butterfly keep values below 2q (DIF) or 4q (DIT) with a masked
# conditional subtract, and only the twiddle product takes a true `%`.
# Safe for any q < 2**31: the worst intermediate is (4q - 1)(q - 1),
# below 2**64.
# ---------------------------------------------------------------------------


def _stacked_stage_twiddles(tables_per_row: list[NttTables],
                            kind: str) -> list[np.ndarray]:
    """Per-stage ``(L, 1, length)`` twiddle stacks across the limb primes."""
    attr = {"dif": "dif_stage_twiddles",
            "dit": "dit_stage_twiddles",
            "dif_shoup": "dif_stage_twiddles_shoup",
            "dit_shoup": "dit_stage_twiddles_shoup"}[kind]
    return [
        np.stack([getattr(t, attr)[s] for t in tables_per_row])[:, None, :]
        for s in range(tables_per_row[0].log_n)
    ]


_SHIFT32 = np.uint64(32)


def dif_stages_lazy(a: np.ndarray, q3: np.ndarray, two_q3: np.ndarray,
                    tw_stages: list[np.ndarray],
                    shoup_stages: list[np.ndarray] | None = None) -> None:
    """In-place Gentleman–Sande stages on an ``(L, n)`` stack.

    Inputs may be lazily reduced (``< 2q`` per row — the Shoup psi fold
    feeds exactly that); outputs are ``< 2q`` — callers finish with one
    conditional subtract.  The ``< 4q`` butterfly transient then caps
    the twiddle product at ``(4q-1)(q-1)``, inside uint64 for every
    ``q < 2**31`` (machine-checked by
    :func:`repro.analysis.stage_plans.analyze_dif_lazy`).
    ``q3``/``two_q3`` are ``(L, 1, 1)`` broadcast columns.

    With ``shoup_stages`` (requires every ``q < 2**30``) the twiddle
    product uses Shoup multiplication — ``r = x*w - (x*w' >> 32)*q`` with
    ``w' = floor(w * 2**32 / q)`` — which lands in ``[0, 2q)`` without a
    single ``%``.  The ``< 2q`` lane invariant absorbs that laziness.
    """
    rows, n = a.shape
    length = n // 2
    for stage, tw in enumerate(tw_stages):
        blocks = a.reshape(rows, -1, 2 * length)
        u = blocks[:, :, :length]
        v = blocks[:, :, length:]
        total = u + v                      # < 4q
        # Unsigned-wraparound conditional subtract: total - 2q wraps to a
        # huge value exactly when total < 2q, so minimum() selects right.
        np.minimum(total, total - two_q3, out=total)  # < 2q
        diff = (u + two_q3) - v            # < 4q, positive
        blocks[:, :, :length] = total
        if length == 1:
            # Last stage: the single twiddle is omega**0 == 1 for every
            # prime — skip the product, clamp the raw difference.
            np.minimum(diff, diff - two_q3, out=diff)       # < 2q
            blocks[:, :, length:] = diff
        elif shoup_stages is not None:
            q_hat = (diff * shoup_stages[stage]) >> _SHIFT32
            blocks[:, :, length:] = diff * tw - q_hat * q3  # < 2q
        else:
            blocks[:, :, length:] = diff * tw % q3          # < q
        length //= 2


def dit_stages_lazy(a: np.ndarray, q3: np.ndarray, two_q3: np.ndarray,
                    tw_stages: list[np.ndarray],
                    shoup_stages: list[np.ndarray] | None = None) -> None:
    """In-place Cooley–Tukey DIT stages on an ``(L, n)`` stack.

    Every lane stays ``< 2q`` across stages: unlike the DIF pass, a DIT
    stage's input halves mix the previous stage's sum *and* difference
    lanes, so the difference lane must be clamped back under ``2q`` too
    or magnitudes grow linearly with the stage count.  Inputs must be
    ``< 2q``; outputs are ``< 2q`` — callers fold the final reduction
    into the ``n^{-1}`` scaling multiply.  With ``shoup_stages`` the
    twiddle product runs mod-free (Shoup lands in ``[0, 2q)``, which the
    invariant absorbs); requires every ``q < 2**30``.
    """
    rows, n = a.shape
    length = 1
    for stage, tw in enumerate(tw_stages):
        blocks = a.reshape(rows, -1, 2 * length)
        u = blocks[:, :, :length].copy()   # < 2q
        vin = blocks[:, :, length:]        # < 2q < 2**32
        if stage == 0:
            v = vin                        # twiddle is omega**0 == 1
        elif shoup_stages is not None:
            q_hat = (vin * shoup_stages[stage]) >> _SHIFT32
            v = vin * tw - q_hat * q3      # < 2q
        else:
            v = vin * tw % q3              # < q
        total = u + v                      # < 4q
        np.minimum(total, total - two_q3, out=total)  # < 2q
        diff = (u + two_q3) - v            # < 4q, positive
        np.minimum(diff, diff - two_q3, out=diff)     # < 2q
        blocks[:, :, :length] = total
        blocks[:, :, length:] = diff
        length *= 2


def dit_stages_unclamped(a: np.ndarray, q3: np.ndarray,
                         tw_stages: list[np.ndarray]) -> None:
    """In-place DIT stages with **no** per-stage clamping.

    The twiddled half of every butterfly is freshly reduced (``< q``),
    so lane magnitudes grow by exactly ``q`` per stage: entering at
    ``<= q - 1``, the bound after stage ``s`` is ``(s + 2) * q - 1``,
    i.e. ``(log2(n) + 1) * q - 1`` inclusive after the final stage.
    Eligibility — every intermediate, including the caller's fused
    scaling product against that final bound, fitting uint64 — is
    decided by :func:`repro.analysis.bounds.unclamped_dit_ok`; do not
    call this without that gate.  Skipping the clamps halves the ufunc
    dispatches of the clamped pass, which dominates for short limb
    stacks.  Entry values must be ``< q``; callers finish with one true
    ``%`` (usually fused into the ``n^{-1}`` scaling).
    """
    rows, n = a.shape
    length = 1
    for stage, tw in enumerate(tw_stages):
        blocks = a.reshape(rows, -1, 2 * length)
        u = blocks[:, :, :length].copy()
        vin = blocks[:, :, length:]
        # Stage 0's single twiddle is omega**0 == 1; reuse the view (the
        # u-half store never aliases it, and both RHS below are temps).
        v = vin if stage == 0 else vin * tw % q3   # < q
        blocks[:, :, :length] = u + v              # < M + q
        blocks[:, :, length:] = (u + q3) - v       # positive, < M + q
        length *= 2


def _check_multi(x: np.ndarray, tables_per_row: list[NttTables]) -> None:
    if x.ndim != 2 or len(tables_per_row) != x.shape[0]:
        raise ValueError(
            f"expected ({len(tables_per_row)}, n) residue stack, got {x.shape}")
    n = tables_per_row[0].n
    if x.shape[1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[1]}")
    for t in tables_per_row:
        _check_vec(t)


def vec_ntt_dif_multi(x: np.ndarray, tables_per_row: list[NttTables]) -> np.ndarray:
    """Forward DIF NTT over an ``(L, n)`` stack, row ``i`` modulo
    ``tables_per_row[i].q``.

    One vectorized butterfly pass per stage covers every limb at once:
    the per-prime stage twiddles are stacked into an ``(L, 1, length)``
    block and the moduli broadcast as an ``(L, 1, 1)`` column, so the
    whole residue matrix moves through each stage in a single numpy
    dispatch instead of ``L`` separate transform calls.
    """
    x = np.asarray(x, dtype=np.uint64)
    _check_multi(x, tables_per_row)
    q_col = np.array([t.q for t in tables_per_row], dtype=np.uint64)[:, None]
    q3 = q_col[:, :, None]
    a = (x % q_col).copy() if x.base is None else x % q_col
    shoup = (_stacked_stage_twiddles(tables_per_row, "dif_shoup")
             if all(t.q < (1 << 30) for t in tables_per_row) else None)
    dif_stages_lazy(a, q3, 2 * q3,
                    _stacked_stage_twiddles(tables_per_row, "dif"), shoup)
    np.minimum(a, a - q_col, out=a)
    return a


def vec_intt_dit_multi(x: np.ndarray, tables_per_row: list[NttTables],
                       scale_col: np.ndarray | None = None) -> np.ndarray:
    """Inverse DIT NTT over an ``(L, n)`` stack with per-row moduli
    (bit-reversed in, natural out).

    ``scale_col`` replaces the default per-row ``n^{-1}`` factor with an
    arbitrary fully-reduced multiplier (column or full ``(L, n)`` table)
    — the negacyclic wrapper uses it to fuse ``psi^{-j} * n^{-1}`` into
    the single final reduction.
    """
    x = np.asarray(x, dtype=np.uint64)
    _check_multi(x, tables_per_row)
    q_col = np.array([t.q for t in tables_per_row], dtype=np.uint64)[:, None]
    q3 = q_col[:, :, None]
    a = x % q_col
    maxq = max(t.q for t in tables_per_row)
    log_n = tables_per_row[0].log_n
    if unclamped_dit_ok(log_n, maxq):
        dit_stages_unclamped(a, q3,
                             _stacked_stage_twiddles(tables_per_row, "dit"))
    else:
        shoup = (_stacked_stage_twiddles(tables_per_row, "dit_shoup")
                 if all(t.q < (1 << 30) for t in tables_per_row) else None)
        dit_stages_lazy(a, q3, 2 * q3,
                        _stacked_stage_twiddles(tables_per_row, "dit"), shoup)
    if scale_col is None:
        scale_col = np.array([t.n_inv for t in tables_per_row],
                             dtype=np.uint64)[:, None]
    # Final fused reduction: lanes are < 2q (clamped) or < (log2(n)+1)*q
    # (unclamped, gated above), so the product fits uint64 either way.
    return a * scale_col % q_col
