"""Iterative O(N log N) NTTs: Gentleman–Sande DIF and Cooley–Tukey DIT.

Conventions (shared across the repository):

* ``ntt_dif``: natural-order input, **bit-reversed** output, forward
  transform with root ``omega``.
* ``intt_dit``: **bit-reversed** input, natural-order output, inverse
  transform (uses ``omega^{-1}`` internally and scales by ``n^{-1}``).

Chaining them needs no bit-reversal pass — the property the VPU exploits
by providing both DIT and DIF butterflies (paper §III-A).

Scalar versions operate on Python ints (any modulus width); the ``vec_*``
versions are vectorized numpy paths for ``q < 2**31``.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.tables import NttTables


def ntt_dif(x: list[int], tables: NttTables) -> list[int]:
    """Forward DIF NTT.  Natural-order input, bit-reversed output."""
    n, q = tables.n, tables.q
    if len(x) != n:
        raise ValueError(f"expected length {n}, got {len(x)}")
    a = [int(v) % q for v in x]
    length = n // 2
    while length >= 1:
        # Stage twiddle step: omega^(n / (2*length)).
        step = n // (2 * length)
        for start in range(0, n, 2 * length):
            for j in range(length):
                u = a[start + j]
                v = a[start + j + length]
                a[start + j] = (u + v) % q
                a[start + j + length] = (u - v) * tables.omega_power(j * step) % q
        length //= 2
    return a


def intt_dit(x: list[int], tables: NttTables) -> list[int]:
    """Inverse DIT NTT.  Bit-reversed input, natural-order output."""
    n, q = tables.n, tables.q
    if len(x) != n:
        raise ValueError(f"expected length {n}, got {len(x)}")
    a = [int(v) % q for v in x]
    length = 1
    while length < n:
        step = n // (2 * length)
        for start in range(0, n, 2 * length):
            for j in range(length):
                u = a[start + j]
                v = a[start + j + length] * tables.omega_inv_power(j * step) % q
                a[start + j] = (u + v) % q
                a[start + j + length] = (u - v) % q
        length *= 2
    n_inv = tables.n_inv
    return [v * n_inv % q for v in a]


# ---------------------------------------------------------------------------
# Vectorized numpy paths (q < 2**31)
# ---------------------------------------------------------------------------


def _check_vec(tables: NttTables) -> None:
    if tables.q >= (1 << 31):
        raise ValueError("vectorized NTT requires q < 2**31")


def vec_ntt_dif(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Vectorized forward DIF NTT (natural in, bit-reversed out).

    Accepts an array whose **last axis** has length ``n``; transforms all
    leading axes independently (batched NTT over RNS limbs).
    """
    _check_vec(tables)
    n, q = tables.n, np.uint64(tables.q)
    x = np.asarray(x, dtype=np.uint64)
    if x.shape[-1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[-1]}")
    a = (x % q).reshape(-1, n).copy()
    length = n // 2
    while length >= 1:
        step = n // (2 * length)
        tw = tables.omega_powers[(np.arange(length) * step) % n]
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length]
        v = blocks[:, :, length:]
        total = u + v
        diff = (u + q) - v
        blocks[:, :, :length] = total % q
        blocks[:, :, length:] = (diff % q) * tw % q
        length //= 2
    return a.reshape(x.shape)


def vec_intt_dit(x: np.ndarray, tables: NttTables) -> np.ndarray:
    """Vectorized inverse DIT NTT (bit-reversed in, natural out)."""
    _check_vec(tables)
    n, q = tables.n, np.uint64(tables.q)
    x = np.asarray(x, dtype=np.uint64)
    if x.shape[-1] != n:
        raise ValueError(f"last axis must be {n}, got {x.shape[-1]}")
    a = (x % q).reshape(-1, n).copy()
    length = 1
    while length < n:
        step = n // (2 * length)
        tw = tables.omega_inv_powers[(np.arange(length) * step) % n]
        blocks = a.reshape(a.shape[0], -1, 2 * length)
        u = blocks[:, :, :length].copy()
        v = blocks[:, :, length:] * tw % q
        blocks[:, :, :length] = (u + v) % q
        blocks[:, :, length:] = ((u + q) - v) % q
        length *= 2
    a = a * np.uint64(tables.n_inv) % q
    return a.reshape(x.shape)
