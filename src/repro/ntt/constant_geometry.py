"""Pease constant-geometry (CG) NTT.

The CG form reorganizes the iterative NTT so that **every stage uses the
identical inter-element permutation**: read the pair ``(j, j + n/2)``,
butterfly, write to ``(2j, 2j+1)`` (forward/DIF), or the mirror-image
pattern for the inverse/DIT direction.  A single fixed wiring therefore
serves all ``log n`` stages — this is precisely what the two CG stages of
the paper's inter-lane network implement (paper §III-B, refs [13], [14]).

Correctness rests on Pease's storage-map theorem, which we use directly:
after ``s`` CG-DIF stages, memory position ``p`` holds the Gentleman–Sande
working value of logical index ``ror^s(p)`` (rotate-right of the bit
string).  The stage twiddles below are the GS twiddles re-indexed through
that map, so CG-DIF is *element-for-element identical* to
:func:`repro.ntt.cooley_tukey.ntt_dif` (natural-order input, bit-reversed
output), and CG-DIT to :func:`intt_dit`.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.bitrev import rotate_bits_left, rotate_bits_right
from repro.ntt.tables import NttTables


def dif_gather_permutation(n: int) -> np.ndarray:
    """The CG-DIF network permutation as an index array.

    ``out[2j] = in[j]`` and ``out[2j+1] = in[j + n/2]``: the two inputs of
    each butterfly land in adjacent positions (adjacent VPU lanes).
    Returned as ``src`` indices: ``out[p] = in[perm[p]]``.
    """
    if n <= 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    perm = np.empty(n, dtype=np.int64)
    half = n // 2
    for j in range(half):
        perm[2 * j] = j
        perm[2 * j + 1] = j + half
    return perm


def dit_scatter_permutation(n: int) -> np.ndarray:
    """The CG-DIT network permutation (inverse of the DIF gather).

    ``out[j] = in[2j]`` and ``out[j + n/2] = in[2j+1]``: butterfly results
    computed on adjacent positions are scattered back to strided order.
    """
    if n <= 1 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    perm = np.empty(n, dtype=np.int64)
    half = n // 2
    for j in range(half):
        perm[j] = 2 * j
        perm[j + half] = 2 * j + 1
    return perm


def cg_dif_twiddles_for_root(n: int, root: int, q: int, stage: int) -> list[int]:
    """CG-DIF stage twiddles for an explicit order-``n`` root.

    Butterfly ``j`` (pairing positions ``j`` and ``j + n/2``) corresponds
    to the GS butterfly at logical index ``i = ror^stage(j)``; its twiddle
    is ``root^((i mod L) * 2^stage)`` with ``L = n / 2^(stage+1)``.

    The explicit-root form exists because multi-dimensional decomposition
    runs its small NTTs on roots like ``omega_N^(N/m)``, which are fixed
    by the four-step algebra and cannot be swapped for another primitive
    root of the same order.
    """
    bits = n.bit_length() - 1
    half_block = n >> (stage + 1)  # GS "length" L at this stage
    twiddles = []
    for j in range(n // 2):
        logical = rotate_bits_right(j, stage, bits)
        twiddles.append(pow(root, (logical % half_block) << stage, q))
    return twiddles


def cg_dit_twiddles_for_root(n: int, root_inv: int, q: int, stage: int) -> list[int]:
    """CG-DIT stage twiddles for an explicit order-``n`` inverse root.

    Butterfly ``j`` reads adjacent positions ``(2j, 2j+1)``; the logical
    index is ``i = rol^stage(2j)`` and the twiddle is
    ``root_inv^((i mod 2^stage) * n / 2^(stage+1))``.
    """
    bits = n.bit_length() - 1
    length = 1 << stage  # CT "length" at this stage
    step = n // (2 * length)
    twiddles = []
    for j in range(n // 2):
        logical = rotate_bits_left(2 * j, stage, bits)
        twiddles.append(pow(root_inv, (logical % length) * step, q))
    return twiddles


def cg_dif_stage_twiddles(stage: int, tables: NttTables) -> list[int]:
    """Twiddles for CG-DIF stage ``stage`` using the tables' own root."""
    return cg_dif_twiddles_for_root(tables.n, tables.omega, tables.q, stage)


def cg_dit_stage_twiddles(stage: int, tables: NttTables) -> list[int]:
    """Twiddles for CG-DIT stage ``stage`` using the tables' own root."""
    return cg_dit_twiddles_for_root(tables.n, tables.omega_inv, tables.q, stage)


def cg_dif_stage(x: list[int], stage: int, tables: NttTables) -> list[int]:
    """Apply one CG-DIF stage: gather ``(j, j+n/2)`` -> butterfly ->
    adjacent ``(2j, 2j+1)``."""
    n, q = tables.n, tables.q
    half = n // 2
    twiddles = cg_dif_stage_twiddles(stage, tables)
    out = [0] * n
    for j in range(half):
        u = int(x[j])
        v = int(x[j + half])
        out[2 * j] = (u + v) % q
        out[2 * j + 1] = (u - v) * twiddles[j] % q
    return out


def cg_dit_stage(x: list[int], stage: int, tables: NttTables) -> list[int]:
    """Apply one CG-DIT stage: butterfly adjacent ``(2j, 2j+1)`` ->
    scatter to ``(j, j+n/2)``."""
    n, q = tables.n, tables.q
    half = n // 2
    twiddles = cg_dit_stage_twiddles(stage, tables)
    out = [0] * n
    for j in range(half):
        u = int(x[2 * j])
        v = int(x[2 * j + 1]) * twiddles[j] % q
        out[j] = (u + v) % q
        out[j + half] = (u - v) % q
    return out


def cg_dif_ntt(x: list[int], tables: NttTables) -> list[int]:
    """Full constant-geometry forward NTT (natural in, bit-reversed out)."""
    if len(x) != tables.n:
        raise ValueError(f"expected length {tables.n}, got {len(x)}")
    a = [int(v) % tables.q for v in x]
    for stage in range(tables.log_n):
        a = cg_dif_stage(a, stage, tables)
    return a


def cg_dit_intt(x: list[int], tables: NttTables) -> list[int]:
    """Full constant-geometry inverse NTT (bit-reversed in, natural out)."""
    if len(x) != tables.n:
        raise ValueError(f"expected length {tables.n}, got {len(x)}")
    a = [int(v) % tables.q for v in x]
    for stage in range(tables.log_n):
        a = cg_dit_stage(a, stage, tables)
    n_inv, q = tables.n_inv, tables.q
    return [v * n_inv % q for v in a]
