"""Multi-dimensional (Bailey four-step) NTT decomposition.

An NTT of length ``N`` decomposes into ``ceil(log N / log m)`` dimensions
of length at most ``m`` (the hardware width), processed one dimension at a
time with an element-wise twiddle multiplication and a data transposition
between dimensions (paper §II-B).  This module is the *algorithmic* golden
model of that decomposition; the VPU compiler in
:mod:`repro.mapping.ntt` emits the same schedule as lane-level programs.

Four-step recursion for ``N = n1 * n2`` (row-major ``x[j1*n2 + j2]``):

1. length-``n1`` NTTs down the columns with root ``omega^{n2}``;
2. element-wise twiddles ``omega^{k1 * j2}``;
3. length-``n2`` NTTs along the rows with root ``omega^{n1}``
   (recursively decomposed if still larger than ``m``);
4. output element ``X[k1 + n1*k2]`` is row-NTT result ``D[k1][k2]`` —
   i.e. a final transpose.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.reference import naive_ntt
from repro.ntt.tables import get_tables


def choose_dimensions(n: int, m: int) -> list[int]:
    """Split a length-``n`` NTT into dimensions for ``m``-lane hardware.

    Returns a list of power-of-two dimension lengths, each ``<= m``, whose
    product is ``n``.  All dimensions are ``m`` except possibly the last
    (paper §IV-A: "If the last dimension size is smaller than m ... the CG
    network can be divided into multiple independent groups").
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if m <= 1 or m & (m - 1):
        raise ValueError(f"m must be a power of two > 1, got {m}")
    dims = []
    remaining = n
    while remaining > m:
        dims.append(m)
        remaining //= m
    dims.append(remaining)
    return dims


def _ntt_axis(matrix: np.ndarray, root: int, q: int) -> np.ndarray:
    """Length-``rows`` NTT down axis 0 of ``matrix`` (naive; golden model)."""
    rows = matrix.shape[0]
    result = np.zeros_like(matrix)
    # Precompute the root's power table once: root has order `rows`.
    powers = [1] * rows
    for i in range(1, rows):
        powers[i] = powers[i - 1] * root % q
    for k in range(rows):
        acc = np.zeros(matrix.shape[1], dtype=object)
        for j in range(rows):
            acc = acc + matrix[j].astype(object) * powers[(j * k) % rows]
        result[k] = acc % q
    return result


def ntt_four_step(x: np.ndarray, n1: int, omega: int, q: int) -> np.ndarray:
    """One four-step split ``N = n1 * n2``; returns the natural-order NTT."""
    x = np.asarray(x, dtype=object)
    n = len(x)
    if n % n1 != 0:
        raise ValueError(f"n1={n1} does not divide n={n}")
    n2 = n // n1

    a = x.reshape(n1, n2)
    # Step 1: column NTTs (length n1, root omega^n2).
    b = _ntt_axis(a, pow(omega, n2, q), q)
    # Step 2: element-wise twiddles omega^(k1 * j2).
    k1 = np.arange(n1).reshape(n1, 1)
    j2 = np.arange(n2).reshape(1, n2)
    tw = np.array(
        [[pow(omega, int(i * j) % n, q) for j in j2[0]] for i in k1[:, 0]],
        dtype=object,
    )
    c = b * tw % q
    # Step 3: row NTTs (length n2, root omega^n1).
    d = _ntt_axis(c.T.copy(), pow(omega, n1, q), q).T
    # Step 4: X[k1 + n1*k2] = D[k1][k2]  ->  transpose to (k2, k1) order.
    return d.T.reshape(-1)


def ntt_multidim(
    x: np.ndarray, dims: list[int], omega: int, q: int
) -> np.ndarray:
    """Full multi-dimensional NTT over the given dimension list.

    ``prod(dims) == len(x)``; each dimension handled by one four-step
    level.  Matches :func:`repro.ntt.reference.naive_ntt` exactly.
    """
    x = np.asarray(x, dtype=object)
    n = len(x)
    if int(np.prod(dims)) != n:
        raise ValueError(f"dims {dims} do not multiply to {n}")
    if len(dims) == 1:
        return np.array(naive_ntt(list(x), omega, q), dtype=object)

    n1 = dims[0]
    n2 = n // n1
    a = x.reshape(n1, n2)
    b = _ntt_axis(a, pow(omega, n2, q), q)
    tw = np.array(
        [[pow(omega, (i * j) % n, q) for j in range(n2)] for i in range(n1)],
        dtype=object,
    )
    c = b * tw % q
    # Rows recursively, each length n2 with root omega^n1.
    row_root = pow(omega, n1, q)
    d = np.stack(
        [ntt_multidim(c[i], dims[1:], row_root, q) for i in range(n1)]
    )
    return d.T.reshape(-1)


def ntt_multidim_fast(x: np.ndarray, m: int, n: int, q: int) -> np.ndarray:
    """Convenience: decompose for ``m``-lane hardware and transform.

    Uses :func:`choose_dimensions`; root taken from the cached tables.
    """
    tables = get_tables(n, q)
    dims = choose_dimensions(n, m)
    return ntt_multidim(np.asarray(x, dtype=object), dims, tables.omega, q)
