"""Bit-reversal utilities.

The decimation-in-frequency NTT emits results in bit-reversed index order
and the decimation-in-time inverse consumes that order, which is exactly
why the paper's VPU provides both butterfly types: chaining DIF-forward
with DIT-inverse removes any explicit bit-reverse pass (paper §III-A).
These helpers exist for the software layers that *do* want natural order
(e.g. the CKKS evaluation representation).
"""

from __future__ import annotations

import numpy as np


def bit_reverse(value: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``value``."""
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_indices(n: int) -> np.ndarray:
    """Return the length-``n`` bit-reversal permutation as an index array.

    ``n`` must be a power of two.
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a positive power of two, got {n}")
    bits = n.bit_length() - 1
    indices = np.zeros(n, dtype=np.int64)
    for i in range(n):
        indices[i] = bit_reverse(i, bits)
    return indices


def bit_reverse_permute(x: np.ndarray) -> np.ndarray:
    """Return a copy of ``x`` with elements in bit-reversed index order."""
    x = np.asarray(x)
    return x[bit_reverse_indices(len(x))]


def rotate_bits_right(value: int, amount: int, bits: int) -> int:
    """Rotate the low ``bits`` bits of ``value`` right by ``amount``.

    Used to track where constant-geometry stages place each logical
    element (Pease's theorem: the storage map after ``s`` CG-DIF stages is
    ``ror^s``).
    """
    amount %= bits
    mask = (1 << bits) - 1
    value &= mask
    return ((value >> amount) | (value << (bits - amount))) & mask


def rotate_bits_left(value: int, amount: int, bits: int) -> int:
    """Rotate the low ``bits`` bits of ``value`` left by ``amount``."""
    return rotate_bits_right(value, bits - (amount % bits), bits)
