"""Negacyclic NTT for the CKKS/BGV ring ``Z_q[X] / (X^n + 1)``.

The negacyclic convolution theorem: fold ``psi^j`` (a primitive ``2n``-th
root with ``psi^2 = omega``) into the inputs, run a plain cyclic NTT, and
unfold ``psi^{-j}`` after the inverse.  :class:`NegacyclicNtt` packages
this with the repository's order conventions and exposes both a fast
vectorized path and a scalar path for wide moduli.

The ``forward`` output is in **natural order** (bit-reversal applied
internally after the DIF pass) because the FHE layer treats evaluation
vectors as indexable slot arrays — in particular the automorphism layer
relies on natural order to stay an *affine* index permutation
(:mod:`repro.automorphism`).  ``forward_bitrev``/``inverse_bitrev`` expose
the raw hardware order used on the VPU, where no reversal is ever needed.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.cooley_tukey import intt_dit, ntt_dif, vec_intt_dit, vec_ntt_dif
from repro.ntt.tables import NttTables, get_tables


class NegacyclicNtt:
    """Forward/inverse negacyclic NTT bound to one ``(n, q)`` pair."""

    def __init__(self, n: int, q: int):
        self.tables: NttTables = get_tables(n, q)
        self.n = n
        self.q = q
        self._vectorized = q < (1 << 31)

    # -- natural-order API (software / FHE layer) ---------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients -> natural-order evaluation values."""
        return self._unreverse(self.forward_bitrev(coeffs))

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Natural-order evaluation values -> coefficients."""
        return self.inverse_bitrev(self._reverse(values))

    # -- bit-reversed API (hardware order) ----------------------------------

    def forward_bitrev(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients -> bit-reversed evaluation values (DIF output)."""
        t = self.tables
        if self._vectorized:
            x = np.asarray(coeffs, dtype=np.uint64) % np.uint64(self.q)
            x = x * t.psi_powers % np.uint64(self.q)
            return vec_ntt_dif(x, t)
        scaled = [int(c) * int(t.psi_powers[j]) % self.q
                  for j, c in enumerate(coeffs)]
        return np.array(ntt_dif(scaled, t), dtype=object)

    def inverse_bitrev(self, values: np.ndarray) -> np.ndarray:
        """Bit-reversed evaluation values -> coefficients (DIT input)."""
        t = self.tables
        if self._vectorized:
            x = np.asarray(values, dtype=np.uint64) % np.uint64(self.q)
            x = vec_intt_dit(x, t)
            return x * t.psi_inv_powers % np.uint64(self.q)
        out = intt_dit([int(v) for v in values], t)
        return np.array(
            [v * int(t.psi_inv_powers[j]) % self.q for j, v in enumerate(out)],
            dtype=object,
        )

    # -- order conversion ----------------------------------------------------

    def _reverse(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return x[self.tables.bitrev]

    def _unreverse(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        out = np.empty_like(x)
        out[self.tables.bitrev] = x
        return out


def negacyclic_poly_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Multiply two polynomials in ``Z_q[X]/(X^n + 1)`` via the NTT.

    O(n log n); checked against the schoolbook reference in the tests.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ntt = NegacyclicNtt(len(a), q)
    fa = ntt.forward_bitrev(a)
    fb = ntt.forward_bitrev(b)
    if ntt._vectorized:
        prod = fa * fb % np.uint64(q)
    else:
        prod = np.array([int(x) * int(y) % q for x, y in zip(fa, fb)], dtype=object)
    return ntt.inverse_bitrev(prod)
