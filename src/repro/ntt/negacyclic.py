"""Negacyclic NTT for the CKKS/BGV ring ``Z_q[X] / (X^n + 1)``.

The negacyclic convolution theorem: fold ``psi^j`` (a primitive ``2n``-th
root with ``psi^2 = omega``) into the inputs, run a plain cyclic NTT, and
unfold ``psi^{-j}`` after the inverse.  :class:`NegacyclicNtt` packages
this with the repository's order conventions and exposes both a fast
vectorized path and a scalar path for wide moduli.

The ``forward`` output is in **natural order** (bit-reversal applied
internally after the DIF pass) because the FHE layer treats evaluation
vectors as indexable slot arrays — in particular the automorphism layer
relies on natural order to stay an *affine* index permutation
(:mod:`repro.automorphism`).  ``forward_bitrev``/``inverse_bitrev`` expose
the raw hardware order used on the VPU, where no reversal is ever needed.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.bounds import unclamped_dit_ok
from repro.ntt.cooley_tukey import (
    _stacked_stage_twiddles,
    dif_stages_lazy,
    dit_stages_lazy,
    dit_stages_unclamped,
    intt_dit,
    ntt_dif,
    vec_intt_dit,
    vec_ntt_dif,
)
from repro.ntt.tables import NttTables, get_tables


class NegacyclicNtt:
    """Forward/inverse negacyclic NTT bound to one ``(n, q)`` pair."""

    def __init__(self, n: int, q: int):
        self.tables: NttTables = get_tables(n, q)
        self.n = n
        self.q = q
        self._vectorized = q < (1 << 31)

    # -- natural-order API (software / FHE layer) ---------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients -> natural-order evaluation values."""
        return self._unreverse(self.forward_bitrev(coeffs))

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Natural-order evaluation values -> coefficients."""
        return self.inverse_bitrev(self._reverse(values))

    # -- bit-reversed API (hardware order) ----------------------------------

    def forward_bitrev(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficients -> bit-reversed evaluation values (DIF output)."""
        t = self.tables
        if self._vectorized:
            x = np.asarray(coeffs, dtype=np.uint64) % np.uint64(self.q)
            x = x * t.psi_powers % np.uint64(self.q)
            return vec_ntt_dif(x, t)
        scaled = [int(c) * int(t.psi_powers[j]) % self.q
                  for j, c in enumerate(coeffs)]
        return np.array(ntt_dif(scaled, t), dtype=object)

    def inverse_bitrev(self, values: np.ndarray) -> np.ndarray:
        """Bit-reversed evaluation values -> coefficients (DIT input)."""
        t = self.tables
        if self._vectorized:
            x = np.asarray(values, dtype=np.uint64) % np.uint64(self.q)
            x = vec_intt_dit(x, t)
            return x * t.psi_inv_powers % np.uint64(self.q)
        out = intt_dit([int(v) for v in values], t)
        return np.array(
            [v * int(t.psi_inv_powers[j]) % self.q for j, v in enumerate(out)],
            dtype=object,
        )

    # -- order conversion ----------------------------------------------------

    def _reverse(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        return x[self.tables.bitrev]

    def _unreverse(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        out = np.empty_like(x)
        out[self.tables.bitrev] = x
        return out


class BatchedNegacyclicNtt:
    """Negacyclic NTT over a full ``(L, n)`` residue matrix in one
    dispatch — row ``i`` transformed modulo ``primes[i]``.

    This is the software shape of the paper's limb-level batching: a
    double-CRT polynomial is one unit of work, not ``L`` separate rows.
    The psi/psi-inverse foldings and the per-stage twiddles are stacked
    across primes once at construction, so every stage of every limb
    runs as a single vectorized butterfly pass.  Requires every prime
    below ``2**31`` (the repository's uint64 fast-path regime).
    """

    def __init__(self, n: int, primes: tuple[int, ...],
                 clamped: bool = False):
        self.n = n
        self.primes = primes
        #: Clamped mode disables the Shoup and unclamped-DIT fast paths,
        #: so every butterfly product is strictly reduced — the integrity
        #: layer's mid-ladder fallback when the fast paths are suspect.
        self.clamped = clamped
        self.tables = [get_tables(n, q) for q in primes]
        for t in self.tables:
            if t.q >= (1 << 31):
                raise ValueError("batched NTT requires every prime < 2**31")
        self._q_col = np.array(primes, dtype=np.uint64)[:, None]
        self._q3 = self._q_col[:, :, None]
        self._two_q3 = 2 * self._q3
        self._psi = np.stack([t.psi_powers for t in self.tables])
        # Fused psi^{-j} * n^{-1} unfold table: the inverse transform's
        # lazy stage outputs (< 4q) hit exactly one final reduction.
        # (Hoisted per-modulus onto NttTables, shared with the compiled
        # backend's constant-table plans.)
        self._psi_inv_ninv = np.stack([t.psi_inv_ninv for t in self.tables])
        self._dif_tw = _stacked_stage_twiddles(self.tables, "dif")
        self._dit_tw = _stacked_stage_twiddles(self.tables, "dit")
        # Shoup companions make the forward butterfly and the psi folding
        # mod-free (q < 2**30, which every repository parameter set
        # satisfies).
        if not clamped and all(q < (1 << 30) for q in primes):
            self._dif_shoup = _stacked_stage_twiddles(self.tables, "dif_shoup")
            self._dit_shoup = _stacked_stage_twiddles(self.tables, "dit_shoup")
            self._psi_shoup = np.stack([t.psi_shoup for t in self.tables])
            self._unfold_shoup = np.stack(
                [t.psi_inv_ninv_shoup for t in self.tables])
        else:
            self._dif_shoup = None
            self._dit_shoup = None
            self._psi_shoup = None
            self._unfold_shoup = None
        # Clamp-free inverse stages: lane growth is only +q per stage
        # (the twiddled half is always freshly reduced), reaching exactly
        # (log2(n)+1)*q - 1 after the last stage.  The analyzer proves
        # every intermediate — including the fused unfold product — fits
        # uint64 before the fast path is allowed.
        log_n = self.tables[0].log_n
        self._dit_unclamped = (not clamped) and unclamped_dit_ok(
            log_n, max(primes))
        self._bitrev = self.tables[0].bitrev

    def forward(self, residues: np.ndarray) -> np.ndarray:
        """``(L, n)`` coefficients -> natural-order evaluation values."""
        x = np.asarray(residues, dtype=np.uint64)
        if not (x < self._q_col).all():
            x = x % self._q_col
        if self._psi_shoup is not None:
            # Shoup psi fold: x < q < 2**30, so x*psi' < 2**64 and the
            # result lands in [0, 2q) — inside the lazy stage invariant.
            q_hat = (x * self._psi_shoup) >> np.uint64(32)
            x = x * self._psi - q_hat * self._q_col
        else:
            x = x * self._psi % self._q_col
        dif_stages_lazy(x, self._q3, self._two_q3, self._dif_tw,
                        self._dif_shoup)
        np.minimum(x, x - self._q_col, out=x)
        # Bit reversal is an involution, so undoing the DIF output order
        # is a gather with the same index table (faster than a scatter).
        return x[:, self._bitrev]

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """``(L, n)`` natural-order evaluation values -> coefficients."""
        x = np.asarray(values, dtype=np.uint64)
        reduced = bool((x < self._q_col).all())
        x = x[:, self._bitrev]
        if not reduced:
            x %= self._q_col
        if self._dit_unclamped:
            dit_stages_unclamped(x, self._q3, self._dit_tw)
            # Lanes are < (log2(n)+1)*q, inside the gate's product bound.
            return x * self._psi_inv_ninv % self._q_col
        dit_stages_lazy(x, self._q3, self._two_q3, self._dit_tw,
                        self._dit_shoup)
        if self._unfold_shoup is not None:
            # x < 2q < 2**31: Shoup unfold to [0, 2q), one subtract to < q.
            q_hat = (x * self._unfold_shoup) >> np.uint64(32)
            out = x * self._psi_inv_ninv - q_hat * self._q_col
            np.minimum(out, out - self._q_col, out=out)
            return out
        return x * self._psi_inv_ninv % self._q_col


_BATCHED_CACHE: "dict[tuple[int, tuple[int, ...], bool], BatchedNegacyclicNtt]" = {}
_BATCHED_LOCK = threading.Lock()


def get_batched_ntt(n: int, primes: tuple[int, ...],
                    clamped: bool = False) -> BatchedNegacyclicNtt:
    """Cached :class:`BatchedNegacyclicNtt` per ``(n, primes, clamped)``
    stack (``repro.fhe.backend.clear_caches`` drops the cache).

    Thread-safe: lookup-and-build holds a lock, so overlapping serving
    tasks construct each stack exactly once."""
    key = (n, primes, clamped)
    with _BATCHED_LOCK:
        ntt = _BATCHED_CACHE.get(key)
        if ntt is None:
            ntt = _BATCHED_CACHE[key] = BatchedNegacyclicNtt(n, primes, clamped)
    return ntt


def _clear_batched_cache() -> None:
    with _BATCHED_LOCK:
        _BATCHED_CACHE.clear()


#: lru_cache-compatible reset hook (``repro.fhe.backend.clear_caches``
#: still calls ``get_batched_ntt.cache_clear()``).
get_batched_ntt.cache_clear = _clear_batched_cache  # type: ignore[attr-defined]


def negacyclic_poly_mul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Multiply two polynomials in ``Z_q[X]/(X^n + 1)`` via the NTT.

    O(n log n); checked against the schoolbook reference in the tests.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    ntt = NegacyclicNtt(len(a), q)
    fa = ntt.forward_bitrev(a)
    fb = ntt.forward_bitrev(b)
    if ntt._vectorized:
        prod = fa * fb % np.uint64(q)
    else:
        prod = np.array([int(x) * int(y) % q for x, y in zip(fa, fb)], dtype=object)
    return ntt.inverse_bitrev(prod)
