"""Precomputed twiddle-factor tables.

A single :class:`NttTables` instance bundles everything the transform
kernels (and the VPU mapping layer) need for one ``(n, q)`` pair: the
primitive roots, their power tables, the negacyclic ``psi`` scalings, and
the bit-reversal permutation.  Tables are cached per ``(n, q)`` because
CKKS reuses the same ring for every limb operation.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.arith.modular import mod_inverse
from repro.arith.primes import nth_root_of_unity
from repro.ntt.bitrev import bit_reverse_indices


class NttTables:
    """Twiddle tables for a length-``n`` NTT modulo prime ``q``.

    Parameters
    ----------
    n:
        Transform length; a power of two with ``2n | q - 1`` (so the
        negacyclic tables exist too).
    q:
        Prime modulus.

    Attributes
    ----------
    omega:
        A primitive ``n``-th root of unity (``psi**2``).
    psi:
        A primitive ``2n``-th root of unity used for negacyclic folding.
    omega_powers / omega_inv_powers:
        ``omega**j`` and ``omega**(-j)`` for ``j in [0, n)`` (uint64 when
        ``q < 2**31``, object arrays otherwise).
    psi_powers / psi_inv_powers:
        Likewise for ``psi``.
    n_inv:
        ``n**(-1) mod q``.
    """

    def __init__(self, n: int, q: int):
        if n <= 0 or n & (n - 1):
            raise ValueError(f"n must be a positive power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise ValueError(f"q={q} is not NTT-friendly for n={n} (need 2n | q-1)")
        self.n = n
        self.q = q
        self.log_n = n.bit_length() - 1
        self.psi = nth_root_of_unity(2 * n, q)
        self.omega = pow(self.psi, 2, q)
        self.omega_inv = mod_inverse(self.omega, q)
        self.psi_inv = mod_inverse(self.psi, q)
        self.n_inv = mod_inverse(n, q)

        dtype = np.uint64 if q < (1 << 31) else object
        self.omega_powers = self._power_table(self.omega, n, dtype)
        self.omega_inv_powers = self._power_table(self.omega_inv, n, dtype)
        self.psi_powers = self._power_table(self.psi, n, dtype)
        self.psi_inv_powers = self._power_table(self.psi_inv, n, dtype)
        self.bitrev = bit_reverse_indices(n)
        self._dif_stage_twiddles: list[np.ndarray] | None = None
        self._dit_stage_twiddles: list[np.ndarray] | None = None
        self._dif_stage_twiddles_shoup: list[np.ndarray] | None = None
        self._dit_stage_twiddles_shoup: list[np.ndarray] | None = None
        self._barrett_mu: int | None = None
        self._psi_shoup: np.ndarray | None = None
        self._psi_inv_ninv: np.ndarray | None = None
        self._psi_inv_ninv_shoup: np.ndarray | None = None
        self._dif_twiddles_flat: np.ndarray | None = None
        self._dit_twiddles_flat: np.ndarray | None = None
        self._dif_twiddles_flat_shoup: np.ndarray | None = None
        self._dit_twiddles_flat_shoup: np.ndarray | None = None

    def _power_table(self, base: int, count: int, dtype) -> np.ndarray:
        powers = np.empty(count, dtype=dtype)
        value = 1
        for i in range(count):
            powers[i] = value if dtype is object else np.uint64(value)
            value = value * base % self.q
        return powers

    def _stage_twiddles(self, powers: np.ndarray,
                        lengths: list[int]) -> list[np.ndarray]:
        out = []
        for length in lengths:
            step = self.n // (2 * length)
            out.append(powers[(np.arange(length) * step) % self.n])
        return out

    @property
    def dif_stage_twiddles(self) -> list[np.ndarray]:
        """Per-stage twiddle vectors for the DIF pass, hoisted once.

        Stage ``s`` (half-lengths ``n/2, n/4, .., 1``) multiplies the
        lower butterfly outputs by ``omega**(j * step)`` for ``j`` in
        ``[0, length)``; the gather used to be rebuilt on every
        :func:`~repro.ntt.cooley_tukey.vec_ntt_dif` call.
        """
        if self._dif_stage_twiddles is None:
            lengths = [self.n >> (s + 1) for s in range(self.log_n)]
            self._dif_stage_twiddles = self._stage_twiddles(
                self.omega_powers, lengths)
        return self._dif_stage_twiddles

    @property
    def dit_stage_twiddles(self) -> list[np.ndarray]:
        """Per-stage inverse twiddles for the DIT pass (lengths
        ``1, 2, .., n/2``), hoisted once per table."""
        if self._dit_stage_twiddles is None:
            lengths = [1 << s for s in range(self.log_n)]
            self._dit_stage_twiddles = self._stage_twiddles(
                self.omega_inv_powers, lengths)
        return self._dit_stage_twiddles

    def _shoup(self, twiddles: list[np.ndarray]) -> list[np.ndarray]:
        if self.q >= (1 << 30):
            raise ValueError("Shoup twiddles require q < 2**30")
        return [((tw.astype(object) << 32) // self.q).astype(np.uint64)
                for tw in twiddles]

    @property
    def dif_stage_twiddles_shoup(self) -> list[np.ndarray]:
        """Shoup companions ``floor(w * 2**32 / q)`` of the DIF stage
        twiddles, for the mod-free butterfly product (``q < 2**30``)."""
        if self._dif_stage_twiddles_shoup is None:
            self._dif_stage_twiddles_shoup = self._shoup(
                self.dif_stage_twiddles)
        return self._dif_stage_twiddles_shoup

    @property
    def dit_stage_twiddles_shoup(self) -> list[np.ndarray]:
        """Shoup companions of the DIT stage twiddles (``q < 2**30``)."""
        if self._dit_stage_twiddles_shoup is None:
            self._dit_stage_twiddles_shoup = self._shoup(
                self.dit_stage_twiddles)
        return self._dit_stage_twiddles_shoup

    # -- compiled-backend constant tables ----------------------------------
    #
    # The fused kernels (:mod:`repro.kernels`) consume per-modulus
    # constants hoisted here so they are computed exactly once per
    # ``(n, q)`` and shared by every backend that wants them: the
    # Barrett constant, the Shoup psi companions, the fused
    # ``psi^{-1} * n^{-1}`` unfold table, and the stage twiddles
    # flattened into one contiguous vector per direction (DIF lengths
    # ``n/2, .., 1`` and DIT lengths ``1, .., n/2`` both concatenate to
    # exactly ``n - 1`` entries).

    @property
    def barrett_mu(self) -> int:
        """Barrett constant ``floor(2**64 / q)``: the estimate
        ``floor(z * mu / 2**64)`` undershoots ``floor(z / q)`` by at
        most 2 for any uint64 ``z``, so reduction is two multiplies and
        at most two conditional subtracts."""
        if self._barrett_mu is None:
            self._barrett_mu = (1 << 64) // self.q
        return self._barrett_mu

    @property
    def psi_shoup(self) -> np.ndarray:
        """Shoup companions of ``psi_powers`` for the mod-free
        negacyclic fold (``q < 2**30``)."""
        if self._psi_shoup is None:
            self._psi_shoup = self._shoup([self.psi_powers])[0]
        return self._psi_shoup

    @property
    def psi_inv_ninv(self) -> np.ndarray:
        """Fused unfold table ``psi**(-j) * n**(-1) mod q``: the inverse
        transform's final scaling collapsed into one product per lane."""
        if self._psi_inv_ninv is None:
            fused = self.psi_inv_powers.astype(object) * self.n_inv % self.q
            self._psi_inv_ninv = (fused.astype(np.uint64)
                                  if self.q < (1 << 31)
                                  else fused)
        return self._psi_inv_ninv

    @property
    def psi_inv_ninv_shoup(self) -> np.ndarray:
        """Shoup companions of :attr:`psi_inv_ninv` (``q < 2**30``)."""
        if self._psi_inv_ninv_shoup is None:
            self._psi_inv_ninv_shoup = self._shoup([self.psi_inv_ninv])[0]
        return self._psi_inv_ninv_shoup

    def _concat(self, stages: list[np.ndarray]) -> np.ndarray:
        if not stages:  # n == 1: a zero-stage transform
            return np.empty(0, dtype=np.uint64)
        return np.concatenate(stages)

    @property
    def dif_twiddles_flat(self) -> np.ndarray:
        """All DIF stage twiddles concatenated (``n - 1`` entries)."""
        if self._dif_twiddles_flat is None:
            self._dif_twiddles_flat = self._concat(self.dif_stage_twiddles)
        return self._dif_twiddles_flat

    @property
    def dit_twiddles_flat(self) -> np.ndarray:
        """All DIT stage twiddles concatenated (``n - 1`` entries)."""
        if self._dit_twiddles_flat is None:
            self._dit_twiddles_flat = self._concat(self.dit_stage_twiddles)
        return self._dit_twiddles_flat

    @property
    def dif_twiddles_flat_shoup(self) -> np.ndarray:
        """Shoup companions of :attr:`dif_twiddles_flat`."""
        if self._dif_twiddles_flat_shoup is None:
            self._dif_twiddles_flat_shoup = self._concat(
                self.dif_stage_twiddles_shoup)
        return self._dif_twiddles_flat_shoup

    @property
    def dit_twiddles_flat_shoup(self) -> np.ndarray:
        """Shoup companions of :attr:`dit_twiddles_flat`."""
        if self._dit_twiddles_flat_shoup is None:
            self._dit_twiddles_flat_shoup = self._concat(
                self.dit_stage_twiddles_shoup)
        return self._dit_twiddles_flat_shoup

    def omega_power(self, exponent: int) -> int:
        """Return ``omega ** exponent mod q`` (any integer exponent)."""
        return int(self.omega_powers[exponent % self.n])

    def omega_inv_power(self, exponent: int) -> int:
        """Return ``omega ** (-exponent) mod q``."""
        return int(self.omega_inv_powers[exponent % self.n])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"NttTables(n={self.n}, q={self.q})"


_TABLES_CACHE: dict[tuple[int, int], NttTables] = {}
_TABLES_LOCK = threading.Lock()


def get_tables(n: int, q: int) -> NttTables:
    """Cached :class:`NttTables` lookup.

    Thread-safe: the serving layer shares one process-global table cache
    across overlapping requests, so lookup-and-build is atomic — each
    ``(n, q)`` shape is constructed exactly once.
    """
    key = (n, q)
    with _TABLES_LOCK:
        tables = _TABLES_CACHE.get(key)
        if tables is None:
            tables = _TABLES_CACHE[key] = NttTables(n, q)
    return tables


def _clear_tables_cache() -> None:
    with _TABLES_LOCK:
        _TABLES_CACHE.clear()


#: lru_cache-compatible reset hook (kept for callers written against the
#: previous ``functools.lru_cache`` implementation).
get_tables.cache_clear = _clear_tables_cache  # type: ignore[attr-defined]
