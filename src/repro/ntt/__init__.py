"""Number-theoretic transform algorithms.

Layered from "obviously correct" to "hardware shaped":

* :mod:`repro.ntt.reference` — naive O(N²) transforms, the golden model.
* :mod:`repro.ntt.cooley_tukey` — iterative DIT/DIF O(N log N) transforms
  (scalar and vectorized numpy paths).
* :mod:`repro.ntt.constant_geometry` — the Pease constant-geometry form:
  every stage uses the identical inter-element permutation, which is what
  the VPU's CG network stages implement (paper §III-B).
* :mod:`repro.ntt.negacyclic` — wrappers for the CKKS ring
  ``Z_q[X]/(X^n+1)`` plus NTT-based polynomial multiplication.
* :mod:`repro.ntt.decomposition` — Bailey four-step / multi-dimensional
  decomposition of a large NTT into hardware-sized tiles (paper §II-B).
* :mod:`repro.ntt.tables` — precomputed twiddle-factor tables shared by all
  of the above.
"""

from repro.ntt.bitrev import bit_reverse, bit_reverse_indices, bit_reverse_permute
from repro.ntt.constant_geometry import (
    cg_dif_ntt,
    cg_dif_stage,
    cg_dit_intt,
    cg_dit_stage,
    dif_gather_permutation,
    dit_scatter_permutation,
)
from repro.ntt.cooley_tukey import (
    intt_dit,
    ntt_dif,
    vec_intt_dit,
    vec_ntt_dif,
)
from repro.ntt.decomposition import (
    choose_dimensions,
    ntt_four_step,
    ntt_multidim,
)
from repro.ntt.merged import merged_forward, merged_inverse
from repro.ntt.negacyclic import NegacyclicNtt, negacyclic_poly_mul
from repro.ntt.reference import naive_intt, naive_negacyclic_poly_mul, naive_ntt
from repro.ntt.stockham import stockham_forward
from repro.ntt.tables import NttTables

__all__ = [
    "NegacyclicNtt",
    "NttTables",
    "bit_reverse",
    "bit_reverse_indices",
    "bit_reverse_permute",
    "cg_dif_ntt",
    "cg_dif_stage",
    "cg_dit_intt",
    "cg_dit_stage",
    "choose_dimensions",
    "dif_gather_permutation",
    "dit_scatter_permutation",
    "intt_dit",
    "merged_forward",
    "merged_inverse",
    "naive_intt",
    "naive_negacyclic_poly_mul",
    "naive_ntt",
    "negacyclic_poly_mul",
    "ntt_dif",
    "ntt_four_step",
    "ntt_multidim",
    "stockham_forward",
    "vec_intt_dit",
    "vec_ntt_dif",
]
