"""CACTI-style analytic SRAM macro model.

The paper models its SRAM and register files with FN-CACTI scaled to
7 nm.  This stripped-down analogue prices a macro from its structural
parameters: storage bits, IO width, port count and access duty cycle.
Constants are calibrated as documented in
:mod:`repro.hwmodel.technology`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport


@dataclass(frozen=True)
class SramMacro:
    """An on-chip SRAM buffer.

    Parameters
    ----------
    bits:
        Total storage capacity in bits.
    io_bits:
        Width of one access port in bits.
    ports:
        Number of simultaneously active ports (2 for the dual-port
        streaming quadrant-swap buffers of F1).
    duty:
        Fraction of cycles each port is active.  F1's quadrant swap
        streams a read and a write every cycle (duty 1.0); SHARP's
        hierarchical buffers alternate read and write phases (duty 0.5).
    """

    bits: int
    io_bits: int
    ports: int = 1
    duty: float = 1.0
    label: str = "sram"

    def __post_init__(self) -> None:
        if self.bits <= 0 or self.io_bits <= 0 or self.ports <= 0:
            raise ValueError("bits, io_bits and ports must be positive")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1], got {self.duty}")

    @property
    def area_um2(self) -> float:
        array = self.bits * tech.SRAM_CELL_AREA_PER_BIT
        periphery = self.io_bits * self.ports * tech.SRAM_IO_AREA_PER_BIT_PORT
        return array + periphery

    @property
    def power_mw(self) -> float:
        dynamic = (self.io_bits * self.ports * self.duty
                   * tech.SRAM_ACCESS_POWER_PER_BIT_PORT)
        leakage = self.bits * tech.SRAM_LEAKAGE_PER_BIT
        return dynamic + leakage

    def cost(self) -> CostReport:
        return CostReport(self.area_um2, self.power_mw, self.label)
