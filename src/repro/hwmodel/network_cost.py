"""Cost model of the paper's unified inter-lane network (Tables II/IV).

The network (Fig. 2) comprises two constant-geometry stages — merged into
one when ``m = 4``, where DIT and DIF coincide — plus ``log2 m`` shift
stages.  Each stage is ``m`` word-wide 2:1 muxes; the unit additionally
pays a per-lane attach overhead (butterfly-pair links, control decode)
and holds the pre-generated automorphism control table
(``(m/2)(m-1)`` bits, ~2 kbit at m = 64 — paper §IV-B) whose area is
priced through the SRAM model (it is negligible, as the paper notes).
"""

from __future__ import annotations

from repro.automorphism.controls import control_table_size_bits
from repro.hwmodel import technology as tech
from repro.hwmodel.components import (
    CostReport,
    lane_attach_overhead,
    mux_stage_cost,
    network_control_cost,
)
from repro.hwmodel.sram import SramMacro


def cg_stage_count(m: int) -> int:
    """Number of constant-geometry stages: 2, merged to 1 when m = 4."""
    if m < 4:
        return 1
    return 1 if m == 4 else 2


def shift_stage_count(m: int) -> int:
    """Number of shift stages: log2 m (distances m/2 ... 1)."""
    return m.bit_length() - 1


def multistage_network_cost(
    m: int,
    stages: int,
    bits: int = tech.WORD_BITS,
    units: int = 1,
    activity: float = 1.0,
) -> CostReport:
    """Generic mux-based multi-stage network unit.

    ``units`` counts physically separate networks (each pays its own
    lane-attach overhead and control); ``activity`` scales switching
    power for designs without our per-stage clock gating.
    """
    if m <= 1 or m & (m - 1):
        raise ValueError(f"m must be a power of two > 1, got {m}")
    if stages <= 0 or units <= 0:
        raise ValueError("stages and units must be positive")
    total = (mux_stage_cost(m, bits) * stages
             + lane_attach_overhead(m) * units
             + network_control_cost() * units)
    return total.scaled_power(activity)


def our_network_cost(m: int, bits: int = tech.WORD_BITS) -> CostReport:
    """The unified inter-lane network (the paper's design).

    The pre-generated automorphism control table lives in the VPU too,
    but at ``(m/2)(m-1)`` bits (~2 kbit at m = 64) it is absorbed by the
    calibrated per-lane overhead, exactly as the paper calls it "a small
    area cost"; :func:`control_table_cost` prices it standalone for the
    ablation benchmarks.
    """
    stages = cg_stage_count(m) + shift_stage_count(m)
    base = multistage_network_cost(m, stages, bits)
    return CostReport(base.area_um2, base.power_mw,
                      f"unified inter-lane network (m={m})")


def twiddle_storage_cost(n: int, m: int,
                         bits: int = tech.WORD_BITS) -> CostReport:
    """Twiddle-factor SRAM for running length-``n`` NTTs on the VPU.

    All stage twiddles of one (N, q) pair are powers of a single root;
    storing the ``n`` distinct powers (streamed a row of ``m/2`` per
    butterfly cycle) is the standard layout.  Not part of the paper's
    network comparison — every design needs twiddles — but reported by
    the implementation-detail breakdowns.
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    macro = SramMacro(
        bits=n * bits,
        io_bits=(m // 2) * bits,
        ports=1,
        duty=0.8,  # one twiddle row per butterfly cycle
        label=f"twiddle SRAM (N={n})",
    )
    return macro.cost()


def control_table_cost(m: int) -> CostReport:
    """Standalone price of the automorphism control-signal SRAM table."""
    macro = SramMacro(
        bits=max(control_table_size_bits(m), 1),
        io_bits=max(m - 1, 1),
        ports=1,
        duty=0.02,  # one table read per automorphism setup, not per cycle
        label="automorphism control table",
    )
    return macro.cost()
