"""7 nm technology constants.

The paper targets the ASAP7 predictive PDK at 1 GHz with 64-bit
datapaths, and models SRAM/register files with FN-CACTI scaled to 7 nm.
We cannot synthesize RTL here, so each constant below is **calibrated**:
chosen once so that the structural formulas in this package reproduce the
paper's published design points, then *shared by every design* so that
the Table II comparison is a consequence of structure, not tuning.

Calibration provenance
----------------------

* ``MUX2_*`` and ``LANE_NET_OVERHEAD_*``: least-squares fit of
  ``area = a * (m * stages) + b * m`` (and likewise for power) against
  all seven rows of Table IV (our network at m = 4 .. 256).  Max residual
  0.9 % for m >= 16, 8.9 % at m = 4.  Physical reading: ~0.14 um^2 and
  ~0.4 uW per 2:1 mux bit including local routing, plus a per-lane cost
  for the butterfly pair links and control drivers.
* ``SRAM_*``: solved from the F1 and SHARP rows of Table II given their
  published buffer structures (F1: dual-port m*m*64 b quadrant-swap
  buffers; SHARP: double-depth 36-bit-word buffers).  The resulting
  0.06 um^2/bit effective cell and ~4 um^2 per IO bit-port sit inside the
  envelope of published 7 nm SRAM macros.
* ``XBAR_*``: solved from the BTS row (full 64x64 crossbar with 64-bit
  links): ~0.074 um^2 per crosspoint bit (a tristate driver is roughly
  half a mux2), wire energy ~0.34 fJ per bit per lane pitch.
* Lane components (Barrett multiplier / modular adder / register file):
  partitioned from the Table II "Ours" whole-VPU row after subtracting
  the network (lane total: 3823.28 um^2, 11.697 mW), split in proportions
  typical of published 64-bit modular-arithmetic units.
* ``ARK_ACTIVITY_FACTOR``: ARK/SHARP ship two always-clocked dedicated
  networks; the paper measures ~1.9x more switching power per mux than
  our fine-grained-gated unified network.  This is the single
  behavioral (non-structural) constant in the model.
"""

#: Target clock (all power numbers are at this frequency).
CLOCK_GHZ = 1.0

#: Datapath word width used throughout the paper's evaluation.
WORD_BITS = 64

# --- mux-based network structures (fit to Table IV) -----------------------

#: Area of one 2:1 mux bit, including local routing [um^2].
MUX2_AREA_PER_BIT = 8.95279 / 64

#: Switching power of one 2:1 mux bit at 1 GHz [mW].
MUX2_POWER_PER_BIT = 0.02546 / 64

#: Per-lane overhead of a lane-attached network unit: butterfly-pair
#: links, control decode, output drivers [um^2 and mW per lane].
LANE_NET_OVERHEAD_AREA = 20.74173
LANE_NET_OVERHEAD_POWER = 0.03803

#: Fixed control/sequencing power of one network unit [mW].
NETWORK_CONTROL_POWER = 0.0942

# --- SRAM macros (solved from F1 + SHARP rows of Table II) ----------------

#: Effective storage area per bit for a small dual-port streaming buffer,
#: array overheads included [um^2/bit].
SRAM_CELL_AREA_PER_BIT = 0.05963

#: Sense-amp / write-driver area per IO bit-port [um^2].
SRAM_IO_AREA_PER_BIT_PORT = 4.158

#: Access energy per IO bit at 1 GHz expressed as power [mW per bit-port
#: at 100% duty].  9.5 uW/bit-GHz = 9.5 fJ/bit.
SRAM_ACCESS_POWER_PER_BIT_PORT = 9.51e-3

#: Leakage per bit [mW] — negligible at these sizes but kept explicit.
SRAM_LEAKAGE_PER_BIT = 3.0e-8

# --- crossbars (solved from the BTS row of Table II) -----------------------

#: Area per crosspoint bit of a full crossbar [um^2].
XBAR_CROSSPOINT_AREA_PER_BIT = 0.074039

#: Wire switching power per bit per lane pitch traversed at 1 GHz [mW].
XBAR_WIRE_POWER_PER_BIT_LANE = 3.44e-4

# --- activity factors -------------------------------------------------------

#: Power multiplier for designs with separate always-clocked permutation
#: units relative to our clock-gated unified network.  ARK runs both its
#: dedicated networks hot (calibrated to its Table II power row); the
#: SHARP instantiation of the same automorphism unit is gated alongside
#: its phase-alternating SRAM buffers and measures near unity.  These are
#: the only behavioral (non-structural) constants in the model — switching
#: activity is a property of each baseline's RTL that cannot be derived
#: from structure alone.
ARK_ACTIVITY_FACTOR = 1.88
SHARP_ACTIVITY_FACTOR = 1.07

# --- lane datapath (partitioned from Table II "Ours" VPU row) --------------

#: Barrett modular multiplier: area ~ coef * width^2 (operand product plus
#: the mu- and q-multiplies of the reduction, pipelined).
BARRETT_AREA_PER_BIT2 = 2580.00 / (64 * 64)
BARRETT_POWER_PER_BIT2 = 8.35 / (64 * 64)

#: Modular adder/subtractor: area ~ coef * width.
MODADD_AREA_PER_BIT = 133.28 / 64
MODADD_POWER_PER_BIT = 0.30 / 64

#: Register file (2R1W, flop-based): area ~ coef * entries * width.
REGFILE_AREA_PER_BIT = 1110.00 / (64 * 64)
REGFILE_POWER_PER_BIT = 3.0472 / (64 * 64)

#: Default register-file depth per lane (entries of WORD_BITS each).
REGFILE_DEFAULT_ENTRIES = 64
