"""Human-readable cost breakdowns.

Rendering helpers that decompose a design's area/power into its
structural components — the tables a hardware paper's "implementation
details" section would show, generated from the same models that
reproduce Tables II/IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwmodel import technology as tech
from repro.hwmodel.components import (
    CostReport,
    barrett_multiplier_cost,
    lane_attach_overhead,
    modular_adder_cost,
    mux_stage_cost,
    network_control_cost,
    register_file_cost,
)
from repro.hwmodel.network_cost import (
    cg_stage_count,
    control_table_cost,
    shift_stage_count,
)


@dataclass(frozen=True)
class BreakdownLine:
    """One component row of a breakdown table."""

    name: str
    count: int
    cost: CostReport

    @property
    def area_um2(self) -> float:
        return self.cost.area_um2

    @property
    def power_mw(self) -> float:
        return self.cost.power_mw


def network_breakdown(m: int, bits: int = tech.WORD_BITS) -> list[BreakdownLine]:
    """Component-by-component split of the unified inter-lane network."""
    cg = cg_stage_count(m)
    shifts = shift_stage_count(m)
    return [
        BreakdownLine("CG stages (DIT/DIF)", cg, mux_stage_cost(m, bits) * cg),
        BreakdownLine("shift stages", shifts, mux_stage_cost(m, bits) * shifts),
        BreakdownLine("lane attach (pair links, drivers)", 1,
                      lane_attach_overhead(m)),
        BreakdownLine("control sequencing", 1, network_control_cost()),
        BreakdownLine("automorphism control table", 1, control_table_cost(m)),
    ]


def vpu_breakdown(m: int, bits: int = tech.WORD_BITS,
                  regfile_entries: int = tech.REGFILE_DEFAULT_ENTRIES
                  ) -> list[BreakdownLine]:
    """Component split of the whole VPU (lanes + network)."""
    lines = [
        BreakdownLine("Barrett modular multipliers", m,
                      barrett_multiplier_cost(bits) * m),
        BreakdownLine("modular adders/subtractors", m,
                      modular_adder_cost(bits) * m),
        BreakdownLine("register files (2R1W)", m,
                      register_file_cost(regfile_entries, bits) * m),
    ]
    total_net = CostReport(0.0, 0.0)
    for line in network_breakdown(m, bits):
        total_net = total_net + line.cost
    lines.append(BreakdownLine("inter-lane network (all stages)", 1,
                               total_net))
    return lines


def render_breakdown(lines: list[BreakdownLine], title: str = "") -> str:
    """Format a breakdown as an aligned text table with a total row."""
    total_area = sum(line.area_um2 for line in lines)
    total_power = sum(line.power_mw for line in lines)
    rows = [f"{title}".rstrip(),
            f"{'component':38s} {'count':>5s} {'area um^2':>12s} "
            f"{'%':>6s} {'power mW':>9s} {'%':>6s}"]
    for line in lines:
        rows.append(
            f"{line.name:38s} {line.count:5d} {line.area_um2:12.2f} "
            f"{100 * line.area_um2 / total_area:5.1f}% "
            f"{line.power_mw:9.3f} {100 * line.power_mw / total_power:5.1f}%"
        )
    rows.append(f"{'total':38s} {'':5s} {total_area:12.2f} {'':6s} "
                f"{total_power:9.3f}")
    return "\n".join(r for r in rows if r)
