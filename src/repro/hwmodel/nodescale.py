"""Technology-node scaling (the paper's F1 methodology detail).

The paper's §V-A: "BTS, ARK, and SHARP are under 7 nm; F1 uses 14/12 nm,
and we scale it to 7 nm."  This module provides that scaling as an
explicit, documented transformation so the comparison methodology is
reproducible rather than implicit in the calibrated constants.

Scaling factors follow the standard Dennard-esque first-order rules used
for such normalizations: logic area scales with the square of the
feature-size ratio damped by a fin-era efficiency factor, and dynamic
power with capacitance x voltage^2 trends between the nodes.
"""

from __future__ import annotations

from repro.hwmodel.components import CostReport

#: First-order area scale factors to 7 nm, relative density from
#: published logic-density figures (MTr/mm^2) rather than the naive
#: (node ratio)^2, which overestimates post-28 nm shrinks.
_AREA_DENSITY_MTR_PER_MM2 = {
    7: 91.2,
    10: 52.5,
    12: 33.8,
    14: 28.9,
    16: 28.9,
    22: 16.5,
    28: 9.3,
}

#: Relative dynamic energy per operation (capacitance * V^2 trend),
#: normalized to 7 nm.
_ENERGY_RELATIVE = {
    7: 1.00,
    10: 1.35,
    12: 1.60,
    14: 1.75,
    16: 1.75,
    22: 2.60,
    28: 3.30,
}


def area_scale_factor(from_nm: int, to_nm: int = 7) -> float:
    """Multiplier applied to area when porting between nodes."""
    try:
        return (_AREA_DENSITY_MTR_PER_MM2[from_nm]
                / _AREA_DENSITY_MTR_PER_MM2[to_nm])
    except KeyError as exc:
        raise ValueError(f"no density data for node {exc.args[0]} nm") from exc


def power_scale_factor(from_nm: int, to_nm: int = 7) -> float:
    """Multiplier applied to dynamic power when porting between nodes
    (iso-frequency)."""
    try:
        return _ENERGY_RELATIVE[to_nm] / _ENERGY_RELATIVE[from_nm]
    except KeyError as exc:
        raise ValueError(f"no energy data for node {exc.args[0]} nm") from exc


def scale_to_node(cost: CostReport, from_nm: int, to_nm: int = 7) -> CostReport:
    """Port a cost report between technology nodes.

    Example: an F1-style unit synthesized at 14 nm, normalized to the
    paper's 7 nm comparison point, shrinks ~3.2x in area and ~1.75x in
    power.
    """
    return CostReport(
        cost.area_um2 * area_scale_factor(from_nm, to_nm),
        cost.power_mw * power_scale_factor(from_nm, to_nm),
        f"{cost.label} ({from_nm}nm -> {to_nm}nm)",
    )
