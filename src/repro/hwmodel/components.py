"""Area/power formulas for the datapath components.

Every formula is structural (counts of bits, stages, entries) times a
technology constant from :mod:`repro.hwmodel.technology`.  Costs combine
with ``+`` and scale with ``*`` so design roll-ups read naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hwmodel import technology as tech


@dataclass(frozen=True)
class CostReport:
    """An (area, power) pair with provenance.

    Attributes
    ----------
    area_um2:
        Silicon area in square micrometres.
    power_mw:
        Power at the target clock in milliwatts.
    label:
        Human-readable description of what was priced.
    """

    area_um2: float
    power_mw: float
    label: str = ""

    def __add__(self, other: "CostReport") -> "CostReport":
        label = " + ".join(p for p in (self.label, other.label) if p)
        return CostReport(self.area_um2 + other.area_um2,
                          self.power_mw + other.power_mw, label)

    def __mul__(self, factor: float) -> "CostReport":
        return CostReport(self.area_um2 * factor, self.power_mw * factor,
                          self.label)

    __rmul__ = __mul__

    def scaled_power(self, activity: float) -> "CostReport":
        """Scale only the power (activity/clock-gating factor)."""
        return CostReport(self.area_um2, self.power_mw * activity, self.label)

    def ratio_to(self, other: "CostReport") -> tuple[float, float]:
        """Return (area ratio, power ratio) of this cost over ``other``."""
        return self.area_um2 / other.area_um2, self.power_mw / other.power_mw


def mux_stage_cost(lanes: int, bits: int = tech.WORD_BITS) -> CostReport:
    """One network stage: ``lanes`` 2:1 muxes of ``bits`` each."""
    n = lanes * bits
    return CostReport(n * tech.MUX2_AREA_PER_BIT,
                      n * tech.MUX2_POWER_PER_BIT,
                      f"mux stage ({lanes}x{bits}b)")


def lane_attach_overhead(lanes: int) -> CostReport:
    """Per-lane overhead of attaching one network unit to the lanes:
    butterfly-pair links, control decoders, output drivers."""
    return CostReport(lanes * tech.LANE_NET_OVERHEAD_AREA,
                      lanes * tech.LANE_NET_OVERHEAD_POWER,
                      f"lane attach ({lanes} lanes)")


def network_control_cost() -> CostReport:
    """Fixed sequencing/control of one network unit (power only)."""
    return CostReport(0.0, tech.NETWORK_CONTROL_POWER, "network control")


def barrett_multiplier_cost(bits: int = tech.WORD_BITS) -> CostReport:
    """The lane's Barrett modular multiplier (paper §III-A)."""
    b2 = bits * bits
    return CostReport(b2 * tech.BARRETT_AREA_PER_BIT2,
                      b2 * tech.BARRETT_POWER_PER_BIT2,
                      f"Barrett modmul ({bits}b)")


def modular_adder_cost(bits: int = tech.WORD_BITS) -> CostReport:
    """The lane's modular adder/subtractor."""
    return CostReport(bits * tech.MODADD_AREA_PER_BIT,
                      bits * tech.MODADD_POWER_PER_BIT,
                      f"modadd ({bits}b)")


def register_file_cost(entries: int = tech.REGFILE_DEFAULT_ENTRIES,
                       bits: int = tech.WORD_BITS) -> CostReport:
    """The lane's 2R1W register file."""
    n = entries * bits
    return CostReport(n * tech.REGFILE_AREA_PER_BIT,
                      n * tech.REGFILE_POWER_PER_BIT,
                      f"regfile ({entries}x{bits}b 2R1W)")


def lane_cost(bits: int = tech.WORD_BITS,
              regfile_entries: int = tech.REGFILE_DEFAULT_ENTRIES) -> CostReport:
    """One full computing lane (Fig. 1c): modmul + modadd + regfile."""
    total = (barrett_multiplier_cost(bits)
             + modular_adder_cost(bits)
             + register_file_cost(regfile_entries, bits))
    return CostReport(total.area_um2, total.power_mw, f"lane ({bits}b)")
