"""Whole-VPU cost roll-up (paper Table II, right-hand columns).

A VPU is ``m`` computing lanes (Barrett modmul + modadd + register file)
plus one permutation structure — ours, or any of the ported baselines.
As the paper observes, the lanes dominate; the network choice still moves
the total by up to 1.2x area / 1.1x power.
"""

from __future__ import annotations

from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport, lane_cost


def lanes_cost(m: int, bits: int = tech.WORD_BITS,
               regfile_entries: int = tech.REGFILE_DEFAULT_ENTRIES) -> CostReport:
    """All ``m`` computing lanes of a VPU."""
    one = lane_cost(bits, regfile_entries)
    return CostReport(one.area_um2 * m, one.power_mw * m, f"{m} lanes")


def vpu_cost(m: int, network: CostReport,
             bits: int = tech.WORD_BITS,
             regfile_entries: int = tech.REGFILE_DEFAULT_ENTRIES) -> CostReport:
    """Full VPU: lanes plus the given permutation-network cost."""
    total = lanes_cost(m, bits, regfile_entries) + network
    return CostReport(total.area_um2, total.power_mw,
                      f"VPU (m={m}, {network.label})")
