"""Analytic 7 nm area/power models (paper §V, Tables II and IV).

The paper synthesizes Verilog RTL with the ASAP7 library and models SRAM
with FN-CACTI.  This package substitutes an analytic component-level
model: every datapath structure (mux stage, wire, SRAM macro, Barrett
multiplier, register file) has an area/power formula whose constants are
calibrated once against the published design points (see
``technology.py`` for the calibration provenance).  Relative comparisons
between designs then follow from structure — mux counts, stage counts,
SRAM bits, crossbar size — not from per-design fudging.
"""

from repro.hwmodel.components import (
    CostReport,
    barrett_multiplier_cost,
    lane_cost,
    modular_adder_cost,
    mux_stage_cost,
    register_file_cost,
)
from repro.hwmodel.network_cost import (
    multistage_network_cost,
    our_network_cost,
)
from repro.hwmodel.sram import SramMacro
from repro.hwmodel.vpu_cost import vpu_cost

__all__ = [
    "CostReport",
    "SramMacro",
    "barrett_multiplier_cost",
    "lane_cost",
    "modular_adder_cost",
    "multistage_network_cost",
    "mux_stage_cost",
    "our_network_cost",
    "register_file_cost",
    "vpu_cost",
]
