"""The VPU's vector instruction set.

Every instruction operates on whole register rows (one word per lane,
SIMD) and respects the per-lane 2R1W register-file port budget.  The
compilers in :mod:`repro.mapping` emit :class:`Program` objects; the
executor in :mod:`repro.core.vpu` runs them and accounts cycles.

Twiddle factors and other per-lane constants are attached to the
instructions as vectors; in hardware they stream from the register file
or twiddle SRAM, and the cycle accounting treats them as one operand
read, exactly like the paper's butterfly that takes its twiddle "from
the register file in one of the two lanes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.network import NetworkConfig


@dataclass(frozen=True)
class Instruction:
    """Base class for all VPU instructions."""

    def read_regs(self) -> list[int]:
        return []

    def write_regs(self) -> list[int]:
        return []

    def data_read_regs(self, m: int) -> list[int]:
        """Registers whose *values* this instruction consumes.

        :meth:`read_regs` models the register-file *port* budget (what
        the 2R1W check charges); this models true dataflow for the
        static verifier: streamed constants are excluded, and diagonal
        network reads expand to the full per-lane register window for a
        machine with ``m`` lanes.
        """
        return self.read_regs()

    #: Does this instruction occupy the modular multipliers?
    uses_multiplier: bool = field(default=False, init=False, repr=False)
    #: Does this instruction occupy the modular adders?
    uses_adder: bool = field(default=False, init=False, repr=False)
    #: Does this instruction traverse the inter-lane network?
    uses_network: bool = field(default=False, init=False, repr=False)


@dataclass(frozen=True)
class _BinaryOp(Instruction):
    dst: int
    a: int
    b: int

    def read_regs(self) -> list[int]:
        return [self.a, self.b]

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class VAdd(_BinaryOp):
    """Element-wise modular addition: ``dst = a + b mod q``."""

    uses_adder = True


@dataclass(frozen=True)
class VSub(_BinaryOp):
    """Element-wise modular subtraction: ``dst = a - b mod q``."""

    uses_adder = True


@dataclass(frozen=True)
class VMul(_BinaryOp):
    """Element-wise modular multiplication: ``dst = a * b mod q``."""

    uses_multiplier = True


@dataclass(frozen=True)
class VMulScalar(Instruction):
    """Multiply a register by one scalar constant: ``dst = a * c mod q``."""

    dst: int
    a: int
    scalar: int
    uses_multiplier = True

    def read_regs(self) -> list[int]:
        return [self.a]

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class VMulTwiddle(Instruction):
    """Multiply a register by a per-lane constant vector.

    Used for the element-wise twiddle passes between NTT dimensions
    (§IV-A) and the psi-folding of negacyclic transforms.
    """

    dst: int
    a: int
    twiddles: tuple[int, ...]
    uses_multiplier = True

    def read_regs(self) -> list[int]:
        return [self.a, self.dst]  # twiddles stream through port 2

    def data_read_regs(self, m: int) -> list[int]:
        # The dst slot is a port charge for the streamed twiddles; the
        # only register value consumed is ``a``.
        return [self.a]

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class Butterfly(Instruction):
    """Paired-lane butterfly on adjacent lanes (Fig. 1c).

    For each lane pair ``(2j, 2j+1)`` holding ``(u, v)``:

    * ``dif``: ``out = (u + v, (u - v) * w_j)``
    * ``dit``: ``out = (u + w_j*v, u - w_j*v)``

    ``twiddles`` has one factor per pair (length m/2).
    """

    kind: str
    dst: int
    src: int
    twiddles: tuple[int, ...]
    uses_multiplier = True
    uses_adder = True

    def __post_init__(self) -> None:
        if self.kind not in ("dit", "dif"):
            raise ValueError(f"kind must be 'dit' or 'dif', got {self.kind}")

    def read_regs(self) -> list[int]:
        return [self.src]

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class NttStage(Instruction):
    """One fused constant-geometry NTT stage (Fig. 1c + Fig. 2).

    In hardware the CG network stage feeds the paired-lane butterflies
    directly, so routing and arithmetic retire together in one cycle:

    * ``dif``: route through the CG-DIF gather, then DIF-butterfly the
      adjacent pairs;
    * ``dit``: DIT-butterfly the adjacent pairs, then route through the
      CG-DIT scatter.

    ``group_size`` splits the CG stage into independent sub-networks for
    NTT dimensions shorter than the lane count (§IV-A).
    """

    kind: str
    dst: int
    src: int
    twiddles: tuple[int, ...]
    group_size: int | None = None
    uses_multiplier = True
    uses_adder = True
    uses_network = True

    def __post_init__(self) -> None:
        if self.kind not in ("dit", "dif"):
            raise ValueError(f"kind must be 'dit' or 'dif', got {self.kind}")

    def read_regs(self) -> list[int]:
        return [self.src]

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class NetworkPass(Instruction):
    """One traversal of the inter-lane network: ``dst = network(src)``.

    The optional *diagonal read* mode models the per-lane register
    addressing that Fig. 3's transposes rely on ("write them to the
    register addresses of x|z"): each lane has its own register file and
    decoder, so lane ``l`` may read register
    ``src + (l + src_rot) mod src_window`` instead of the common ``src``.
    """

    dst: int
    src: int
    config: NetworkConfig
    src_rot: int | None = None
    src_window: int | None = None
    uses_network = True

    def __post_init__(self) -> None:
        if (self.src_rot is None) != (self.src_window is None):
            raise ValueError("src_rot and src_window must be given together")
        if self.src_window is not None and self.src_window <= 0:
            raise ValueError(f"src_window must be positive, got {self.src_window}")

    def read_regs(self) -> list[int]:
        if self.src_rot is None:
            return [self.src]
        # Diagonal read: one register per lane, still one read port each.
        return [self.src]

    def data_read_regs(self, m: int) -> list[int]:
        if self.src_rot is None:
            return [self.src]
        # Lane l reads register src + (l + src_rot) % src_window.
        assert self.src_window is not None
        return sorted({self.src + (lane + self.src_rot) % self.src_window
                       for lane in range(m)})

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class Load(Instruction):
    """Load one memory row into a register: ``dst = mem[addr]``."""

    dst: int
    addr: int

    def write_regs(self) -> list[int]:
        return [self.dst]


@dataclass(frozen=True)
class Store(Instruction):
    """Store one register to a memory row: ``mem[addr] = src``."""

    src: int
    addr: int

    def read_regs(self) -> list[int]:
        return [self.src]


@dataclass
class Program:
    """An instruction sequence with a human-readable label."""

    instructions: list[Instruction] = field(default_factory=list)
    label: str = ""

    def append(self, instr: Instruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: list[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def count(self, kind: type[Instruction]) -> int:
        """Number of instructions of the given class."""
        return sum(1 for i in self.instructions if isinstance(i, kind))

    def disassemble(self, limit: int | None = None) -> str:
        """Human-readable listing (twiddle vectors abbreviated)."""
        lines = [f"; {self.label} ({len(self.instructions)} instructions)"]
        shown = self.instructions if limit is None else self.instructions[:limit]
        for pc, instr in enumerate(shown):
            lines.append(f"{pc:5d}: {_format_instruction(instr)}")
        if limit is not None and len(self.instructions) > limit:
            lines.append(f"  ... {len(self.instructions) - limit} more")
        return "\n".join(lines)


def _format_instruction(instr: Instruction) -> str:
    name = type(instr).__name__
    if isinstance(instr, (VAdd, VSub, VMul)):
        op = {"VAdd": "+", "VSub": "-", "VMul": "*"}[name]
        return f"r{instr.dst} = r{instr.a} {op} r{instr.b}"
    if isinstance(instr, VMulScalar):
        return f"r{instr.dst} = r{instr.a} * {instr.scalar}"
    if isinstance(instr, VMulTwiddle):
        return f"r{instr.dst} = r{instr.a} * tw[{len(instr.twiddles)}]"
    if isinstance(instr, Butterfly):
        return f"r{instr.dst} = bfly.{instr.kind}(r{instr.src})"
    if isinstance(instr, NttStage):
        group = f" /g{instr.group_size}" if instr.group_size else ""
        return f"r{instr.dst} = nttstage.{instr.kind}(r{instr.src}){group}"
    if isinstance(instr, NetworkPass):
        cfg = instr.config
        parts = []
        if cfg.cg:
            parts.append(f"cg={cfg.cg}")
        if cfg.shift is not None:
            parts.append("shift")
        if instr.src_rot is not None:
            parts.append(f"diag(rot={instr.src_rot},w={instr.src_window})")
        detail = ",".join(parts) or "pass"
        return f"r{instr.dst} = net[{detail}](r{instr.src})"
    if isinstance(instr, Load):
        return f"r{instr.dst} = mem[{instr.addr}]"
    if isinstance(instr, Store):
        return f"mem[{instr.addr}] = r{instr.src}"
    return repr(instr)  # pragma: no cover - future instructions
