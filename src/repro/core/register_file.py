"""Per-lane register files (paper Fig. 1c: 2 read ports, 1 write port).

The model stores all lanes' registers as one ``(entries, m)`` array —
register ``r`` across the lanes is row ``r`` — because every instruction
addresses the same register index in every lane (SIMD).  Port-usage
checking enforces the 2R1W constraint per instruction.
"""

from __future__ import annotations

import numpy as np


class RegisterFile:
    """A bank of ``entries`` registers of one word per lane."""

    def __init__(self, m: int, entries: int):
        if m <= 0 or entries <= 0:
            raise ValueError("m and entries must be positive")
        self.m = m
        self.entries = entries
        self.data = np.zeros((entries, m), dtype=np.uint64)
        self.reads = 0
        self.writes = 0
        #: Optional fault-injection hook (guard-checked: None costs one
        #: branch per read and zero modeled cycles).
        self.fault_hook = None

    def _check(self, reg: int) -> None:
        if not 0 <= reg < self.entries:
            raise IndexError(f"register {reg} out of range [0, {self.entries})")

    def read(self, reg: int) -> np.ndarray:
        """Read one register row (all lanes)."""
        self._check(reg)
        self.reads += 1
        value = self.data[reg].copy()
        hook = self.fault_hook
        if hook is not None:
            value = hook.filter_regfile_read(reg, value)
        return value

    def write(self, reg: int, value: np.ndarray) -> None:
        """Write one register row (all lanes)."""
        self._check(reg)
        value = np.asarray(value, dtype=np.uint64)
        if value.shape != (self.m,):
            raise ValueError(f"expected shape ({self.m},), got {value.shape}")
        self.writes += 1
        self.data[reg] = value

    def check_ports(self, read_regs: list[int], write_regs: list[int]) -> None:
        """Enforce the 2R1W port budget of one instruction."""
        if len(set(read_regs)) > 2:
            raise ValueError(f"instruction needs {len(set(read_regs))} read ports > 2")
        if len(set(write_regs)) > 1:
            raise ValueError(f"instruction needs {len(set(write_regs))} write ports > 1")
