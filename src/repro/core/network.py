"""The full inter-lane network (paper Fig. 2).

Stage order matches the figure: the DIT constant-geometry stage, the DIF
constant-geometry stage, then ``log2 m`` shift stages of decreasing
distance ``m/2, m/4, ..., 1``.  At ``m = 4`` the two CG stages coincide
and the hardware merges them; the model keeps one stage object and
accepts either CG activation.

One traversal is configured by a :class:`NetworkConfig`: at most one CG
stage active (they gather/scatter conflicting patterns) and a
:class:`~repro.automorphism.controls.ShiftControls` word for the shift
stages.  Inactive stages pass lanes straight through — the clock-gating
that the power model credits the unified design for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automorphism.controls import ShiftControls
from repro.core.stages import CgStage, ShiftStage


def _identity_controls(m: int) -> ShiftControls:
    log_m = m.bit_length() - 1
    return ShiftControls(m, tuple(tuple(0 for _ in range(1 << b))
                                  for b in range(log_m)))


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of one network traversal.

    Attributes
    ----------
    cg:
        ``None`` (both CG stages inactive), ``"dit"`` or ``"dif"``.
    cg_group_size:
        Split the active CG stage into independent sub-networks of this
        size (for NTT dimensions shorter than ``m``).  ``None`` = full.
    shift:
        Control word for the shift stages; ``None`` = all inactive.
    """

    cg: str | None = None
    cg_group_size: int | None = None
    shift: ShiftControls | None = None

    def __post_init__(self) -> None:
        if self.cg not in (None, "dit", "dif"):
            raise ValueError(f"cg must be None, 'dit' or 'dif', got {self.cg}")
        if self.cg_group_size is not None and self.cg is None:
            raise ValueError("cg_group_size given without an active CG stage")


class InterLaneNetwork:
    """The unified inter-lane network on ``m`` lanes."""

    def __init__(self, m: int):
        if m < 4 or m & (m - 1):
            raise ValueError(f"m must be a power of two >= 4, got {m}")
        self.m = m
        self.merged_cg = m == 4
        self.cg_dit = CgStage(m, "dit")
        self.cg_dif = CgStage(m, "dif")
        self.shift_stages = [
            ShiftStage(m, 1 << b) for b in reversed(range(m.bit_length() - 1))
        ]
        self.passes = 0
        #: Optional fault-injection hook (guard-checked: None costs one
        #: branch per traversal and zero modeled cycles).
        self.fault_hook = None

    @property
    def stage_count(self) -> int:
        """Physical stages: CG (1 at m=4, else 2) + log2 m shifts."""
        cg = 1 if self.merged_cg else 2
        return cg + len(self.shift_stages)

    @property
    def control_bit_count(self) -> int:
        """Live control bits per pass: 1 per CG stage + m-1 shift bits."""
        cg = 1 if self.merged_cg else 2
        return cg + sum(s.control_signal_count for s in self.shift_stages)

    def traverse(self, x: np.ndarray, config: NetworkConfig) -> np.ndarray:
        """Send one m-element vector through the configured network."""
        x = np.asarray(x)
        if len(x) != self.m:
            raise ValueError(f"expected {self.m} lanes, got {len(x)}")
        hook = self.fault_hook
        if hook is not None:
            # Control-word faults: CG activation lines and shift group
            # bits are corrupted before they steer anything.
            config = hook.filter_network_config(config, self.m)
        out = x
        # CG stages first (Fig. 2 order), at most one active.
        if config.cg == "dit":
            out = self.cg_dit.apply(out, True, config.cg_group_size)
        elif config.cg == "dif":
            out = self.cg_dif.apply(out, True, config.cg_group_size)
        # Shift stages, largest distance first.
        controls = config.shift or _identity_controls(self.m)
        if controls.m != self.m:
            raise ValueError(f"controls sized for m={controls.m}, need {self.m}")
        for index, stage in enumerate(self.shift_stages):
            b = stage.distance.bit_length() - 1
            if hook is not None:
                # Raw mux-select faults sit below the co-controlled group
                # bits and may break the routing bijection (MuxConflictError).
                selects = stage.selects_from_group_bits(controls.group_bits[b])
                out = stage.forward(out, hook.filter_mux_selects(index, selects))
            else:
                out = stage.apply(out, controls.group_bits[b])
        self.passes += 1
        return out

    def traverse_rows(self, rows: np.ndarray, config: NetworkConfig) -> np.ndarray:
        """Traverse several independent m-element rows (one per cycle)."""
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.m:
            raise ValueError(f"expected (*, {self.m}) rows, got {rows.shape}")
        return np.stack([self.traverse(row, config) for row in rows])
