"""Network stages at MUX level (paper Fig. 2).

Every stage is a row of ``m`` 2-to-1 MUXes: output lane ``j`` selects
between its *local* input (lane ``j``) and one *fixed* remote lane.  The
remote source is what distinguishes the stage types:

* :class:`CgStage` — the constant-geometry NTT wiring.  DIF gathers the
  strided butterfly pair ``(j, j+m/2)`` into adjacent lanes
  ``(2j, 2j+1)``; DIT scatters adjacent results back.  Active or
  inactive as a whole (one control bit), optionally split into
  independent groups for short NTT dimensions (§IV-A).
* :class:`ShiftStage` — a cyclic shift by a fixed power-of-two distance
  ``d``.  Its MUXes form ``d`` disjoint cycles with one control signal
  each (§III-B: "the stages have m/2, m/4, ..., 1 independent signals").
"""

from __future__ import annotations

import numpy as np

from repro.ntt.constant_geometry import (
    dif_gather_permutation,
    dit_scatter_permutation,
)


class MuxConflictError(ValueError):
    """A select pattern drives two sources onto one output lane.

    Reachable only through fault injection on raw mux select lines —
    legal control words are co-controlled per lane cycle and always
    describe bijections.  Distinct from ``ValueError`` so fault
    campaigns can classify it as a ``crash`` outcome.
    """


class _Stage:
    """Common mux-row machinery: a fixed remote-source wiring."""

    def __init__(self, m: int, remote_source: np.ndarray, name: str):
        if m < 2 or m & (m - 1):
            raise ValueError(f"m must be a power of two >= 2, got {m}")
        self.m = m
        self.remote_source = np.asarray(remote_source, dtype=np.int64)
        self.name = name

    def mux_count(self) -> int:
        return self.m

    def forward(self, x: np.ndarray, selects: np.ndarray) -> np.ndarray:
        """Drive the mux row: ``out[j] = x[remote[j]] if selects[j] else x[j]``.

        ``selects`` must describe a bijection (checked), mirroring the
        hardware constraint that conflicting MUXes are co-controlled.
        """
        x = np.asarray(x)
        if len(x) != self.m:
            raise ValueError(f"expected {self.m} lanes, got {len(x)}")
        selects = np.asarray(selects, dtype=bool)
        if len(selects) != self.m:
            raise ValueError(f"expected {self.m} selects, got {len(selects)}")
        src = np.where(selects, self.remote_source, np.arange(self.m))
        if len(np.unique(src)) != self.m:
            raise MuxConflictError(
                f"{self.name}: select pattern is not a bijection"
            )
        return x[src]


class CgStage(_Stage):
    """A constant-geometry stage (DIT or DIF flavour).

    ``group_size`` < m activates the grouped mode: the stage behaves as
    ``m / group_size`` independent CG networks, used when the last NTT
    dimension is shorter than the lane count.
    """

    def __init__(self, m: int, kind: str):
        if kind not in ("dit", "dif"):
            raise ValueError(f"kind must be 'dit' or 'dif', got {kind}")
        # Both permutations are already in source-index form:
        # out[p] = in[perm[p]].
        source = (dit_scatter_permutation(m) if kind == "dit"
                  else dif_gather_permutation(m))
        super().__init__(m, source, f"cg-{kind}")
        self.kind = kind

    def grouped_source(self, group_size: int) -> np.ndarray:
        """Source indices when split into independent sub-networks."""
        if group_size < 2 or group_size > self.m or group_size & (group_size - 1):
            raise ValueError(f"bad group size {group_size}")
        if self.m % group_size:
            raise ValueError(f"{group_size} does not divide {self.m}")
        sub = CgStage(group_size, self.kind).remote_source
        blocks = [sub + g * group_size for g in range(self.m // group_size)]
        return np.concatenate(blocks)

    def apply(self, x: np.ndarray, active: bool = True,
              group_size: int | None = None) -> np.ndarray:
        """Route a vector through the stage (whole-stage control bit)."""
        x = np.asarray(x)
        if not active:
            return x.copy()
        if group_size is None or group_size == self.m:
            return x[self.remote_source]
        return x[self.grouped_source(group_size)]


class ShiftStage(_Stage):
    """A cyclic-shift stage of fixed distance ``d`` (a power of two).

    Output lane ``j`` can take lane ``(j - d) mod m``.  The ``d`` control
    signals each govern one cycle of lanes congruent mod ``d``.
    """

    def __init__(self, m: int, distance: int):
        if distance <= 0 or distance >= m or distance & (distance - 1):
            raise ValueError(f"distance must be a power of two in (0, m), got {distance}")
        source = (np.arange(m) - distance) % m
        super().__init__(m, source, f"shift-{distance}")
        self.distance = distance

    @property
    def control_signal_count(self) -> int:
        """Independent control signals: one per lane cycle = distance."""
        return self.distance

    def selects_from_group_bits(self, group_bits: tuple[int, ...]) -> np.ndarray:
        """Expand per-cycle control bits to per-lane mux selects."""
        if len(group_bits) != self.distance:
            raise ValueError(
                f"stage distance {self.distance} needs {self.distance} bits"
            )
        bits = np.array(group_bits, dtype=np.int64)
        return bits[np.arange(self.m) % self.distance].astype(bool)

    def apply(self, x: np.ndarray, group_bits: tuple[int, ...]) -> np.ndarray:
        """Route a vector using per-cycle group control bits."""
        return self.forward(x, self.selects_from_group_bits(group_bits))
