"""The cycle-counting VPU executor (paper Fig. 1b/1c).

:class:`VectorProcessingUnit` binds ``m`` lanes of Barrett modular
arithmetic, one per-lane 2R1W register file, and the inter-lane network
into an executor for :class:`~repro.core.isa.Program` objects.

Cycle model: the unit is fully pipelined, one instruction retires per
cycle.  Each cycle the executor records which resources were busy
(multipliers, adders, network), from which the Table III throughput
utilization is computed — utilization is butterfly/compute cycles over
total cycles, the paper's "actual throughput on our VPU vs. the ideal
full throughput".

Moduli below 2**31 use the vectorized Barrett path; the datapath is
bit-accurate with the scalar Barrett model either way (the tests check
both against plain modular arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arith.barrett import BarrettReducer
from repro.core.isa import (
    Butterfly,
    Instruction,
    Load,
    NetworkPass,
    NttStage,
    Program,
    Store,
    VAdd,
    VMul,
    VMulScalar,
    VMulTwiddle,
    VSub,
)
from repro.core.network import InterLaneNetwork, NetworkConfig
from repro.core.register_file import RegisterFile
from repro.obs import current_obs_hook


class VectorMemory:
    """A simple row-addressed scratch memory (models the on-chip SRAM
    feeding the VPU; rows are m-element vectors)."""

    def __init__(self, m: int, rows: int):
        if m <= 0 or rows <= 0:
            raise ValueError("m and rows must be positive")
        self.m = m
        self.rows = rows
        self.data = np.zeros((rows, m), dtype=np.uint64)
        #: Optional fault-injection hook (guard-checked no-op when None).
        self.fault_hook = None

    def load_vector(self, x: np.ndarray, base_row: int = 0) -> None:
        """Pack a flat length-``k*m`` vector into rows (row-major)."""
        x = np.asarray(x, dtype=np.uint64)
        if len(x) % self.m:
            raise ValueError(f"vector length {len(x)} not a multiple of m={self.m}")
        k = len(x) // self.m
        if base_row + k > self.rows:
            raise ValueError("vector does not fit in memory")
        self.data[base_row:base_row + k] = x.reshape(k, self.m)

    def read_row(self, addr: int) -> np.ndarray:
        """Read one row through the (optional) fault hook — the path
        every ``Load`` instruction takes."""
        value = self.data[addr].copy()
        hook = self.fault_hook
        if hook is not None:
            value = hook.filter_memory_read(addr, value)
        return value

    def read_vector(self, length: int, base_row: int = 0) -> np.ndarray:
        """Read back a flat vector of ``length`` elements."""
        if length % self.m:
            raise ValueError(f"length {length} not a multiple of m={self.m}")
        k = length // self.m
        return self.data[base_row:base_row + k].reshape(-1).copy()


@dataclass
class ExecutionStats:
    """Resource accounting for one program run."""

    cycles: int = 0
    multiplier_busy: int = 0
    adder_busy: int = 0
    network_passes: int = 0
    loads: int = 0
    stores: int = 0
    by_type: dict = field(default_factory=dict)

    def record(self, instr: Instruction) -> None:
        self.cycles += 1
        name = type(instr).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1
        if instr.uses_multiplier:
            self.multiplier_busy += 1
        if instr.uses_adder:
            self.adder_busy += 1
        if instr.uses_network:
            self.network_passes += 1
        if isinstance(instr, Load):
            self.loads += 1
        if isinstance(instr, Store):
            self.stores += 1

    def compute_utilization(self) -> float:
        """Fraction of cycles the arithmetic lanes did useful work."""
        if self.cycles == 0:
            return 0.0
        busy = sum(
            count for name, count in self.by_type.items()
            if name in ("VAdd", "VSub", "VMul", "VMulScalar",
                        "VMulTwiddle", "Butterfly")
        )
        return busy / self.cycles


class VectorProcessingUnit:
    """An m-lane unified VPU bound to one modulus at a time."""

    def __init__(self, m: int = 64, q: int = 998244353,
                 regfile_entries: int = 64, memory_rows: int = 4096):
        self.m = m
        self.network = InterLaneNetwork(m)
        self.regfile = RegisterFile(m, regfile_entries)
        self.memory = VectorMemory(m, memory_rows)
        self.stats = ExecutionStats()
        self.fault_hook = None
        self.set_modulus(q)

    def install_fault_hook(self, hook) -> None:
        """Attach a fault injector to every stateful component (None
        detaches).  Dormant hooks are guard-checked (FHC005): disabled
        injection costs one branch per touch point and zero modeled
        cycles."""
        self.fault_hook = hook
        self.regfile.fault_hook = hook
        self.memory.fault_hook = hook
        self.network.fault_hook = hook

    def resize_memory(self, rows: int) -> None:
        """Replace the scratch memory with a larger one, preserving any
        installed fault hook (callers used to swap ``self.memory`` raw,
        silently dropping the hook)."""
        memory = VectorMemory(self.m, rows)
        memory.fault_hook = self.fault_hook
        self.memory = memory

    def set_modulus(self, q: int) -> None:
        """Rebind the lanes' Barrett units to a new RNS modulus."""
        self.reducer = BarrettReducer(q)
        self.q = q
        self._vectorized = q < (1 << 31)

    def reset_stats(self) -> None:
        self.stats = ExecutionStats()

    # -- arithmetic helpers (bit-accurate with the Barrett datapath) -----

    def _mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self._vectorized:
            out = self.reducer.mul_vec(a, b)
        else:
            out = np.array([self.reducer.mul(int(x), int(y))
                            for x, y in zip(a, b)], dtype=np.uint64)
        hook = self.fault_hook
        if hook is not None:
            out = hook.filter_alu("mul", out)
        return out

    def _add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        q = np.uint64(self.q)
        t = a % q + b % q
        out = np.where(t >= q, t - q, t)
        hook = self.fault_hook
        if hook is not None:
            out = hook.filter_alu("add", out)
        return out

    def _sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        q = np.uint64(self.q)
        out = (a % q + (q - b % q)) % q
        hook = self.fault_hook
        if hook is not None:
            out = hook.filter_alu("sub", out)
        return out

    # -- execution ---------------------------------------------------------

    def execute(self, program: Program) -> ExecutionStats:
        """Run a program to completion, returning the run's stats."""
        run = ExecutionStats()
        hook = self.fault_hook
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.execute", cat="vpu", m=self.m, q=self.q,
                      instructions=len(program))
        for instr in program:
            if hook is not None:
                # Advance the fault clock and land armed state upsets
                # before the instruction issues.
                hook.on_cycle(self)
            self._dispatch(instr)
            run.record(instr)
            self.stats.record(instr)
        if obs is not None:
            # Model cycles land on this span (the innermost open one),
            # so every architectural cycle is attributed exactly once.
            obs.add_cycles(run.cycles)
            obs.count("vpu.executions")
            obs.count("vpu.cycles", run.cycles)
            obs.count("vpu.network_passes", run.network_passes)
            obs.end(cycles=run.cycles,
                    utilization=round(run.compute_utilization(), 4))
        return run

    def _dispatch(self, instr: Instruction) -> None:
        rf = self.regfile
        rf.check_ports(instr.read_regs(), instr.write_regs())
        if isinstance(instr, VAdd):
            rf.write(instr.dst, self._add(rf.read(instr.a), rf.read(instr.b)))
        elif isinstance(instr, VSub):
            rf.write(instr.dst, self._sub(rf.read(instr.a), rf.read(instr.b)))
        elif isinstance(instr, VMul):
            rf.write(instr.dst, self._mul(rf.read(instr.a), rf.read(instr.b)))
        elif isinstance(instr, VMulScalar):
            scalar = np.full(self.m, instr.scalar % self.q, dtype=np.uint64)
            rf.write(instr.dst, self._mul(rf.read(instr.a), scalar))
        elif isinstance(instr, VMulTwiddle):
            tw = np.array(instr.twiddles, dtype=np.uint64)
            if tw.shape != (self.m,):
                raise ValueError(f"twiddle vector must have {self.m} entries")
            rf.write(instr.dst, self._mul(rf.read(instr.a), tw))
        elif isinstance(instr, Butterfly):
            self._butterfly(instr)
        elif isinstance(instr, NttStage):
            self._ntt_stage(instr)
        elif isinstance(instr, NetworkPass):
            if instr.src_rot is None:
                value = rf.read(instr.src)
            else:
                # Diagonal read: lane l fetches its own register file at
                # src + (l + rot) mod window (per-lane address decoders).
                lanes = np.arange(self.m)
                regs = instr.src + (lanes + instr.src_rot) % instr.src_window
                if regs.max() >= rf.entries:
                    raise IndexError("diagonal read window out of range")
                value = rf.data[regs, lanes].copy()
                rf.reads += 1
            rf.write(instr.dst, self.network.traverse(value, instr.config))
        elif isinstance(instr, Load):
            rf.write(instr.dst, self.memory.read_row(instr.addr))
        elif isinstance(instr, Store):
            self.memory.data[instr.addr] = rf.read(instr.src)
        else:
            raise TypeError(f"unknown instruction {instr!r}")

    def _butterfly(self, instr: Butterfly) -> None:
        rf = self.regfile
        x = rf.read(instr.src)
        rf.write(instr.dst, self._butterfly_pairs(x, instr.kind, instr.twiddles))

    def _butterfly_pairs(self, x: np.ndarray, kind: str,
                         twiddles: tuple[int, ...]) -> np.ndarray:
        tw = np.array(twiddles, dtype=np.uint64)
        if tw.shape != (self.m // 2,):
            raise ValueError(f"butterfly needs {self.m // 2} twiddles")
        u = x[0::2]
        v = x[1::2]
        out = np.empty(self.m, dtype=np.uint64)
        if kind == "dif":
            out[0::2] = self._add(u, v)
            out[1::2] = self._mul(self._sub(u, v), tw)
        else:  # dit
            t = self._mul(v, tw)
            out[0::2] = self._add(u, t)
            out[1::2] = self._sub(u, t)
        return out

    def _ntt_stage(self, instr: NttStage) -> None:
        """Fused network + butterfly: one cycle per CG NTT stage.

        Grouped mode needs no special butterfly handling: adjacent pairs
        stay adjacent pairs and the twiddle vector already carries the
        per-group factors.
        """
        rf = self.regfile
        x = rf.read(instr.src)
        if instr.kind == "dif":
            routed = self.network.traverse(
                x, NetworkConfig(cg="dif", cg_group_size=instr.group_size))
            out = self._butterfly_pairs(routed, "dif", instr.twiddles)
        else:
            half = self._butterfly_pairs(x, "dit", instr.twiddles)
            out = self.network.traverse(
                half, NetworkConfig(cg="dit", cg_group_size=instr.group_size))
        rf.write(instr.dst, out)

    # -- convenience -------------------------------------------------------

    def run_fresh(self, program: Program) -> ExecutionStats:
        """Reset stats, run, and return the stats of just this program."""
        self.reset_stats()
        return self.execute(program)
