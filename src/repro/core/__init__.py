"""The unified vector processing unit (paper §III).

* :mod:`repro.core.stages` — the individual network stages at MUX level:
  two constant-geometry stages (DIT and DIF) and the log₂ m shift stages.
* :mod:`repro.core.network` — the full inter-lane network (Fig. 2) with
  its per-pass configuration, including grouped CG mode for short NTT
  dimensions.
* :mod:`repro.core.register_file` — the per-lane 2R1W register file.
* :mod:`repro.core.isa` — the vector instruction set: element-wise
  modular ops, paired-lane DIT/DIF butterflies, network passes, loads
  and stores.
* :mod:`repro.core.vpu` — the cycle-counting executor binding m lanes of
  Barrett arithmetic to the network.
"""

from repro.core.isa import (
    Butterfly,
    Instruction,
    Load,
    NetworkPass,
    NttStage,
    Program,
    Store,
    VAdd,
    VMul,
    VMulScalar,
    VMulTwiddle,
    VSub,
)
from repro.core.network import InterLaneNetwork, NetworkConfig
from repro.core.register_file import RegisterFile
from repro.core.stages import CgStage, ShiftStage
from repro.core.vpu import VectorMemory, VectorProcessingUnit

__all__ = [
    "Butterfly",
    "CgStage",
    "Instruction",
    "InterLaneNetwork",
    "Load",
    "NetworkConfig",
    "NetworkPass",
    "NttStage",
    "Program",
    "RegisterFile",
    "ShiftStage",
    "Store",
    "VAdd",
    "VMul",
    "VMulScalar",
    "VMulTwiddle",
    "VSub",
    "VectorMemory",
    "VectorProcessingUnit",
]
