"""Multi-dimensional NTT compilation onto the VPU (paper §IV-A).

A length-``N`` transform decomposes into dimensions of length ``m`` (the
lane count); each dimension is a batch of constant-geometry small NTTs
run on the CG network stage, separated by element-wise twiddle passes
and the shift-network transposes of :mod:`repro.mapping.transpose`.

Layout convention (recursive four-step, ``N = m * R``):

* memory row ``jr`` (``jr`` in ``[0, R)``), lane ``j1`` holds element
  ``x[j1 * R + jr]`` — :func:`pack_for_ntt` produces this arrangement,
  which in hardware is the DMA's strided fetch pattern;
* after the dimension-1 CG-DIF pass, lane ``p`` of each row holds the
  partial result for ``k1 = bitrev(p)`` — twiddles and the final unpack
  account for the hardware's bit-reversed order, and the inverse
  transform consumes it directly (no bit-reverse pass, §III-A);
* the tile transposes regroup the remaining ``R`` indices so the
  recursion sees the same convention at size ``R``.

Any power-of-two ``N >= m`` compiles.  Full-width (``length-m``)
dimensions peel off recursively with square tile transposes; a ragged
tail ``c < m`` runs in the packed layout of §IV-A — ``m/c`` grouped-CG
small NTTs per row — reached by the packed transpose of
:mod:`repro.mapping.transpose`.  A reproduction finding: with this
layout choice (dest lane ``g*c + j2`` fed from source lane ``g*c + r``)
the packed transpose decomposes into *group-local* cyclic shifts, which
the single-pass routing theorem covers modulo ``c``, so the ragged
boundary costs the same two network passes per row as the square one and
the CG stage never needs to assist — the paper's Fig. 3(b) irregular
case is an artifact of its ``z|y``-ordered layout.
"""

from __future__ import annotations

import numpy as np

from repro.arith.modular import mod_inverse
from repro.core.isa import (
    Load,
    NttStage,
    Program,
    Store,
    VMulScalar,
    VMulTwiddle,
)
from repro.core.vpu import VectorMemory
from repro.mapping.transpose import compile_tile_transpose
from repro.ntt.bitrev import bit_reverse_indices
from repro.ntt.constant_geometry import (
    cg_dif_twiddles_for_root,
    cg_dit_twiddles_for_root,
)
from repro.ntt.tables import get_tables

#: Working registers: 0/1 ping-pong; transpose tiles use [2, 2+2m).
_R_WORK = 0
_R_TMP = 1
_TILE_A = 2


class NttMappingError(ValueError):
    """The requested NTT cannot be compiled for this lane count."""


def required_registers(m: int) -> int:
    """Register-file depth the compiled programs assume: ``2m + 2``."""
    return 2 * m + 2


def pack_for_ntt(x: np.ndarray, m: int) -> np.ndarray:
    """Arrange a length-``N`` vector into the VPU's initial memory rows.

    Row ``jr``, lane ``l`` gets ``x[l * (N/m) + jr]``.
    """
    x = np.asarray(x)
    n = len(x)
    if n % m:
        raise NttMappingError(f"N={n} is not a multiple of m={m}")
    rows = n // m
    return x.reshape(m, rows).T.copy()


def unpack_ntt_result(memory: VectorMemory, n: int, m: int,
                      base_row: int = 0) -> np.ndarray:
    """Reassemble the natural-order NTT result from the final layout."""
    rows = n // m
    data = memory.data[base_row:base_row + rows]
    return _unpack(data, m)


def _unpack(rows: np.ndarray, m: int) -> np.ndarray:
    bitrev = bit_reverse_indices(m)
    if rows.shape[0] == 1:
        out = np.empty(m, dtype=rows.dtype)
        out[bitrev] = rows[0]  # X[br(p)] = row[p]
        return out
    if rows.shape[0] < m:
        # Ragged leaf: packed layout — row r', lane g*c + u holds
        # X[k1 + m*k2] with k1 = br_m(g*c + r'), k2 = br_c(u).
        c = rows.shape[0]
        bitrev_c = bit_reverse_indices(c)
        out = np.empty(c * m, dtype=rows.dtype)
        for r in range(c):
            for g in range(m // c):
                k1 = int(bitrev[g * c + r])
                k2 = bitrev_c  # vector over u
                out[k1 + m * k2] = rows[r][g * c:(g + 1) * c]
        return out
    ntiles = rows.shape[0] // m
    out = np.empty(rows.shape[0] * m, dtype=rows.dtype)
    for p1 in range(m):
        sub = _unpack(rows[p1 * ntiles:(p1 + 1) * ntiles], m)
        # X[k1 + m * ksub] with k1 = br(p1).
        out[int(bitrev[p1])::m] = sub
    return out


def pack_ntt_values(values: np.ndarray, m: int) -> np.ndarray:
    """Inverse of :func:`unpack_ntt_result`: natural-order NTT values to
    the memory layout the inverse-transform program consumes."""
    values = np.asarray(values)
    rows = len(values) // m
    out = np.empty((rows, m), dtype=values.dtype)
    _pack_values(values, out, m)
    return out


def _pack_values(values: np.ndarray, out: np.ndarray, m: int) -> None:
    bitrev = bit_reverse_indices(m)
    rows = out.shape[0]
    if rows == 1:
        out[0] = values[bitrev]
        return
    if rows < m:
        c = rows
        bitrev_c = bit_reverse_indices(c)
        for r in range(c):
            for g in range(m // c):
                k1 = int(bitrev[g * c + r])
                out[r][g * c:(g + 1) * c] = values[k1 + m * bitrev_c]
        return
    ntiles = rows // m
    for p1 in range(m):
        _pack_values(values[int(bitrev[p1])::m],
                     out[p1 * ntiles:(p1 + 1) * ntiles], m)


# ---------------------------------------------------------------------------
# Small (length-m) NTTs on the CG network
# ---------------------------------------------------------------------------


def compile_small_ntt(m: int, root: int, q: int, program: Program,
                      data_reg: int = _R_WORK, tmp_reg: int = _R_TMP) -> None:
    """Emit a length-``m`` forward CG-DIF NTT on one register row.

    Natural-order input across lanes; bit-reversed output.  Each stage is
    one fused :class:`NttStage` (CG gather + paired-lane DIF butterfly in
    a single cycle, as in Fig. 1c), in place in ``data_reg``.
    """
    del tmp_reg  # fused stages run in place; kept for signature stability
    log_m = m.bit_length() - 1
    for stage in range(log_m):
        twiddles = tuple(cg_dif_twiddles_for_root(m, root, q, stage))
        program.append(NttStage("dif", data_reg, data_reg, twiddles))


def compile_grouped_ntt(m: int, c: int, root: int, q: int,
                        program: Program, data_reg: int = _R_WORK) -> None:
    """Emit ``m/c`` independent length-``c`` NTTs on one register row.

    The short-last-dimension mode of §IV-A: the CG network splits into
    ``m/c`` groups of size ``c``; every group transforms its own
    ``c``-element sub-vector (natural order in, bit-reversed out) with
    the same stage sequence, keeping all lanes busy.
    """
    if c < 2 or c > m or c & (c - 1):
        raise NttMappingError(f"group size must be a power of two in [2, m], got {c}")
    if m % c:
        raise NttMappingError(f"group size {c} does not divide m={m}")
    log_c = c.bit_length() - 1
    groups = m // c
    for stage in range(log_c):
        per_group = cg_dif_twiddles_for_root(c, root, q, stage)
        twiddles = tuple(per_group) * groups
        program.append(NttStage("dif", data_reg, data_reg, twiddles,
                                group_size=c))


def compile_grouped_intt(m: int, c: int, root_inv: int, q: int,
                         program: Program, data_reg: int = _R_WORK,
                         scale: bool = True) -> None:
    """Inverse of :func:`compile_grouped_ntt` (bit-reversed in,
    natural out, per-group ``c^{-1}`` scaling)."""
    if c < 2 or c > m or c & (c - 1):
        raise NttMappingError(f"group size must be a power of two in [2, m], got {c}")
    if m % c:
        raise NttMappingError(f"group size {c} does not divide m={m}")
    log_c = c.bit_length() - 1
    groups = m // c
    for stage in range(log_c):
        per_group = cg_dit_twiddles_for_root(c, root_inv, q, stage)
        twiddles = tuple(per_group) * groups
        program.append(NttStage("dit", data_reg, data_reg, twiddles,
                                group_size=c))
    if scale:
        program.append(VMulScalar(data_reg, data_reg, mod_inverse(c, q)))


def compile_small_intt(m: int, root_inv: int, q: int, program: Program,
                       data_reg: int = _R_WORK, tmp_reg: int = _R_TMP,
                       scale: bool = True) -> None:
    """Emit a length-``m`` inverse CG-DIT NTT on one register row.

    Bit-reversed input (exactly the forward output); natural-order
    output.  Each stage is one fused :class:`NttStage` (paired-lane DIT
    butterfly + CG scatter); a final scalar multiply applies ``m^{-1}``.
    """
    del tmp_reg  # fused stages run in place; kept for signature stability
    log_m = m.bit_length() - 1
    for stage in range(log_m):
        twiddles = tuple(cg_dit_twiddles_for_root(m, root_inv, q, stage))
        program.append(NttStage("dit", data_reg, data_reg, twiddles))
    if scale:
        program.append(VMulScalar(data_reg, data_reg, mod_inverse(m, q)))


# ---------------------------------------------------------------------------
# Full transforms
# ---------------------------------------------------------------------------


def _check_decomposable(n: int, m: int) -> None:
    """Validate an (n, m) pair for the executable compiler.

    Any power-of-two ``n >= m`` compiles: full-width dimensions peel off
    until the remainder ``c < m``, which runs in the packed grouped-CG
    layout via :func:`repro.mapping.transpose.compile_packed_transpose`.
    """
    if m < 4 or m & (m - 1):
        raise NttMappingError(f"m must be a power of two >= 4, got {m}")
    if n < m or n & (n - 1):
        raise NttMappingError(
            f"N must be a power of two >= m; got N={n}, m={m}"
        )


def compile_ntt(n: int, m: int, q: int) -> Program:
    """Compile a full length-``n`` forward NTT (cyclic, root from the
    cached tables) into a VPU program.

    Expects memory rows ``[0, n/m)`` pre-filled via :func:`pack_for_ntt`;
    leaves the result in the recursive layout read back by
    :func:`unpack_ntt_result`.
    """
    _check_decomposable(n, m)
    tables = get_tables(n, q)
    prog = Program(label=f"ntt-{n} on {m} lanes")
    _emit_forward(prog, n, m, list(range(n // m)), tables.omega, q)
    return prog


def _emit_forward(prog: Program, n: int, m: int, rows: list[int],
                  root: int, q: int) -> None:
    big_r = n // m
    bitrev = bit_reverse_indices(m)
    dim_root = pow(root, big_r, q)  # order-m root for this dimension
    # Inter-dimension twiddles omega^(k1 * jr) with k1 = br(p) advance by
    # a fixed per-lane factor between consecutive rows, so one modexp per
    # lane seeds an incremental accumulation instead of m modexps per row.
    lane_step = [pow(root, int(bitrev[p]), q) for p in range(m)]
    lane_tw = [1] * m
    for addr in rows:
        prog.append(Load(_R_WORK, addr))
        compile_small_ntt(m, dim_root, q, prog)
        if big_r > 1:
            prog.append(VMulTwiddle(_R_WORK, _R_WORK, tuple(lane_tw)))
            lane_tw = [t * s % q for t, s in zip(lane_tw, lane_step)]
        prog.append(Store(_R_WORK, addr))
    if big_r == 1:
        return
    if big_r < m:
        # Ragged tail: a short last dimension of length c = big_r runs in
        # the packed layout (m/c grouped small NTTs per row, §IV-A).
        _emit_packed_transpose(prog, m, big_r, rows)
        sub_root = pow(root, m, q)
        for addr in rows:
            prog.append(Load(_R_WORK, addr))
            compile_grouped_ntt(m, big_r, sub_root, q, prog)
            prog.append(Store(_R_WORK, addr))
        return
    _emit_tile_transposes(prog, m, rows)
    ntiles = big_r // m
    sub_root = pow(root, m, q)
    for p1 in range(m):
        _emit_forward(prog, big_r, m, rows[p1 * ntiles:(p1 + 1) * ntiles],
                      sub_root, q)


def _emit_packed_transpose(prog: Program, m: int, c: int,
                           rows: list[int]) -> None:
    """Load a c-row window, packed-transpose in register, store back."""
    from repro.mapping.transpose import compile_packed_transpose

    for r in range(c):
        prog.append(Load(_TILE_A + r, rows[r]))
    compile_packed_transpose(m, c, _TILE_A, _TILE_A + c, prog)
    for r in range(c):
        prog.append(Store(_TILE_A + c + r, rows[r]))


def _emit_tile_transposes(prog: Program, m: int, rows: list[int]) -> None:
    """Transpose the next dimension across the lanes, tile by tile.

    Tile ``jrest`` gathers rows ``{j2 * ntiles + jrest}`` (the next
    dimension strided through the row space), transposes in-register,
    and scatters back to the same addresses — regrouping the rows into
    per-``p1`` contiguous blocks for the recursion.
    """
    ntiles = len(rows) // m
    tile_b = _TILE_A + m
    for jrest in range(ntiles):
        for j2 in range(m):
            prog.append(Load(_TILE_A + j2, rows[j2 * ntiles + jrest]))
        compile_tile_transpose(m, _TILE_A, tile_b, prog)
        for p1 in range(m):
            prog.append(Store(tile_b + p1, rows[p1 * ntiles + jrest]))


def compile_negacyclic_ntt(n: int, m: int, q: int) -> Program:
    """Forward negacyclic NTT entirely on the VPU.

    Prepends the ``psi``-folding pass (one element-wise twiddle multiply
    per memory row, using the lanes' element-wise mode) to the cyclic
    transform, so the CKKS ring kernel runs without any host-side
    arithmetic.  Layout contract identical to :func:`compile_ntt`.
    """
    _check_decomposable(n, m)
    tables = get_tables(n, q)
    prog = Program(label=f"negacyclic-ntt-{n} on {m} lanes")
    rows = n // m
    for r in range(rows):
        # pack_for_ntt: row r, lane l holds x[l*rows + r].
        tw = tuple(int(tables.psi_powers[(l * rows + r) % n])
                   for l in range(m))
        prog.append(Load(_R_WORK, r))
        prog.append(VMulTwiddle(_R_WORK, _R_WORK, tw))
        prog.append(Store(_R_WORK, r))
    _emit_forward(prog, n, m, list(range(rows)), tables.omega, q)
    return prog


def compile_negacyclic_intt(n: int, m: int, q: int) -> Program:
    """Inverse negacyclic NTT entirely on the VPU (cyclic inverse, then
    the ``psi^{-1}`` unfolding pass)."""
    _check_decomposable(n, m)
    tables = get_tables(n, q)
    prog = Program(label=f"negacyclic-intt-{n} on {m} lanes")
    rows = n // m
    _emit_inverse(prog, n, m, list(range(rows)),
                  mod_inverse(tables.omega, q), q)
    for r in range(rows):
        tw = tuple(int(tables.psi_inv_powers[(l * rows + r) % n])
                   for l in range(m))
        prog.append(Load(_R_WORK, r))
        prog.append(VMulTwiddle(_R_WORK, _R_WORK, tw))
        prog.append(Store(_R_WORK, r))
    return prog


def compile_intt(n: int, m: int, q: int) -> Program:
    """Compile the inverse transform consuming :func:`compile_ntt`'s
    output layout and restoring the :func:`pack_for_ntt` layout."""
    _check_decomposable(n, m)
    tables = get_tables(n, q)
    prog = Program(label=f"intt-{n} on {m} lanes")
    _emit_inverse(prog, n, m, list(range(n // m)),
                  mod_inverse(tables.omega, q), q)
    return prog


def _emit_inverse(prog: Program, n: int, m: int, rows: list[int],
                  root_inv: int, q: int) -> None:
    big_r = n // m
    bitrev = bit_reverse_indices(m)
    if 1 < big_r < m:
        # Ragged tail, mirrored: grouped inverse NTTs, then the packed
        # transpose (an involution — the same movement returns the
        # full-width layout).
        sub_root_inv = pow(root_inv, m, q)
        for addr in rows:
            prog.append(Load(_R_WORK, addr))
            compile_grouped_intt(m, big_r, sub_root_inv, q, prog)
            prog.append(Store(_R_WORK, addr))
        _emit_packed_transpose(prog, m, big_r, rows)
    elif big_r > 1:
        ntiles = big_r // m
        sub_root_inv = pow(root_inv, m, q)
        for p1 in range(m):
            _emit_inverse(prog, big_r, m, rows[p1 * ntiles:(p1 + 1) * ntiles],
                          sub_root_inv, q)
        _emit_tile_transposes(prog, m, rows)
    dim_root_inv = pow(root_inv, big_r, q)
    lane_step = [pow(root_inv, int(bitrev[p]), q) for p in range(m)]
    lane_tw = [1] * m
    for addr in rows:
        prog.append(Load(_R_WORK, addr))
        if big_r > 1:
            prog.append(VMulTwiddle(_R_WORK, _R_WORK, tuple(lane_tw)))
            lane_tw = [t * s % q for t, s in zip(lane_tw, lane_step)]
        compile_small_intt(m, dim_root_inv, q, prog)
        prog.append(Store(_R_WORK, addr))
