"""Full-length automorphism mapping onto the VPU (paper §IV-B).

A length-``N`` affine permutation (automorphism composed with an
optional shift — both the paper's Eq. 1 and the exact CKKS Galois
action) decomposes over ``N = R x C`` with ``R = m``:

* every source column lands wholly in one destination column
  (Eq. 3 generalized), handled by the register/memory *write address*;
* within a column the action is a length-``m`` affine map (Eq. 2), whose
  control word comes straight from the closed form
  (:func:`repro.automorphism.controls.affine_controls`) — the paper's
  pre-generated SRAM table merged with the column shift "using some
  extra simple logic gates".

The compiled program therefore moves every column through the inter-lane
network **exactly once**: ``N/m`` network passes for ``N`` elements,
which is why Table III reports 100% automorphism throughput.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.controls import affine_controls
from repro.automorphism.decomposition import column_decompose
from repro.automorphism.mapping import AffinePermutation
from repro.core.isa import Load, NetworkPass, Program, Store
from repro.core.network import NetworkConfig
from repro.core.vpu import VectorMemory

_R_WORK = 0
_R_OUT = 1


def automorphism_layout_pack(x: np.ndarray, m: int) -> np.ndarray:
    """Memory layout for the automorphism program.

    Row-major ``N = m x C`` matrix with the **row index across lanes**:
    memory row ``c`` holds column ``c``, i.e. lane ``l`` of row ``c`` is
    element ``x[l * C + c]``.
    """
    x = np.asarray(x)
    n = len(x)
    if n % m:
        raise ValueError(f"N={n} is not a multiple of m={m}")
    cols = n // m
    return x.reshape(m, cols).T.copy()


def automorphism_layout_unpack(memory: VectorMemory, n: int, m: int,
                               base_row: int = 0) -> np.ndarray:
    """Read a vector back out of the column layout."""
    cols = n // m
    return memory.data[base_row:base_row + cols].T.reshape(-1).copy()


def compile_automorphism(perm: AffinePermutation, m: int,
                         src_base: int = 0,
                         dst_base: int | None = None) -> Program:
    """Compile a length-``N`` affine permutation into column passes.

    Memory rows ``[src_base, src_base + N/m)`` hold the packed input
    (:func:`automorphism_layout_pack`); the permuted result lands at
    ``dst_base`` (default: right after the input) in the same layout.
    """
    n = perm.n
    if n % m:
        raise ValueError(f"N={n} is not a multiple of m={m}")
    cols = n // m
    if dst_base is None:
        dst_base = src_base + cols
    if abs(dst_base - src_base) < cols:
        raise ValueError("source and destination regions overlap")

    column_map, row_maps = column_decompose(perm, rows=m)
    prog = Program(label=f"automorphism k={perm.multiplier} s={perm.offset} N={n}")
    for c in range(cols):
        row_map = row_maps[c]
        controls = affine_controls(m, row_map.multiplier, row_map.offset)
        c_dst = column_map.dest(c) if cols > 1 else 0
        prog.append(Load(_R_WORK, src_base + c))
        prog.append(NetworkPass(_R_OUT, _R_WORK,
                                NetworkConfig(shift=controls)))
        prog.append(Store(_R_OUT, dst_base + c_dst))
    return prog


def network_passes_for_automorphism(n: int, m: int) -> int:
    """Network passes of the compiled program: always ``N/m`` — each
    element traverses the network exactly once."""
    if n % m:
        raise ValueError(f"N={n} is not a multiple of m={m}")
    return n // m
