"""Compilers from FHE kernel operations to VPU programs (paper §IV).

* :mod:`repro.mapping.transpose` — dimension transposes on the shift
  network via the two-pass diagonal method of Fig. 3(a).
* :mod:`repro.mapping.ntt` — multi-dimensional NTT/iNTT compilation:
  constant-geometry small NTTs (grouped mode for short dimensions),
  inter-dimension twiddles, and transposes, streamed tile-by-tile
  through the register file.
* :mod:`repro.mapping.automorphism` — full-length automorphism mapping:
  column decomposition with merged single-pass network controls
  (every element crosses the network exactly once).
* :mod:`repro.mapping.reduction` — cross-lane reductions for
  matrix/tensor products using uniform shift passes (§III-A).
"""

from repro.mapping.analysis import analyze_program, render_analysis
from repro.mapping.automorphism import (
    automorphism_layout_pack,
    automorphism_layout_unpack,
    compile_automorphism,
)
from repro.mapping.ntt import (
    NttMappingError,
    compile_grouped_intt,
    compile_grouped_ntt,
    compile_intt,
    compile_ntt,
    compile_small_intt,
    compile_small_ntt,
    pack_for_ntt,
    pack_ntt_values,
    required_registers,
    unpack_ntt_result,
)
from repro.mapping.reduction import compile_reduction
from repro.mapping.transpose import compile_tile_transpose

__all__ = [
    "NttMappingError",
    "analyze_program",
    "automorphism_layout_pack",
    "automorphism_layout_unpack",
    "compile_automorphism",
    "compile_grouped_intt",
    "compile_grouped_ntt",
    "compile_intt",
    "compile_ntt",
    "compile_reduction",
    "compile_small_intt",
    "compile_small_ntt",
    "compile_tile_transpose",
    "pack_for_ntt",
    "pack_ntt_values",
    "render_analysis",
    "required_registers",
    "unpack_ntt_result",
]
