"""Cross-lane reductions on the shift network (paper §III-A).

Matrix/tensor products need cross-lane accumulation on top of the
element-wise multiplies.  The paper notes this "can be trivially done
using the shift functionality of the inter-lane network": a logarithmic
tree of uniform shift passes interleaved with additions, after which
every lane holds the full sum.
"""

from __future__ import annotations

from repro.automorphism.controls import uniform_shift_controls
from repro.core.isa import NetworkPass, Program, VAdd
from repro.core.network import NetworkConfig


def compile_reduction(m: int, data_reg: int = 0, tmp_reg: int = 1) -> Program:
    """Emit an all-lanes sum reduction of one register row.

    ``log2 m`` rounds of (uniform shift by ``m/2^k``, add); afterwards
    every lane of ``data_reg`` holds the sum of the original row.
    """
    if m < 2 or m & (m - 1):
        raise ValueError(f"m must be a power of two >= 2, got {m}")
    prog = Program(label=f"reduce-{m}")
    distance = m // 2
    while distance >= 1:
        prog.append(NetworkPass(
            tmp_reg, data_reg,
            NetworkConfig(shift=uniform_shift_controls(m, distance)),
        ))
        prog.append(VAdd(data_reg, data_reg, tmp_reg))
        distance //= 2
    return prog
