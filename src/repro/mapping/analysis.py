"""Static analysis of compiled VPU programs.

Compiler-side tooling a hardware-software codesign flow needs: resource
histograms, register liveness/pressure, and memory-row footprints —
computed from the instruction stream without executing it.  The
register-file and scratchpad sizing decisions in
:mod:`repro.hwmodel.technology` can be checked against real programs
instead of hand rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.isa import Instruction, Load, NetworkPass, Program, Store


@dataclass(frozen=True)
class ProgramAnalysis:
    """Static facts about one program."""

    instruction_count: int
    by_type: dict
    registers_used: frozenset
    peak_live_registers: int
    memory_rows_read: frozenset
    memory_rows_written: frozenset
    network_passes: int
    multiplier_ops: int
    adder_ops: int

    @property
    def register_pressure(self) -> int:
        """Registers any lane's file must provide."""
        return (max(self.registers_used) + 1) if self.registers_used else 0

    @property
    def memory_footprint_rows(self) -> int:
        rows = self.memory_rows_read | self.memory_rows_written
        return (max(rows) + 1) if rows else 0


def _diag_window(instr: Instruction) -> list[int]:
    """Registers a diagonal-read NetworkPass may touch."""
    if isinstance(instr, NetworkPass) and instr.src_rot is not None:
        return list(range(instr.src, instr.src + instr.src_window))
    return []


def analyze_program(program: Program) -> ProgramAnalysis:
    """Single pass over the instruction stream."""
    by_type: dict[str, int] = {}
    registers: set[int] = set()
    reads_mem: set[int] = set()
    writes_mem: set[int] = set()
    network = mult = add = 0
    # Liveness: walk backwards, a register is live from its last read up
    # to its defining write.
    live: set[int] = set()
    peak = 0
    for instr in reversed(program.instructions):
        for reg in instr.write_regs():
            live.discard(reg)
        for reg in instr.read_regs() + _diag_window(instr):
            live.add(reg)
        peak = max(peak, len(live))
    for instr in program:
        name = type(instr).__name__
        by_type[name] = by_type.get(name, 0) + 1
        registers.update(instr.read_regs())
        registers.update(instr.write_regs())
        registers.update(_diag_window(instr))
        if instr.uses_network:
            network += 1
        if instr.uses_multiplier:
            mult += 1
        if instr.uses_adder:
            add += 1
        if isinstance(instr, Load):
            reads_mem.add(instr.addr)
        if isinstance(instr, Store):
            writes_mem.add(instr.addr)
    return ProgramAnalysis(
        instruction_count=len(program),
        by_type=by_type,
        registers_used=frozenset(registers),
        peak_live_registers=peak,
        memory_rows_read=frozenset(reads_mem),
        memory_rows_written=frozenset(writes_mem),
        network_passes=network,
        multiplier_ops=mult,
        adder_ops=add,
    )


def render_analysis(analysis: ProgramAnalysis, label: str = "") -> str:
    """One-screen summary of an analysis."""
    lines = [f"program analysis{': ' + label if label else ''}"]
    lines.append(f"  instructions      : {analysis.instruction_count}")
    for name, count in sorted(analysis.by_type.items()):
        lines.append(f"    {name:14s}: {count}")
    lines.append(f"  register pressure : {analysis.register_pressure} "
                 f"(peak live {analysis.peak_live_registers})")
    lines.append(f"  memory rows       : {analysis.memory_footprint_rows} "
                 f"({len(analysis.memory_rows_read)} read, "
                 f"{len(analysis.memory_rows_written)} written)")
    lines.append(f"  resource ops      : {analysis.network_passes} network, "
                 f"{analysis.multiplier_ops} mult, {analysis.adder_ops} add")
    return "\n".join(lines)
