"""Matrix/tensor multiplication on the VPU (paper §III-A).

Keyswitch contains matrix/tensor products between ciphertext digits and
key polynomials.  On the unified VPU these are element-wise multiplies
plus *cross-lane reductions*, which — as the paper notes — "can be
trivially done using the shift functionality of the inter-lane network":
``log2 m`` uniform-shift-and-add rounds.

Two flavors are compiled here:

* :func:`compile_dot_product` — one dot product of two ``m``-element
  register rows; result broadcast to all lanes.
* :func:`compile_matvec` — ``y = A @ x`` for an ``r x m`` matrix held as
  ``r`` register rows: one element-wise multiply plus one reduction per
  output element.
"""

from __future__ import annotations

from repro.core.isa import Program, VMul
from repro.mapping.reduction import compile_reduction


def compile_dot_product(m: int, a_reg: int, b_reg: int,
                        out_reg: int, tmp_reg: int) -> Program:
    """Dot product of two register rows; every lane ends with the sum."""
    if out_reg in (a_reg, b_reg) or tmp_reg in (a_reg, b_reg, out_reg):
        raise ValueError("registers must be distinct")
    prog = Program(label=f"dot-{m}")
    prog.append(VMul(out_reg, a_reg, b_reg))
    prog.extend(list(compile_reduction(m, data_reg=out_reg, tmp_reg=tmp_reg)))
    return prog


def compile_matvec(m: int, rows: int, matrix_base: int, x_reg: int,
                   out_base: int, tmp_reg: int) -> Program:
    """``y[i] = sum_j A[i][j] * x[j]`` for an ``rows x m`` matrix.

    Matrix row ``i`` lives in register ``matrix_base + i``; output ``i``
    is broadcast across register ``out_base + i``.  Cost: ``rows``
    multiplies plus ``rows * log2(m)`` shift-add rounds.
    """
    last_needed = max(matrix_base + rows, x_reg + 1, out_base + rows,
                      tmp_reg + 1)
    del last_needed  # callers size the register file; document the span
    prog = Program(label=f"matvec-{rows}x{m}")
    for i in range(rows):
        prog.append(VMul(out_base + i, matrix_base + i, x_reg))
        prog.extend(list(compile_reduction(m, data_reg=out_base + i,
                                           tmp_reg=tmp_reg)))
    return prog


def matvec_cycle_count(m: int, rows: int) -> int:
    """Vector cycles of the compiled matvec: rows * (1 + 2*log2 m)."""
    log_m = m.bit_length() - 1
    return rows * (1 + 2 * log_m)
