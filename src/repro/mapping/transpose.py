"""Dimension transposes on the shift network (paper Fig. 3a).

The two-pass diagonal method transposes an ``m x m`` tile held in ``m``
register rows using nothing but uniform cyclic shifts and the per-lane
register addressing of the lanes' private register files:

* **Pass 1** (column -> diagonal): row ``r`` rotates down by ``r`` and is
  written back in place, leaving ``reg[r][l] = in[r][(l - r) mod m]``.
* **Pass 2** (diagonal -> row): output row ``r'`` performs a diagonal
  read — lane ``l`` fetches register ``(l - r') mod m`` — and rotates up
  by ``r'``, yielding ``out[r'][l] = in[l][r']``.

Each element traverses the network exactly twice, so a full tile costs
``2m`` network passes: the "multiple times" of §V-C that bounds NTT
throughput utilization below 100%.
"""

from __future__ import annotations

from repro.automorphism.controls import uniform_shift_controls
from repro.core.isa import NetworkPass, Program
from repro.core.network import NetworkConfig


def compile_tile_transpose(m: int, src_base: int, dst_base: int,
                           program: Program | None = None) -> Program:
    """Emit the 2m-pass transpose of the tile at ``src_base``.

    The tile occupies registers ``[src_base, src_base + m)`` (row ``r``
    across the lanes) and is left **modified** (diagonal form); the
    transposed tile lands in ``[dst_base, dst_base + m)``.  The two
    windows may not overlap.
    """
    if m < 4 or m & (m - 1):
        raise ValueError(f"m must be a power of two >= 4, got {m}")
    if abs(src_base - dst_base) < m:
        raise ValueError("source and destination tile windows overlap")
    prog = program if program is not None else Program(label=f"transpose {m}x{m}")
    # Pass 1: shift row r down by r, in place (column -> diagonal).
    for r in range(m):
        prog.append(NetworkPass(
            dst=src_base + r,
            src=src_base + r,
            config=NetworkConfig(shift=uniform_shift_controls(m, r)),
        ))
    # Pass 2: diagonal read + shift up by r' (diagonal -> row).
    for r in range(m):
        prog.append(NetworkPass(
            dst=dst_base + r,
            src=src_base,
            config=NetworkConfig(shift=uniform_shift_controls(m, (m - r) % m)),
            src_rot=(-r) % m,
            src_window=m,
        ))
    return prog


def tile_transpose_pass_count(m: int) -> int:
    """Network passes needed per m x m tile: always 2m."""
    return 2 * m


def group_shift_controls(m: int, group: int, amount: int):
    """Controls for a *group-local* cyclic shift: each block of ``group``
    lanes rotates internally by ``amount``.

    This is the affine routing theorem applied modulo ``group``: the
    per-element distances depend only on ``lane mod group``, so
    co-control consistency holds and one traversal suffices.  Used by the
    packed (ragged-dimension) transposes.
    """
    import numpy as np

    from repro.automorphism.controls import route_distance_map

    if group < 2 or group > m or group & (group - 1) or m % group:
        raise ValueError(f"bad group {group} for m={m}")
    lanes = np.arange(m)
    u = lanes % group
    dest_u = (u + amount) % group
    distances = (dest_u - u) % m
    return route_distance_map(m, distances)


def compile_packed_transpose(m: int, c: int, src_base: int, dst_base: int,
                             program: Program | None = None) -> Program:
    """Transpose between the full-width and packed layouts (ragged dims).

    The tile of ``c`` register rows (row ``j2``, lane ``p = g*c + u``)
    becomes the packed layout: row ``r'``, lane ``g*c + j2`` holds the
    element from source ``(j2, p = g*c + r')`` — per lane-group ``g`` an
    independent ``c x c`` square transpose, done with the two-pass
    diagonal method using group-local shifts and window-``c`` diagonal
    reads.  Being a square transpose per group, the movement is an
    involution: the same program converts packed back to full-width.

    Every element traverses the network exactly twice, the same count as
    the full-width transpose — with this layout choice the CG stage never
    needs to assist (cf. the paper's Fig. 3b, whose layout does).
    """
    if c < 2 or c >= m or c & (c - 1) or m % c:
        raise ValueError(f"packed transpose needs c | m, power of two, "
                         f"2 <= c < m; got c={c}, m={m}")
    if abs(src_base - dst_base) < c:
        raise ValueError("source and destination tile windows overlap")
    prog = program if program is not None else Program(
        label=f"packed-transpose {c}x{m}")
    for r in range(c):
        # Pass 1: group-local shift by +r, in place.
        prog.append(NetworkPass(
            dst=src_base + r,
            src=src_base + r,
            config=NetworkConfig(shift=group_shift_controls(m, c, r)),
        ))
    for r in range(c):
        # Pass 2: window-c diagonal read + group-local shift by -r.
        prog.append(NetworkPass(
            dst=dst_base + r,
            src=src_base,
            config=NetworkConfig(shift=group_shift_controls(m, c, (c - r) % c)),
            src_rot=(-r) % c,
            src_window=c,
        ))
    return prog
