"""The compiled fused-kernel backend.

:class:`CompiledBackend` is the third ``KernelBackend`` implementation:
whole forward/inverse negacyclic NTTs, batched automorphisms, and the
fused keyswitch inner loop each run as a *single* compiled call over
the full ``(L, n)`` residue matrix — no per-stage numpy dispatch, no
full-size temporaries beyond one reusable workspace.  It subclasses
:class:`~repro.fhe.backend.NumpyBackend`, so every shape a gate or a
missing JIT provider refuses simply falls through to the vectorized
numpy path (and the single-row legacy methods stay inherited).

Bit-identity contract: every compiled kernel returns fully reduced
residues (< q), and a reduced residue is unique — so outputs match the
numpy and VPU paths bit for bit regardless of the internal reduction
schedule.  Because the Numba provider can only be exercised where
Numba is installed (CI, not this container — and vice versa for the C
provider on toolchain-less hosts), the backend additionally
cross-checks each (kernel, shape) pair against the numpy reference on
first use (``self_check``, disable with ``REPRO_COMPILED_SELFCHECK=0``)
and raises rather than silently returning wrong residues.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.bounds import keyswitch_lazy_accumulate_ok, mul_fits_uint64
from repro.fhe.backend import NumpyBackend
from repro.kernels.plan import (
    clear_compiled_caches,
    get_destinations,
    get_plan,
    get_workspace,
    plan_cache,
)
from repro.kernels.provider import (
    cjit_auto_batch,
    cjit_fwd_ntt_lazy,
    cjit_inv_ntt_lazy,
    cjit_inv_ntt_unclamped,
    cjit_ks_accum_lazy,
    cjit_ks_accum_reduced,
    resolve_provider,
)
from repro.obs import current_obs_hook


class CompiledBackend(NumpyBackend):
    """Fused JIT kernels with analyzer-derived gates and numpy fallback.

    ``provider`` is a provider object, a provider name
    (``numba``/``cext``/``none``), or None to resolve from ``REPRO_JIT``
    (Numba first, then the runtime-compiled C extension).  With no
    provider available every dispatch falls back to the inherited numpy
    path — same results, seed-era speed.
    """

    name = "compiled"

    def __init__(self, provider=None, self_check: bool | None = None):
        super().__init__(mode="fast")
        if provider is None or isinstance(provider, str):
            provider = resolve_provider(provider)
        self._impl = provider
        if self_check is None:
            self_check = os.environ.get(
                "REPRO_COMPILED_SELFCHECK", "1") != "0"
        #: First-use-per-shape cross-check against the numpy reference.
        self.self_check = self_check
        self._checked: set[tuple] = set()
        self._reference: NumpyBackend | None = None
        self.kernel_invocations = 0
        self.fallbacks = 0
        self.self_checks = 0

    @property
    def provider_name(self) -> str | None:
        """Active JIT provider (``numba``/``cext``), or None."""
        return None if self._impl is None else self._impl.name

    @property
    def plan_cache_hits(self) -> int:
        return plan_cache().hits

    @property
    def plan_cache_misses(self) -> int:
        return plan_cache().misses

    # -- cache management / metrics -----------------------------------------

    def clear_caches(self) -> None:
        """Reset the shared compiled-kernel state — constant-table plans
        (and their hit/miss counters), workspace buffers, automorphism
        destination tables — plus this instance's self-check memos."""
        clear_compiled_caches()
        self._checked.clear()
        obs = current_obs_hook()
        if obs is not None:
            obs.count("backend.compiled_plan_cache.clears")
            self._publish_cache_metrics(obs)

    def _publish_cache_metrics(self, obs) -> None:
        """Mirror the plan-cache counters into the metrics registry
        (guarded-hook callers only) — the compiled analogue of
        ``VpuBackend._publish_cache_metrics``."""
        cache = plan_cache()
        obs.gauge("backend.compiled_plan_cache.hits", cache.hits)
        obs.gauge("backend.compiled_plan_cache.misses", cache.misses)
        obs.gauge("backend.compiled_plan_cache.size", len(cache))

    # -- self-check ----------------------------------------------------------

    def _reference_backend(self) -> NumpyBackend:
        if self._reference is None:
            self._reference = NumpyBackend()
        return self._reference

    def _verify_first_use(self, key: tuple, reference_fn, out) -> None:
        """Compare one compiled result against the numpy reference, once
        per (kernel, shape): the runtime leg of the bit-identity
        contract for providers this host's test suite cannot build."""
        if not self.self_check or key in self._checked:
            return
        self._checked.add(key)
        self.self_checks += 1
        expected = reference_fn()
        if not np.array_equal(expected, out):
            raise RuntimeError(
                f"compiled kernel self-check failed for {key[0]} "
                f"(provider {self.provider_name}): output differs from "
                f"the numpy reference")
        obs = current_obs_hook()
        if obs is not None:
            obs.count("backend.compiled.self_checks")

    def _note_fallback(self) -> None:
        self.fallbacks += 1
        obs = current_obs_hook()
        if obs is not None:
            obs.count("backend.compiled.fallbacks")

    # -- limb-batched kernels -------------------------------------------------

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        residues = np.asarray(residues)
        primes = tuple(primes)
        impl = self._impl
        plan = (get_plan(residues.shape[1], primes)
                if impl is not None and residues.shape[1] else None)
        use_ok = plan is not None and plan.lazy_stages_ok
        if use_ok:
            obs = current_obs_hook()
            if obs is not None:
                obs.begin("compiled.batch.ntt", cat="kernel",
                          limbs=len(primes), n=residues.shape[1],
                          provider=impl.name)
            x = np.ascontiguousarray(residues, dtype=np.uint64)
            out = np.empty_like(x)
            work = get_workspace(x.shape[0], x.shape[1])
            cjit_fwd_ntt_lazy(impl, plan, x, out, work)
            self.kernel_invocations += 1
            self._verify_first_use(
                ("ntt", x.shape[1], primes),
                lambda: self._reference_backend().forward_ntt_batch(
                    x, primes), out)
            if obs is not None:
                obs.count("backend.compiled.kernels.ntt")
                self._publish_cache_metrics(obs)
                obs.end()
            return out
        self._note_fallback()
        return super().forward_ntt_batch(residues, primes)

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        primes = tuple(primes)
        impl = self._impl
        plan = (get_plan(values.shape[1], primes)
                if impl is not None and values.shape[1] else None)
        use_ok = plan is not None and plan.lazy_stages_ok
        if use_ok:
            obs = current_obs_hook()
            if obs is not None:
                obs.begin("compiled.batch.intt", cat="kernel",
                          limbs=len(primes), n=values.shape[1],
                          provider=impl.name)
            x = np.ascontiguousarray(values, dtype=np.uint64)
            out = np.empty_like(x)
            work = get_workspace(x.shape[0], x.shape[1])
            if plan.unclamped_ok:
                cjit_inv_ntt_unclamped(impl, plan, x, out, work)
            else:
                cjit_inv_ntt_lazy(impl, plan, x, out, work)
            self.kernel_invocations += 1
            self._verify_first_use(
                ("intt", x.shape[1], primes),
                lambda: self._reference_backend().inverse_ntt_batch(
                    x, primes), out)
            if obs is not None:
                obs.count("backend.compiled.kernels.intt")
                self._publish_cache_metrics(obs)
                obs.end()
            return out
        self._note_fallback()
        return super().inverse_ntt_batch(values, primes)

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        impl = self._impl
        if impl is not None and values.dtype == np.uint64 and values.shape[1]:
            obs = current_obs_hook()
            if obs is not None:
                obs.begin("compiled.batch.auto", cat="kernel",
                          limbs=values.shape[0], n=values.shape[1],
                          galois_k=galois_k, provider=impl.name)
            dest = get_destinations(values.shape[1], galois_k)
            x = np.ascontiguousarray(values)
            out = np.empty_like(x)
            cjit_auto_batch(impl, x, out, dest)
            self.kernel_invocations += 1
            self._verify_first_use(
                ("auto", x.shape[1], galois_k),
                lambda: self._reference_backend().automorphism_eval_batch(
                    x, galois_k, tuple(primes)), out)
            if obs is not None:
                obs.count("backend.compiled.kernels.auto")
                obs.end()
            return out
        self._note_fallback()
        return super().automorphism_eval_batch(values, galois_k, primes)

    # -- fused keyswitch inner loop ------------------------------------------

    def keyswitch_inner_product(self, digit_stack: np.ndarray,
                                b_stack: np.ndarray, a_stack: np.ndarray,
                                primes: tuple[int, ...],
                                ) -> tuple[np.ndarray, np.ndarray]:
        """Fused decompose-side inner product: ``sum_d digit_d * b_d``
        and ``sum_d digit_d * a_d`` over ``(D, R, n)`` stacks in one
        compiled call, reduced per limb on return.

        The lazy (single-final-reduction) accumulator is selected by the
        derived gate :func:`~repro.analysis.bounds
        .keyswitch_lazy_accumulate_ok`; otherwise products reduce as
        they are added.  Moduli whose single products overflow uint64
        are the caller's (object-dtype) problem — this method refuses
        them.
        """
        digit_stack = np.ascontiguousarray(digit_stack, dtype=np.uint64)
        b_stack = np.ascontiguousarray(b_stack, dtype=np.uint64)
        a_stack = np.ascontiguousarray(a_stack, dtype=np.uint64)
        num_digits, rows, n = digit_stack.shape
        maxq = max(primes)
        lazy_ok = keyswitch_lazy_accumulate_ok(num_digits, maxq)
        reduced_ok = mul_fits_uint64(maxq - 1, maxq - 1)
        if not reduced_ok and not lazy_ok:
            raise ValueError(
                "keyswitch_inner_product requires single digit-key "
                "products to fit uint64; use the object-dtype "
                "accumulate_keyswitch path for wider moduli")
        q_arr = np.array(primes, dtype=np.uint64)
        impl = self._impl
        obs = current_obs_hook()
        if impl is not None:
            mu_arr = np.array([(1 << 64) // q for q in primes],
                              dtype=np.uint64)
            if obs is not None:
                obs.begin("compiled.keyswitch.inner_product", cat="kernel",
                          digits=num_digits, limbs=rows, n=n,
                          provider=impl.name)
            acc0 = np.empty((rows, n), dtype=np.uint64)
            acc1 = np.empty((rows, n), dtype=np.uint64)
            if lazy_ok:
                cjit_ks_accum_lazy(impl, digit_stack, b_stack, a_stack,
                                   acc0, acc1, q_arr, mu_arr)
            else:
                cjit_ks_accum_reduced(impl, digit_stack, b_stack, a_stack,
                                      acc0, acc1, q_arr, mu_arr)
            self.kernel_invocations += 1
            self._verify_first_use(
                ("keyswitch", num_digits, rows, n, tuple(primes)),
                lambda: (digit_stack * b_stack % q_arr[None, :, None]).sum(
                    axis=0, dtype=np.uint64) % q_arr[:, None], acc0)
            if obs is not None:
                obs.count("backend.compiled.kernels.keyswitch")
                obs.end(lazy=lazy_ok)
            return acc0, acc1
        # No provider: the per-step reduced numpy loop (identical
        # residues; single products proven to fit above).
        self._note_fallback()
        q_col = q_arr[:, None]
        acc0 = np.zeros((rows, n), dtype=np.uint64)
        acc1 = np.zeros((rows, n), dtype=np.uint64)
        for d in range(num_digits):
            acc0 = (acc0 + digit_stack[d] * b_stack[d] % q_col) % q_col
            acc1 = (acc1 + digit_stack[d] * a_stack[d] % q_col) % q_col
        return acc0, acc1
