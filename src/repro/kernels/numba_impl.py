"""Optional Numba provider: ``@njit(parallel=True)`` mirrors of
``kernels.c``.

Import-guarded — Numba is *not* a dependency; when it is absent
``HAVE_NUMBA`` is False and :func:`repro.kernels.provider
.resolve_provider` moves on to the C-extension provider or the numpy
fallback.  The kernels mirror the C schedules with one systematic
substitution: where C uses Barrett reduction (128-bit multiply-high,
unavailable to Numba), these use a true ``%`` — a reduced value is a
reduced value, so outputs stay bit-identical, just a little slower on
the ``q >= 2**30`` Barrett regime.  All uint64 arithmetic keeps both
operands uint64 so Numba never promotes through float64.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised by the no-numba CI leg
    HAVE_NUMBA = False


if HAVE_NUMBA:
    _SH = np.uint64(32)

    @njit(cache=True, parallel=True, nogil=True)
    def _fwd_ntt(x, out, work, q_arr, psi, psi_sh, twf, twf_sh, bitrev,
                 use_shoup):  # pragma: no cover - jitted, CI numba leg
        rows, n = x.shape
        for row in prange(rows):
            q = q_arr[row]
            two_q = q + q
            a = work[row]
            for i in range(n):
                v = x[row, i]
                if v >= q:
                    v = v % q
                if use_shoup:
                    est = (v * psi_sh[row, i]) >> _SH
                    a[i] = v * psi[row, i] - est * q
                else:
                    a[i] = v * psi[row, i] % q
            toff = 0
            length = n >> 1
            while length >= 2:
                start = 0
                while start < n:
                    for j in range(length):
                        u = a[start + j]
                        v = a[start + length + j]
                        t = u + v
                        if t >= two_q:
                            t -= two_q
                        d = u + two_q - v
                        w = twf[row, toff + j]
                        if use_shoup:
                            est = (d * twf_sh[row, toff + j]) >> _SH
                            d = d * w - est * q
                        else:
                            d = d * w % q
                        a[start + j] = t
                        a[start + length + j] = d
                    start += 2 * length
                toff += length
                length >>= 1
            for start in range(0, n, 2):
                u = a[start]
                v = a[start + 1]
                t = u + v
                if t >= two_q:
                    t -= two_q
                d = u + two_q - v
                if d >= two_q:
                    d -= two_q
                a[start] = t
                a[start + 1] = d
            o = out[row]
            for i in range(n):
                t = a[bitrev[i]]
                if t >= q:
                    t -= q
                o[i] = t

    @njit(cache=True, parallel=True, nogil=True)
    def _inv_ntt(x, out, work, q_arr, twi, twi_sh, unfold, unfold_sh,
                 bitrev, mode):  # pragma: no cover - jitted, CI numba leg
        rows, n = x.shape
        for row in prange(rows):
            q = q_arr[row]
            two_q = q + q
            a = work[row]
            o = out[row]
            for i in range(n):
                v = x[row, bitrev[i]]
                if v >= q:
                    v = v % q
                a[i] = v
            toff = 0
            length = 1
            while length < n:
                start = 0
                while start < n:
                    for j in range(length):
                        u = a[start + j]
                        v = a[start + length + j]
                        if length > 1:
                            if mode == 1:
                                est = (v * twi_sh[row, toff + j]) >> _SH
                                v = v * twi[row, toff + j] - est * q
                            else:
                                v = v * twi[row, toff + j] % q
                        if mode == 2:
                            a[start + j] = u + v
                            a[start + length + j] = u + q - v
                        else:
                            t = u + v
                            if t >= two_q:
                                t -= two_q
                            d = u + two_q - v
                            if d >= two_q:
                                d -= two_q
                            a[start + j] = t
                            a[start + length + j] = d
                    start += 2 * length
                toff += length
                length <<= 1
            if mode == 1:
                for i in range(n):
                    est = (a[i] * unfold_sh[row, i]) >> _SH
                    r = a[i] * unfold[row, i] - est * q
                    if r >= q:
                        r -= q
                    o[i] = r
            else:
                for i in range(n):
                    o[i] = a[i] * unfold[row, i] % q

    @njit(cache=True, parallel=True, nogil=True)
    def _auto(x, out, dest):  # pragma: no cover - jitted, CI numba leg
        rows, n = x.shape
        for row in prange(rows):
            for i in range(n):
                out[row, dest[i]] = x[row, i]

    @njit(cache=True, parallel=True, nogil=True)
    def _ks_accum(digits, bstack, astack, acc0, acc1, q_arr,
                  lazy):  # pragma: no cover - jitted, CI numba leg
        num_digits, rows, n = digits.shape
        for r in prange(rows):
            q = q_arr[r]
            s0 = acc0[r]
            s1 = acc1[r]
            for k in range(n):
                s0[k] = 0
                s1[k] = 0
            for d in range(num_digits):
                dd = digits[d, r]
                bb = bstack[d, r]
                aa = astack[d, r]
                if lazy:
                    for k in range(n):
                        s0[k] += dd[k] * bb[k]
                        s1[k] += dd[k] * aa[k]
                else:
                    for k in range(n):
                        t0 = s0[k] + dd[k] * bb[k] % q
                        if t0 >= q:
                            t0 -= q
                        t1 = s1[k] + dd[k] * aa[k] % q
                        if t1 >= q:
                            t1 -= q
                        s0[k] = t0
                        s1[k] = t1
            if lazy:
                for k in range(n):
                    s0[k] = s0[k] % q
                    s1[k] = s1[k] % q


class NumbaProvider:
    """Provider protocol over the jitted kernels (requires Numba)."""

    name = "numba"

    def __init__(self) -> None:
        if not HAVE_NUMBA:  # pragma: no cover - guarded by resolve_provider
            raise RuntimeError("numba is not importable")

    def fwd_ntt(self, plan, x, out, work, use_shoup: bool) -> None:
        _fwd_ntt(x, out, work, plan.q, plan.psi, plan.psi_sh,
                 plan.twf, plan.twf_sh, plan.bitrev, use_shoup)

    def inv_ntt(self, plan, x, out, work, mode: int) -> None:
        _inv_ntt(x, out, work, plan.q, plan.twi, plan.twi_sh,
                 plan.unfold, plan.unfold_sh, plan.bitrev, mode)

    def auto(self, x, out, dest) -> None:
        _auto(x, out, dest)

    def ks_accum(self, digits, bstack, astack, acc0, acc1, q_arr, mu_arr,
                 lazy: bool) -> None:
        _ks_accum(digits, bstack, astack, acc0, acc1, q_arr, lazy)
