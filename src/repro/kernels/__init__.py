"""``repro.kernels`` — the compiled fused-kernel backend.

The whole forward/inverse negacyclic NTT, the batched automorphism,
and the fused keyswitch inner loop each compile to a *single*
cache-blocked kernel call over the full ``(L, n)`` residue matrix,
with precomputed Barrett/Shoup constant tables (hoisted onto
:class:`~repro.ntt.tables.NttTables`) and reusable per-shape workspace
buffers.  Lazy-reduction eligibility is derived from the fhecheck
interval analysis (:mod:`repro.analysis.bounds`), never hand-coded.

Two interchangeable JIT providers sit behind one plan format:
``numba`` (``@njit(parallel=True)``, import-guarded — Numba is not a
dependency) and ``cext`` (``kernels.c`` compiled at first use with the
host C compiler and loaded via ctypes).  With neither available,
:class:`CompiledBackend` degrades to the inherited
:class:`~repro.fhe.backend.NumpyBackend` path, bit-identically.

Select globally with ``REPRO_BACKEND=compiled`` (see
:mod:`repro.fhe.backend`) and pin the provider with
``REPRO_JIT=numba|cext|none``.
"""

from repro.kernels.backend import CompiledBackend
from repro.kernels.plan import (
    CompiledPlan,
    clear_compiled_caches,
    get_plan,
    plan_cache,
)
from repro.kernels.provider import resolve_provider

__all__ = [
    "CompiledBackend",
    "CompiledPlan",
    "clear_compiled_caches",
    "get_plan",
    "plan_cache",
    "resolve_provider",
]
