"""Runtime-compiled C provider (``cc`` + ctypes).

Builds ``kernels.c`` with the host C toolchain at first use and loads
it through ctypes — no build system, no install step, no hard
dependency: :func:`load_provider` returns ``None`` whenever a working
compiler is missing and the backend degrades to numpy.

The shared object is cached on disk keyed by the source hash (under
``$REPRO_KERNEL_CACHE`` or the system temp directory), so the one-time
compile cost (~a second) is paid once per source revision per machine,
not per process.  ``-fopenmp`` is attempted first for per-limb
parallelism — the rows of every kernel are independent, so threading is
deterministic — with a serial fallback when the toolchain lacks it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = Path(__file__).with_name("kernels.c")
_VOID = ctypes.c_void_p
_I64 = ctypes.c_int64
_INT = ctypes.c_int


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_KERNEL_CACHE")
    if env:
        return Path(env)
    tag = os.environ.get("USER") or os.environ.get("USERNAME") or "shared"
    return Path(tempfile.gettempdir()) / f"repro-kernels-{tag}"


def _build(source: Path, cache: Path) -> Path | None:
    """Compile the kernel source into the hash-keyed cache; returns the
    shared-object path, or None when no toolchain invocation succeeds."""
    digest = hashlib.sha256(source.read_bytes()).hexdigest()[:16]
    lib = cache / f"repro_kernels_{digest}.so"
    if lib.exists():
        return lib
    cache.mkdir(parents=True, exist_ok=True)
    cc = os.environ.get("CC", "cc")
    tmp = lib.with_name(f"{lib.name}.tmp{os.getpid()}")
    for extra in (["-fopenmp"], []):
        cmd = [cc, "-O3", "-fPIC", "-shared", "-std=c11", *extra,
               str(source), "-o", str(tmp)]
        try:
            proc = subprocess.run(cmd, capture_output=True, timeout=300)
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode == 0:
            os.replace(tmp, lib)
            return lib
    return None


def _addr(arr: np.ndarray) -> int:
    return arr.ctypes.data


class CExtProvider:
    """ctypes facade over the compiled ``kernels.c`` entry points.

    Arrays handed in must be C-contiguous uint64 (int64 for index
    tables) — the plan builder and the backend guarantee that — so each
    call is four pointer loads and one foreign call, no marshalling.
    """

    name = "cext"

    def __init__(self, lib: ctypes.CDLL):
        self._fwd = lib.repro_fwd_ntt_batch
        self._fwd.restype = None
        self._fwd.argtypes = [_VOID, _VOID, _VOID, _I64, _I64,
                              _VOID, _VOID, _VOID, _VOID, _VOID, _VOID,
                              _VOID, _INT]
        self._inv = lib.repro_inv_ntt_batch
        self._inv.restype = None
        self._inv.argtypes = [_VOID, _VOID, _VOID, _I64, _I64,
                              _VOID, _VOID, _VOID, _VOID, _VOID, _VOID,
                              _VOID, _INT]
        self._auto = lib.repro_auto_batch
        self._auto.restype = None
        self._auto.argtypes = [_VOID, _VOID, _I64, _I64, _VOID]
        self._ks = lib.repro_ks_accum
        self._ks.restype = None
        self._ks.argtypes = [_VOID, _VOID, _VOID, _VOID, _VOID,
                             _I64, _I64, _I64, _VOID, _VOID, _INT]

    def fwd_ntt(self, plan, x: np.ndarray, out: np.ndarray,
                work: np.ndarray, use_shoup: bool) -> None:
        rows, n = x.shape
        self._fwd(_addr(x), _addr(out), _addr(work), rows, n,
                  _addr(plan.q), _addr(plan.mu),
                  _addr(plan.psi), _addr(plan.psi_sh),
                  _addr(plan.twf), _addr(plan.twf_sh),
                  _addr(plan.bitrev), 1 if use_shoup else 0)

    def inv_ntt(self, plan, x: np.ndarray, out: np.ndarray,
                work: np.ndarray, mode: int) -> None:
        rows, n = x.shape
        self._inv(_addr(x), _addr(out), _addr(work), rows, n,
                  _addr(plan.q), _addr(plan.mu),
                  _addr(plan.twi), _addr(plan.twi_sh),
                  _addr(plan.unfold), _addr(plan.unfold_sh),
                  _addr(plan.bitrev), mode)

    def auto(self, x: np.ndarray, out: np.ndarray,
             dest: np.ndarray) -> None:
        rows, n = x.shape
        self._auto(_addr(x), _addr(out), rows, n, _addr(dest))

    def ks_accum(self, digits: np.ndarray, bstack: np.ndarray,
                 astack: np.ndarray, acc0: np.ndarray, acc1: np.ndarray,
                 q_arr: np.ndarray, mu_arr: np.ndarray,
                 lazy: bool) -> None:
        num_digits, rows, n = digits.shape
        self._ks(_addr(digits), _addr(bstack), _addr(astack),
                 _addr(acc0), _addr(acc1), num_digits, rows, n,
                 _addr(q_arr), _addr(mu_arr), 1 if lazy else 0)


def load_provider() -> CExtProvider | None:
    """Compile (hash-cached) and load the C provider; None when the
    toolchain or the load fails — the caller degrades gracefully."""
    try:
        lib_path = _build(_SOURCE, _cache_dir())
    except OSError:
        return None
    if lib_path is None:
        return None
    try:
        return CExtProvider(ctypes.CDLL(str(lib_path)))
    except OSError:
        return None
