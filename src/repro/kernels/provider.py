"""JIT provider resolution and the gated ``cjit_*`` kernel entries.

Provider order is Numba first (when importable), then the
runtime-compiled C extension, then ``None`` (the backend falls back to
numpy) — overridable with ``REPRO_JIT=numba|cext|none``.

The ``cjit_*`` functions are the *only* way production code invokes a
compiled kernel.  Names carry the reduction discipline: a ``*_lazy`` /
``*_unclamped`` entry runs a lazy-reduction schedule whose soundness is
conditional on an analyzer-derived gate (``compiled_ntt_ok``,
``unclamped_dit_ok``, ``keyswitch_lazy_accumulate_ok`` — surfaced as
``*_ok`` plan attributes/locals at the call site), and the FHC007 lint
rule statically rejects any call that is not under such a gate.
"""

from __future__ import annotations

import os

import numpy as np


def resolve_provider(name: str | None = None):
    """Pick the compiled-kernel provider.

    ``name`` (or ``$REPRO_JIT``) selects ``numba``, ``cext`` or ``none``
    explicitly; unset/``auto`` tries Numba then the C extension.
    Returns ``None`` when the chosen provider is unavailable — the
    backend then degrades to the numpy path.
    """
    if name is None:
        name = os.environ.get("REPRO_JIT", "auto").strip().lower() or "auto"
    if name in ("none", "off", "0"):
        return None
    if name not in ("auto", "numba", "cext"):
        raise ValueError(
            f"unknown REPRO_JIT provider {name!r} (numba|cext|none)")
    if name in ("auto", "numba"):
        from repro.kernels.numba_impl import HAVE_NUMBA, NumbaProvider

        if HAVE_NUMBA:
            return NumbaProvider()
        if name == "numba":
            return None
    from repro.kernels.cext import load_provider

    return load_provider()


def cjit_fwd_ntt_lazy(impl, plan, x: np.ndarray, out: np.ndarray,
                      work: np.ndarray) -> np.ndarray:
    """Whole forward negacyclic NTT, lazy stages fused into one call.

    Gate: ``plan.lazy_stages_ok`` (:func:`~repro.analysis.bounds
    .compiled_ntt_ok`); the Shoup butterfly variant is selected by
    ``plan.shoup_ok``.  Output fully reduced (< q)."""
    impl.fwd_ntt(plan, x, out, work, plan.shoup_ok)
    return out


def cjit_inv_ntt_unclamped(impl, plan, x: np.ndarray, out: np.ndarray,
                           work: np.ndarray) -> np.ndarray:
    """Whole inverse NTT on the clamp-free schedule (lanes grow ``+q``
    per stage).  Gate: ``plan.unclamped_ok`` (:func:`~repro.analysis
    .bounds.unclamped_dit_ok`).  Output fully reduced (< q)."""
    impl.inv_ntt(plan, x, out, work, 2)
    return out


def cjit_inv_ntt_lazy(impl, plan, x: np.ndarray, out: np.ndarray,
                      work: np.ndarray) -> np.ndarray:
    """Whole inverse NTT, lazy (< 2q) stages; Shoup variant under
    ``plan.shoup_ok``, Barrett otherwise.  Gate:
    ``plan.lazy_stages_ok``.  Output fully reduced (< q)."""
    impl.inv_ntt(plan, x, out, work, 1 if plan.shoup_ok else 0)
    return out


def cjit_auto_batch(impl, x: np.ndarray, out: np.ndarray,
                    dest: np.ndarray) -> np.ndarray:
    """Batched evaluation-domain automorphism (pure gather — no
    reduction discipline, hence no gate in the name)."""
    impl.auto(x, out, dest)
    return out


def cjit_ks_accum_lazy(impl, digits: np.ndarray, bstack: np.ndarray,
                       astack: np.ndarray, acc0: np.ndarray,
                       acc1: np.ndarray, q_arr: np.ndarray,
                       mu_arr: np.ndarray) -> None:
    """Fused keyswitch inner product with the unreduced uint64
    accumulator and one final reduction per limb.  Gate:
    :func:`~repro.analysis.bounds.keyswitch_lazy_accumulate_ok`."""
    impl.ks_accum(digits, bstack, astack, acc0, acc1, q_arr, mu_arr, True)


def cjit_ks_accum_reduced(impl, digits: np.ndarray, bstack: np.ndarray,
                          astack: np.ndarray, acc0: np.ndarray,
                          acc1: np.ndarray, q_arr: np.ndarray,
                          mu_arr: np.ndarray) -> None:
    """Fused keyswitch inner product, every product reduced as it is
    added (the per-step channel for digit counts the lazy gate
    refuses; still requires single products to fit uint64)."""
    impl.ks_accum(digits, bstack, astack, acc0, acc1, q_arr, mu_arr, False)
