"""Per-shape plans for the compiled fused kernels.

A :class:`CompiledPlan` gathers, for one ``(n, primes)`` batch shape,
every constant the fused C/Numba kernels consume: the stacked
contiguous per-limb tables (moduli, Barrett constants, psi folds, flat
stage twiddles, fused unfold scalings, Shoup companions) plus the
analyzer-derived eligibility gates.  The per-modulus constants come
from :class:`repro.ntt.tables.NttTables` — hoisted there so every
backend shares one computation per ``(n, q)`` — and a plan only
*stacks* them into the row-major layout the kernels index.

Three process-global caches live here, all reset by
:func:`clear_compiled_caches` (and therefore by the module-level
:func:`repro.fhe.backend.clear_caches`):

* the plan cache itself, with hit/miss counters mirroring the
  ``VpuBackend`` program cache;
* the per-shape workspace pool (the kernels' only scratch memory, so
  steady-state dispatch allocates nothing but the output);
* the automorphism destination tables (int64, contiguous).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.analysis.bounds import compiled_ntt_ok, ntt_shoup_ok, unclamped_dit_ok
from repro.ntt.tables import get_tables

#: Placeholder for Shoup tables on shapes where the gate refuses them;
#: the kernels never read it (``use_shoup`` is derived from the same
#: gate) but the providers want a consistently-typed 2-D argument.
_NO_TABLE = np.empty((0, 0), dtype=np.uint64)


class CompiledPlan:
    """Constant tables plus derived gates for one ``(n, primes)`` shape.

    ``lazy_stages_ok`` (from :func:`~repro.analysis.bounds
    .compiled_ntt_ok`) decides whether the fused kernels may run at all;
    when it is False the plan stays table-less and the backend falls
    back to numpy.  ``shoup_ok`` and ``unclamped_ok`` select the
    mod-free butterfly and the clamp-free inverse schedule, again
    analyzer-derived rather than hand-coded width checks.
    """

    def __init__(self, n: int, primes: tuple[int, ...]):
        self.n = n
        self.primes = primes
        self.log_n = n.bit_length() - 1
        max_q = max(primes)
        self.lazy_stages_ok = (n >= 2 and not (n & (n - 1))
                               and compiled_ntt_ok(self.log_n, max_q))
        self.shoup_ok = self.lazy_stages_ok and ntt_shoup_ok(self.log_n, max_q)
        self.unclamped_ok = (self.lazy_stages_ok
                             and unclamped_dit_ok(self.log_n, max_q))
        if not self.lazy_stages_ok:
            return  # ineligible shape: no tables, backend falls back
        tabs = [get_tables(n, q) for q in primes]
        stack = lambda rows: np.ascontiguousarray(np.stack(rows))  # noqa: E731
        self.q = np.array(primes, dtype=np.uint64)
        self.mu = np.array([t.barrett_mu for t in tabs], dtype=np.uint64)
        self.psi = stack([t.psi_powers for t in tabs])
        self.twf = stack([t.dif_twiddles_flat for t in tabs])
        self.twi = stack([t.dit_twiddles_flat for t in tabs])
        self.unfold = stack([t.psi_inv_ninv for t in tabs])
        self.bitrev = np.ascontiguousarray(tabs[0].bitrev, dtype=np.int64)
        if self.shoup_ok:
            self.psi_sh = stack([t.psi_shoup for t in tabs])
            self.twf_sh = stack([t.dif_twiddles_flat_shoup for t in tabs])
            self.twi_sh = stack([t.dit_twiddles_flat_shoup for t in tabs])
            self.unfold_sh = stack([t.psi_inv_ninv_shoup for t in tabs])
        else:
            self.psi_sh = self.twf_sh = _NO_TABLE
            self.twi_sh = self.unfold_sh = _NO_TABLE


class PlanCache:
    """Keyed plan store with hit/miss counters — the compiled backend's
    analogue of the ``VpuBackend`` program cache, surfaced through the
    same obs gauge pattern.  Lookup-and-build is lock-protected so
    overlapping serving tasks build each ``(n, primes)`` plan once and
    the hit/miss counters stay exact under concurrency."""

    def __init__(self) -> None:
        self._plans: dict[tuple[int, tuple[int, ...]], CompiledPlan] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, n: int, primes: tuple[int, ...]) -> CompiledPlan:
        key = (n, primes)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                return plan
            self.misses += 1
            plan = CompiledPlan(n, primes)
            self._plans[key] = plan
            return plan

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        """Drop every plan and zero the counters (fresh cache instance)."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0


_PLAN_CACHE = PlanCache()
_WORKSPACES = threading.local()
_DESTINATIONS: dict[tuple[int, int], np.ndarray] = {}
_DESTINATIONS_LOCK = threading.Lock()


def plan_cache() -> PlanCache:
    """The process-global plan cache (shared by every CompiledBackend)."""
    return _PLAN_CACHE


def get_plan(n: int, primes: tuple[int, ...]) -> CompiledPlan:
    """Cached plan lookup for one batch shape."""
    return _PLAN_CACHE.get(n, primes)


def get_workspace(rows: int, n: int) -> np.ndarray:
    """Reusable ``(rows, n)`` uint64 scratch buffer for one dispatch.

    Workspaces are **thread-local**: the plan/destination tables are
    immutable and safely shared, but scratch is written by every
    dispatch, so concurrent same-shape dispatches from the serving
    layer's worker threads each get their own buffer."""
    pool = getattr(_WORKSPACES, "buffers", None)
    if pool is None:
        pool = _WORKSPACES.buffers = {}
    key = (rows, n)
    buf = pool.get(key)
    if buf is None:
        buf = np.empty((rows, n), dtype=np.uint64)
        pool[key] = buf
    return buf


def get_destinations(n: int, galois_k: int) -> np.ndarray:
    """Contiguous int64 destination table of the Galois permutation
    ``X -> X**galois_k`` (slot ``i`` lands at ``dest[i]``)."""
    key = (n, galois_k)
    with _DESTINATIONS_LOCK:
        dest = _DESTINATIONS.get(key)
        if dest is None:
            from repro.automorphism.mapping import galois_eval_permutation

            dest = np.ascontiguousarray(
                galois_eval_permutation(n, galois_k).destinations(),
                dtype=np.int64)
            _DESTINATIONS[key] = dest
    return dest


def clear_compiled_caches() -> None:
    """Reset every compiled-backend cache: plans (constant tables plus
    counters), workspace buffers, and automorphism destination tables.
    Wired into the module-level :func:`repro.fhe.backend.clear_caches`.

    Also zeroes the ``backend.compiled_plan_cache.*`` obs gauges (when a
    metrics registry is live), so a snapshot taken after a reset does
    not report the dropped cache's stale hit/miss figures."""
    from repro.obs import current_obs_hook

    _PLAN_CACHE.clear()
    getattr(_WORKSPACES, "buffers", {}).clear()
    with _DESTINATIONS_LOCK:
        _DESTINATIONS.clear()
    obs = current_obs_hook()
    if obs is not None:
        obs.zero_gauges("backend.compiled_plan_cache.")
