/* Fused negacyclic-NTT / automorphism / keyswitch kernels.
 *
 * This file is the C provider behind ``repro.kernels.CompiledBackend``:
 * it is compiled at first use by ``repro/kernels/cext.py`` with the host
 * C compiler (``cc -O3 -shared -fPIC`` plus ``-fopenmp`` when the
 * toolchain supports it) and loaded through ctypes.  Every entry point
 * operates on a full (L, n) residue matrix and runs *all* butterfly
 * stages of every limb in one call — no per-stage dispatch, no
 * temporaries beyond the caller-provided workspace.
 *
 * The arithmetic mirrors the analyzed numpy stage plans line for line
 * (``repro.analysis.stage_plans``), so the eligibility gates derived
 * there (``repro.analysis.bounds``) carry over:
 *
 * - Shoup butterflies (``*_sh`` tables, 2**32 radix) when
 *   ``ntt_shoup_ok`` holds (q < 2**30);
 * - Barrett reduction (``mu = floor(2**64 / q)``) for the lazy paths of
 *   wider moduli up to 2**31;
 * - the clamp-free inverse schedule only under ``unclamped_dit_ok``;
 * - the unreduced keyswitch accumulator only under
 *   ``keyswitch_lazy_accumulate_ok``.
 *
 * Outputs are always fully reduced (< q), which is what makes the
 * backend bit-identical to the numpy and VPU paths: the reduced residue
 * is unique regardless of the internal reduction schedule.
 */

#include <stdint.h>

typedef uint64_t u64;
typedef int64_t i64;
typedef unsigned __int128 u128;

/* Each entry point sets `par_rows` to its outer (independent-rows)
 * extent before the pragma; small batches stay serial so the threading
 * threshold, not the caller, decides when OpenMP pays. */
#ifdef _OPENMP
#define PARALLEL_LIMBS \
    _Pragma("omp parallel for schedule(static) if (par_rows > 1 && par_rows * n >= 16384)")
#else
#define PARALLEL_LIMBS
#endif

/* Barrett reduction of an arbitrary uint64 value z modulo q, with the
 * precomputed constant mu = floor(2**64 / q).  The estimate
 * floor(z * mu / 2**64) undershoots floor(z / q) by at most 2, so the
 * correction loop runs at most twice. */
static inline u64 barrett_mod(u64 z, u64 q, u64 mu) {
    u64 est = (u64)(((u128)z * mu) >> 64);
    u64 r = z - est * q;
    while (r >= q) r -= q;
    return r;
}

/* Shoup multiplication x * w mod q, lazily in [0, 2q).  w_sh is the
 * precomputed companion floor(w * 2**32 / q); requires q < 2**30 and
 * x below the 2**32 precision radix (the S002/S003 preconditions the
 * analyzer checks). */
static inline u64 shoup_mul_lazy(u64 x, u64 w, u64 w_sh, u64 q) {
    u64 est = (x * w_sh) >> 32;
    return x * w - est * q;
}

/* ------------------------------------------------------------------ */
/* Forward negacyclic NTT, all stages fused.                          */
/*                                                                    */
/* in/out/work: (L, n) row-major.  psi/psi_sh: (L, n) folding tables.  */
/* twf/twf_sh: per-limb flattened DIF stage twiddles (lengths n/2,    */
/* n/4, .., 1 concatenated -> n - 1 entries per limb).  bitrev: the   */
/* length-n involution undoing the DIF output order.  use_shoup       */
/* selects the mod-free butterfly (gate: ntt_shoup_ok).               */
/* ------------------------------------------------------------------ */
void repro_fwd_ntt_batch(const u64 *in, u64 *out, u64 *work,
                         i64 L, i64 n,
                         const u64 *q_arr, const u64 *mu_arr,
                         const u64 *psi, const u64 *psi_sh,
                         const u64 *twf, const u64 *twf_sh,
                         const i64 *bitrev, int use_shoup) {
    const i64 par_rows = L;
    PARALLEL_LIMBS
    for (i64 l = 0; l < par_rows; l++) {
        const u64 q = q_arr[l], mu = mu_arr[l], two_q = 2 * q;
        const u64 *x = in + l * n;
        const u64 *ps = psi + l * n;
        const u64 *tw = twf + l * (n - 1);
        u64 *a = work + l * n;

        /* psi fold: x * psi^j, into [0, 2q) (Shoup) or [0, q). */
        if (use_shoup) {
            const u64 *ps_sh = psi_sh + l * n;
            for (i64 i = 0; i < n; i++) {
                u64 v = x[i];
                if (v >= q) v %= q;
                a[i] = shoup_mul_lazy(v, ps[i], ps_sh[i], q);
            }
        } else {
            for (i64 i = 0; i < n; i++) {
                u64 v = x[i];
                if (v >= q) v %= q;
                a[i] = barrett_mod(v * ps[i], q, mu);
            }
        }

        /* Gentleman-Sande DIF stages, lazy (< 2q lanes throughout). */
        i64 toff = 0;
        const u64 *tw_sh = use_shoup ? twf_sh + l * (n - 1) : 0;
        for (i64 len = n >> 1; len >= 2; len >>= 1) {
            const u64 *wt = tw + toff;
            for (i64 start = 0; start < n; start += 2 * len) {
                u64 *pu = a + start;
                u64 *pv = a + start + len;
                if (use_shoup) {
                    const u64 *wt_sh = tw_sh + toff;
                    for (i64 j = 0; j < len; j++) {
                        u64 u = pu[j], v = pv[j];
                        u64 t = u + v; /* < 4q */
                        if (t >= two_q) t -= two_q;
                        u64 d = u + two_q - v; /* < 4q < 2**32 */
                        pu[j] = t;
                        pv[j] = shoup_mul_lazy(d, wt[j], wt_sh[j], q);
                    }
                } else {
                    for (i64 j = 0; j < len; j++) {
                        u64 u = pu[j], v = pv[j];
                        u64 t = u + v;
                        if (t >= two_q) t -= two_q;
                        u64 d = u + two_q - v; /* (4q-1)(q-1) < 2**64 */
                        pu[j] = t;
                        pv[j] = barrett_mod(d * wt[j], q, mu);
                    }
                }
            }
            toff += len;
        }
        /* Last stage (len == 1): the single twiddle is omega**0 == 1
         * for every prime -- skip the product, clamp the difference. */
        if (n >= 2) {
            for (i64 start = 0; start < n; start += 2) {
                u64 u = a[start], v = a[start + 1];
                u64 t = u + v;
                if (t >= two_q) t -= two_q;
                u64 d = u + two_q - v;
                if (d >= two_q) d -= two_q;
                a[start] = t;
                a[start + 1] = d;
            }
        }

        /* Undo the DIF output order (bit reversal is an involution: a
         * gather with the same table) and finish the < q reduction. */
        u64 *o = out + l * n;
        for (i64 i = 0; i < n; i++) {
            u64 t = a[bitrev[i]];
            if (t >= q) t -= q;
            o[i] = t;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Inverse negacyclic NTT, all stages fused.                          */
/*                                                                    */
/* twi/twi_sh: flattened DIT stage twiddles (lengths 1, 2, .., n/2).  */
/* unfold/unfold_sh: fused psi^{-j} * n^{-1} tables.  mode: 0 = lazy  */
/* Barrett, 1 = lazy Shoup (gate: ntt_shoup_ok), 2 = clamp-free       */
/* (gate: unclamped_dit_ok).                                          */
/* ------------------------------------------------------------------ */
void repro_inv_ntt_batch(const u64 *in, u64 *out, u64 *work,
                         i64 L, i64 n,
                         const u64 *q_arr, const u64 *mu_arr,
                         const u64 *twi, const u64 *twi_sh,
                         const u64 *unfold, const u64 *unfold_sh,
                         const i64 *bitrev, int mode) {
    const i64 par_rows = L;
    PARALLEL_LIMBS
    for (i64 l = 0; l < par_rows; l++) {
        const u64 q = q_arr[l], mu = mu_arr[l], two_q = 2 * q;
        const u64 *x = in + l * n;
        const u64 *tw = twi + l * (n - 1);
        const u64 *uf = unfold + l * n;
        u64 *a = work + l * n;
        u64 *o = out + l * n;

        /* Natural order -> bit-reversed DIT input, reduced < q. */
        for (i64 i = 0; i < n; i++) {
            u64 v = x[bitrev[i]];
            if (v >= q) v %= q;
            a[i] = v;
        }

        i64 toff = 0;
        if (mode == 2) {
            /* Clamp-free schedule: lanes grow by exactly +q per stage
             * (the twiddled half is freshly reduced); the gate proved
             * every intermediate, including the fused unfold product
             * below, fits uint64. */
            for (i64 len = 1; len < n; len <<= 1) {
                const u64 *wt = tw + toff;
                for (i64 start = 0; start < n; start += 2 * len) {
                    u64 *pu = a + start;
                    u64 *pv = a + start + len;
                    if (len == 1) {
                        /* Stage 0 twiddle is omega**0 == 1. */
                        u64 u = pu[0], v = pv[0];
                        pu[0] = u + v;
                        pv[0] = u + q - v;
                    } else {
                        for (i64 j = 0; j < len; j++) {
                            u64 u = pu[j];
                            u64 v = barrett_mod(pv[j] * wt[j], q, mu);
                            pu[j] = u + v;
                            pv[j] = u + q - v;
                        }
                    }
                }
                toff += len;
            }
            for (i64 i = 0; i < n; i++)
                o[i] = barrett_mod(a[i] * uf[i], q, mu);
        } else if (mode == 1) {
            /* Lazy Shoup schedule: < 2q lanes, mod-free twiddle
             * products, Shoup unfold plus one conditional subtract. */
            const u64 *tw_sh = twi_sh + l * (n - 1);
            const u64 *uf_sh = unfold_sh + l * n;
            for (i64 len = 1; len < n; len <<= 1) {
                const u64 *wt = tw + toff;
                const u64 *wt_sh = tw_sh + toff;
                for (i64 start = 0; start < n; start += 2 * len) {
                    u64 *pu = a + start;
                    u64 *pv = a + start + len;
                    for (i64 j = 0; j < len; j++) {
                        u64 u = pu[j];
                        u64 vin = pv[j];
                        u64 v = (len == 1)
                                    ? vin
                                    : shoup_mul_lazy(vin, wt[j], wt_sh[j], q);
                        u64 t = u + v;
                        if (t >= two_q) t -= two_q;
                        u64 d = u + two_q - v;
                        if (d >= two_q) d -= two_q;
                        pu[j] = t;
                        pv[j] = d;
                    }
                }
                toff += len;
            }
            for (i64 i = 0; i < n; i++) {
                u64 r = shoup_mul_lazy(a[i], uf[i], uf_sh[i], q);
                if (r >= q) r -= q;
                o[i] = r;
            }
        } else {
            /* Lazy Barrett schedule (2**30 <= q < 2**31). */
            for (i64 len = 1; len < n; len <<= 1) {
                const u64 *wt = tw + toff;
                for (i64 start = 0; start < n; start += 2 * len) {
                    u64 *pu = a + start;
                    u64 *pv = a + start + len;
                    for (i64 j = 0; j < len; j++) {
                        u64 u = pu[j];
                        u64 vin = pv[j];
                        u64 v = (len == 1)
                                    ? vin
                                    : barrett_mod(vin * wt[j], q, mu);
                        u64 t = u + v;
                        if (t >= two_q) t -= two_q;
                        u64 d = u + two_q - v;
                        if (d >= two_q) d -= two_q;
                        pu[j] = t;
                        pv[j] = d;
                    }
                }
                toff += len;
            }
            for (i64 i = 0; i < n; i++)
                o[i] = barrett_mod(a[i] * uf[i], q, mu);
        }
    }
}

/* ------------------------------------------------------------------ */
/* Batched evaluation-domain automorphism: one prime-independent       */
/* gather applied to every limb (dest[i] is where slot i lands).      */
/* ------------------------------------------------------------------ */
void repro_auto_batch(const u64 *in, u64 *out, i64 L, i64 n,
                      const i64 *dest) {
    const i64 par_rows = L;
    PARALLEL_LIMBS
    for (i64 l = 0; l < par_rows; l++) {
        const u64 *x = in + l * n;
        u64 *o = out + l * n;
        for (i64 i = 0; i < n; i++)
            o[dest[i]] = x[i];
    }
}

/* ------------------------------------------------------------------ */
/* Fused keyswitch inner loop: acc0 = sum_d digit_d * b_d and          */
/* acc1 = sum_d digit_d * a_d over (D, R, n) stacks, reduced per limb.*/
/*                                                                    */
/* lazy == 1 accumulates raw uint64 products with a single final      */
/* Barrett reduction (gate: keyswitch_lazy_accumulate_ok); otherwise  */
/* every product is Barrett-reduced as it is added and the running    */
/* sum is kept < q with a conditional subtract.                       */
/* ------------------------------------------------------------------ */
void repro_ks_accum(const u64 *digits, const u64 *bstack, const u64 *astack,
                    u64 *acc0, u64 *acc1, i64 D, i64 R, i64 n,
                    const u64 *q_arr, const u64 *mu_arr, int lazy) {
    const i64 par_rows = R;
    PARALLEL_LIMBS
    for (i64 r = 0; r < par_rows; r++) {
        const u64 q = q_arr[r], mu = mu_arr[r];
        u64 *s0 = acc0 + r * n;
        u64 *s1 = acc1 + r * n;
        for (i64 k = 0; k < n; k++) {
            s0[k] = 0;
            s1[k] = 0;
        }
        for (i64 d = 0; d < D; d++) {
            const u64 *dd = digits + (d * R + r) * n;
            const u64 *bb = bstack + (d * R + r) * n;
            const u64 *aa = astack + (d * R + r) * n;
            if (lazy) {
                for (i64 k = 0; k < n; k++) {
                    s0[k] += dd[k] * bb[k];
                    s1[k] += dd[k] * aa[k];
                }
            } else {
                for (i64 k = 0; k < n; k++) {
                    u64 t0 = s0[k] + barrett_mod(dd[k] * bb[k], q, mu);
                    if (t0 >= q) t0 -= q;
                    u64 t1 = s1[k] + barrett_mod(dd[k] * aa[k], q, mu);
                    if (t1 >= q) t1 -= q;
                    s0[k] = t0;
                    s1[k] = t1;
                }
            }
        }
        if (lazy) {
            for (i64 k = 0; k < n; k++) {
                s0[k] = barrett_mod(s0[k], q, mu);
                s1[k] = barrett_mod(s1[k], q, mu);
            }
        }
    }
}
