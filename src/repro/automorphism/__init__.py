"""Automorphism (Galois) machinery.

The paper's central insight (§IV-B) is that the irregular automorphism
permutation decomposes into nothing but cyclic shifts, all of which merge
into a **single traversal** of the VPU's multi-stage shift network.  This
package contains:

* :mod:`repro.automorphism.mapping` — the index maps themselves:
  the paper's Eq. (1), the general affine permutation class
  ``i -> k*i + s (mod n)`` (``k`` odd) that both the paper's map and the
  exact CKKS evaluation-domain Galois action instantiate, and the
  coefficient-domain automorphism with negacyclic sign flips.
* :mod:`repro.automorphism.decomposition` — the R x C column decomposition
  (Eqs. 2-3) and the recursive ``C' = 2`` shift decomposition.
* :mod:`repro.automorphism.controls` — shift-network control-signal
  generation: ``m - 1`` bits per automorphism, ``m/2``-entry pre-generated
  table (the paper's on-chip SRAM), plus a generic router that decides
  whether an arbitrary distance map can traverse the network in one pass.
"""

from repro.automorphism.controls import (
    RoutingConflictError,
    ShiftControls,
    affine_controls,
    control_table,
    control_table_size_bits,
    route_distance_map,
    uniform_shift_controls,
)
from repro.automorphism.decomposition import (
    StridedShift,
    column_decompose,
    merge_shifts,
    recursive_shift_decomposition,
)
from repro.automorphism.mapping import (
    AffinePermutation,
    apply_galois_coeffs,
    galois_element_for_rotation,
    galois_eval_permutation,
    paper_sigma,
)

__all__ = [
    "AffinePermutation",
    "RoutingConflictError",
    "ShiftControls",
    "StridedShift",
    "affine_controls",
    "apply_galois_coeffs",
    "column_decompose",
    "control_table",
    "control_table_size_bits",
    "galois_element_for_rotation",
    "galois_eval_permutation",
    "merge_shifts",
    "paper_sigma",
    "recursive_shift_decomposition",
    "route_distance_map",
    "uniform_shift_controls",
]
