"""Automorphism decomposition (paper §II-C and §IV-B).

Two decompositions live here:

* :func:`column_decompose` — the R x C decomposition of Eqs. (2)-(3):
  columns map to columns as a whole (a small affine map on column
  indices), and *within* each column the action is a small automorphism
  combined with a column-dependent cyclic shift — again affine.

* :func:`recursive_shift_decomposition` — the paper's key contribution:
  recursively split with ``C' = 2`` until the residual multiplier is 1.
  Because any odd ``k`` satisfies ``k === 1 (mod 2)``, every level's
  column action is a *pure shift* of a strided subsequence, and the
  length-2 base case is the identity.  The result is a list of
  :class:`StridedShift` operations whose composition equals the original
  automorphism — and which all merge into one traversal of the shift
  network (:mod:`repro.automorphism.controls`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automorphism.mapping import AffinePermutation


@dataclass(frozen=True)
class StridedShift:
    """A cyclic shift of a strided subsequence.

    Elements at global indices ``=== offset (mod stride)`` move down by
    ``amount`` *positions within the subsequence*, i.e. a global index
    distance of ``amount * stride``, cyclically within the subsequence.
    """

    n: int
    stride: int
    offset: int
    amount: int

    def __post_init__(self) -> None:
        if self.stride <= 0 or self.n % self.stride:
            raise ValueError(f"stride {self.stride} invalid for n={self.n}")
        if not 0 <= self.offset < self.stride:
            raise ValueError(f"offset {self.offset} out of range")

    @property
    def subsequence_length(self) -> int:
        return self.n // self.stride

    def global_distance(self) -> int:
        """The common global shift distance ``amount * stride mod n``."""
        return (self.amount % self.subsequence_length) * self.stride

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Apply the strided shift to a vector."""
        x = np.asarray(x)
        if len(x) != self.n:
            raise ValueError(f"expected length {self.n}, got {len(x)}")
        out = x.copy()
        sub = x[self.offset :: self.stride]
        out[self.offset :: self.stride] = np.roll(sub, self.amount % len(sub))
        return out


def column_decompose(
    perm: AffinePermutation, rows: int
) -> tuple[AffinePermutation, list[AffinePermutation]]:
    """Split an affine permutation on ``N = R x C`` (row-major) elements.

    Returns ``(column_map, row_maps)`` where ``column_map`` is the affine
    action on the ``C`` column indices (Eq. 3 generalized) and
    ``row_maps[c]`` is the affine action on the ``R`` elements of source
    column ``c`` (Eq. 2 generalized: small automorphism + cyclic shift).

    Semantics: source element ``(row, c)`` ends up at
    ``(row_maps[c].dest(row), column_map.dest(c))``.
    """
    n, k, s = perm.n, perm.multiplier, perm.offset
    if n % rows:
        raise ValueError(f"rows={rows} does not divide n={n}")
    cols = n // rows
    if cols & (cols - 1) or rows & (rows - 1):
        raise ValueError("rows and columns must be powers of two")
    column_map = AffinePermutation(cols, k % cols, s % cols) if cols > 1 else (
        AffinePermutation(1, 1, 0)
    )
    row_maps = []
    for c in range(cols):
        # dest(row*C + c) = k*C*row + (k*c + s)  (mod R*C)
        # row' = (k*row + floor((k*c + s) / C)) mod R
        shift = (k * c + s) // cols
        row_maps.append(
            AffinePermutation(rows, k % rows, shift % rows) if rows > 1
            else AffinePermutation(1, 1, 0)
        )
    return column_map, row_maps


def recursive_shift_decomposition(perm: AffinePermutation) -> list[StridedShift]:
    """Decompose an affine permutation into strided cyclic shifts.

    The returned shifts, applied in list order, reproduce ``perm`` exactly
    (verified by :func:`merge_shifts` and the test-suite).  The recursion
    is the paper's: split into two columns (even/odd indices); the column
    action's multiplier ``k mod 2`` is always 1, so each column only needs
    a shift plus a recursively-decomposed half-length automorphism.
    """
    shifts: list[StridedShift] = []
    _decompose(perm.n, perm.multiplier, perm.offset, stride=1, offset=0, out=shifts)
    return shifts


def _decompose(
    n: int, k: int, s: int, stride: int, offset: int, out: list[StridedShift]
) -> None:
    """Decompose ``i -> k*i + s mod n`` acting on the subsequence at
    ``offset (mod stride)`` of a length-``n * stride`` global vector."""
    total = n * stride
    k %= n if n > 0 else 1
    s %= n if n > 0 else 1
    if n <= 1:
        return
    if k == 1:
        # Pure cyclic shift of the whole subsequence.
        if s:
            out.append(StridedShift(total, stride, offset, s))
        return
    if s % 2:
        # Peel a unit shift so the column split keeps columns in place.
        _decompose(n, k, s - 1, stride, offset, out)
        out.append(StridedShift(total, stride, offset, 1))
        return
    # Split into C' = 2 columns: col = i mod 2 (global stride doubles).
    # Column c: row' = (k*row + (k*c + s)//2) mod n/2.
    for c in range(2):
        _decompose(
            n // 2,
            k,
            (k * c + s) // 2,
            stride * 2,
            offset + c * stride,
            out,
        )


def merge_shifts(shifts: list[StridedShift], n: int) -> np.ndarray:
    """Compose strided shifts into one per-element distance map.

    Returns ``distance`` with ``dest(i) = (i + distance[i]) mod n``; the
    paper's merging step (§IV-B): since each element belongs to exactly
    one subsequence per level, the distances simply add.
    """
    position = np.arange(n, dtype=np.int64)
    for shift in shifts:
        if shift.n != n:
            raise ValueError(f"shift length {shift.n} != {n}")
        position = shift.apply(position)
    # position[j] == original index now at slot j; invert to distances.
    dest = np.empty(n, dtype=np.int64)
    dest[position] = np.arange(n, dtype=np.int64)
    return (dest - np.arange(n, dtype=np.int64)) % n
