"""Galois/automorphism index maps.

The paper's Eq. (1) moves the element at index ``i`` to position
``i * Phi^r mod N``.  The exact CKKS evaluation-domain Galois action is
the slightly more general **affine** map ``i -> k*i + s (mod N)`` with an
odd multiplier — and the odd multiplier is all the hardware needs: every
result in :mod:`repro.automorphism.controls` (single-pass routing through
the shift network) holds for the whole affine family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.modular import mod_inverse


def _check_power_of_two(n: int) -> None:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"length must be a positive power of two, got {n}")


@dataclass(frozen=True)
class AffinePermutation:
    """The permutation ``i -> (multiplier * i + offset) mod n``.

    ``n`` is a power of two and ``multiplier`` odd, which makes the map a
    bijection.  Semantics follow the paper's Eq. (1): the element at
    index ``i`` *moves to* ``dest(i)``.
    """

    n: int
    multiplier: int
    offset: int = 0

    def __post_init__(self) -> None:
        _check_power_of_two(self.n)
        if self.multiplier % 2 == 0:
            raise ValueError(f"multiplier must be odd, got {self.multiplier}")
        object.__setattr__(self, "multiplier", self.multiplier % self.n)
        object.__setattr__(self, "offset", self.offset % self.n)

    def dest(self, i: int) -> int:
        """Position the element at index ``i`` moves to."""
        return (self.multiplier * i + self.offset) % self.n

    def destinations(self) -> np.ndarray:
        """Vector of destinations: ``dest(i)`` for all ``i``."""
        i = np.arange(self.n, dtype=np.int64)
        return (self.multiplier * i + self.offset) % self.n

    def source(self, j: int) -> int:
        """Index of the element that lands at position ``j``."""
        k_inv = mod_inverse(self.multiplier, self.n)
        return (j - self.offset) * k_inv % self.n

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Permute ``x``: ``out[dest(i)] = x[i]``."""
        x = np.asarray(x)
        if len(x) != self.n:
            raise ValueError(f"expected length {self.n}, got {len(x)}")
        out = np.empty_like(x)
        out[self.destinations()] = x
        return out

    def inverse(self) -> AffinePermutation:
        """The inverse permutation (also affine with odd multiplier)."""
        k_inv = mod_inverse(self.multiplier, self.n)
        return AffinePermutation(self.n, k_inv, (-k_inv * self.offset) % self.n)

    def compose(self, first: AffinePermutation) -> AffinePermutation:
        """Return ``self after first``: apply ``first``, then ``self``."""
        if first.n != self.n:
            raise ValueError(f"length mismatch: {first.n} vs {self.n}")
        # dest(i) = k2*(k1*i + s1) + s2
        return AffinePermutation(
            self.n,
            self.multiplier * first.multiplier % self.n,
            (self.multiplier * first.offset + self.offset) % self.n,
        )

    def is_identity(self) -> bool:
        return self.multiplier == 1 and self.offset == 0

    def shift_distances(self) -> np.ndarray:
        """Per-element cyclic shift distance ``(dest(i) - i) mod n``.

        The quantity the shift-network router consumes; for an affine map
        its bit ``b`` depends only on ``i mod 2^b`` (because ``k - 1`` is
        even), which is exactly why one network pass suffices.
        """
        i = np.arange(self.n, dtype=np.int64)
        return (self.destinations() - i) % self.n


def paper_sigma(n: int, r: int, phi: int = 5) -> AffinePermutation:
    """The paper's Eq. (1): ``sigma_{Phi,r}: i -> i * Phi^r mod N``."""
    _check_power_of_two(n)
    if phi % 2 == 0:
        raise ValueError(f"Phi must be odd (co-prime to N), got {phi}")
    return AffinePermutation(n, pow(phi, r, n), 0)


def galois_element_for_rotation(n: int, r: int, phi: int = 5) -> int:
    """The Galois element ``k = Phi^r mod 2n`` implementing an ``r``-slot
    homomorphic rotation on the degree-``n`` ring (X -> X^k)."""
    _check_power_of_two(n)
    return pow(phi, r, 2 * n)


def galois_eval_permutation(n: int, k: int) -> AffinePermutation:
    """Evaluation-domain permutation of the Galois action ``X -> X^k``.

    With natural-order evaluation vectors (slot ``i`` holds
    ``p(psi^(2i+1))``, see :class:`repro.ntt.NegacyclicNtt`), the value at
    slot ``j`` moves to every slot ``i`` with ``(2i+1)k === 2j+1 (mod 2n)``,
    i.e. the *move map* is affine:

    ``dest(j) = k^{-1} * (j - (k-1)/2) mod n``.

    ``k`` must be odd (a unit mod ``2n``).
    """
    _check_power_of_two(n)
    if k % 2 == 0:
        raise ValueError(f"Galois element must be odd, got {k}")
    k_inv = mod_inverse(k % (2 * n), 2 * n) % n
    # dest(j) = k_inv * j - k_inv*(k-1)/2  (mod n)
    offset = (-k_inv * ((k - 1) // 2)) % n
    return AffinePermutation(n, k_inv, offset)


def apply_galois_coeffs(coeffs: np.ndarray, k: int, q: int) -> np.ndarray:
    """Coefficient-domain automorphism on ``Z_q[X]/(X^n + 1)``.

    ``p(X) -> p(X^k)``: coefficient ``i`` moves to degree ``i*k mod 2n``,
    with a sign flip when the exponent wraps past ``n`` (since
    ``X^n = -1``).
    """
    coeffs = np.asarray(coeffs)
    n = len(coeffs)
    _check_power_of_two(n)
    if k % 2 == 0:
        raise ValueError(f"Galois element must be odd, got {k}")
    i = np.arange(n, dtype=np.int64)
    e = (i * (k % (2 * n))) % (2 * n)
    qq = q if coeffs.dtype == object else np.uint64(q)
    reduced = coeffs % qq
    negated = (qq - reduced) % qq
    # i -> i*k mod 2n is injective for odd k, so plain scatter suffices.
    out = np.empty_like(reduced)
    out[e % n] = np.where(e < n, reduced, negated)
    return out
