"""Shift-network control-signal generation (paper §III-B and §IV-B).

The shift network has ``log2 m`` stages of cyclic-shift distance
``m/2, m/4, ..., 1``.  A stage of distance ``d = 2^b`` consists of ``m``
2-to-1 MUXes, but its shift graph decomposes into ``d`` disjoint cycles
(the lanes congruent mod ``d``), and bijectivity forces every MUX in a
cycle to switch together — so the stage has exactly ``d`` independent
control signals and the whole network ``m - 1`` bits, as the paper notes.

**Single-pass theorem** (the paper's contribution, proven constructively
here): for an affine permutation ``dest(i) = k*i + s (mod m)`` with odd
``k``, the per-element shift distance ``D(i) = (dest(i) - i) mod m``
satisfies two properties that make one network traversal sufficient:

* *co-control consistency*: bit ``b`` of ``D(i)`` depends only on
  ``i mod 2^b`` (because ``k - 1`` is even), so all elements sharing a
  stage cycle agree on whether to shift;
* *no collisions*: after the stages of distance ``>= 2^b`` the partial
  positions ``i + (D(i) >> b << b)`` are pairwise distinct (their
  difference is ``(i1 - i2) * k mod m`` with ``k`` a unit).

Stages are traversed largest distance first, matching Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.automorphism.mapping import AffinePermutation


class RoutingConflictError(ValueError):
    """A distance map cannot traverse the shift network in one pass."""


@dataclass(frozen=True)
class ShiftControls:
    """Control bits for one traversal of the shift network.

    ``group_bits[b]`` holds the ``2^b`` independent signals of the stage
    with shift distance ``2^b``; the network applies stages in
    *decreasing* distance order ``m/2, ..., 2, 1`` (``b`` from
    ``log2(m)-1`` down to 0), matching Fig. 2.
    ``group_bits[b][a] == 1`` means the cycle of lanes ``=== a (mod 2^b)``
    shifts by ``2^b``.
    """

    m: int
    group_bits: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.m <= 1 or self.m & (self.m - 1):
            raise ValueError(f"m must be a power of two > 1, got {self.m}")
        log_m = self.m.bit_length() - 1
        if len(self.group_bits) != log_m:
            raise ValueError(
                f"expected {log_m} stages of group bits, got {len(self.group_bits)}"
            )
        for b, bits in enumerate(self.group_bits):
            if len(bits) != 1 << b:
                raise ValueError(
                    f"stage distance 2^{b} needs {1 << b} signals, got {len(bits)}"
                )

    @property
    def total_bits(self) -> int:
        """Number of control bits: always ``m - 1``."""
        return sum(len(bits) for bits in self.group_bits)

    def stage_distances(self) -> list[int]:
        """Distances in traversal order (largest first)."""
        return [1 << b for b in reversed(range(len(self.group_bits)))]

    def lane_selects(self, b: int) -> np.ndarray:
        """Expand stage ``b``'s group bits to per-output-lane MUX selects.

        ``select[j] == 1``: output lane ``j`` takes the shifted input from
        lane ``(j - 2^b) mod m``; otherwise it takes its local input.
        The group owning output ``j`` is ``j mod 2^b``.
        """
        d = 1 << b
        bits = np.array(self.group_bits[b], dtype=np.int64)
        return bits[np.arange(self.m) % d]

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Run a vector through the controlled shift network."""
        x = np.asarray(x)
        if len(x) != self.m:
            raise ValueError(f"expected length {self.m}, got {len(x)}")
        out = x
        for b in reversed(range(len(self.group_bits))):
            d = 1 << b
            selects = self.lane_selects(b).astype(bool)
            shifted = np.roll(out, d)
            out = np.where(selects, shifted, out)
        return out

    def packed(self) -> int:
        """All control bits packed into one integer (for table sizing)."""
        value = 0
        for bits in self.group_bits:
            for bit in bits:
                value = (value << 1) | bit
        return value


def controls_from_distance_map(m: int, distances: np.ndarray) -> ShiftControls:
    """Build controls for an arbitrary per-element distance map.

    ``distances[i]`` is the cyclic distance element ``i`` must travel.
    Raises :class:`RoutingConflictError` if the map violates co-control
    consistency or collides at an intermediate stage — the signal the
    mapping layer uses to fall back to a CG-assisted pass (Fig. 3b).
    """
    distances = np.asarray(distances, dtype=np.int64) % m
    if len(distances) != m:
        raise ValueError(f"expected {m} distances, got {len(distances)}")
    log_m = m.bit_length() - 1
    group_bits: list[tuple[int, ...]] = [()] * log_m
    positions = np.arange(m, dtype=np.int64)
    indices = np.arange(m, dtype=np.int64)
    for b in reversed(range(log_m)):
        d = 1 << b
        # Element i currently sits at lane positions[i]; it shifts at this
        # stage iff bit b of its remaining distance is set.
        wants = (distances >> b) & 1
        # Co-control: every element in a lane-cycle (positions mod d equal)
        # must agree.
        bits = np.full(d, -1, dtype=np.int64)
        for i in indices:
            group = positions[i] % d
            if bits[group] == -1:
                bits[group] = wants[i]
            elif bits[group] != wants[i]:
                raise RoutingConflictError(
                    f"stage distance {d}: cycle {group} elements disagree"
                )
        bits[bits == -1] = 0
        group_bits[b] = tuple(int(v) for v in bits)
        positions = (positions + wants * d) % m
        distances = distances - wants * d
        if len(np.unique(positions)) != m:
            raise RoutingConflictError(
                f"collision after stage distance {d}"
            )
    return ShiftControls(m, tuple(group_bits))


def route_distance_map(m: int, distances: np.ndarray) -> ShiftControls:
    """Alias of :func:`controls_from_distance_map` (public router API)."""
    return controls_from_distance_map(m, distances)


def affine_controls(m: int, multiplier: int, offset: int = 0) -> ShiftControls:
    """Controls for ``dest(i) = multiplier*i + offset mod m`` (closed form).

    Bit ``b`` of the distance of any element in stage cycle ``a`` is
    ``((a*(k-1) + s) mod 2^(b+1)) >> b`` — no search needed; this is what
    the paper pre-generates into on-chip SRAM.
    """
    if multiplier % 2 == 0:
        raise ValueError(f"multiplier must be odd, got {multiplier}")
    log_m = m.bit_length() - 1
    if m <= 1 or m & (m - 1):
        raise ValueError(f"m must be a power of two > 1, got {m}")
    k = multiplier % m
    s = offset % m
    group_bits = []
    for b in range(log_m):
        mask = (1 << (b + 1)) - 1
        bits = tuple(
            ((a * (k - 1) + s) & mask) >> b for a in range(1 << b)
        )
        group_bits.append(bits)
    return ShiftControls(m, tuple(group_bits))


def controls_for_permutation(perm: AffinePermutation) -> ShiftControls:
    """Controls realizing an :class:`AffinePermutation` in one pass."""
    return affine_controls(perm.n, perm.multiplier, perm.offset)


def uniform_shift_controls(m: int, amount: int) -> ShiftControls:
    """Controls for a plain cyclic shift by ``amount`` (multiplier 1)."""
    return affine_controls(m, 1, amount)


@lru_cache(maxsize=8)
def control_table(m: int) -> dict[int, ShiftControls]:
    """Pre-generated control table for all distinct automorphisms.

    With ``m`` lanes there are ``m/2`` distinct automorphism multipliers
    (the odd residues); the paper stores their ``m - 1``-bit control words
    in on-chip SRAM (§IV-B) so nothing is computed at runtime.
    """
    return {k: affine_controls(m, k) for k in range(1, m, 2)}


def control_table_size_bits(m: int) -> int:
    """SRAM footprint of the table: ``(m/2) * (m-1)`` bits (paper: ~2 kb
    at m = 64)."""
    return (m // 2) * (m - 1)


def merge_with_shift(controls_k: int, extra_shift: int, m: int) -> ShiftControls:
    """Merge an automorphism's controls with an additional cyclic shift.

    Used by the full-length mapping (Eq. 2): each column needs the
    length-``m`` automorphism *plus* a column-specific shift.  Composition
    of ``i -> k*i`` then ``+shift`` is affine, so the merged controls come
    straight from the closed form — the "extra simple logic gates" of
    §IV-B.
    """
    return affine_controls(m, controls_k, extra_shift)
