"""SHARP's permutation approach: ARK's automorphism unit + SRAM transpose.

SHARP inherits the dedicated multi-stage automorphism network from ARK
but adds F1-style hierarchical quadrant-swap SRAM buffers for NTT
transposes (paper §II-D), which is why its transpose structure costs
"up to 7x" our network (§V-B).  Unlike F1's simultaneously-read-and-
written dual-port quadrant buffers, SHARP's hierarchical buffers stream
one direction per phase: a single port at ~half the effective access
duty, which is what keeps its measured power near ARK's despite the
large SRAM (Table II).

Note the port methodology (§V-A): all baselines are re-implemented on
the same 64-bit, 64-lane VPU, so this model uses the shared 64-bit
datapath width even though silicon SHARP is a 36-bit short-word design.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.mapping import AffinePermutation
from repro.baselines.ark import automorphism_unit_stage_count
from repro.baselines.benes import BenesNetwork
from repro.baselines.f1 import quadrant_swap_transpose
from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport, mux_stage_cost
from repro.hwmodel.network_cost import multistage_network_cost
from repro.hwmodel.sram import SramMacro

#: Effective access duty of the phase-alternating hierarchical buffers.
SHARP_BUFFER_DUTY = 0.55


class SharpPermuter:
    """Behavioral model of SHARP's permutation units."""

    def __init__(self, m: int):
        if m < 2 or m & (m - 1):
            raise ValueError(f"m must be a power of two >= 2, got {m}")
        self.m = m
        self.automorphism_network = BenesNetwork(m)
        self.passes_executed = 0

    def transpose(self, tile: np.ndarray) -> np.ndarray:
        """Transpose through the hierarchical SRAM buffers."""
        self.passes_executed += 1
        return quadrant_swap_transpose(tile)

    def automorphism(self, x: np.ndarray, perm: AffinePermutation) -> np.ndarray:
        """One pass of the inherited dedicated automorphism network."""
        self.passes_executed += 1
        return self.automorphism_network.apply(x, perm.destinations())


def sharp_network_cost(m: int, bits: int = tech.WORD_BITS) -> CostReport:
    """SHARP's permutation hardware on an ``m``-lane VPU."""
    autom_unit = multistage_network_cost(
        m, automorphism_unit_stage_count(m), bits,
        activity=tech.SHARP_ACTIVITY_FACTOR,
    )
    buffers = SramMacro(
        bits=m * m * bits,
        io_bits=m * bits,
        ports=1,
        duty=SHARP_BUFFER_DUTY,
        label="hierarchical transpose buffers",
    ).cost()
    swap_muxes = (mux_stage_cost(m, bits) * 2).scaled_power(
        tech.SHARP_ACTIVITY_FACTOR
    )
    total = autom_unit + buffers + swap_muxes
    return CostReport(total.area_um2, total.power_mw, f"SHARP network (m={m})")
