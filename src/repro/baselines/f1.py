"""F1's permutation approach: quadrant-swap transpose + cyclic shifts.

F1 performs NTT dimension transposes in hierarchical quadrant-swap SRAM
buffers, and automorphisms with a plain cyclic-shift network used "in
conjunction with" the transpose unit.  Because a *uniform* cyclic shift
cannot realize the per-element distances of an automorphism, F1 needs
multiple masked passes — :func:`affine_via_uniform_shifts` constructs
that schedule, and its pass count is what the comparison benchmarks
charge F1 with.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.mapping import AffinePermutation
from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport, mux_stage_cost
from repro.hwmodel.network_cost import multistage_network_cost, shift_stage_count
from repro.hwmodel.sram import SramMacro


def quadrant_swap_transpose(matrix: np.ndarray, _level: int = 0) -> np.ndarray:
    """Transpose a ``2^k x 2^k`` matrix by recursive quadrant swaps.

    The algorithm F1's SRAM buffers implement: swap the off-diagonal
    quadrants, then recurse into each quadrant.  ``log2(n)`` levels of
    block swaps in place of a wire-level permutation network.
    """
    matrix = np.asarray(matrix)
    n = matrix.shape[0]
    if matrix.shape != (n, n) or (n & (n - 1)):
        raise ValueError(f"need a square power-of-two matrix, got {matrix.shape}")
    if n == 1:
        return matrix.copy()
    h = n // 2
    out = np.empty_like(matrix)
    out[:h, :h] = quadrant_swap_transpose(matrix[:h, :h])
    out[h:, h:] = quadrant_swap_transpose(matrix[h:, h:])
    out[:h, h:] = quadrant_swap_transpose(matrix[h:, :h])  # swapped...
    out[h:, :h] = quadrant_swap_transpose(matrix[:h, h:])  # ...quadrants
    return out


def affine_via_uniform_shifts(
    perm: AffinePermutation,
) -> list[tuple[int, np.ndarray]]:
    """Realize an affine permutation with only *uniform* cyclic shifts.

    Returns a schedule of ``(distance, write_mask)`` passes: pass ``p``
    cyclically shifts the whole vector by ``distance`` and commits only
    the lanes where ``write_mask`` is set.  A plain shift network needs
    one pass per distinct element distance — up to ``n/2`` for an
    automorphism — versus the unified network's single pass.
    """
    distances = perm.shift_distances()
    schedule = []
    for d in sorted(set(int(v) for v in distances)):
        mask = distances == d
        schedule.append((d, mask))
    return schedule


def apply_shift_schedule(
    x: np.ndarray, schedule: list[tuple[int, np.ndarray]]
) -> np.ndarray:
    """Execute an :func:`affine_via_uniform_shifts` schedule."""
    x = np.asarray(x)
    out = np.empty_like(x)
    for distance, mask in schedule:
        shifted = np.roll(x, distance)
        shifted_mask = np.roll(mask, distance)
        out[shifted_mask] = shifted[shifted_mask]
    return out


class F1Permuter:
    """Behavioral model of F1's transpose + shift permutation unit."""

    def __init__(self, m: int):
        if m < 2 or m & (m - 1):
            raise ValueError(f"m must be a power of two >= 2, got {m}")
        self.m = m
        self.passes_executed = 0

    def transpose(self, tile: np.ndarray) -> np.ndarray:
        """Transpose an m x m tile through the quadrant-swap buffers."""
        self.passes_executed += 1
        return quadrant_swap_transpose(tile)

    def automorphism(self, x: np.ndarray, perm: AffinePermutation) -> np.ndarray:
        """Apply an automorphism with masked uniform-shift passes."""
        schedule = affine_via_uniform_shifts(perm)
        self.passes_executed += len(schedule)
        return apply_shift_schedule(x, schedule)


def f1_network_cost(m: int, bits: int = tech.WORD_BITS) -> CostReport:
    """F1's permutation hardware on an ``m``-lane VPU.

    Quadrant-swap buffers sized for an ``m x m`` word tile with
    simultaneous read+write streaming (dual port, full duty), two levels
    of swap muxes on the ``m``-word datapath, plus the cyclic-shift
    network (``log2 m`` stages, no CG stages).
    """
    buffers = SramMacro(
        bits=m * m * bits,
        io_bits=m * bits,
        ports=2,
        duty=1.0,
        label="quadrant-swap transpose buffers",
    ).cost()
    swap_muxes = mux_stage_cost(m, bits) * 2
    shift_net = multistage_network_cost(m, shift_stage_count(m), bits)
    total = buffers + swap_muxes + shift_net
    return CostReport(total.area_um2, total.power_mw, f"F1 network (m={m})")
