"""Full crossbar switch (the BTS approach).

A crossbar realizes any permutation — or any partial mapping — in a
single pass by direct addressing, which is how BTS performs both its NTT
transposes and its automorphisms.  The price is ``O(m^2)`` crosspoints
and long wires, the scaling the paper's Table II quantifies.
"""

from __future__ import annotations

import numpy as np


class Crossbar:
    """An ``n x n`` crossbar."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError(f"n must be >= 2, got {n}")
        self.n = n

    @property
    def crosspoint_count(self) -> int:
        return self.n * self.n

    def permute(self, x: np.ndarray, dest: np.ndarray) -> np.ndarray:
        """One-pass permutation: ``out[dest[i]] = x[i]``."""
        x = np.asarray(x)
        dest = np.asarray(dest, dtype=np.int64)
        if len(x) != self.n or len(dest) != self.n:
            raise ValueError(f"expected length {self.n}")
        if sorted(dest.tolist()) != list(range(self.n)):
            raise ValueError("dest is not a permutation")
        out = np.empty_like(x)
        out[dest] = x
        return out

    def total_wire_lanes(self, dest: np.ndarray) -> int:
        """Sum of lane distances traversed — the power-relevant metric."""
        dest = np.asarray(dest, dtype=np.int64)
        src = np.arange(self.n, dtype=np.int64)
        return int(np.abs(dest - src).sum())
