"""ARK's permutation approach: two separate dedicated networks.

ARK builds a dedicated NTT unit with fixed butterfly connections and a
*separate* dedicated automorphism unit containing a multi-stage
permutation network (modeled as a Benes network, the canonical
rearrangeable multi-stage switch).  Each network alone is area-efficient,
but the duplication — two lane attachments, two control planes, and no
shared stages — costs ARK the 1.6x area / ~3x power the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.mapping import AffinePermutation
from repro.baselines.benes import BenesNetwork
from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport
from repro.hwmodel.network_cost import cg_stage_count, multistage_network_cost
from repro.ntt.constant_geometry import dif_gather_permutation, dit_scatter_permutation


class ArkPermuter:
    """Behavioral model of ARK's dual dedicated networks."""

    def __init__(self, m: int):
        if m < 2 or m & (m - 1):
            raise ValueError(f"m must be a power of two >= 2, got {m}")
        self.m = m
        self.automorphism_network = BenesNetwork(m)
        self.passes_executed = 0

    def ntt_gather(self, x: np.ndarray, dit: bool = False) -> np.ndarray:
        """One pass of the fixed NTT-connection network."""
        self.passes_executed += 1
        perm = dit_scatter_permutation(self.m) if dit else dif_gather_permutation(self.m)
        return np.asarray(x)[perm]

    def automorphism(self, x: np.ndarray, perm: AffinePermutation) -> np.ndarray:
        """One pass of the dedicated (Benes) automorphism network."""
        self.passes_executed += 1
        return self.automorphism_network.apply(x, perm.destinations())


def automorphism_unit_stage_count(m: int) -> int:
    """Stages of ARK's automorphism network.

    A Benes network has ``2*log2(m) - 1`` switch columns; ARK's
    specialized variant trims one column by exploiting the restricted
    permutation family, leaving ``2*log2(m) - 2`` mux stages.
    """
    return 2 * (m.bit_length() - 1) - 2


def ark_network_cost(m: int, bits: int = tech.WORD_BITS) -> CostReport:
    """ARK's two dedicated networks on an ``m``-lane VPU."""
    ntt_unit = multistage_network_cost(
        m, cg_stage_count(m), bits, activity=tech.ARK_ACTIVITY_FACTOR
    )
    autom_unit = multistage_network_cost(
        m, automorphism_unit_stage_count(m), bits,
        activity=tech.ARK_ACTIVITY_FACTOR,
    )
    total = ntt_unit + autom_unit
    return CostReport(total.area_um2, total.power_mw, f"ARK networks (m={m})")
