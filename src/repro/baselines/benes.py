"""Benes rearrangeable permutation network.

ARK's (and SHARP's) dedicated automorphism unit is a complex multi-stage
permutation network; we model it as a Benes network — the canonical
minimal multi-stage network that can realize *any* permutation — with the
classic looping route algorithm.

A Benes network on ``n = 2^k`` terminals has ``2k - 1`` columns of
``n/2`` two-by-two switches: an input column, two recursive half-size
sub-networks (drawn as the middle columns), and an output column.
Compare with the paper's unified network: ``log2 m`` shift stages suffice
for the automorphism family because automorphisms are *affine*, while the
Benes pays nearly double the stages for full generality it never uses.
"""

from __future__ import annotations

import numpy as np


class BenesNetwork:
    """A Benes network on ``n`` terminals (``n`` a power of two, >= 2)."""

    def __init__(self, n: int):
        if n < 2 or n & (n - 1):
            raise ValueError(f"n must be a power of two >= 2, got {n}")
        self.n = n

    @property
    def stage_count(self) -> int:
        """Number of switch columns: ``2*log2(n) - 1``."""
        return 2 * (self.n.bit_length() - 1) - 1

    @property
    def switch_count(self) -> int:
        """Total 2x2 switches: ``(n/2) * stage_count``."""
        return (self.n // 2) * self.stage_count

    def route(self, dest: np.ndarray) -> dict:
        """Compute switch settings realizing ``out[dest[i]] = in[i]``.

        Returns a nested settings structure consumed by :meth:`apply`.
        Raises :class:`ValueError` if ``dest`` is not a permutation.
        """
        dest = np.asarray(dest, dtype=np.int64)
        if sorted(dest.tolist()) != list(range(self.n)):
            raise ValueError("dest is not a permutation")
        return _route(dest.tolist())

    def apply(self, x: np.ndarray, dest: np.ndarray) -> np.ndarray:
        """Permute ``x`` through the network: ``out[dest[i]] = x[i]``."""
        x = np.asarray(x)
        if len(x) != self.n:
            raise ValueError(f"expected length {self.n}, got {len(x)}")
        settings = self.route(dest)
        return np.asarray(_apply(settings, list(x)))


def _route(dest: list[int]) -> dict:
    """Looping algorithm.  ``dest[i]`` is the output for input ``i``."""
    n = len(dest)
    if n == 2:
        return {"n": 2, "cross": dest[0] == 1}

    half = n // 2
    # Color each input 0 (top subnet) or 1 (bottom subnet) such that the
    # two members of every input pair {2i, 2i+1} and every output pair
    # differ.  Walk the constraint cycles.
    color = [-1] * n
    inv = [0] * n
    for i, d in enumerate(dest):
        inv[d] = i
    for start in range(n):
        if color[start] != -1:
            continue
        node = start
        color[node] = 0
        while True:
            # Input-pair partner must take the other subnet...
            partner_in = node ^ 1
            if color[partner_in] != -1:
                break
            color[partner_in] = 1 - color[node]
            # ...and the input sharing its *output* pair the other again.
            partner_out = inv[dest[partner_in] ^ 1]
            if color[partner_out] != -1:
                break
            color[partner_out] = 1 - color[partner_in]
            node = partner_out

    in_cross = [False] * half
    out_cross = [False] * half
    top_dest = [0] * half
    bot_dest = [0] * half
    for i in range(half):
        a, b = 2 * i, 2 * i + 1
        # The top-colored element leaves through the switch's top port
        # into top-subnet position i.
        in_cross[i] = color[a] == 1
        top_elem = a if color[a] == 0 else b
        bot_elem = b if color[a] == 0 else a
        top_dest[i] = dest[top_elem] // 2
        bot_dest[i] = dest[bot_elem] // 2
        # Output switch j takes the top subnet's output j on its top port.
        j_top, want_top = dest[top_elem] // 2, dest[top_elem] % 2
        out_cross[j_top] = want_top == 1
    return {
        "n": n,
        "in_cross": in_cross,
        "out_cross": out_cross,
        "top": _route(top_dest),
        "bottom": _route(bot_dest),
    }


def _apply(settings: dict, x: list) -> list:
    n = settings["n"]
    if n == 2:
        return [x[1], x[0]] if settings["cross"] else list(x)
    half = n // 2
    top_in = [None] * half
    bot_in = [None] * half
    for i in range(half):
        a, b = x[2 * i], x[2 * i + 1]
        if settings["in_cross"][i]:
            a, b = b, a
        top_in[i] = a
        bot_in[i] = b
    top_out = _apply(settings["top"], top_in)
    bot_out = _apply(settings["bottom"], bot_in)
    out = [None] * n
    for j in range(half):
        a, b = top_out[j], bot_out[j]
        if settings["out_cross"][j]:
            a, b = b, a
        out[2 * j] = a
        out[2 * j + 1] = b
    return out
