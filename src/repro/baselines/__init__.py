"""Baseline permutation designs the paper compares against (Table I/II).

Each baseline module provides the behavioral model of that design's
permutation approach, ported to the same 64-lane VPU as in the paper's
§V-A methodology, plus a ``*_network_cost`` function priced with the
shared technology constants of :mod:`repro.hwmodel`:

* :mod:`repro.baselines.f1` — F1: quadrant-swap SRAM transpose buffers
  plus a cyclic-shift network (automorphism = shifts + transposes).
* :mod:`repro.baselines.bts` — BTS: full 64-bit crossbars, permutations
  by direct addressing.
* :mod:`repro.baselines.ark` — ARK: a dedicated fixed NTT-connection
  network plus a separate multi-stage (Benes-style) automorphism unit.
* :mod:`repro.baselines.sharp` — SHARP: ARK's automorphism unit plus
  F1-style (double-depth, 36-bit word) SRAM transpose buffers.
* :mod:`repro.baselines.benes` — the rearrangeable Benes network with its
  looping route algorithm, used by the ARK/SHARP models.
* :mod:`repro.baselines.crossbar` — the full-crossbar switch used by BTS.
"""

from repro.baselines.ark import ArkPermuter, ark_network_cost
from repro.baselines.benes import BenesNetwork
from repro.baselines.bts import BtsPermuter, bts_network_cost
from repro.baselines.crossbar import Crossbar
from repro.baselines.f1 import (
    F1Permuter,
    affine_via_uniform_shifts,
    f1_network_cost,
    quadrant_swap_transpose,
)
from repro.baselines.sharp import SharpPermuter, sharp_network_cost

__all__ = [
    "ArkPermuter",
    "SharpPermuter",
    "BenesNetwork",
    "BtsPermuter",
    "Crossbar",
    "F1Permuter",
    "affine_via_uniform_shifts",
    "ark_network_cost",
    "bts_network_cost",
    "f1_network_cost",
    "quadrant_swap_transpose",
    "sharp_network_cost",
]
