"""BTS's permutation approach: full crossbars with direct addressing.

BTS moves data through global horizontal/vertical crossbars and performs
transposes and automorphisms implicitly by writing each element to its
destination address.  Ported to a single ``m``-lane VPU (paper §V-A),
that is an ``m x m`` word-wide crossbar: one pass for any permutation,
``O(m^2)`` crosspoints and the worst wire-length scaling of Table II.
"""

from __future__ import annotations

import numpy as np

from repro.automorphism.mapping import AffinePermutation
from repro.baselines.crossbar import Crossbar
from repro.hwmodel import technology as tech
from repro.hwmodel.components import CostReport


class BtsPermuter:
    """Behavioral model of BTS's crossbar permutation unit."""

    def __init__(self, m: int):
        self.m = m
        self.crossbar = Crossbar(m)
        self.passes_executed = 0

    def automorphism(self, x: np.ndarray, perm: AffinePermutation) -> np.ndarray:
        """One crossbar pass: direct-addressed scatter."""
        self.passes_executed += 1
        return self.crossbar.permute(x, perm.destinations())

    def transpose_column(self, x: np.ndarray, dest: np.ndarray) -> np.ndarray:
        """Transposes are also a single addressed pass per column."""
        self.passes_executed += 1
        return self.crossbar.permute(x, dest)


def bts_network_cost(m: int, bits: int = tech.WORD_BITS) -> CostReport:
    """An ``m x m`` crossbar with ``bits``-wide links.

    Area: crosspoint array (``m^2`` word crosspoints).  Power: each of
    the ``m`` active paths drives a wire spanning ``m/2`` lane pitches on
    average every cycle.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    area = m * m * bits * tech.XBAR_CROSSPOINT_AREA_PER_BIT
    power = m * bits * (m / 2) * tech.XBAR_WIRE_POWER_PER_BIT_LANE
    return CostReport(area, power, f"BTS crossbar (m={m})")
