"""Hierarchical span tracer for the behavioral model.

A :class:`Span` is one timed region of a run — a VPU program execution,
a kernel dispatch, a DRAM transfer, a keyswitch phase.  Spans nest: the
tracer keeps a *context-local* stack (one per asyncio task / thread of
execution, via :mod:`contextvars`), so a ``vpu.execute`` span opened
inside a ``keyswitch.ntt`` phase records that phase as its parent, and
interleaved asyncio workers each nest correctly against their own stack
instead of corrupting a shared one.  The whole run serializes as a
forest loadable by Perfetto (:mod:`repro.obs.export`).

Causality across stacks comes from the ambient
:class:`~repro.obs.context.TraceContext`: every span begun while a
context is bound is stamped ``(trace_id, span_id, parent_id)``, and a
span begun at the bottom of a fresh stack (a worker task picking up a
queued request) stitches under the context's carrier span by
``parent_id`` — one request, one connected trace, across however many
tasks touched it.

Two clocks ride on every span:

* **wall time** — monotonic ``perf_counter_ns`` at begin/end, the
  real-world cost of the Python model;
* **model cycles** — the VPU's architectural cycle count, attached by
  the instrumentation via :meth:`Tracer.add_cycles`.  Cycles accumulate
  on the *innermost open* span (``cycles_self``), so each architectural
  cycle is counted exactly once and per-phase attribution never double
  counts even when phases nest (:func:`cycle_attribution`).

The tracer is only ever driven through the process-global obs hook
(:func:`repro.obs.current_obs_hook`); with the hook uninstalled no span
objects, clock reads, or dictionary writes happen anywhere in the model
(the FHC006 guard contract).
"""

from __future__ import annotations

import contextvars
import itertools
import time
from dataclasses import dataclass, field

from repro.obs.context import current_trace_context

#: Span category for the named workload phases the attribution table
#: groups by (decompose / NTT / inner-product / mod-down / ...).
CAT_PHASE = "phase"


@dataclass
class Span:
    """One begin/end region of the trace tree."""

    name: str
    cat: str
    index: int
    parent: "Span | None"
    start_ns: int
    end_ns: int | None = None
    #: Model cycles attributed to this span itself (not its children).
    cycles_self: int = 0
    args: dict = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)
    #: Request-scoped identity (0 = untraced): the ambient
    #: :class:`~repro.obs.context.TraceContext` at begin time.
    trace_id: int = 0
    span_id: int = 0
    #: Span this one hangs under causally: the structural parent when
    #: stacks are shared, or the context's carrier span when this span
    #: opened at the bottom of a fresh stack in another task.
    parent_id: int = 0

    @property
    def duration_ns(self) -> int:
        """Wall duration (0 while the span is still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    def subtree_cycles(self) -> int:
        """Model cycles of this span plus every descendant."""
        total = self.cycles_self
        for child in self.children:
            total += child.subtree_cycles()
        return total

    def phase_ancestor(self) -> "Span | None":
        """Nearest enclosing span (self included) with the phase
        category — the bucket the attribution table charges."""
        span: Span | None = self
        while span is not None:
            if span.cat == CAT_PHASE:
                return span
            span = span.parent
        return None


class Tracer:
    """Collects a forest of spans via context-local begin/end stacks.

    Each thread of execution (asyncio task, thread) sees its own stack
    through a per-tracer :class:`contextvars.ContextVar`, so concurrent
    begin/end sequences nest independently.  ``end`` with an empty
    stack is a tolerated no-op (a crashed workload may unwind past its
    instrumentation), and :meth:`unwind` force-closes any spans left
    open anywhere so exporters always see a consistent forest; an
    ``end`` racing a force-close is likewise a no-op.
    """

    def __init__(self, clock=time.perf_counter_ns):
        self._clock = clock
        self.spans: list[Span] = []  # every span, in begin order
        #: The current execution context's open-span stack (immutable
        #: tuple: asyncio tasks snapshot their context at creation, and
        #: tuples make those snapshots safe to extend independently).
        self._stack_var: "contextvars.ContextVar[tuple[Span, ...]]" = \
            contextvars.ContextVar(f"repro_span_stack_{id(self):x}",
                                   default=())
        #: Open spans across *all* contexts, by index — the force-close
        #: registry :meth:`unwind` drains and ``end`` consults so a
        #: span is closed exactly once.
        self._open: dict[int, Span] = {}
        self._span_ids = itertools.count(1)
        self.epoch_ns = clock()

    # -- the span stack ------------------------------------------------------

    def _mint(self, name: str, cat: str, parent: "Span | None",
              start_ns: int, args: dict) -> Span:
        trace_id = span_id = parent_id = 0
        ctx = current_trace_context()
        if ctx is not None:
            trace_id = ctx.trace_id
            span_id = next(self._span_ids)
            if parent is not None and parent.trace_id == trace_id \
                    and parent.span_id:
                parent_id = parent.span_id
            else:
                parent_id = ctx.span_id
        span = Span(name=name, cat=cat, index=len(self.spans),
                    parent=parent, start_ns=start_ns, args=args,
                    trace_id=trace_id, span_id=span_id,
                    parent_id=parent_id)
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        return span

    def begin(self, name: str, cat: str = "model", **args) -> Span:
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        span = self._mint(name, cat, parent, self._clock(), dict(args))
        self._open[span.index] = span
        self._stack_var.set(stack + (span,))
        return span

    def end(self, **args) -> Span | None:
        stack = self._stack_var.get()
        if not stack:
            return None
        span = stack[-1]
        self._stack_var.set(stack[:-1])
        if span.index not in self._open:
            return None  # already force-closed by unwind()
        del self._open[span.index]
        span.end_ns = self._clock()
        span.args.update(args)
        return span

    def record(self, name: str, cat: str = "model", *, dur_ns: int = 0,
               **args) -> Span:
        """Record an already-elapsed region ending now: a span whose
        interval is ``[now - dur_ns, now]``, closed immediately.

        This is how measured-but-not-instrumentable intervals (queue
        wait: the request sat in a queue, nobody's stack was open)
        become real spans with correct wall extents and trace identity
        instead of zero-width retrospective markers."""
        now = self._clock()
        stack = self._stack_var.get()
        parent = stack[-1] if stack else None
        span = self._mint(name, cat, parent, now - max(0, int(dur_ns)),
                          dict(args))
        span.end_ns = now
        return span

    def unwind(self) -> int:
        """Close every still-open span (innermost — latest begun —
        first); returns how many were dangling."""
        dangling = len(self._open)
        for index in sorted(self._open, reverse=True):
            span = self._open.pop(index)
            span.end_ns = self._clock()
        self._stack_var.set(())
        return dangling

    # -- annotations ---------------------------------------------------------

    def add_cycles(self, cycles: int) -> None:
        """Charge model cycles to the innermost open span of the
        current execution context (dropped when no span is open —
        cycles outside any traced region)."""
        for span in reversed(self._stack_var.get()):
            if span.index in self._open:
                span.cycles_self += int(cycles)
                return

    @property
    def depth(self) -> int:
        """Open-span depth of the current execution context."""
        stack = self._stack_var.get()
        return sum(1 for span in stack if span.index in self._open)

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def total_cycles(self) -> int:
        """Every model cycle recorded anywhere in the trace."""
        return sum(span.cycles_self for span in self.spans)


def cycle_attribution(tracer: Tracer) -> "dict[str, dict]":
    """Per-phase model-cycle attribution.

    Every span's ``cycles_self`` is charged to its nearest enclosing
    phase-category span (``(unattributed)`` when there is none), so the
    column sums to :meth:`Tracer.total_cycles` exactly — the acceptance
    contract that per-phase cycles reconcile with the backend's reported
    total.  Wall time and span counts are aggregated per phase *span*
    (phases never share their own wall time with nested phases here
    because the repository's phase spans are sequential).
    """
    table: dict[str, dict] = {}

    def row(name: str) -> dict:
        return table.setdefault(
            name, {"cycles": 0, "wall_ns": 0, "spans": 0})

    for span in tracer.spans:
        if span.cat == CAT_PHASE:
            entry = row(span.name)
            entry["wall_ns"] += span.duration_ns
            entry["spans"] += 1
    for span in tracer.spans:
        if span.cycles_self == 0:
            continue
        phase = span.phase_ancestor()
        name = phase.name if phase is not None else "(unattributed)"
        row(name)["cycles"] += span.cycles_self
    return dict(sorted(table.items()))
