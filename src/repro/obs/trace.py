"""Hierarchical span tracer for the behavioral model.

A :class:`Span` is one timed region of a run — a VPU program execution,
a kernel dispatch, a DRAM transfer, a keyswitch phase.  Spans nest: the
tracer keeps a stack, so a ``vpu.execute`` span opened inside a
``keyswitch.ntt`` phase records that phase as its parent, and the whole
run serializes as a tree loadable by Perfetto (:mod:`repro.obs.export`).

Two clocks ride on every span:

* **wall time** — monotonic ``perf_counter_ns`` at begin/end, the
  real-world cost of the Python model;
* **model cycles** — the VPU's architectural cycle count, attached by
  the instrumentation via :meth:`Tracer.add_cycles`.  Cycles accumulate
  on the *innermost open* span (``cycles_self``), so each architectural
  cycle is counted exactly once and per-phase attribution never double
  counts even when phases nest (:func:`cycle_attribution`).

The tracer is only ever driven through the process-global obs hook
(:func:`repro.obs.current_obs_hook`); with the hook uninstalled no span
objects, clock reads, or dictionary writes happen anywhere in the model
(the FHC006 guard contract).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Span category for the named workload phases the attribution table
#: groups by (decompose / NTT / inner-product / mod-down / ...).
CAT_PHASE = "phase"


@dataclass
class Span:
    """One begin/end region of the trace tree."""

    name: str
    cat: str
    index: int
    parent: "Span | None"
    start_ns: int
    end_ns: int | None = None
    #: Model cycles attributed to this span itself (not its children).
    cycles_self: int = 0
    args: dict = field(default_factory=dict)
    children: "list[Span]" = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        """Wall duration (0 while the span is still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns

    def subtree_cycles(self) -> int:
        """Model cycles of this span plus every descendant."""
        total = self.cycles_self
        for child in self.children:
            total += child.subtree_cycles()
        return total

    def phase_ancestor(self) -> "Span | None":
        """Nearest enclosing span (self included) with the phase
        category — the bucket the attribution table charges."""
        span: Span | None = self
        while span is not None:
            if span.cat == CAT_PHASE:
                return span
            span = span.parent
        return None


class Tracer:
    """Collects a tree of spans via a begin/end stack discipline.

    ``end`` with an empty stack is a tolerated no-op (a crashed workload
    may unwind past its instrumentation), and :meth:`unwind` force-closes
    any spans left open so exporters always see a consistent tree.
    """

    def __init__(self, clock=time.perf_counter_ns):
        self._clock = clock
        self.spans: list[Span] = []  # every span, in begin order
        self._stack: list[Span] = []
        self.epoch_ns = clock()

    # -- the span stack ------------------------------------------------------

    def begin(self, name: str, cat: str = "model", **args) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(name=name, cat=cat, index=len(self.spans),
                    parent=parent, start_ns=self._clock(), args=dict(args))
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, **args) -> Span | None:
        if not self._stack:
            return None
        span = self._stack.pop()
        span.end_ns = self._clock()
        span.args.update(args)
        return span

    def unwind(self) -> int:
        """Close every still-open span (outermost last); returns how
        many were dangling."""
        dangling = len(self._stack)
        while self._stack:
            self.end()
        return dangling

    # -- annotations ---------------------------------------------------------

    def add_cycles(self, cycles: int) -> None:
        """Charge model cycles to the innermost open span (dropped when
        no span is open — cycles outside any traced region)."""
        if self._stack:
            self._stack[-1].cycles_self += int(cycles)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.parent is None]

    def total_cycles(self) -> int:
        """Every model cycle recorded anywhere in the trace."""
        return sum(span.cycles_self for span in self.spans)


def cycle_attribution(tracer: Tracer) -> "dict[str, dict]":
    """Per-phase model-cycle attribution.

    Every span's ``cycles_self`` is charged to its nearest enclosing
    phase-category span (``(unattributed)`` when there is none), so the
    column sums to :meth:`Tracer.total_cycles` exactly — the acceptance
    contract that per-phase cycles reconcile with the backend's reported
    total.  Wall time and span counts are aggregated per phase *span*
    (phases never share their own wall time with nested phases here
    because the repository's phase spans are sequential).
    """
    table: dict[str, dict] = {}

    def row(name: str) -> dict:
        return table.setdefault(
            name, {"cycles": 0, "wall_ns": 0, "spans": 0})

    for span in tracer.spans:
        if span.cat == CAT_PHASE:
            entry = row(span.name)
            entry["wall_ns"] += span.duration_ns
            entry["spans"] += 1
    for span in tracer.spans:
        if span.cycles_self == 0:
            continue
        phase = span.phase_ancestor()
        name = phase.name if phase is not None else "(unattributed)"
        row(name)["cycles"] += span.cycles_self
    return dict(sorted(table.items()))
