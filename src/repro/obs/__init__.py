"""``repro.obs`` — unified tracing, metrics, and cycle attribution.

The paper's claims are accounting claims: cycles, SRAM/DRAM traffic,
and component utilization.  This package makes the model's accounting
*inspectable*: a hierarchical span tracer and a metrics registry ride a
single process-global hook threaded through ``VectorProcessingUnit``
execution, the ``VpuBackend`` kernel entry points, SRAM/DRAM staging,
``ParallelVpuPool`` scheduling, the integrity layer, the serving
engine, durable-execution journaling, and the keyswitch phases — and
the exporters turn one run into a Perfetto-loadable Chrome trace (with
per-request flow stitching), a JSON metrics snapshot, a Prometheus
text exposition, and a per-phase cycle-attribution table
(:mod:`repro.obs.export`, :mod:`repro.obs.telemetry`,
``python -m repro.obs``).

Request-scoped tracing (:mod:`repro.obs.context`): ``begin_request`` /
``end_request`` mint a :class:`~repro.obs.context.TraceContext` and a
root span for one serving request; the context rides a contextvar (and
the engine's ticket, across the queue), so every span any asyncio
task opens on behalf of that request — backend kernels, integrity
verify/replay, recovery journaling — is stamped with the same
``trace_id`` and stitches under the root.  One request, one trace.

Hook contract (the overhead-neutrality guarantee, mirroring the fault
layer's FHC005): production code touches the hook only as ::

    obs = current_obs_hook()
    if obs is not None:
        obs.begin("vpu.execute")
    ...
    if obs is not None:
        obs.end(cycles=run.cycles)

so with observability disabled every site is one predictable branch —
no span objects, no clock reads, no dict writes, no trace-id minting,
zero modeled cycles, and bit-identical kernel outputs.  The FHC006
lint rule statically enforces the guard at every dereference (FHC013
additionally requires serve/recover span sites to go through the
context-propagating API), and the test suite asserts bit- and
cycle-exactness with tracing off vs. on — including with a bound
:class:`~repro.obs.context.TraceContext`.

``REPRO_TRACE=1`` in the environment flips the hook on for CLI and
benchmark entry points that call :func:`enable_from_env`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.context import (
    TraceContext,
    bind_trace,
    check_span_tree,
    current_trace_context,
    new_trace_id,
    per_trace_cycles,
    trace_scope,
    unbind_trace,
)
from repro.obs.metrics import Histogram, LogHistogram, MetricsRegistry
from repro.obs.telemetry import SnapshotRing, prometheus_text
from repro.obs.trace import CAT_PHASE, Span, Tracer, cycle_attribution

__all__ = [
    "CAT_PHASE",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "Observer",
    "RequestTrace",
    "SnapshotRing",
    "Span",
    "TraceContext",
    "Tracer",
    "bind_trace",
    "check_span_tree",
    "current_obs_hook",
    "current_trace_context",
    "cycle_attribution",
    "enable_from_env",
    "install_obs_hook",
    "new_trace_id",
    "observe",
    "per_trace_cycles",
    "prometheus_text",
    "trace_scope",
    "unbind_trace",
]


@dataclass(frozen=True)
class RequestTrace:
    """Handle returned by :meth:`Observer.begin_request`: the child
    context to propagate (carry it on the ticket) plus the restore
    token and root span :meth:`Observer.end_request` closes."""

    ctx: TraceContext
    token: object
    root: Span


class Observer:
    """One observation session: tracer, metrics registry, snapshot ring.

    This is the object the instrumentation sites talk to through the
    guard; it exposes the small verb set the sites need so the hot-path
    call is one attribute lookup deep.
    """

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 ring: SnapshotRing | None = None):
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.ring = SnapshotRing() if ring is None else ring

    # -- tracing -------------------------------------------------------------

    def begin(self, name: str, cat: str = "model", **args) -> None:
        self.tracer.begin(name, cat, **args)

    def end(self, **args) -> None:
        self.tracer.end(**args)

    def record(self, name: str, cat: str = "model", *, dur_ns: int = 0,
               **args) -> None:
        """Record an already-elapsed region ending now (measured queue
        waits and backoff gaps; see :meth:`Tracer.record`)."""
        self.tracer.record(name, cat, dur_ns=dur_ns, **args)

    def add_cycles(self, cycles: int) -> None:
        self.tracer.add_cycles(cycles)

    @contextmanager
    def span(self, name: str, cat: str = "model", **args):
        """Context-manager span (exporter/driver-side convenience; the
        model's instrumentation sites use guarded begin/end pairs)."""
        self.tracer.begin(name, cat, **args)
        try:
            yield
        finally:
            self.tracer.end()

    # -- request-scoped tracing ----------------------------------------------

    def begin_request(self, name: str, cat: str = "serve",
                      **args) -> RequestTrace:
        """Open one request's trace: mint a trace id, bind it, begin
        the root span, and leave the root's child context ambient so
        everything the caller does until :meth:`end_request` stitches
        under the root.  The returned handle's ``ctx`` is what crosses
        task boundaries (e.g. on a serve ticket, re-entered with
        :func:`trace_scope`)."""
        trace_id = new_trace_id()
        token = bind_trace(TraceContext(trace_id))
        root = self.tracer.begin(name, cat, **args)
        ctx = TraceContext(trace_id, root.span_id)
        bind_trace(ctx)
        return RequestTrace(ctx=ctx, token=token, root=root)

    def end_request(self, handle: RequestTrace, **args) -> None:
        """Close the request's root span and restore the pre-request
        context binding."""
        self.tracer.end(**args)
        unbind_trace(handle.token)  # type: ignore[arg-type]

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def zero_gauges(self, prefix: str) -> int:
        """Zero existing gauges under ``prefix`` and drop the matching
        sketch/histogram series (cache-reset paths)."""
        return self.metrics.zero_gauges(prefix)

    def observe_value(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- telemetry -----------------------------------------------------------

    def tick_ring(self) -> None:
        """Feed the periodic snapshot ring (rate-limited internally)."""
        self.ring.tick(self.metrics)

    def reset_telemetry(self) -> None:
        """Drop accumulated ring state (cache/reset paths)."""
        self.ring.clear()


_ACTIVE_OBSERVER: Observer | None = None


def install_obs_hook(hook: Observer | None) -> Observer | None:
    """Install the process-global observer (None disables); returns the
    previous hook so callers can restore it."""
    global _ACTIVE_OBSERVER
    previous = _ACTIVE_OBSERVER
    _ACTIVE_OBSERVER = hook
    return previous


def current_obs_hook() -> Observer | None:
    """The process-global observer, or None when observability is off —
    the only way instrumentation sites reach the tracer/registry."""
    return _ACTIVE_OBSERVER


@contextmanager
def observe(hook: Observer | None = None):
    """Temporarily install an observer (a fresh one by default)."""
    session = Observer() if hook is None else hook
    previous = install_obs_hook(session)
    try:
        yield session
    finally:
        install_obs_hook(previous)


def enable_from_env() -> Observer | None:
    """Install a fresh observer when ``REPRO_TRACE`` is set (and no
    observer is active); entry points call this so tracing can be
    flipped on without code changes.  Returns the active observer."""
    if _ACTIVE_OBSERVER is None and os.environ.get("REPRO_TRACE"):
        install_obs_hook(Observer())
    return _ACTIVE_OBSERVER
