"""``repro.obs`` — unified tracing, metrics, and cycle attribution.

The paper's claims are accounting claims: cycles, SRAM/DRAM traffic,
and component utilization.  This package makes the model's accounting
*inspectable*: a hierarchical span tracer and a metrics registry ride a
single process-global hook threaded through ``VectorProcessingUnit``
execution, the ``VpuBackend`` kernel entry points, SRAM/DRAM staging,
``ParallelVpuPool`` scheduling, the integrity layer, and the keyswitch
phases — and three exporters turn one run into a Perfetto-loadable
Chrome trace, a JSON metrics snapshot, and a per-phase
cycle-attribution table (:mod:`repro.obs.export`,
``python -m repro.obs``).

Hook contract (the overhead-neutrality guarantee, mirroring the fault
layer's FHC005): production code touches the hook only as ::

    obs = current_obs_hook()
    if obs is not None:
        obs.begin("vpu.execute")
    ...
    if obs is not None:
        obs.end(cycles=run.cycles)

so with observability disabled every site is one predictable branch —
no span objects, no clock reads, no dict writes, zero modeled cycles,
and bit-identical kernel outputs.  The FHC006 lint rule statically
enforces the guard at every dereference, and the test suite asserts
bit- and cycle-exactness with tracing off vs. on.

``REPRO_TRACE=1`` in the environment flips the hook on for CLI and
benchmark entry points that call :func:`enable_from_env`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import CAT_PHASE, Span, Tracer, cycle_attribution

__all__ = [
    "CAT_PHASE",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Span",
    "Tracer",
    "current_obs_hook",
    "cycle_attribution",
    "enable_from_env",
    "install_obs_hook",
    "observe",
]


class Observer:
    """One observation session: a tracer plus a metrics registry.

    This is the object the instrumentation sites talk to through the
    guard; it exposes the small verb set the sites need so the hot-path
    call is one attribute lookup deep.
    """

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics

    # -- tracing -------------------------------------------------------------

    def begin(self, name: str, cat: str = "model", **args) -> None:
        self.tracer.begin(name, cat, **args)

    def end(self, **args) -> None:
        self.tracer.end(**args)

    def add_cycles(self, cycles: int) -> None:
        self.tracer.add_cycles(cycles)

    @contextmanager
    def span(self, name: str, cat: str = "model", **args):
        """Context-manager span (exporter/driver-side convenience; the
        model's instrumentation sites use guarded begin/end pairs)."""
        self.tracer.begin(name, cat, **args)
        try:
            yield
        finally:
            self.tracer.end()

    # -- metrics -------------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.inc(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def zero_gauges(self, prefix: str) -> int:
        """Zero existing gauges under ``prefix`` (cache-reset paths)."""
        return self.metrics.zero_gauges(prefix)

    def observe_value(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)


_ACTIVE_OBSERVER: Observer | None = None


def install_obs_hook(hook: Observer | None) -> Observer | None:
    """Install the process-global observer (None disables); returns the
    previous hook so callers can restore it."""
    global _ACTIVE_OBSERVER
    previous = _ACTIVE_OBSERVER
    _ACTIVE_OBSERVER = hook
    return previous


def current_obs_hook() -> Observer | None:
    """The process-global observer, or None when observability is off —
    the only way instrumentation sites reach the tracer/registry."""
    return _ACTIVE_OBSERVER


@contextmanager
def observe(hook: Observer | None = None):
    """Temporarily install an observer (a fresh one by default)."""
    session = Observer() if hook is None else hook
    previous = install_obs_hook(session)
    try:
        yield session
    finally:
        install_obs_hook(previous)


def enable_from_env() -> Observer | None:
    """Install a fresh observer when ``REPRO_TRACE`` is set (and no
    observer is active); entry points call this so tracing can be
    flipped on without code changes.  Returns the active observer."""
    if _ACTIVE_OBSERVER is None and os.environ.get("REPRO_TRACE"):
        install_obs_hook(Observer())
    return _ACTIVE_OBSERVER
