"""Per-tenant SLO policies: error-budget burn rates and latency objectives.

The serving engine publishes, per tenant, the cumulative counters
``serve.tenant.<t>.requests`` / ``serve.tenant.<t>.bad`` and the
latency sketch ``serve.tenant.<t>.latency_s`` (all through the guarded
obs hook).  This module turns those into *actionable* signals:

* **Error-budget burn rate** (the Google SRE multiwindow form).  A
  policy grants an error budget — the allowed bad-request fraction,
  e.g. 1%.  Over a window, ``burn = (bad/total) / budget``: burn 1.0
  consumes the budget exactly at the sustainable rate; burn 14.4 eats a
  30-day budget in 50 hours.  An alert fires only when **both** a long
  window and its short confirmation window (1/12 the length) exceed
  the threshold — the long window for significance, the short one so
  recovered incidents stop alerting quickly.  Windowed counts come from
  cumulative-counter deltas across the
  :class:`~repro.obs.telemetry.SnapshotRing`, which is why the ring
  exists.
* **Latency objective**: the tenant's streaming quantile (from the
  mergeable :class:`~repro.obs.metrics.LogHistogram` sketch) checked
  against the policy's objective.

Alerts are typed (:class:`SloAlert`) and consumable by the admission
controller (:meth:`repro.serve.admission.AdmissionController
.note_slo_alert`): a page-severity burn alert shrinks the tenant-facing
queue capacity, shedding load *before* deadlines do it the expensive
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import SnapshotRing

__all__ = ["SloAlert", "SloEngine", "SloPolicy"]

#: Default multiwindow ladder: (window seconds, burn threshold,
#: severity).  The thresholds are the classic 30-day-budget table
#: scaled to a serving session: fast burn pages, slow burn tickets.
DEFAULT_WINDOWS: tuple[tuple[float, float, str], ...] = (
    (60.0, 14.4, "page"),
    (600.0, 6.0, "ticket"),
)


@dataclass(frozen=True)
class SloPolicy:
    """One tenant's service-level objective."""

    tenant: str
    #: Latency objective: the ``quantile`` of the tenant's latency
    #: sketch must stay at or below this many seconds.
    latency_objective_s: float = 0.25
    quantile: float = 0.95
    #: Error budget: allowed fraction of bad (error/timeout) requests.
    error_budget: float = 0.01
    #: Burn-rate windows: (window_s, burn_threshold, severity).  Each
    #: long window is confirmed by a short window of 1/12 its length.
    windows: tuple[tuple[float, float, str], ...] = DEFAULT_WINDOWS

    def metric(self, what: str) -> str:
        return f"serve.tenant.{self.tenant}.{what}"


@dataclass(frozen=True)
class SloAlert:
    """One fired SLO signal (typed, consumable by admission control)."""

    tenant: str
    kind: str  # "burn_rate" | "latency"
    severity: str  # "page" | "ticket"
    window_s: float
    value: float  # burn rate, or observed quantile seconds
    threshold: float  # burn threshold, or the latency objective
    detail: str = ""


def _windowed_counts(ring: SnapshotRing, window_s: float,
                     requests_key: str, bad_key: str) -> tuple[float, float]:
    """(total, bad) deltas over the ring window; (0, 0) when the ring
    cannot yet span a window."""
    pair = ring.window(window_s)
    if pair is None:
        return 0.0, 0.0
    oldest, newest = pair

    def counter(entry: dict, key: str) -> float:
        return entry["snapshot"]["counters"].get(key, 0)

    total = counter(newest, requests_key) - counter(oldest, requests_key)
    bad = counter(newest, bad_key) - counter(oldest, bad_key)
    return max(0.0, total), max(0.0, bad)


@dataclass
class SloEngine:
    """Evaluates a set of policies against live registry + ring state."""

    policies: tuple[SloPolicy, ...] = ()
    #: Minimum windowed request count before a burn alert may fire —
    #: three bad requests out of five is noise, not an incident.
    min_requests: int = 20
    fired: list[SloAlert] = field(default_factory=list)

    def evaluate(self, registry: MetricsRegistry,
                 ring: SnapshotRing) -> list[SloAlert]:
        """One evaluation sweep; returns (and accumulates) the alerts."""
        alerts: list[SloAlert] = []
        for policy in self.policies:
            alerts.extend(self._burn_alerts(policy, ring))
            alert = self._latency_alert(policy, registry)
            if alert is not None:
                alerts.append(alert)
        self.fired.extend(alerts)
        return alerts

    def _burn_alerts(self, policy: SloPolicy,
                     ring: SnapshotRing) -> list[SloAlert]:
        requests_key = policy.metric("requests")
        bad_key = policy.metric("bad")
        alerts: list[SloAlert] = []
        for window_s, threshold, severity in policy.windows:
            total, bad = _windowed_counts(ring, window_s,
                                          requests_key, bad_key)
            if total < self.min_requests:
                continue
            burn = (bad / total) / policy.error_budget
            if burn <= threshold:
                continue
            # Confirmation window (1/12 the long window): the alert
            # clears as soon as the *recent* burn is back under the
            # threshold, even while the long window is still polluted.
            short_total, short_bad = _windowed_counts(
                ring, window_s / 12.0, requests_key, bad_key)
            if short_total >= 1:
                short_burn = (short_bad / short_total) / policy.error_budget
                if short_burn <= threshold:
                    continue
            alerts.append(SloAlert(
                tenant=policy.tenant, kind="burn_rate", severity=severity,
                window_s=window_s, value=burn, threshold=threshold,
                detail=f"{bad:.0f}/{total:.0f} bad over {window_s:.0f}s "
                       f"burns budget at {burn:.1f}x"))
        return alerts

    def _latency_alert(self, policy: SloPolicy,
                       registry: MetricsRegistry) -> "SloAlert | None":
        sketch = registry.sketch(policy.metric("latency_s"))
        if sketch is None or sketch.count < self.min_requests:
            return None
        observed = sketch.quantile(policy.quantile)
        if observed is None or observed <= policy.latency_objective_s:
            return None
        return SloAlert(
            tenant=policy.tenant, kind="latency", severity="ticket",
            window_s=0.0, value=observed,
            threshold=policy.latency_objective_s,
            detail=f"p{policy.quantile * 100:g} latency {observed:.4f}s "
                   f"exceeds the {policy.latency_objective_s:.4f}s objective")
