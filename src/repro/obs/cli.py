"""Workload profiler: ``python -m repro.obs``.

Profiles a named FHE workload on the behavioral VPU backend and emits
every exporter view at once::

    python -m repro.obs --workload keyswitch --quick
    python -m repro.obs --workload hmult --trace OBS_trace.json
    python -m repro.obs --validate-trace OBS_trace.json

Each profile runs the workload **three times** on fresh backends — once
with observability off, once with the tracer installed, and once with
the tracer installed *inside a bound request trace context*
(``begin_request``/``end_request``, the contextvar path the serving
layer rides) — and exits non-zero unless both traced runs are
bit-identical in output and integer-identical in model cycles (the
overhead-neutrality contract the instrumentation guards promise).  For
fully phase-covered workloads it additionally requires the per-phase
cycle attribution (decompose / NTT / inner-product / mod-down / ...) to
sum exactly to the backend's reported total cycles.

Artifacts: a Chrome ``trace_event`` JSON (Perfetto-loadable), a metrics
snapshot in the shared ``schema``/``bench``/``host`` envelope, and the
attribution table on stdout.

``python -m repro.obs --sentinel`` is the benchmark regression
sentinel instead (:mod:`repro.obs.sentinel`): validate every committed
``BENCH_*`` artifact, regenerate a quick working-tree candidate, and
exit non-zero on regression.
"""

from __future__ import annotations

import argparse
import json

import numpy as np

from repro.obs import Observer, cycle_attribution, install_obs_hook
from repro.obs.export import (
    format_attribution,
    metrics_snapshot,
    to_chrome_trace,
    validate_chrome_trace,
    validate_envelope,
)


# -- workloads ---------------------------------------------------------------


class _Workload:
    """One profiled workload: deterministic setup (numpy backend, no
    tracing) and a pure ``run`` replayed on fresh VPU backends."""

    #: Whether every VPU dispatch of ``run`` happens inside a phase
    #: span, so the attribution must reconcile exactly.
    phases_cover_total = True

    def __init__(self, quick: bool, seed: int):
        from repro.fhe.backend import NumpyBackend, use_backend

        self.quick = quick
        rng = np.random.default_rng(seed)
        with use_backend(NumpyBackend()):
            self.setup(rng)

    def setup(self, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def run(self):
        raise NotImplementedError

    @staticmethod
    def fingerprint(out) -> bytes:
        """Canonical bytes of a run's output for bit-compare."""
        arrays = out if isinstance(out, (tuple, list)) else (out,)
        return b"".join(np.ascontiguousarray(a).tobytes() for a in arrays)


class _KeyswitchWorkload(_Workload):
    """One full digit-decomposition keyswitch + ModDown — the paper's
    §II-A kernel mix, the four-phase attribution target."""

    name = "keyswitch"

    def setup(self, rng: np.random.Generator) -> None:
        from repro.fhe.keyswitch import generate_keyswitch_key
        from repro.fhe.params import small_params, toy_params
        from repro.fhe.rns import get_basis
        from repro.fhe.sampling import sample_uniform_poly

        self.params = toy_params() if self.quick else small_params()
        self.basis = get_basis(self.params.primes, self.params.special_prime)
        full = self.params.primes + (self.params.special_prime,)
        s_from = sample_uniform_poly(self.params.n, full, rng)
        s_to = sample_uniform_poly(self.params.n, full, rng)
        self.ksk = generate_keyswitch_key(self.params, s_from, s_to, rng)
        self.x = sample_uniform_poly(self.params.n, self.params.primes, rng)

    def run(self):
        from repro.fhe.keyswitch import apply_keyswitch, mod_down

        t0, t1 = apply_keyswitch(self.x, self.ksk, self.params)
        return (mod_down(t0, self.basis).residues,
                mod_down(t1, self.basis).residues)


class _CkksWorkload(_Workload):
    """Shared CKKS-context setup for the HMult/HRot/bootstrap shapes."""

    levels = 3
    rotations: "list[int]" = []

    def setup(self, rng: np.random.Generator) -> None:
        from repro.fhe.ckks import CkksContext
        from repro.fhe.params import CkksParams

        n = 256 if self.quick else 1024
        self.params = CkksParams(n=n, levels=self.levels, scale_bits=26,
                                 prime_bits=28)
        self.ctx = CkksContext(self.params, seed=2025)
        if self.rotations:
            self.ctx.generate_galois_keys(self.rotations)
        slots = self.params.slots
        self.ct_a = self.ctx.encrypt(rng.uniform(-1, 1, slots))
        self.ct_b = self.ctx.encrypt(rng.uniform(-1, 1, slots))

    @staticmethod
    def ct_fingerprint(ct) -> tuple:
        return tuple(p.residues.copy() for p in ct.parts)


class _HmultWorkload(_CkksWorkload):
    """HMult: tensor product + relinearization keyswitch + rescale."""

    name = "hmult"

    def run(self):
        return self.ct_fingerprint(self.ctx.multiply(self.ct_a, self.ct_b))


class _HrotWorkload(_CkksWorkload):
    """HRot: evaluation-domain automorphism + Galois keyswitch."""

    name = "hrot"
    rotations = [1]

    def run(self):
        return self.ct_fingerprint(self.ctx.rotate(self.ct_a, 1))


class _BootstrapWorkload(_CkksWorkload):
    """The bootstrapping-shaped pipeline (CoeffToSlot surrogate ->
    EvalMod surrogate -> SlotToCoeff surrogate) from
    ``examples/bootstrapping_pipeline.py`` at profiling scale.

    Plaintext encodes inside the traced run land outside the named
    phases, so only the neutrality checks (not exact phase coverage)
    apply.
    """

    name = "bootstrap"
    levels = 6
    phases_cover_total = False
    dim = 4

    def setup(self, rng: np.random.Generator) -> None:
        from repro.fhe.linear import required_rotations

        self.rotations = sorted(set(
            required_rotations(self.dim, bsgs=True)
            + required_rotations(self.dim)))
        super().setup(rng)
        forward = np.eye(self.dim)
        c, s = np.cos(0.7), np.sin(0.7)
        for i in range(0, self.dim - 1, 2):
            forward[i, i], forward[i, i + 1] = c, -s
            forward[i + 1, i], forward[i + 1, i + 1] = s, c
        self.forward = forward
        self.inverse = forward.T
        x = rng.uniform(-0.8, 0.8, self.dim)
        self.ct_a = self.ctx.encrypt(
            np.tile(x, self.params.slots // self.dim))

    def run(self):
        from repro.fhe.linear import encrypted_matvec_bsgs
        from repro.fhe.polyeval import evaluate_power_basis

        ct = encrypted_matvec_bsgs(self.ctx, self.ct_a, self.forward)
        ct = evaluate_power_basis(self.ctx, ct, [0.0, 1.2, 0.0, -0.15])
        ct = encrypted_matvec_bsgs(self.ctx, ct, self.inverse)
        return self.ct_fingerprint(ct)


_WORKLOADS = {cls.name: cls for cls in (
    _KeyswitchWorkload, _HmultWorkload, _HrotWorkload, _BootstrapWorkload)}


# -- the profiler ------------------------------------------------------------


def _run_pass(workload: _Workload, m: int, observer: Observer | None,
              in_request: bool = False):
    """One fresh-backend execution; returns (output, model cycles).

    With ``in_request`` the run happens inside a bound request trace
    context (``begin_request``/``end_request``) — the contextvar path
    every serve-layer request takes — so neutrality is proven for the
    stamped-span code path too, not just the bare tracer.
    """
    from repro.fhe.backend import VpuBackend, use_backend

    backend = VpuBackend(m=m)
    previous = install_obs_hook(observer)
    try:
        with use_backend(backend):
            if observer is not None and in_request:
                handle = observer.begin_request(
                    f"workload.{workload.name}", cat="workload",
                    quick=workload.quick)
                try:
                    out = workload.run()
                finally:
                    observer.end_request(handle)
            elif observer is not None:
                with observer.span(f"workload.{workload.name}",
                                   cat="workload", quick=workload.quick):
                    out = workload.run()
            else:
                out = workload.run()
    finally:
        install_obs_hook(previous)
    return out, backend.vpu.stats.cycles


def profile(workload: _Workload, m: int) -> dict:
    """Profile one workload: untraced baseline, traced replay, checks.

    Returns the result bundle the CLI serializes; ``ok`` is the gate CI
    enforces (bit-identical outputs, integer-identical cycles, and —
    for fully covered workloads — exact per-phase reconciliation).
    """
    out_off, cycles_off = _run_pass(workload, m, None)
    observer = Observer()
    out_on, cycles_on = _run_pass(workload, m, observer)
    ctx_observer = Observer()
    out_ctx, cycles_ctx = _run_pass(workload, m, ctx_observer,
                                    in_request=True)

    fp_off = workload.fingerprint(out_off)
    bit_identical = fp_off == workload.fingerprint(out_on)
    phases = cycle_attribution(observer.tracer)
    phase_sum = sum(row["cycles"] for name, row in phases.items()
                    if name != "(unattributed)")
    unattributed = phases.get("(unattributed)", {}).get("cycles", 0)
    checks = {
        "bit_identical": bit_identical,
        "cycles_identical": cycles_on == cycles_off,
        "bit_identical_in_trace_context":
            fp_off == workload.fingerprint(out_ctx),
        "cycles_identical_in_trace_context": cycles_ctx == cycles_off,
        "phase_sum_matches_total": phase_sum + unattributed == cycles_on,
    }
    if workload.phases_cover_total:
        checks["fully_attributed"] = unattributed == 0
    return {
        "workload": workload.name,
        "observer": observer,
        "cycles": {"off": cycles_off, "on": cycles_on,
                   "in_trace_context": cycles_ctx},
        "phases": phases,
        "phase_sum": phase_sum,
        "unattributed": unattributed,
        "checks": checks,
        "ok": all(checks.values()),
    }


# -- CLI ---------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Profile an FHE workload on the behavioral VPU: "
                    "Chrome trace + metrics snapshot + per-phase "
                    "cycle-attribution table.")
    parser.add_argument("--workload", choices=sorted(_WORKLOADS),
                        default="keyswitch", help="workload to profile")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: toy ring sizes")
    parser.add_argument("--m", type=int, default=16,
                        help="VPU lane count (default 16)")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--trace", metavar="PATH", default="OBS_trace.json",
                        help="Chrome trace_event output path")
    parser.add_argument("--metrics", metavar="PATH",
                        default="OBS_metrics.json",
                        help="metrics snapshot output path")
    parser.add_argument("--validate-trace", metavar="PATH", default=None,
                        help="validate an emitted trace JSON against the "
                             "trace_event shape and exit")
    parser.add_argument("--validate-envelope", metavar="PATH", default=None,
                        help="validate a BENCH_*/OBS_* artifact JSON "
                             "against the schema envelope and exit")
    parser.add_argument("--sentinel", action="store_true",
                        help="benchmark regression sentinel: validate the "
                             "committed BENCH_* artifacts, regenerate quick "
                             "candidates from the working tree, exit "
                             "non-zero on regression")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="with --sentinel: baseline artifact for a "
                             "full same-host comparison")
    parser.add_argument("--candidate", metavar="PATH", action="append",
                        default=None,
                        help="with --sentinel --baseline: candidate "
                             "artifact(s); repeat for best-of-group")
    parser.add_argument("--report", metavar="PATH",
                        default="SENTINEL_report.json",
                        help="sentinel report path "
                             "(default SENTINEL_report.json)")
    parser.add_argument("--no-regen", action="store_true",
                        help="with --sentinel: skip the working-tree "
                             "regeneration, validate envelopes only")
    return parser


def _validate(path: str) -> int:
    with open(path) as fh:
        obj = json.load(fh)
    problems = validate_chrome_trace(obj)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = sum(1 for e in obj["traceEvents"] if e.get("ph") == "X")
    print(f"{path}: valid trace_event JSON ({events} complete events)")
    return 0


def _validate_envelope(path: str) -> int:
    with open(path) as fh:
        obj = json.load(fh)
    problems = validate_envelope(obj)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    print(f"{path}: valid schema:{obj['schema']} envelope "
          f"(bench={obj['bench']!r})")
    return 0


def _sentinel(args) -> int:
    from pathlib import Path

    from repro.obs.export import host_envelope
    from repro.obs.sentinel import compare_files, run_sentinel

    if args.baseline is not None:
        candidates = [Path(p) for p in (args.candidate or [])]
        if not candidates:
            print("--baseline needs at least one --candidate")
            return 2
        checks = compare_files(Path(args.baseline), candidates)
        failed = [c for c in checks if not c.ok]
        for check in checks:
            mark = "PASS" if check.ok else "FAIL"
            print(f"{mark} {check.path} [{check.cls}]: {check.detail}")
        report = host_envelope("sentinel")
        report["ok"] = not failed
        report["artifacts"] = [{
            "file": str(args.baseline), "bench": "full-compare",
            "ok": not failed, "checks": [c.to_json() for c in checks],
        }]
        Path(args.report).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.report}")
        print("PASS" if not failed else f"FAIL ({len(failed)} regressions)")
        return 0 if not failed else 1
    result = run_sentinel(Path.cwd(), regen=not args.no_regen,
                          report_path=Path(args.report))
    print("PASS" if result.ok else "FAIL")
    return 0 if result.ok else 1


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sentinel:
        return _sentinel(args)
    if args.validate_trace is not None:
        return _validate(args.validate_trace)
    if args.validate_envelope is not None:
        return _validate_envelope(args.validate_envelope)

    workload = _WORKLOADS[args.workload](quick=args.quick, seed=args.seed)
    result = profile(workload, args.m)
    observer: Observer = result["observer"]

    with open(args.trace, "w") as fh:
        json.dump(to_chrome_trace(observer.tracer,
                                  f"repro.obs:{args.workload}"), fh, indent=1)
    snapshot = metrics_snapshot(observer.metrics, bench="obs", extra={
        "workload": args.workload,
        "quick": args.quick,
        "m": args.m,
        "cycles": result["cycles"],
        "phases": result["phases"],
        "checks": result["checks"],
    })
    with open(args.metrics, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"workload={args.workload} quick={args.quick} m={args.m}")
    print(format_attribution(observer.tracer))
    cycles = result["cycles"]
    print(f"\nbackend cycles: off={cycles['off']} on={cycles['on']}")
    for name, passed in result["checks"].items():
        print(f"check {name}: {'ok' if passed else 'FAIL'}")
    print(f"trace written to {args.trace}")
    print(f"metrics written to {args.metrics}")
    return 0 if result["ok"] else 1
