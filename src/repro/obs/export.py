"""Exporters: Chrome ``trace_event`` JSON, metrics snapshots, tables.

Three views of one observed run:

* :func:`to_chrome_trace` — the Trace Event Format dict (``ph: "X"``
  complete events in microseconds) that ``chrome://tracing`` and
  Perfetto load directly; model cycles and site annotations ride in
  each event's ``args``.
* :func:`metrics_snapshot` — the registry dump wrapped in the same
  ``schema``/``bench``/``host`` envelope as ``BENCH_kernels.json`` and
  ``BENCH_faults.json``, so downstream tooling dispatches on one format
  family.
* :func:`format_attribution` — the human-readable per-phase
  cycle-attribution table; phase cycles sum to the trace's total model
  cycles by construction (see :func:`repro.obs.trace.cycle_attribution`).

:func:`validate_chrome_trace` is the shape check CI runs against the
emitted trace before archiving it.
"""

from __future__ import annotations

import platform

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, cycle_attribution

#: Version of the BENCH_*/OBS_* JSON envelope family.
SCHEMA_VERSION = 1


def host_envelope(bench: str) -> dict:
    """The shared artifact envelope: schema version, artifact name, and
    the host fingerprint every committed benchmark JSON carries."""
    return {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "host": {"machine": platform.machine(),
                 "python": platform.python_version(),
                 "numpy": np.__version__},
    }


def validate_envelope(obj) -> list[str]:
    """Shape-check a BENCH_*/OBS_* artifact envelope; returns problems
    (empty = ok).  The check CI runs against committed benchmark JSON
    before archiving: schema version must match :data:`SCHEMA_VERSION`,
    ``bench`` names the artifact, and the host fingerprint carries the
    machine/python/numpy triple."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    if obj.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {obj.get('schema')!r}, expected {SCHEMA_VERSION}")
    if not isinstance(obj.get("bench"), str) or not obj.get("bench"):
        problems.append("missing non-empty 'bench' name")
    host = obj.get("host")
    if not isinstance(host, dict):
        problems.append("missing 'host' object")
    else:
        for key in ("machine", "python", "numpy"):
            if not isinstance(host.get(key), str):
                problems.append(f"host missing string {key!r}")
    return problems


# -- Chrome trace_event ------------------------------------------------------


def to_chrome_trace(tracer: Tracer, process_name: str = "repro-model") -> dict:
    """Serialize a span forest as Trace Event Format (Perfetto-loadable).

    Every span becomes one complete (``ph: "X"``) event; still-open
    spans are closed first via :meth:`Tracer.unwind`.  Timestamps are
    microseconds from the tracer's epoch, durations are clamped to a
    minimum of 1 ns so zero-wall-time model events stay visible.

    Request-scoped traces render as one lane per request: traced spans
    use ``tid = trace_id`` (untraced spans stay on tid 1), carry their
    ``trace_id``/``span_id``/``parent_id`` in ``args``, and every
    cross-task stitch (a span whose causal parent lives in another
    task's stack) emits a Perfetto flow-event pair (``ph: "s"`` at the
    parent, ``ph: "f"`` at the child) so the request's arrow chain is
    visible across lanes.
    """
    tracer.unwind()
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 1,
        "args": {"name": process_name},
    }]
    by_trace_span = {(s.trace_id, s.span_id): s for s in tracer.spans
                     if s.trace_id and s.span_id}
    flow_seq = 0
    for span in tracer.spans:
        args = dict(span.args)
        if span.cycles_self:
            args["cycles"] = span.cycles_self
        subtree = span.subtree_cycles()
        if subtree:
            args["cycles_subtree"] = subtree
        tid = span.trace_id if span.trace_id else 1
        if span.trace_id:
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id:
                args["parent_id"] = span.parent_id
        ts = (span.start_ns - tracer.epoch_ns) / 1000.0
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": ts,
            "dur": max(span.duration_ns, 1) / 1000.0,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
        # Cross-task stitch: causal parent known by id but not on this
        # span's structural stack -> a flow arrow from parent to child.
        if span.trace_id and span.parent_id and span.parent is None:
            parent = by_trace_span.get((span.trace_id, span.parent_id))
            if parent is not None:
                flow_seq += 1
                flow = {"cat": "flow", "name": f"trace.{span.trace_id}",
                        "id": flow_seq, "pid": 1}
                events.append(dict(
                    flow, ph="s", tid=parent.trace_id or 1,
                    ts=(parent.start_ns - tracer.epoch_ns) / 1000.0))
                events.append(dict(flow, ph="f", bp="e", tid=tid, ts=ts))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj) -> list[str]:
    """Shape-check a Chrome trace dict; returns problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return ["top level is not an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    if not any(isinstance(e, dict) and e.get("ph") == "X" for e in events):
        problems.append("no complete ('X') events")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i} has no name")
        ph = event.get("ph")
        if ph not in ("X", "M", "B", "E", "i", "C", "s", "t", "f"):
            problems.append(f"event {i} has unknown phase {ph!r}")
        if ph in ("s", "t", "f") and "id" not in event:
            problems.append(f"event {i} is a flow event with no id")
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    problems.append(f"event {i} missing numeric {key!r}")
            if not isinstance(event.get("args", {}), dict):
                problems.append(f"event {i} args is not an object")
    return problems


# -- metrics snapshot --------------------------------------------------------


def metrics_snapshot(metrics: MetricsRegistry, bench: str = "obs",
                     extra: dict | None = None) -> dict:
    """Registry dump in the shared artifact envelope."""
    out = host_envelope(bench)
    out.update(metrics.snapshot())
    if extra:
        out.update(extra)
    return out


# -- attribution table -------------------------------------------------------


def format_attribution(tracer: Tracer, total_label: str = "total") -> str:
    """The per-phase cycle-attribution table, human-readable.

    Cycles are charged to the nearest enclosing phase span, so the
    column sums to the trace's total model cycles exactly.
    """
    table = cycle_attribution(tracer)
    total = tracer.total_cycles()
    lines = [f"{'phase':24s} {'cycles':>12s} {'share':>7s} "
             f"{'wall ms':>9s} {'spans':>6s}"]
    for name, row in table.items():
        share = row["cycles"] / total if total else 0.0
        lines.append(f"{name:24s} {row['cycles']:12d} {share:6.1%} "
                     f"{row['wall_ns'] / 1e6:9.3f} {row['spans']:6d}")
    lines.append(f"{total_label:24s} {total:12d} {'100.0%':>7s}")
    return "\n".join(lines)
