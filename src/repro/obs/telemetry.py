"""Live telemetry: the snapshot ring buffer and Prometheus exposition.

Two export surfaces over one :class:`~repro.obs.metrics.MetricsRegistry`:

* :class:`SnapshotRing` — a bounded ring of periodic registry
  snapshots.  Counters are cumulative, so the delta between any two
  ring entries is an exact windowed rate — which is precisely what the
  SLO engine's multi-window burn-rate evaluation
  (:mod:`repro.obs.slo`) consumes.  The ring is fed from the serving
  hot path through the guarded obs hook (``Observer.tick_ring``), so
  with observability disabled it costs nothing and holds nothing.
* :func:`prometheus_text` — the text exposition format (version
  0.0.4): counters as ``*_total``, gauges verbatim, and the quantile
  sketches as Prometheus summaries (``{quantile="..."}``, ``_sum``,
  ``_count``).  Write it to a file or serve it from any HTTP handler;
  nothing here binds a socket.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = ["SnapshotRing", "prometheus_text"]


class SnapshotRing:
    """Bounded ring of timestamped registry snapshots.

    ``record`` appends unconditionally; ``tick`` rate-limits to one
    snapshot per ``period_s`` (the serving engine calls it per resolved
    request, the ring turns that into a periodic sampler).  Entries are
    plain dicts ``{"seq", "t", "snapshot"}`` with a monotonic sequence
    number, monotonic-clock seconds, and the registry's
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.
    """

    def __init__(self, capacity: int = 64, period_s: float = 1.0,
                 clock=time.monotonic):
        if capacity < 2:
            raise ValueError("capacity must be >= 2 (windows need a delta)")
        self.capacity = capacity
        self.period_s = period_s
        self._clock = clock
        self.entries: list[dict] = []
        self._seq = 0
        self._last_t: float | None = None

    def __len__(self) -> int:
        return len(self.entries)

    def record(self, registry: MetricsRegistry,
               t: float | None = None) -> dict:
        """Append one snapshot (evicting the oldest past capacity)."""
        t = self._clock() if t is None else t
        entry = {"seq": self._seq, "t": t, "snapshot": registry.snapshot()}
        self._seq += 1
        self._last_t = t
        self.entries.append(entry)
        if len(self.entries) > self.capacity:
            del self.entries[0]
        return entry

    def tick(self, registry: MetricsRegistry,
             t: float | None = None) -> "dict | None":
        """Record iff at least ``period_s`` elapsed since the last
        snapshot; returns the entry or None."""
        t = self._clock() if t is None else t
        if self._last_t is not None and t - self._last_t < self.period_s:
            return None
        return self.record(registry, t)

    def window(self, window_s: float,
               now: float | None = None) -> "tuple[dict, dict] | None":
        """The (oldest-within-window, newest) entry pair spanning up to
        ``window_s`` seconds back from ``now``; None when fewer than two
        entries exist.  Counter deltas between the pair are the exact
        windowed totals the burn-rate math needs."""
        if len(self.entries) < 2:
            return None
        newest = self.entries[-1]
        now = newest["t"] if now is None else now
        oldest = newest
        for entry in self.entries:
            if now - entry["t"] <= window_s:
                oldest = entry
                break
        if oldest is newest:
            oldest = self.entries[-2]
        return oldest, newest

    def clear(self) -> None:
        self.entries.clear()
        self._last_t = None


# -- Prometheus text exposition ---------------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    base = "".join(out)
    if base and base[0].isdigit():
        base = "_" + base
    return f"repro_{base}{suffix}"


def _fmt(value: float) -> str:
    if value != value:  # pragma: no cover - NaN never stored
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry,
                    quantiles: Iterable[float] = (0.5, 0.9, 0.99)) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters become ``repro_<name>_total`` (dots to underscores),
    gauges ``repro_<name>``, and each quantile sketch a summary:
    ``repro_<name>{quantile="0.5"}`` lines plus ``_sum``/``_count``.
    Output is deterministic (sorted series) and ends with a newline.
    """
    lines: list[str] = []
    for name in sorted(registry.counters):
        prom = _prom_name(name, "_total")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(registry.counters[name])}")
    for name in sorted(registry.gauges):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(registry.gauges[name])}")
    for name in sorted(registry.sketches):
        sketch = registry.sketches[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q in quantiles:
            value = sketch.quantile(q)
            if value is None:
                continue
            lines.append(f'{prom}{{quantile="{q:g}"}} {_fmt(value)}')
        lines.append(f"{prom}_sum {_fmt(sketch.total)}")
        lines.append(f"{prom}_count {_fmt(sketch.count)}")
    return "\n".join(lines) + "\n"
