"""Request-scoped trace contexts: the causal thread through the stack.

PR 4's tracer kept one implicit span stack, which is correct for a
single-threaded kernel run but wrong the moment interleaved asyncio
workers share it — PR 7 had to fall back to *retrospective* serve
spans.  This module supplies the missing causal identity: an explicit
:class:`TraceContext` ``(trace_id, span_id, parent_id)`` carried in a
:mod:`contextvars` variable, so every span the tracer mints while a
context is bound is stamped with the request it belongs to, and spans
begun in *other* asyncio tasks (workers, journal replay, recovery)
stitch under the request's root span by ``parent_id`` even though they
never shared a call stack.

Propagation rules:

* ``asyncio`` tasks copy the ambient context at creation, so a context
  bound around ``loop.create_task`` flows into the task for free.
* The serve engine's queue does **not** transfer context (workers are
  created at ``start()``); the ticket carries the request's
  :class:`TraceContext` and the worker re-enters it with
  :func:`trace_scope` — the one explicit hand-off in the system.
* Binding is only ever performed behind the obs-hook guard
  (:func:`repro.obs.current_obs_hook`), so with observability disabled
  no ids are minted and no contextvar is touched (the FHC006 contract
  extends to the context path).

:func:`per_trace_cycles` and :func:`check_span_tree` are the analysis
half: per-request cycle attribution that reconciles exactly with the
tracer's total, and the span-tree well-formedness check the chaos
campaign asserts (no orphan parents, no cross-trace nesting, exactly
one root per trace).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.trace import Tracer

__all__ = [
    "TraceContext",
    "bind_trace",
    "check_span_tree",
    "current_trace_context",
    "new_trace_id",
    "per_trace_cycles",
    "trace_scope",
    "unbind_trace",
]


@dataclass(frozen=True)
class TraceContext:
    """One request's position in its causal trace.

    ``trace_id`` names the request (process-unique, never 0);
    ``span_id`` is the span new child spans should stitch under (0 for
    a freshly minted trace with no root span yet).
    """

    trace_id: int
    span_id: int = 0

    def child(self, span_id: int) -> "TraceContext":
        """The context a span's children should inherit."""
        return TraceContext(self.trace_id, span_id)


#: The ambient trace context.  ``None`` (the default) means untraced —
#: spans minted without a binding carry ``trace_id == 0`` exactly as
#: before this module existed.
_CURRENT: "contextvars.ContextVar[TraceContext | None]" = \
    contextvars.ContextVar("repro_trace_context", default=None)

_TRACE_IDS = itertools.count(1)
_TRACE_ID_LOCK = threading.Lock()


def new_trace_id() -> int:
    """Mint a process-unique trace id (monotonic from 1; deterministic
    given a deterministic call order, so replayed campaigns produce
    identical trace numbering)."""
    with _TRACE_ID_LOCK:
        return next(_TRACE_IDS)


def current_trace_context() -> TraceContext | None:
    """The ambient :class:`TraceContext`, or None when untraced."""
    return _CURRENT.get()


def bind_trace(ctx: TraceContext | None) -> "contextvars.Token":
    """Bind ``ctx`` as the ambient context; returns the token
    :func:`unbind_trace` restores from."""
    return _CURRENT.set(ctx)


def unbind_trace(token: "contextvars.Token") -> None:
    """Restore the binding that was ambient before ``token``'s bind."""
    _CURRENT.reset(token)


@contextmanager
def trace_scope(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Run a block under ``ctx`` — the worker-side re-entry point for a
    context carried across the serve queue on a ticket."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


# -- per-trace analysis ------------------------------------------------------


def per_trace_cycles(tracer: "Tracer") -> dict[int, int]:
    """Model cycles charged to each trace (``cycles_self`` summed by
    ``trace_id``; untraced spans land under key 0).  The column sums to
    :meth:`~repro.obs.trace.Tracer.total_cycles` exactly — the
    request-scoped counterpart of the phase-attribution guarantee."""
    totals: dict[int, int] = {}
    for span in tracer.spans:
        if span.cycles_self:
            totals[span.trace_id] = (totals.get(span.trace_id, 0)
                                     + span.cycles_self)
    return totals


def check_span_tree(tracer: "Tracer") -> list[str]:
    """Span-tree well-formedness violations (empty = ok).

    Checks, per the chaos-campaign contract:

    * no span left open (run after the trace quiesces; exporters call
      :meth:`~repro.obs.trace.Tracer.unwind` first);
    * every nonzero ``parent_id`` resolves to a span of the *same*
      trace (no orphan stitches);
    * structural nesting never crosses traces (a child begun on some
      context stack belongs to its parent's trace, or to none);
    * structural children sit inside their parent's wall interval;
    * every trace has exactly one root span (``parent_id == 0``).
    """
    problems: list[str] = []
    by_trace_span: dict[tuple[int, int], object] = {}
    roots: dict[int, int] = {}
    for span in tracer.spans:
        if span.end_ns is None:
            problems.append(f"span #{span.index} {span.name!r} never closed")
        if span.trace_id:
            if span.span_id:
                by_trace_span[(span.trace_id, span.span_id)] = span
            if span.parent_id == 0:
                roots[span.trace_id] = roots.get(span.trace_id, 0) + 1
    for span in tracer.spans:
        if span.trace_id and span.parent_id:
            if (span.trace_id, span.parent_id) not in by_trace_span:
                problems.append(
                    f"span #{span.index} {span.name!r} (trace "
                    f"{span.trace_id}) stitches to unknown parent span "
                    f"{span.parent_id} (orphan)")
        parent = span.parent
        if parent is not None:
            if (span.trace_id and parent.trace_id
                    and parent.trace_id != span.trace_id):
                problems.append(
                    f"span #{span.index} {span.name!r} (trace "
                    f"{span.trace_id}) structurally nested under trace "
                    f"{parent.trace_id} span {parent.name!r} (mis-nested)")
            if span.start_ns < parent.start_ns:
                problems.append(
                    f"span #{span.index} {span.name!r} begins before its "
                    f"parent {parent.name!r}")
            if (span.end_ns is not None and parent.end_ns is not None
                    and span.end_ns > parent.end_ns):
                problems.append(
                    f"span #{span.index} {span.name!r} outlives its "
                    f"parent {parent.name!r}")
    for trace_id, count in sorted(roots.items()):
        if count != 1:
            problems.append(
                f"trace {trace_id} has {count} root spans (expected 1)")
    rootless = {tid for tid, _ in by_trace_span} - set(roots)
    for trace_id in sorted(rootless):
        problems.append(f"trace {trace_id} has spans but no root span")
    return problems
