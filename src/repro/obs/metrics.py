"""Process-global metrics: counters, gauges, histograms.

The registry is the scrape surface the ROADMAP's traffic-serving story
needs: compiled-program cache hits/misses, integrity detections and
retries, per-pool makespan/utilization, SRAM/DRAM byte traffic.  All of
it is fed exclusively through the obs hook
(:func:`repro.obs.current_obs_hook`) behind ``is not None`` guards, so
a disabled registry costs the model nothing (FHC006).

Metric names are dotted, lower-case, and stable —
``layer.component.what`` — and documented in DESIGN.md's Observability
section.  Snapshots serialize deterministically (sorted keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Histogram:
    """Streaming summary of an observed value (no buckets: the model's
    populations are small and min/mean/max is what the reports print)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": None,
                    "min": None, "max": None}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Named counters (monotonic), gauges (last value), histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def zero_gauges(self, prefix: str) -> int:
        """Zero every **existing** gauge whose name starts with
        ``prefix`` (no new gauges are created); returns how many were
        reset.  Cache-reset paths call this so a snapshot taken after
        ``clear_caches()`` does not report the dropped cache's stale
        hit/miss figures."""
        matched = [name for name in self.gauges if name.startswith(prefix)]
        for name in matched:
            self.gauges[name] = 0
        return len(matched)

    def snapshot(self) -> dict:
        """A plain-dict view, deterministic key order."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.to_dict() for name, hist
                           in sorted(self.histograms.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
