"""Process-global metrics: counters, gauges, histograms, sketches.

The registry is the scrape surface the ROADMAP's traffic-serving story
needs: compiled-program cache hits/misses, integrity detections and
retries, per-pool makespan/utilization, SRAM/DRAM byte traffic, and —
for the serving layer — streaming latency quantiles.  All of it is fed
exclusively through the obs hook (:func:`repro.obs.current_obs_hook`)
behind ``is not None`` guards, so a disabled registry costs the model
nothing (FHC006).

Every observed value feeds two summaries: the exact
min/mean/max :class:`Histogram` (what the reports print) and a
:class:`LogHistogram` quantile sketch.  The sketch uses *fixed*
log-spaced bucket boundaries — a pure function of the value, never of
the data seen so far — which is what makes sketches from different
workers, windows, or hosts mergeable by plain bucket-count addition
(the property SLO burn-rate windows and the snapshot ring rely on).

Metric names are dotted, lower-case, and stable —
``layer.component.what`` — and documented in DESIGN.md's Observability
section.  Snapshots serialize deterministically (sorted keys).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Histogram:
    """Streaming summary of an observed value (no buckets: the model's
    populations are small and min/mean/max is what the reports print)."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": None,
                    "min": None, "max": None}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max}


class LogHistogram:
    """Streaming quantile sketch over fixed log-spaced buckets.

    Bucket ``i`` covers ``[2^(i/k), 2^((i+1)/k))`` with
    ``k = buckets_per_octave`` (default 8: every bucket spans ~9%, so a
    reported quantile is within ~4.5% of the true value — ample for
    latency SLOs).  Boundaries depend only on the value, so two
    sketches — from different workers, different time windows, or
    different hosts — merge exactly by adding bucket counts
    (:meth:`merge`).  Non-positive values land in a dedicated zero
    bucket (quantiles treat them as 0).

    Storage is a sparse ``dict`` of bucket index -> count; real
    workloads touch a few dozen buckets.
    """

    __slots__ = ("buckets_per_octave", "buckets", "zero_count",
                 "count", "total", "min", "max")

    def __init__(self, buckets_per_octave: int = 8):
        self.buckets_per_octave = buckets_per_octave
        self.buckets: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _index(self, value: float) -> int:
        return math.floor(math.log2(value) * self.buckets_per_octave)

    def _midpoint(self, index: int) -> float:
        return 2.0 ** ((index + 0.5) / self.buckets_per_octave)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this sketch (exact: fixed boundaries)."""
        if other.buckets_per_octave != self.buckets_per_octave:
            raise ValueError(
                f"cannot merge sketches with different resolutions "
                f"({self.buckets_per_octave} vs {other.buckets_per_octave})")
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> float | None:
        """Approximate ``q``-quantile (bucket geometric midpoint), or
        None when empty."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * (self.count - 1) + 1  # 1-based target rank
        seen = self.zero_count
        if rank <= seen:
            return 0.0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                return self._midpoint(index)
        return self.max  # pragma: no cover - float-rounding backstop

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": None, "min": None,
                    "max": None, "p50": None, "p90": None, "p99": None}
        return {"count": self.count, "total": self.total,
                "mean": self.total / self.count,
                "min": self.min, "max": self.max,
                "p50": self.quantile(0.50),
                "p90": self.quantile(0.90),
                "p99": self.quantile(0.99)}


class MetricsRegistry:
    """Named counters (monotonic), gauges (last value), histograms,
    and quantile sketches (one per observed series, same name)."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.sketches: dict[str, LogHistogram] = {}

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = LogHistogram()
        sketch.observe(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def sketch(self, name: str) -> "LogHistogram | None":
        return self.sketches.get(name)

    def zero_gauges(self, prefix: str) -> int:
        """Zero every **existing** gauge whose name starts with
        ``prefix`` (no new gauges are created) and drop matching
        sketch/histogram state; returns how many series were reset.
        Cache-reset paths call this so a snapshot taken after
        ``clear_caches()`` does not report the dropped cache's stale
        hit/miss figures."""
        matched = [name for name in self.gauges if name.startswith(prefix)]
        for name in matched:
            self.gauges[name] = 0
        for store in (self.histograms, self.sketches):
            stale = [name for name in store if name.startswith(prefix)]
            matched.extend(name for name in stale if name not in matched)
            for name in stale:
                del store[name]
        return len(matched)

    def snapshot(self) -> dict:
        """A plain-dict view, deterministic key order."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {name: hist.to_dict() for name, hist
                           in sorted(self.histograms.items())},
            "sketches": {name: sketch.to_dict() for name, sketch
                         in sorted(self.sketches.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.sketches.clear()
