"""Benchmark regression sentinel over the committed ``BENCH_*`` artifacts.

Every benchmark in this repo writes a ``schema: 1`` JSON envelope
(:func:`repro.obs.export.host_envelope`) and commits it at the repo
root — ``BENCH_kernels.json``, ``BENCH_serve.json``, ``BENCH_faults.json``,
``BENCH_recover.json``.  Those files are the perf trajectory; nothing
was watching them.  The sentinel is that watcher: it loads each
committed envelope, regenerates a quick working-tree counterpart with a
pinned command, and compares the two under *noise-aware* thresholds,
exiting non-zero on regression so CI blocks the merge.

Noise model
-----------

Raw wall-clock numbers do not survive two realities: benchmarks are
noisy on shared runners, and the committed artifact was produced on a
different host (and often at a different scale — the committed serve
artifact is a 100k-request run; CI regenerates 6k).  The sentinel
therefore classifies every metric:

* **latency** / **throughput** — wall-clock dependent, only meaningful
  between runs of the *same* command on the *same* host.  Compared in
  *full* mode (``--baseline``/``--candidate`` pairs) with a relative
  tolerance; skipped in portable mode.
* **ratio** — dimensionless speedups (batched-vs-seed, compiled-vs-seed).
  These transfer across hosts, so portable mode enforces an absolute
  *floor* (a regression that erases the batching win fails anywhere);
  full mode additionally applies a relative tolerance to the baseline.
* **rate** — fractions with an absolute floor (e.g. live fault-detection
  rate >= 0.95) plus a small absolute full-mode tolerance.
* **exact** — values that must match the baseline bit-for-bit (seeded
  deterministic counts); full mode only, since portable regen runs at a
  different scale.
* **zero** — invariants that must be exactly zero in the candidate
  (silent divergences, serve errors); a missing key counts as zero.
* **bool_true** — invariant flags (bit-identity checks) that must be
  literally ``True`` in the candidate.

Against noise on a single host the sentinel reuses the benchmarks' own
best-of-N discipline at the artifact level: :func:`compare_envelopes`
accepts a *group* of candidate envelopes and scores each metric by the
best value in the group (min for lower-is-better, max for
higher-is-better), so one descheduled run cannot fail the gate.

Wildcard paths
--------------

Specs address metrics by dotted path; a ``*`` segment matches every key
of a dict (or every index of a list) present in the candidate group, so
``ntt.*.speedup`` covers whatever ring sizes the regen mode produced —
the quick kernel bench only emits ``n=1024``, the committed artifact
goes to 16384.  A wildcard spec that matches *nothing* in the candidate
is itself a failure (``min_matches``): a bench that silently stopped
emitting a section must not pass vacuously.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.obs.export import host_envelope, validate_envelope

__all__ = [
    "MetricSpec", "Check", "BENCH_SPECS", "ARTIFACTS", "REGEN_COMMANDS",
    "compare_envelopes", "compare_files", "regenerate", "run_sentinel",
]

#: Default relative tolerances per metric class (fraction of baseline).
CLASS_TOLERANCE = {
    "latency": 0.15,
    "throughput": 0.15,
    "ratio": 0.25,
    "rate": 0.05,
}

#: Classes where smaller is better (group score = min); all other
#: numeric classes take the max of the candidate group.
_LOWER_BETTER = {"latency"}


@dataclass(frozen=True)
class MetricSpec:
    """One metric the sentinel guards inside a benchmark envelope.

    ``path`` is dotted, with ``*`` wildcard segments.  ``portable``
    marks metrics that survive a host/scale change (checked in both
    modes); non-portable metrics are only checked in full mode.
    ``required`` specs must resolve in the candidate (wildcards must
    match at least ``min_matches`` paths); optional specs are skipped
    when absent — used for compiled-backend columns that legitimately
    vanish on hosts with no C compiler.
    """

    path: str
    cls: str
    tolerance: float | None = None
    floor: float | None = None
    portable: bool = True
    required: bool = True
    min_matches: int = 1

    @property
    def tol(self) -> float:
        if self.tolerance is not None:
            return self.tolerance
        return CLASS_TOLERANCE.get(self.cls, 0.0)


@dataclass
class Check:
    """Outcome of one spec against one concrete path."""

    path: str
    cls: str
    ok: bool
    detail: str
    baseline: Any = None
    candidate: Any = None
    skipped: bool = False

    def to_json(self) -> dict:
        out: dict[str, Any] = {"path": self.path, "cls": self.cls,
                               "ok": self.ok, "detail": self.detail}
        if self.baseline is not None:
            out["baseline"] = self.baseline
        if self.candidate is not None:
            out["candidate"] = self.candidate
        if self.skipped:
            out["skipped"] = True
        return out


#: Committed artifact file -> bench name inside its envelope.
ARTIFACTS = {
    "BENCH_kernels.json": "kernel_batching",
    "BENCH_serve.json": "serve",
    "BENCH_faults.json": "faults",
    "BENCH_recover.json": "recover",
}

#: Pinned quick regeneration commands, one per bench.  ``{out}`` is the
#: candidate artifact path; commands run with cwd at the repo root and
#: ``PYTHONPATH=src`` inherited from the caller's environment.
REGEN_COMMANDS: dict[str, tuple[str, ...]] = {
    "kernel_batching": ("benchmarks/bench_kernel_batching.py",
                        "--quick", "--out", "{out}"),
    "serve": ("-m", "repro.serve", "--bench", "--requests", "6000",
              "--seed", "0", "--out", "{out}"),
    "faults": ("-m", "repro.fault", "--campaign", "smoke",
               "--json", "{out}"),
    "recover": ("-m", "repro.recover", "--bench", "--executor", "ckks",
                "--injections", "12", "--out", "{out}"),
}

BENCH_SPECS: dict[str, tuple[MetricSpec, ...]] = {
    "kernel_batching": (
        # Bit-identity across dispatch regimes is the bench's own gate;
        # the sentinel re-asserts it on every regen.
        MetricSpec("ntt.*.bit_identical", "bool_true"),
        MetricSpec("automorphism.*.bit_identical", "bool_true"),
        MetricSpec("keyswitch_small_params.bit_identical", "bool_true"),
        MetricSpec("keyswitch_small_params.backends_bit_identical",
                   "bool_true", required=False),
        # Speedup floors: losing the batching win is a regression on
        # any host.  Floors sit well under the committed values
        # (ntt 1.8-2.5x, automorphism 1.7-2.8x, keyswitch 4.0x) so
        # runner noise cannot trip them, but a collapse to ~1x does.
        MetricSpec("ntt.*.speedup", "ratio", floor=1.2),
        MetricSpec("automorphism.*.speedup", "ratio", floor=1.05),
        MetricSpec("keyswitch_small_params.speedup", "ratio", floor=2.0),
        # Compiled columns exist only when a JIT provider is available.
        MetricSpec("ntt.*.speedup_compiled", "ratio", floor=3.0,
                   required=False),
        MetricSpec("automorphism.*.speedup_compiled", "ratio", floor=1.5,
                   required=False),
        MetricSpec("keyswitch_small_params.speedup_compiled", "ratio",
                   floor=5.0, required=False),
        # Same-host wall clock, full mode only.
        MetricSpec("ntt.*.batched_s", "latency", portable=False),
        MetricSpec("automorphism.*.batched_s", "latency", portable=False),
        MetricSpec("keyswitch_small_params.batched_s", "latency",
                   portable=False),
        MetricSpec("keyswitch_small_params.compiled_s", "latency",
                   portable=False, required=False),
    ),
    "serve": (
        MetricSpec("engine.error", "zero"),
        MetricSpec("engine.integrity_failures", "zero"),
        MetricSpec("engine.degrade_steps", "zero"),
        MetricSpec("results.latency_s.p50", "latency", portable=False),
        MetricSpec("results.latency_s.p95", "latency", portable=False),
        MetricSpec("results.latency_s.p99", "latency", portable=False),
        MetricSpec("results.throughput_rps", "throughput", portable=False),
        MetricSpec("results.goodput_rps", "throughput", portable=False),
    ),
    "faults": (
        MetricSpec("detection_rate_live", "rate", floor=0.95),
        # No silent corruptions, ever — a missing key counts as zero.
        MetricSpec("outcomes.silent", "zero"),
        # Seeded campaigns are deterministic at a fixed scale; the
        # committed deep campaign and the smoke regen differ in size,
        # so exact counts are full-mode only.
        MetricSpec("injections", "exact", portable=False),
        MetricSpec("outcomes.detected", "exact", portable=False),
        MetricSpec("outcomes.corrected", "exact", portable=False),
    ),
    "recover": (
        MetricSpec("campaign.silent_divergences", "zero"),
        MetricSpec("campaign.counts.failed", "zero"),
        MetricSpec("campaign.ok", "bool_true"),
        MetricSpec("latency_sweep.*.resume_ms_best", "latency",
                   portable=False),
    ),
}


# -- path resolution ---------------------------------------------------------


def _walk(obj: Any, segments: Sequence[str],
          prefix: tuple[str, ...] = ()) -> Iterable[tuple[str, Any]]:
    """Yield ``(concrete_path, value)`` for every match of the dotted
    pattern, expanding ``*`` over dict keys and list indices."""
    if not segments:
        yield ".".join(prefix), obj
        return
    head, rest = segments[0], segments[1:]
    if head == "*":
        if isinstance(obj, dict):
            for key in sorted(obj):
                yield from _walk(obj[key], rest, prefix + (str(key),))
        elif isinstance(obj, list):
            for index, item in enumerate(obj):
                yield from _walk(item, rest, prefix + (str(index),))
        return
    if isinstance(obj, dict):
        if head in obj:
            yield from _walk(obj[head], rest, prefix + (head,))
    elif isinstance(obj, list):
        try:
            index = int(head)
        except ValueError:
            return
        if 0 <= index < len(obj):
            yield from _walk(obj[index], rest, prefix + (head,))


def _lookup(obj: Any, path: str) -> tuple[bool, Any]:
    matches = list(_walk(obj, path.split(".")))
    if not matches:
        return False, None
    return True, matches[0][1]


def _candidate_paths(spec: MetricSpec,
                     candidates: Sequence[dict]) -> list[str]:
    paths: set[str] = set()
    segments = spec.path.split(".")
    for envelope in candidates:
        paths.update(path for path, _ in _walk(envelope, segments))
    return sorted(paths)


def _group_value(spec: MetricSpec, path: str,
                 candidates: Sequence[dict]) -> tuple[bool, Any]:
    """Best value for ``path`` across the candidate group: min for
    lower-is-better classes, max for higher-is-better numeric classes,
    first present value otherwise."""
    values = []
    for envelope in candidates:
        present, value = _lookup(envelope, path)
        if present:
            values.append(value)
    if not values:
        return False, None
    if spec.cls in ("exact", "zero", "bool_true"):
        return True, values[0]
    numeric = [v for v in values
               if isinstance(v, (int, float)) and not isinstance(v, bool)]
    if not numeric:
        return True, values[0]
    return True, (min(numeric) if spec.cls in _LOWER_BETTER
                  else max(numeric))


# -- comparison --------------------------------------------------------------


def _check_numeric(spec: MetricSpec, path: str, base: Any,
                   cand: Any, full: bool) -> Check:
    if not isinstance(cand, (int, float)) or isinstance(cand, bool):
        return Check(path, spec.cls, False,
                     f"candidate value is not numeric: {cand!r}",
                     baseline=base, candidate=cand)
    problems: list[str] = []
    if spec.floor is not None and cand < spec.floor:
        problems.append(f"below floor {spec.floor:g}")
    has_base = isinstance(base, (int, float)) and not isinstance(base, bool)
    if full and has_base:
        tol = spec.tol
        if spec.cls == "latency":
            if cand > base * (1.0 + tol):
                problems.append(
                    f"regressed {cand / base - 1.0:+.1%} vs baseline "
                    f"(tolerance +{tol:.0%})")
        elif spec.cls in ("throughput", "ratio"):
            if cand < base * (1.0 - tol):
                problems.append(
                    f"regressed {cand / base - 1.0:+.1%} vs baseline "
                    f"(tolerance -{tol:.0%})")
        elif spec.cls == "rate":
            if cand < base - tol:
                problems.append(
                    f"dropped {cand - base:+.4f} vs baseline "
                    f"(tolerance {tol:g} absolute)")
    if problems:
        return Check(path, spec.cls, False, "; ".join(problems),
                     baseline=base if has_base else None, candidate=cand)
    return Check(path, spec.cls, True, "ok",
                 baseline=base if has_base else None, candidate=cand)


def _check_one(spec: MetricSpec, path: str, base_present: bool, base: Any,
               cand_present: bool, cand: Any, full: bool) -> Check:
    if spec.cls == "zero":
        value = cand if cand_present else 0
        ok = value == 0 and not isinstance(value, bool)
        return Check(path, spec.cls, ok,
                     "ok" if ok else f"must be zero, got {value!r}",
                     candidate=value)
    if not cand_present or cand is None:
        if spec.required:
            return Check(path, spec.cls, False,
                         "missing from candidate", baseline=base)
        return Check(path, spec.cls, True, "absent (optional)",
                     skipped=True)
    if spec.cls == "bool_true":
        ok = cand is True
        return Check(path, spec.cls, ok,
                     "ok" if ok else f"must be true, got {cand!r}",
                     candidate=cand)
    if spec.cls == "exact":
        if not base_present:
            return Check(path, spec.cls, True,
                         "no baseline value (skipped)", candidate=cand,
                         skipped=True)
        ok = cand == base and type(cand) is type(base)
        return Check(path, spec.cls, ok,
                     "ok" if ok else "differs from baseline",
                     baseline=base, candidate=cand)
    return _check_numeric(spec, path, base if base_present else None,
                          cand, full)


def compare_envelopes(baseline: dict, candidates: Sequence[dict], *,
                      portable_only: bool = False,
                      specs: Sequence[MetricSpec] | None = None,
                      ) -> list[Check]:
    """Compare a candidate group against a baseline envelope.

    ``portable_only`` restricts the run to host/scale-independent specs
    (the CI regen mode); full mode additionally applies the relative
    latency/throughput/exact comparisons.  Returns every check
    performed; the run regressed iff any check has ``ok == False``.
    """
    bench = baseline.get("bench")
    if specs is None:
        if bench not in BENCH_SPECS:
            return [Check("bench", "meta", False,
                          f"no spec table for bench {bench!r}")]
        specs = BENCH_SPECS[bench]
    full = not portable_only
    checks: list[Check] = []
    for spec in specs:
        if portable_only and not spec.portable:
            continue
        paths = _candidate_paths(spec, candidates)
        if "*" in spec.path:
            # Wildcards must also cover whatever the baseline carries
            # for non-wildcard presence bookkeeping in full mode.
            if full:
                base_paths = {p for p, _ in
                              _walk(baseline, spec.path.split("."))}
                paths = sorted(set(paths) | base_paths)
        elif not paths:
            paths = [spec.path]
        evaluated = 0
        for path in paths:
            base_present, base = _lookup(baseline, path)
            cand_present, cand = _group_value(spec, path, candidates)
            check = _check_one(spec, path, base_present, base,
                               cand_present, cand, full)
            if not check.skipped:
                evaluated += 1
            checks.append(check)
        if spec.required and evaluated < spec.min_matches:
            checks.append(Check(
                spec.path, spec.cls, False,
                f"pattern resolved {evaluated} metric(s) in the "
                f"candidate, needs >= {spec.min_matches}"))
    return checks


def compare_files(baseline_path: Path,
                  candidate_paths: Sequence[Path], *,
                  portable_only: bool = False) -> list[Check]:
    """File-level wrapper: load JSON envelopes, validate their shape,
    then delegate to :func:`compare_envelopes`."""
    baseline = json.loads(Path(baseline_path).read_text())
    candidates = [json.loads(Path(p).read_text()) for p in candidate_paths]
    checks = [Check(f"envelope:{Path(baseline_path).name}", "meta", not ps,
                    "; ".join(ps) or "ok")
              for ps in [validate_envelope(baseline)]]
    for path, envelope in zip(candidate_paths, candidates):
        problems = validate_envelope(envelope)
        checks.append(Check(f"envelope:{Path(path).name}", "meta",
                            not problems, "; ".join(problems) or "ok"))
    checks.extend(compare_envelopes(baseline, candidates,
                                    portable_only=portable_only))
    return checks


# -- regeneration ------------------------------------------------------------


def regenerate(bench: str, out_path: Path, *,
               repo_root: Path, runner=subprocess.run) -> Check:
    """Run the pinned quick command for ``bench``, writing its artifact
    to ``out_path``.  Returns a meta check describing the run."""
    if bench not in REGEN_COMMANDS:
        return Check(f"regen:{bench}", "meta", False,
                     f"no regeneration command for bench {bench!r}")
    argv = [sys.executable] + [
        arg.format(out=out_path) for arg in REGEN_COMMANDS[bench]]
    proc = runner(argv, cwd=repo_root, capture_output=True, text=True)
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-6:]
        return Check(f"regen:{bench}", "meta", False,
                     f"exit {proc.returncode}: " + " | ".join(tail))
    if not Path(out_path).exists():
        return Check(f"regen:{bench}", "meta", False,
                     "command succeeded but wrote no artifact")
    return Check(f"regen:{bench}", "meta", True,
                 " ".join(argv[1:]))


@dataclass
class SentinelResult:
    """Aggregated sentinel outcome across all guarded artifacts."""

    ok: bool = True
    artifacts: list[dict] = field(default_factory=list)

    def to_json(self) -> dict:
        out = host_envelope("sentinel")
        out["ok"] = self.ok
        out["artifacts"] = self.artifacts
        return out


def run_sentinel(repo_root: Path | None = None, *,
                 artifacts: Iterable[str] | None = None,
                 regen: bool = True,
                 report_path: Path | None = None,
                 log=print) -> SentinelResult:
    """The CI gate: for every committed ``BENCH_*`` artifact, validate
    its envelope, regenerate a quick candidate from the working tree,
    and compare under the portable spec set.  Writes
    ``SENTINEL_report.json`` when ``report_path`` is given."""
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    result = SentinelResult()
    names = list(artifacts) if artifacts is not None else sorted(ARTIFACTS)
    for name in names:
        bench = ARTIFACTS.get(name)
        committed = root / name
        entry: dict[str, Any] = {"file": name, "bench": bench,
                                 "checks": [], "ok": True}
        result.artifacts.append(entry)
        if bench is None:
            entry["checks"].append(Check(name, "meta", False,
                                         "unknown artifact").to_json())
            entry["ok"] = False
            result.ok = False
            continue
        if not committed.exists():
            entry["checks"].append(Check(
                name, "meta", False,
                "committed artifact missing from repo root").to_json())
            entry["ok"] = False
            result.ok = False
            continue
        baseline = json.loads(committed.read_text())
        checks = [Check(f"envelope:{name}", "meta", not ps,
                        "; ".join(ps) or "ok")
                  for ps in [validate_envelope(baseline)]]
        if regen:
            log(f"[sentinel] regenerating {bench} ...")
            with tempfile.TemporaryDirectory(prefix="sentinel-") as tmp:
                out_path = Path(tmp) / f"candidate_{bench}.json"
                regen_check = regenerate(bench, out_path, repo_root=root)
                checks.append(regen_check)
                if regen_check.ok:
                    candidate = json.loads(out_path.read_text())
                    checks.extend(compare_envelopes(
                        baseline, [candidate], portable_only=True))
        entry["checks"] = [c.to_json() for c in checks]
        entry["ok"] = all(c.ok for c in checks)
        if not entry["ok"]:
            result.ok = False
        failed = [c for c in checks if not c.ok]
        log(f"[sentinel] {name}: "
            f"{'PASS' if entry['ok'] else 'FAIL'} "
            f"({len(checks)} checks, {len(failed)} failed)")
        for check in failed:
            log(f"  FAIL {check.path} [{check.cls}]: {check.detail}")
    if report_path is not None:
        Path(report_path).write_text(
            json.dumps(result.to_json(), indent=2) + "\n")
        log(f"[sentinel] wrote {report_path}")
    return result
