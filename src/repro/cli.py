"""Command-line interface: regenerate the paper's results from a shell.

::

    uvpu-fhe table2      # area/power comparison vs F1/BTS/ARK/SHARP
    uvpu-fhe table3      # NTT/automorphism throughput utilization
    uvpu-fhe table4      # network scaling m = 4 .. 256
    uvpu-fhe verify      # run an NTT + automorphism on the VPU model
    uvpu-fhe chip        # multi-VPU accelerator report

Installed as a console script by ``pip install -e .``, or run as
``python -m repro.cli <command>``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

PAPER_TABLE2 = {
    "F1": (55616.42, 93.50),
    "BTS": (19405.16, 45.13),
    "ARK": (9480.50, 46.35),
    "SHARP": (44453.51, 44.04),
    "Ours": (5913.62, 15.59),
}


def cmd_table2(_args) -> int:
    from repro.baselines import (
        ark_network_cost,
        bts_network_cost,
        f1_network_cost,
        sharp_network_cost,
    )
    from repro.hwmodel import our_network_cost, vpu_cost

    costs = {
        "F1": f1_network_cost(64),
        "BTS": bts_network_cost(64),
        "ARK": ark_network_cost(64),
        "SHARP": sharp_network_cost(64),
        "Ours": our_network_cost(64),
    }
    ours = costs["Ours"]
    print(f"{'design':7s} {'net um^2':>10s} {'ratio':>6s} {'mW':>7s} "
          f"{'ratio':>6s} {'VPU um^2':>11s} {'VPU mW':>8s}")
    for name, c in costs.items():
        ra, rp = c.ratio_to(ours)
        v = vpu_cost(64, c)
        print(f"{name:7s} {c.area_um2:10.2f} {ra:5.2f}x {c.power_mw:7.2f} "
              f"{rp:5.2f}x {v.area_um2:11.2f} {v.power_mw:8.2f}")
    return 0


def cmd_table3(_args) -> int:
    from repro.perf.utilization import format_table3

    print(format_table3())
    return 0


def cmd_table4(_args) -> int:
    from repro.hwmodel import our_network_cost

    print(f"{'lanes':>5s} {'area um^2':>12s} {'power mW':>9s}")
    for m in [4, 8, 16, 32, 64, 128, 256]:
        c = our_network_cost(m)
        print(f"{m:5d} {c.area_um2:12.2f} {c.power_mw:9.2f}")
    return 0


def cmd_verify(args) -> int:
    from repro.automorphism import paper_sigma
    from repro.core import VectorProcessingUnit
    from repro.mapping import (
        automorphism_layout_pack,
        automorphism_layout_unpack,
        compile_automorphism,
        compile_ntt,
        pack_for_ntt,
        required_registers,
        unpack_ntt_result,
    )
    from repro.ntt import vec_ntt_dif
    from repro.ntt.tables import get_tables

    q = 998244353
    n, m = args.n, args.m
    vpu = VectorProcessingUnit(m=m, q=q, regfile_entries=required_registers(m),
                               memory_rows=max(16, 2 * n // m))
    x = np.random.default_rng(args.seed).integers(0, q, n, dtype=np.uint64)

    vpu.memory.data[:n // m] = pack_for_ntt(x, m)
    stats = vpu.run_fresh(compile_ntt(n, m, q))
    got = unpack_ntt_result(vpu.memory, n, m)
    t = get_tables(n, q)
    expected = np.empty(n, dtype=np.uint64)
    expected[t.bitrev] = vec_ntt_dif(x, t)
    ntt_ok = bool(np.array_equal(got, expected))
    print(f"NTT-{n} on {m} lanes: {'OK' if ntt_ok else 'MISMATCH'} "
          f"({stats.cycles} instructions)")

    sigma = paper_sigma(n, 3)
    vpu.memory.data[:n // m] = automorphism_layout_pack(x, m)
    stats = vpu.run_fresh(compile_automorphism(sigma, m))
    out = automorphism_layout_unpack(vpu.memory, n, m, base_row=n // m)
    autom_ok = bool(np.array_equal(out, sigma.apply(x)))
    print(f"automorphism sigma_(5,3): {'OK' if autom_ok else 'MISMATCH'} "
          f"({stats.network_passes} network passes = N/m)")
    return 0 if ntt_ok and autom_ok else 1


def cmd_controls(args) -> int:
    """Emulates the authors' open-sourced control-signal generator
    (github.com/tsinghua-ideal/automorphism-decomposition)."""
    from repro.automorphism import (
        affine_controls,
        control_table_size_bits,
        paper_sigma,
    )

    m = args.m
    if args.k is not None:
        ks = [args.k]
    elif args.r is not None:
        ks = [paper_sigma(m, args.r).multiplier]
    else:
        ks = list(range(1, m, 2))
    print(f"shift-network control words, m={m} "
          f"(stages {m // 2}..1, MSB-first per stage):")
    for k in ks:
        c = affine_controls(m, k, args.s)
        word = "".join(
            "".join(str(b) for b in c.group_bits[bi])
            for bi in reversed(range(len(c.group_bits)))
        )
        print(f"  k={k:3d} s={args.s:3d}: {word}  ({c.total_bits} bits)")
    print(f"table: {m // 2} automorphisms x {m - 1} bits = "
          f"{control_table_size_bits(m)} bits")
    return 0


def cmd_breakdown(args) -> int:
    from repro.hwmodel.report import (
        network_breakdown,
        render_breakdown,
        vpu_breakdown,
    )

    print(render_breakdown(vpu_breakdown(args.m), title=f"VPU m={args.m}"))
    print()
    print(render_breakdown(network_breakdown(args.m),
                           title=f"inter-lane network m={args.m}"))
    return 0


def cmd_motivation(args) -> int:
    from repro.accel.dram import (
        decomposed_ntt_traffic,
        naive_ntt_traffic,
    )

    sram = args.sram_mib << 20
    print(f"{'N':>6s} {'naive MB':>10s} {'4-step MB':>10s} {'ratio':>7s}")
    for log_n in range(14, 23, 2):
        n = 1 << log_n
        naive = naive_ntt_traffic(n, sram)
        dec = decomposed_ntt_traffic(n, 64, sram)
        ratio = naive.burst_bytes_moved / dec.burst_bytes_moved
        print(f"2^{log_n:<4d} {naive.burst_bytes_moved / 2**20:10.1f} "
              f"{dec.burst_bytes_moved / 2**20:10.1f} {ratio:6.1f}x")
    return 0


def cmd_chip(args) -> int:
    from repro.accel import Accelerator

    acc = Accelerator(num_vpus=args.vpus, lanes=64)
    chip = acc.cost()
    print(f"{args.vpus} x 64-lane VPUs + {acc.sram.capacity_bytes >> 20} MiB "
          f"SRAM + ring NoC: {chip.area_um2 / 1e6:.2f} mm^2, "
          f"{chip.power_mw / 1e3:.2f} W")
    for op, reports in [
        ("HMult", acc.schedule_hmult(4096, 5)),
        ("HRot", acc.schedule_hrot(4096, 5)),
    ]:
        print(f"{op}: {Accelerator.total_makespan(reports)} cycles @ 1 GHz")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="uvpu-fhe",
        description="Unified VPU for FHE — paper-result regeneration",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table2", help="area/power vs baselines").set_defaults(
        func=cmd_table2)
    sub.add_parser("table3", help="throughput utilization").set_defaults(
        func=cmd_table3)
    sub.add_parser("table4", help="network scaling").set_defaults(
        func=cmd_table4)
    verify = sub.add_parser("verify", help="run kernels on the VPU model")
    verify.add_argument("--n", type=int, default=4096)
    verify.add_argument("--m", type=int, default=64)
    verify.add_argument("--seed", type=int, default=0)
    verify.set_defaults(func=cmd_verify)
    chip = sub.add_parser("chip", help="accelerator report")
    chip.add_argument("--vpus", type=int, default=8)
    chip.set_defaults(func=cmd_chip)
    controls = sub.add_parser(
        "controls", help="dump automorphism shift-network control words")
    controls.add_argument("--m", type=int, default=64)
    controls.add_argument("--k", type=int, default=None,
                          help="automorphism multiplier (odd)")
    controls.add_argument("--r", type=int, default=None,
                          help="rotation amount (k = 5^r mod m)")
    controls.add_argument("--s", type=int, default=0,
                          help="additional cyclic shift to merge")
    controls.set_defaults(func=cmd_controls)
    breakdown = sub.add_parser("breakdown", help="component cost split")
    breakdown.add_argument("--m", type=int, default=64)
    breakdown.set_defaults(func=cmd_breakdown)
    motivation = sub.add_parser("motivation",
                                help="off-chip traffic: naive vs decomposed")
    motivation.add_argument("--sram-mib", type=int, default=1)
    motivation.set_defaults(func=cmd_motivation)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.obs import enable_from_env
    from repro.obs.export import format_attribution

    args = build_parser().parse_args(argv)
    # REPRO_TRACE=1 turns on the observability hook for any command and
    # appends the per-phase cycle-attribution table to the output.
    observer = enable_from_env()
    status = args.func(args)
    if observer is not None:
        print("\n[repro.obs] cycle attribution (REPRO_TRACE)")
        print(format_attribution(observer.tracer))
    return status


if __name__ == "__main__":
    sys.exit(main())
