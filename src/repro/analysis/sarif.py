"""SARIF 2.1.0 rendering of fhecheck findings.

GitHub code scanning (and most SARIF viewers) ingest a minimal
envelope: ``$schema``/``version``, one run with a tool driver that
declares its rules, and one result per finding.  Findings whose
location is a real ``path:line`` (the lint rules) get a
``physicalLocation``; analysis findings anchored to program counters,
plan steps, or op indices get a ``logicalLocations`` entry instead —
both are valid per the spec, and code scanning displays the logical
ones at the tool level.

:func:`validate_sarif` is the shape check CI runs on the emitted
artifact; it returns a list of problems (empty means valid).
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.analysis.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: One-line help for every rule family member the analyzer can emit.
RULE_DESCRIPTIONS: dict[str, str] = {
    # program interval walker (P...)
    "P001": "uint64 overflow: a product bound exceeds 2^64",
    "P002": "Barrett precondition broken: product bound reaches q^2",
    "P003": "twiddle constant not fully reduced mod q",
    "P004": "interval read of a register before any write",
    "P005": "twiddle vector length does not match the lane geometry",
    "P006": "stored value exceeds the architecturally visible bound",
    "P007": "unknown instruction reached the interval walker",
    # stage plans (S...)
    "S001": "stage intermediate exceeds uint64 or wraps below zero",
    "S002": "Shoup path used with a modulus at or above 2^30",
    "S003": "Shoup multiplicand bound reaches the 2^32 precision radix",
    "S004": "lane bound escapes the < 2q lazy invariant",
    "S005": "stage output bound exceeds the declared invariant",
    # dataflow (D...)
    "D001": "read of a register no instruction has written",
    "D002": "dead write: value overwritten or dropped without a read",
    "D003": "network routing is not a lane permutation",
    "D004": "diagonal-read WAR hazard: destination inside source window",
    "D005": "register-file 2R1W port budget exceeded",
    # resources (R...)
    "R001": "SRAM occupancy exceeds capacity",
    "R002": "buffer used after eviction",
    "R003": "buffer used without being staged or allocated",
    "R004": "double-buffer conflict between prefetch and active buffer",
    # ciphertext state (C...)
    "C001": "operand levels differ; plan must align explicitly",
    "C002": "scale overflow: log2(scale) reaches the modulus budget",
    "C003": "addition scale mismatch beyond evaluator tolerance",
    "C004": "NTT/coeff domain mismatch",
    "C005": "level underflow or op unsupported by the scheme",
    "C006": "noise bound exhausts the modulus budget",
    "C007": "ciphertext-size misuse",
    # lint (FHC...)
    "FHC000": "file could not be parsed for linting",
    "FHC001": "object-dtype value narrowed to fixed width without reduction",
    "FHC002": "integer narrowing with no visible range guard",
    "FHC003": "product of an unreduced sum taken mod q",
    "FHC004": "lazy/unclamped kernel result escapes without clamp",
    "FHC005": "fault-hook dereference outside an is-not-None guard",
    "FHC006": "observability-hook dereference outside an is-not-None guard",
    "FHC007": "compiled lazy kernel invoked outside its eligibility gate",
    "FHC008": "op-sequence executor bypasses the checked entry point",
    "FHC009": "SRAM staging without a capacity check",
    "FHC010": "suppression comment no longer suppresses any finding",
    "FHC011": "backend work awaited outside the deadline wrapper in repro.serve",
    "FHC012": "non-durable file write in repro.recover (no fsync evidence)",
    "FHC013": "span created off the trace-context API in serve/recover",
}

_PATH_LINE_RE = re.compile(r"^(?P<path>[^\s:]+\.py):(?P<line>\d+)$")

_LEVELS = {"error": "error", "warning": "warning"}


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity.value, "note"),
        "message": {"text": f"{finding.message} [{finding.source}]"},
    }
    match = _PATH_LINE_RE.match(finding.location)
    if match:
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": match["path"]},
                "region": {"startLine": int(match["line"])},
            },
        }]
    else:
        result["locations"] = [{
            "logicalLocations": [{
                "fullyQualifiedName": finding.location,
                "kind": "member",
            }],
        }]
    return result


def to_sarif(findings: Iterable[Finding], *,
             tool_version: str = "2.0") -> dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log (a JSON-ready dict)."""
    findings = list(findings)
    used_rules = sorted({f.rule for f in findings} | set(RULE_DESCRIPTIONS))
    rules = [{
        "id": rule,
        "shortDescription": {
            "text": RULE_DESCRIPTIONS.get(rule, "fhecheck finding"),
        },
    } for rule in used_rules]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "fhecheck",
                    "informationUri":
                        "https://github.com/",
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": [_result(f) for f in findings],
        }],
    }


def validate_sarif(payload: Any) -> list[str]:
    """Shape-check a SARIF envelope; returns problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}, "
                        f"got {payload.get('version')!r}")
    if not str(payload.get("$schema", "")).startswith("http"):
        problems.append("$schema missing or not a URI")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty array"]
    for index, run in enumerate(runs):
        where = f"runs[{index}]"
        driver = (run.get("tool") or {}).get("driver") if isinstance(
            run, dict) else None
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{where}.tool.driver.name missing")
            continue
        rule_ids = {r.get("id") for r in driver.get("rules", [])
                    if isinstance(r, dict)}
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for rindex, result in enumerate(results):
            rwhere = f"{where}.results[{rindex}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            if not result.get("ruleId"):
                problems.append(f"{rwhere}.ruleId missing")
            elif rule_ids and result["ruleId"] not in rule_ids:
                problems.append(f"{rwhere}.ruleId {result['ruleId']!r} "
                                f"not declared by the driver")
            if result.get("level") not in ("error", "warning", "note",
                                           "none"):
                problems.append(f"{rwhere}.level invalid")
            message = result.get("message")
            if not (isinstance(message, dict) and message.get("text")):
                problems.append(f"{rwhere}.message.text missing")
            locations = result.get("locations")
            if not (isinstance(locations, list) and locations):
                problems.append(f"{rwhere}.locations missing")
    return problems
