"""Symbolic resource/liveness verification of staged accelerator plans.

The accelerator layer (:mod:`repro.accel`) stages working sets through
an :class:`~repro.accel.sram.OnChipSram` and streams the rest from a
:class:`~repro.accel.dram.DramModel`.  A staging schedule that exceeds
SRAM capacity, reads a buffer after evicting it, or double-buffers two
live tiles into the same window only fails at run time — and on real
hardware it fails *silently*.  This pass replays a :class:`StagedPlan`
symbolically, tracking per-buffer residency in words, and turns those
schedule bugs into findings.

Plans are small declarative step lists:

* :class:`Stage` — DMA a buffer DRAM -> SRAM (charges DRAM traffic);
* :class:`Alloc` — reserve an SRAM output buffer (no DRAM traffic);
* :class:`Compute` — consume resident buffers, produce into resident
  buffers, optionally overlapping a :attr:`~Compute.prefetch` of the
  next tile (double buffering — the prefetch occupancy overlaps this
  step);
* :class:`Writeback` — DMA a buffer SRAM -> DRAM;
* :class:`Evict` — release a buffer's SRAM footprint.

Rules
-----

============ ======== =========================================================
``R001``     error    SRAM occupancy exceeds capacity (reported once per
                      overflow transition, with the peak in the report)
``R002``     error    a step consumes or writes back a buffer after ``Evict``
``R003``     error    a step names a buffer the plan never staged/allocated
``R004``     error    double-buffer conflict: a prefetch overlaps a buffer the
                      same step is still consuming or producing
============ ======== =========================================================

:func:`keyswitch_staging_plan`, :func:`ntt_staging_plan` and
:func:`automorphism_staging_plan` build the canonical schedules for the
paper's workloads from a parameter set; the CLI verifies each against
the default SRAM and additionally confirms the analysis *refuses* an
undersized SRAM (gate-agreement, like the plans section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.accel.dram import DramModel
from repro.accel.sram import OnChipSram
from repro.analysis.findings import FindingList


@dataclass(frozen=True)
class Stage:
    """DMA ``words`` of ``buffer`` from DRAM into SRAM."""

    buffer: str
    words: int


@dataclass(frozen=True)
class Alloc:
    """Reserve ``words`` of SRAM for an output ``buffer``."""

    buffer: str
    words: int


@dataclass(frozen=True)
class Compute:
    """Consume ``reads``, produce into ``writes``, both SRAM-resident.

    ``prefetch`` optionally overlaps the next tile's ``Stage`` with this
    step (double buffering): its words count toward occupancy *during*
    the step and the buffer becomes resident afterwards.
    """

    label: str
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    prefetch: tuple[str, int] | None = None


@dataclass(frozen=True)
class Writeback:
    """DMA ``buffer`` from SRAM back to DRAM (stays resident)."""

    buffer: str


@dataclass(frozen=True)
class Evict:
    """Release ``buffer``'s SRAM footprint."""

    buffer: str


Step = Union[Stage, Alloc, Compute, Writeback, Evict]


@dataclass(frozen=True)
class StagedPlan:
    """A named staging schedule over one SRAM working set."""

    label: str
    steps: tuple[Step, ...]


@dataclass
class ResourceReport:
    """Outcome of one symbolic plan replay."""

    label: str
    capacity_words: int
    steps: int = 0
    #: Highest simultaneous SRAM occupancy reached (words).
    peak_words: int = 0
    #: Total words moved over the DRAM interface (stages + writebacks).
    dram_words: int = 0
    #: Modeled DRAM transfer time for that traffic.
    dram_ns: float = 0.0
    findings: FindingList = field(default_factory=FindingList)

    @property
    def ok(self) -> bool:
        return self.findings.ok


def _describe(step: Step) -> str:
    if isinstance(step, Compute):
        return f"Compute[{step.label}]"
    return f"{type(step).__name__}[{step.buffer}]"


def analyze_staged_plan(plan: StagedPlan,
                        sram: OnChipSram | None = None,
                        dram: DramModel | None = None) -> ResourceReport:
    """Replay ``plan`` symbolically against ``sram``/``dram`` models.

    Returns a :class:`ResourceReport`; ``report.ok`` is False when the
    schedule overflows capacity or violates buffer liveness.
    """
    sram = sram if sram is not None else OnChipSram()
    dram = dram if dram is not None else DramModel()
    capacity_words = sram.capacity_bytes // 8
    report = ResourceReport(label=plan.label, capacity_words=capacity_words)
    findings = report.findings
    resident: dict[str, int] = {}
    evicted: set[str] = set()
    overflowed = False

    def require(name: str, loc: str, verb: str) -> None:
        if name in resident:
            return
        if name in evicted:
            findings.error(
                "resource", "R002", loc,
                f"{verb} of buffer {name!r} after it was evicted")
        else:
            findings.error(
                "resource", "R003", loc,
                f"{verb} of buffer {name!r} the plan never staged or "
                f"allocated")
        resident[name] = 0  # report once; keep replaying the schedule

    for index, step in enumerate(plan.steps):
        loc = f"step {index}: {_describe(step)}"
        transient = 0
        if isinstance(step, (Stage, Alloc)):
            evicted.discard(step.buffer)  # re-staging after evict is a reload
            resident[step.buffer] = step.words
            if isinstance(step, Stage):
                report.dram_words += step.words
        elif isinstance(step, Compute):
            for name in step.reads:
                require(name, loc, "read")
            for name in step.writes:
                require(name, loc, "write")
            if step.prefetch is not None:
                pname, pwords = step.prefetch
                if pname in step.reads or pname in step.writes:
                    findings.error(
                        "resource", "R004", loc,
                        f"double-buffer conflict: prefetch of {pname!r} "
                        f"overlaps a buffer this step still uses")
                report.dram_words += pwords
                if pname not in resident:
                    transient = pwords
        elif isinstance(step, Writeback):
            require(step.buffer, loc, "writeback")
            report.dram_words += resident.get(step.buffer, 0)
        elif isinstance(step, Evict):
            require(step.buffer, loc, "evict")
            evicted.add(step.buffer)
            resident.pop(step.buffer, None)

        occupancy = sum(resident.values()) + transient
        report.peak_words = max(report.peak_words, occupancy)
        if occupancy > capacity_words:
            if not overflowed:
                findings.error(
                    "resource", "R001", loc,
                    f"SRAM occupancy {occupancy} words exceeds capacity "
                    f"{capacity_words} words "
                    f"({occupancy * 8} > {sram.capacity_bytes} bytes)")
            overflowed = True
        else:
            overflowed = False

        if isinstance(step, Compute) and step.prefetch is not None:
            pname, pwords = step.prefetch
            evicted.discard(pname)
            resident[pname] = pwords

        report.steps += 1

    report.dram_ns = dram.transfer_ns(report.dram_words * 8)
    return report


# ---------------------------------------------------------------------------
# Canonical plan builders for the paper's workloads.
# ---------------------------------------------------------------------------


def keyswitch_staging_plan(params: "object") -> StagedPlan:
    """Streaming digit-decomposition keyswitch (one digit resident).

    Per digit d: stage the digit's limb vector and the two key rows,
    NTT in place, multiply-accumulate into the persistent accumulators,
    then evict the digit while prefetching the next one (double
    buffered).
    """
    n = params.n          # type: ignore[attr-defined]
    levels = params.levels  # type: ignore[attr-defined]
    limbs = levels + 1    # full basis: chain primes + special prime
    digit_words = n * limbs
    key_words = 2 * n * limbs
    acc_words = 2 * n * limbs
    steps: list[Step] = [
        Alloc("acc0", acc_words // 2),
        Alloc("acc1", acc_words // 2),
        Stage("digit0", digit_words),
    ]
    for d in range(levels):
        cur, nxt = f"digit{d}", f"digit{d + 1}"
        steps.append(Stage(f"key{d}", key_words))
        prefetch = (nxt, digit_words) if d + 1 < levels else None
        steps.append(Compute(f"ntt+mac digit {d}",
                             reads=(cur, f"key{d}"),
                             writes=("acc0", "acc1"),
                             prefetch=prefetch))
        steps.append(Evict(cur))
        steps.append(Evict(f"key{d}"))
    steps += [
        Compute("mod-down", reads=("acc0", "acc1"),
                writes=("acc0", "acc1")),
        Writeback("acc0"),
        Writeback("acc1"),
        Evict("acc0"),
        Evict("acc1"),
    ]
    return StagedPlan(label=f"keyswitch n={n} L={levels}", steps=tuple(steps))


def ntt_staging_plan(n: int, m: int) -> StagedPlan:
    """Multi-dimensional NTT with the working set resident (§IV-A).

    The polynomial is staged once; each decomposition dimension computes
    column transforms into a fresh version of the buffer and transposes
    through the shift network, so every dimension reads the *previous*
    dimension's output — swapping two dimension steps reads a version
    that does not exist yet (``R003``).
    """
    from repro.ntt.decomposition import choose_dimensions

    dims = choose_dimensions(n, m)
    steps: list[Step] = [Stage("x.v0", n)]
    prev = "x.v0"
    for index, dim in enumerate(dims):
        cur = f"x.v{index + 1}"
        steps.append(Alloc(cur, n))
        steps.append(Compute(f"dim{index} ntt-{dim}",
                             reads=(prev,), writes=(cur,)))
        steps.append(Evict(prev))
        prev = cur
    steps += [Writeback(prev), Evict(prev)]
    return StagedPlan(label=f"ntt n={n} dims={'x'.join(map(str, dims))}",
                      steps=tuple(steps))


def automorphism_staging_plan(n: int, limbs: int) -> StagedPlan:
    """Single-pass automorphism over every limb: stage, permute, write."""
    words = n * limbs
    steps: tuple[Step, ...] = (
        Stage("ct", words),
        Alloc("out", words),
        Compute("route all limbs", reads=("ct",), writes=("out",)),
        Writeback("out"),
        Evict("ct"),
        Evict("out"),
    )
    return StagedPlan(label=f"automorphism n={n} limbs={limbs}", steps=steps)
