"""The unsigned interval domain used by every ``fhecheck`` pass.

Bounds are exact Python integers (never numpy scalars), so products of
two 63-bit quantities do not wrap during the *analysis* — detecting that
they would wrap in the uint64 *kernels* is the whole point.

Two layers:

* :class:`Interval` — one ``[lo, hi]`` range (inclusive ends), with the
  transfer functions the kernels actually use, including the
  unsigned-wraparound conditional subtract
  ``np.minimum(x, x - t)`` that the lazy stages rely on.
* :class:`IntervalVec` — one interval per VPU lane, so per-lane
  constants (twiddle vectors) keep their exact values through the
  micro-program walk instead of collapsing to a register-wide bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

U64_MAX: int = (1 << 64) - 1


@dataclass(frozen=True)
class Interval:
    """An inclusive unsigned range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError(f"interval lower bound negative: {self.lo}")
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const(value: int) -> "Interval":
        """The singleton interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def reduced(q: int) -> "Interval":
        """A fully reduced residue: ``[0, q - 1]``."""
        return Interval(0, q - 1)

    @staticmethod
    def upto(hi: int) -> "Interval":
        """``[0, hi]``."""
        return Interval(0, hi)

    # -- predicates --------------------------------------------------------

    @property
    def fits_uint64(self) -> bool:
        return self.hi <= U64_MAX

    def within(self, bound: int) -> bool:
        """True when every value is ``<= bound``."""
        return self.hi <= bound

    # -- transfer functions ------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def add_const(self, c: int) -> "Interval":
        return Interval(self.lo + c, self.hi + c)

    def mul(self, other: "Interval") -> "Interval":
        # All values are unsigned, so the extremes multiply directly.
        return Interval(self.lo * other.lo, self.hi * other.hi)

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def mod(self, q: int) -> "Interval":
        """A true ``% q`` reduction: ``[0, q - 1]`` unless already below."""
        if self.hi < q:
            return self
        return Interval.reduced(q)

    def sub_nonneg(self, other: "Interval") -> "Interval":
        """``self - other`` when the kernel guarantees non-negativity
        (e.g. ``(u + 2q) - v`` with ``v <= 2q``).  Raises if the
        guarantee cannot hold for every value pair."""
        if self.lo - other.hi < 0:
            raise ValueError(
                f"subtraction may go negative: [{self.lo},{self.hi}] - "
                f"[{other.lo},{other.hi}]")
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def cond_sub(self, t: int) -> "Interval":
        """Model ``np.minimum(x, x - t)`` on uint64 (wraparound select).

        For ``x < t`` the subtraction wraps to a huge value and the
        minimum keeps ``x``; for ``x >= t`` it keeps ``x - t``.  The
        result is below ``t`` **only if** ``hi < 2t`` — the analyzer
        models the true outcome, so a dropped clamp earlier in a plan
        cascades into a visible bound blow-up rather than being silently
        absorbed.  The trick itself requires ``hi <= U64_MAX`` (checked
        by the caller before this transfer function runs).
        """
        if self.hi < t:
            return self
        if self.lo >= t:
            return Interval(self.lo - t, self.hi - t)
        # Mixed: the kept branch tops out at t - 1, the reduced branch
        # at hi - t; values >= t map down to >= 0.
        return Interval(0, max(t - 1, self.hi - t))


class IntervalVec:
    """Per-lane intervals for one register row (or memory row).

    Stored as two parallel tuples of Python ints, one ``(lo, hi)`` pair
    per lane.  Twiddle vectors construct exact singleton lanes, which
    keeps the product bounds tight in the micro-program walk.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[int], hi: Sequence[int]):
        if len(lo) != len(hi):
            raise ValueError("lo/hi length mismatch")
        self.lo = tuple(int(v) for v in lo)
        self.hi = tuple(int(v) for v in hi)
        for a, b in zip(self.lo, self.hi):
            if a < 0 or a > b:
                raise ValueError(f"bad lane interval [{a}, {b}]")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def uniform(m: int, interval: Interval) -> "IntervalVec":
        return IntervalVec((interval.lo,) * m, (interval.hi,) * m)

    @staticmethod
    def reduced(m: int, q: int) -> "IntervalVec":
        return IntervalVec.uniform(m, Interval.reduced(q))

    @staticmethod
    def exact(values: Iterable[int]) -> "IntervalVec":
        vals = tuple(int(v) for v in values)
        return IntervalVec(vals, vals)

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.lo)

    def lane(self, i: int) -> Interval:
        return Interval(self.lo[i], self.hi[i])

    def lanes(self) -> list[Interval]:
        return [Interval(a, b) for a, b in zip(self.lo, self.hi)]

    @property
    def max_hi(self) -> int:
        return max(self.hi)

    @property
    def fits_uint64(self) -> bool:
        return self.max_hi <= U64_MAX

    def every(self, i: int, step: int) -> "IntervalVec":
        """Strided lane view ``[i::step]`` (butterfly halves)."""
        return IntervalVec(self.lo[i::step], self.hi[i::step])

    def permute(self, src_of_dst: Sequence[int]) -> "IntervalVec":
        """Route lanes: destination lane ``d`` takes lane
        ``src_of_dst[d]``."""
        return IntervalVec([self.lo[s] for s in src_of_dst],
                           [self.hi[s] for s in src_of_dst])

    @staticmethod
    def interleave(even: "IntervalVec", odd: "IntervalVec") -> "IntervalVec":
        """Zip two half-width vectors back into adjacent-pair order."""
        if len(even) != len(odd):
            raise ValueError("half lengths differ")
        lo: list[int] = []
        hi: list[int] = []
        for i in range(len(even)):
            lo.extend((even.lo[i], odd.lo[i]))
            hi.extend((even.hi[i], odd.hi[i]))
        return IntervalVec(lo, hi)

    # -- lane-wise transfer functions --------------------------------------

    def _zip(self, other: "IntervalVec") -> None:
        if len(self) != len(other):
            raise ValueError(
                f"lane count mismatch: {len(self)} vs {len(other)}")

    def add(self, other: "IntervalVec") -> "IntervalVec":
        self._zip(other)
        return IntervalVec([a + b for a, b in zip(self.lo, other.lo)],
                           [a + b for a, b in zip(self.hi, other.hi)])

    def mul(self, other: "IntervalVec") -> "IntervalVec":
        self._zip(other)
        return IntervalVec([a * b for a, b in zip(self.lo, other.lo)],
                           [a * b for a, b in zip(self.hi, other.hi)])

    def mod(self, q: int) -> "IntervalVec":
        return IntervalVec([0 if b >= q else a
                            for a, b in zip(self.lo, self.hi)],
                           [min(b, q - 1) for b in self.hi])

    def union(self, other: "IntervalVec") -> "IntervalVec":
        self._zip(other)
        return IntervalVec([min(a, b) for a, b in zip(self.lo, other.lo)],
                           [max(a, b) for a, b in zip(self.hi, other.hi)])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        worst = max(self.hi)
        return f"IntervalVec(m={len(self)}, max_hi={worst})"
