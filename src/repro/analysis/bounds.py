"""Analyzer-derived gates for the production fast paths.

These functions are the **single source of truth** for the lazy-reduction
eligibility decisions that used to live as hand-coded inequalities next
to the kernels:

* ``(log2(n) + 1) * q**2 < 2**64`` guarding the unclamped DIT pass in
  :mod:`repro.ntt.cooley_tukey` / :mod:`repro.ntt.negacyclic` is now
  :func:`unclamped_dit_ok`, backed by the full symbolic plan analysis
  (:func:`repro.analysis.stage_plans.analyze_batched_inverse`) — every
  intermediate of the plan, including the fused final scaling product,
  must fit uint64.
* ``num_digits * max(q)**2 < 2**64`` guarding the fused keyswitch
  accumulation in :mod:`repro.fhe.keyswitch` is now
  :func:`keyswitch_lazy_accumulate_ok`.

All gates are ``lru_cache``'d: the analyses are O(log n) exact-integer
arithmetic, and the hot paths see a dictionary hit after the first call
for a given shape.

The derived gates are *never stricter in the wrong direction* than the
hand-coded ones they replace: the exact binding product for the
unclamped DIT plan is ``((log2(n)+1)q - 1)(q - 1)``, slightly below the
old ceiling ``(log2(n)+1) q**2``, so every previously-eligible modulus
remains eligible and a few boundary moduli gain the fast path — with a
machine-checked proof instead of a comment.
"""

from __future__ import annotations

from functools import lru_cache

from repro.analysis.intervals import U64_MAX
from repro.analysis.stage_plans import (
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_dif_lazy,
    analyze_dit_lazy,
    analyze_keyswitch_accumulate,
)


@lru_cache(maxsize=1024)
def unclamped_dit_ok(log_n: int, max_q: int) -> bool:
    """May the clamp-free DIT pass run for ``n = 2**log_n`` and moduli up
    to ``max_q``?

    True iff the symbolic plan analysis proves every intermediate of
    ``dit_stages_unclamped`` *plus* the fused final scaling multiply
    fits uint64.
    """
    return analyze_batched_inverse(log_n, max_q, unclamped=True).ok


@lru_cache(maxsize=1024)
def unclamped_dit_lane_bound(log_n: int, max_q: int) -> int:
    """Exact inclusive lane bound after the unclamped DIT stages:
    ``(log_n + 1) * max_q - 1`` for a reduced entry (derived, not
    assumed)."""
    report = analyze_batched_inverse(log_n, max_q, unclamped=True)
    return report.stage_bounds[-1]


@lru_cache(maxsize=1024)
def keyswitch_lazy_accumulate_ok(num_digits: int, max_q: int) -> bool:
    """May ``num_digits`` digit-by-key products accumulate unreduced in
    uint64 before a single final ``%``?

    True iff the accumulator's exact bound ``num_digits * (max_q - 1)**2``
    (and every partial sum) fits uint64.
    """
    if num_digits == 0:
        return True
    return analyze_keyswitch_accumulate(num_digits, max_q, lazy=True).ok


@lru_cache(maxsize=1024)
def compiled_ntt_ok(log_n: int, max_q: int) -> bool:
    """May the fused compiled NTT kernels (:mod:`repro.kernels`) run at
    all for ``n = 2**log_n`` and moduli up to ``max_q``?

    True iff the symbolic plans for the lazy batched forward *and* the
    (clamped) lazy batched inverse prove every intermediate fits uint64.
    Wide moduli (``q >= 2**31``) fail here through the plan's own
    product bound ``(4q - 1)(q - 1)``, not a hand-coded width check —
    the same eligibility the numpy batched path derives.
    """
    return (analyze_batched_forward(log_n, max_q).ok
            and analyze_batched_inverse(log_n, max_q, unclamped=False).ok)


@lru_cache(maxsize=1024)
def ntt_shoup_ok(log_n: int, max_q: int) -> bool:
    """May the mod-free Shoup butterfly variants run for this shape?

    True iff the Shoup stage plans verify end to end — the analyzer's
    ``S002``/``S003`` preconditions (``q < 2**30``, every multiplicand
    below the ``2**32`` precision radix) checked at every stage.  The
    forward plan enters at ``2q - 1`` (the Shoup psi fold's output
    bound, which also dominates the fold's own ``< q`` multiplicand);
    the inverse enters reduced.
    """
    fwd = analyze_dif_lazy(log_n, max_q, shoup=True, entry_hi=2 * max_q - 1)
    inv = analyze_dit_lazy(log_n, max_q, shoup=True, entry_hi=max_q - 1)
    return fwd.ok and inv.ok


@lru_cache(maxsize=1024)
def mul_fits_uint64(max_a: int, max_b: int) -> bool:
    """Does a raw elementwise product of values up to ``max_a``/``max_b``
    fit uint64?  The guard for *any* un-gated ``a * b % q`` fallback."""
    return max_a * max_b <= U64_MAX
