"""Ciphertext-state abstract interpretation of recorded op sequences.

The scheme evaluators (:mod:`repro.fhe.ckks`, :mod:`repro.fhe.bgv`,
:mod:`repro.fhe.bfv`) catch *some* misuse at run time (scale mismatch
raises) but silently tolerate the rest: a dropped rescale overflows the
scale into the modulus, an implicit level alignment hides a scheduling
bug, and noise-budget exhaustion only shows up as garbage plaintext.
This pass steps a small abstract domain — RNS level, log2 scale,
NTT/coefficient domain, ciphertext size, and a noise-bit bound from
:class:`repro.fhe.noise.NoiseEstimator` — over a recorded sequence of
scheme ops *before* anything executes.  It is the verification
substrate the ring-program compiler (ROADMAP item 5) targets: a planner
may reorder ops only if the checked states are unchanged.

A sequence is a list of :class:`Op` values; op ``i`` produces value
``i`` and ``srcs`` name earlier values.  :func:`check_sequence`
interprets it abstractly, :func:`execute_sequence` replays it on a real
context, and :func:`run_checked` is the *checked entry point* — lint
rule ``FHC008`` requires every in-tree executor call to be guarded by a
``check_sequence`` verdict exactly the way :func:`run_checked` does it.

Rules
-----

============ ======== =========================================================
``C001``     error    operand levels differ (the evaluator would silently
                      mod-reduce — a compiled plan must align explicitly)
``C002``     error    scale overflow: log2(scale) reaches the modulus budget
                      of the value's level (a dropped rescale); poisons
``C003``     error    addition scale mismatch beyond the 1 % log2 tolerance
                      the CKKS evaluator enforces
``C004``     error    NTT/coeff domain mismatch for the op
``C005``     error    level underflow or an op the scheme does not support
``C006``     error    noise bound reaches the level's modulus budget; poisons
``C007``     error    ciphertext-size misuse (multiply of a non-relinearized
                      3-part value, relinearize of a 2-part, ...)
============ ======== =========================================================

Findings that *poison* mark the produced value: downstream ops propagate
the poison silently instead of cascading secondary findings, so one
seeded bug yields one finding.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.analysis.findings import FindingList

#: Ops each scheme supports (everything else is a C005 finding).
_SCHEME_OPS = {
    "ckks": frozenset({
        "encrypt", "add", "sub", "multiply", "multiply_plain", "tensor",
        "relinearize", "rescale", "rotate", "conjugate", "mod_reduce",
        "ntt", "intt",
    }),
    "bgv": frozenset({
        "encrypt", "add", "sub", "multiply", "multiply_plain", "rotate",
        "mod_switch",
    }),
    "bfv": frozenset({
        "encrypt", "add", "sub", "multiply", "multiply_plain",
    }),
}

_ARITY = {
    "encrypt": 0, "add": 2, "sub": 2, "multiply": 2, "tensor": 2,
    "multiply_plain": 1, "relinearize": 1, "rescale": 1, "rotate": 1,
    "conjugate": 1, "mod_reduce": 1, "mod_switch": 1, "ntt": 1, "intt": 1,
}


@dataclass(frozen=True)
class Op:
    """One recorded scheme operation.

    ``srcs`` are indices of earlier ops in the sequence; ``arg`` carries
    the rotation step count (``rotate``) or the target level
    (``mod_reduce``).
    """

    kind: str
    srcs: tuple[int, ...] = ()
    arg: int | None = None
    label: str = ""


@dataclass(frozen=True)
class CtState:
    """Abstract state of one ciphertext value."""

    level: int
    scale_log2: float
    domain: str          # "eval" | "coeff"
    size: int            # number of polynomial parts
    noise_bits: float
    poisoned: bool = False


@dataclass
class CtStateReport:
    """Outcome of one abstract interpretation."""

    label: str
    scheme: str
    ops: int = 0
    #: Abstract state of each produced value (None for unknown kinds).
    states: list[CtState | None] = field(default_factory=list)
    #: Tightest remaining noise budget (bits) over all produced values.
    min_budget_bits: float = math.inf
    findings: FindingList = field(default_factory=FindingList)

    @property
    def ok(self) -> bool:
        return self.findings.ok

    def raise_on_error(self) -> None:
        if not self.ok:
            raise CtStateError(self)


class CtStateError(RuntimeError):
    """Raised by :func:`run_checked` when a sequence fails verification."""

    def __init__(self, report: CtStateReport):
        self.report = report
        lines = [f"sequence {report.label!r} failed fhecheck "
                 f"({len(report.findings.errors)} errors):"]
        lines += [str(f) for f in report.findings.errors[:8]]
        super().__init__("\n".join(lines))


class _Interp:
    """One abstract pass over a sequence (shared by all three schemes)."""

    def __init__(self, params: Any, scheme: str, label: str):
        from repro.fhe.noise import NoiseEstimator

        if scheme not in _SCHEME_OPS:
            raise ValueError(f"unknown scheme {scheme!r}; "
                             f"choose from {sorted(_SCHEME_OPS)}")
        self.scheme = scheme
        self.t_bits = 0.0
        if hasattr(params, "ciphertext_params"):  # BgvParams
            self.t_bits = math.log2(params.plaintext_modulus)
            params = params.ciphertext_params()
        self.params = params
        self.est = NoiseEstimator(params.n, params.error_std)
        self.report = CtStateReport(label=label or f"<{scheme} sequence>",
                                    scheme=scheme)
        self.index = 0
        self.kind = ""

    # -- helpers -----------------------------------------------------------

    def _loc(self) -> str:
        return f"op {self.index}: {self.kind}"

    def _error(self, rule: str, message: str) -> None:
        self.report.findings.error("ctstate", rule, self._loc(), message)

    def q_bits(self, level: int) -> float:
        """log2 of the ciphertext modulus at ``level``."""
        if self.scheme == "bfv":
            level = self.params.levels - 1  # single invariant modulus
        return sum(math.log2(q)
                   for q in self.params.primes[:max(level, 0) + 1])

    def budget(self, level: int) -> float:
        return self.q_bits(level) - 1

    def _keyswitch_bits(self, level: int) -> float:
        return self.est.keyswitch_bits(
            digits=level + 1,
            digit_width_bits=self.params.prime_bits,
            special_bits=math.log2(self.params.special_prime))

    def _root_n_bits(self) -> float:
        return math.log2(math.sqrt(self.params.n))

    def _fresh(self) -> CtState:
        noise = self.est.fresh_bits()
        if self.scheme != "ckks":
            noise += self.t_bits  # error terms are scaled by t
        scale = float(self.params.scale_bits) if self.scheme == "ckks" else 0.0
        return CtState(level=self.params.levels - 1, scale_log2=scale,
                       domain="eval", size=2, noise_bits=noise)

    def _binary_levels(self, a: CtState, b: CtState) -> int:
        if a.level != b.level:
            self._error(
                "C001",
                f"operand levels differ ({a.level} vs {b.level}); the "
                f"evaluator would mod-reduce implicitly — align the plan")
        return min(a.level, b.level)

    def _require_domain(self, state: CtState, domain: str, what: str) -> None:
        if state.domain != domain:
            self._error(
                "C004",
                f"{what} needs a {domain}-domain operand, got "
                f"{state.domain}")

    def _require_size(self, state: CtState, size: int, what: str) -> bool:
        if state.size != size:
            self._error(
                "C007",
                f"{what} needs a {size}-part ciphertext, got "
                f"{state.size} parts")
            return False
        return True

    # -- per-op transfer functions -----------------------------------------

    def step(self, op: Op, states: list[CtState | None]) -> CtState | None:
        self.kind = op.kind
        if op.kind not in _SCHEME_OPS[self.scheme]:
            known = op.kind in _ARITY
            self._error(
                "C005",
                f"op {op.kind!r} is not "
                + (f"supported by the {self.scheme} scheme" if known
                   else "a known operation"))
            return None
        srcs: list[CtState] = []
        for index in op.srcs:
            state = states[index] if 0 <= index < len(states) else None
            if state is None:
                self._error("C005",
                            f"source value #{index} does not exist yet")
                return None
            srcs.append(state)
        if len(srcs) != _ARITY[op.kind]:
            self._error(
                "C005",
                f"op {op.kind!r} takes {_ARITY[op.kind]} source(s), "
                f"got {len(srcs)}")
            return None
        if any(s.poisoned for s in srcs):
            # Propagate silently: the upstream finding already fired.
            base = srcs[0]
            return replace(base, poisoned=True)
        out = getattr(self, f"_op_{op.kind}")(op, *srcs)
        if out is not None and not out.poisoned:
            out = self._postcheck(out)
        return out

    def _postcheck(self, state: CtState) -> CtState:
        budget = self.budget(state.level)
        if self.scheme == "ckks" and state.scale_log2 >= budget:
            self._error(
                "C002",
                f"scale 2^{state.scale_log2:.1f} overflows the level-"
                f"{state.level} modulus budget of {budget:.1f} bits "
                f"(missing rescale?)")
            return replace(state, poisoned=True)
        if state.noise_bits >= budget:
            self._error(
                "C006",
                f"noise bound {state.noise_bits:.1f} bits exhausts the "
                f"level-{state.level} budget of {budget:.1f} bits")
            return replace(state, poisoned=True)
        self.report.min_budget_bits = min(
            self.report.min_budget_bits,
            budget - max(state.noise_bits, state.scale_log2))
        return state

    def _op_encrypt(self, op: Op) -> CtState:
        return self._fresh()

    def _add_like(self, op: Op, a: CtState, b: CtState) -> CtState:
        level = self._binary_levels(a, b)
        if a.domain != b.domain:
            self._error("C004",
                        f"operand domains differ ({a.domain} vs {b.domain})")
        if (self.scheme == "ckks"
                and abs(a.scale_log2 - b.scale_log2) > 0.01):
            self._error(
                "C003",
                f"addition scale mismatch: 2^{a.scale_log2:.3f} vs "
                f"2^{b.scale_log2:.3f} (the evaluator rejects > 1% log2 "
                f"difference)")
        return CtState(level=level, scale_log2=a.scale_log2,
                       domain=a.domain, size=max(a.size, b.size),
                       noise_bits=self.est.add_bits(a.noise_bits,
                                                    b.noise_bits))

    _op_add = _add_like
    _op_sub = _add_like

    def _mult_noise(self, a: CtState, b: CtState) -> float:
        if self.scheme == "ckks":
            return self.est.multiply_bits(a.noise_bits, b.noise_bits,
                                          a.scale_log2, b.scale_log2)
        # Exact schemes: cross terms e_a * m_b with ||m|| < t.
        return (max(a.noise_bits, b.noise_bits) + self.t_bits
                + self._root_n_bits() + 1)

    def _op_tensor(self, op: Op, a: CtState, b: CtState) -> CtState:
        level = self._binary_levels(a, b)
        self._require_domain(a, "eval", "tensor")
        self._require_size(a, 2, "tensor")
        self._require_size(b, 2, "tensor")
        return CtState(level=level, scale_log2=a.scale_log2 + b.scale_log2,
                       domain="eval", size=3,
                       noise_bits=self._mult_noise(a, b))

    def _op_multiply(self, op: Op, a: CtState, b: CtState) -> CtState:
        out = self._op_tensor(op, a, b)
        ks = self._keyswitch_bits(out.level)
        return replace(out, size=2,
                       noise_bits=max(out.noise_bits, ks) + 1)

    def _op_relinearize(self, op: Op, a: CtState) -> CtState:
        if not self._require_size(a, 3, "relinearize"):
            return replace(a, size=2)
        ks = self._keyswitch_bits(a.level)
        return replace(a, size=2, noise_bits=max(a.noise_bits, ks) + 1)

    def _op_multiply_plain(self, op: Op, a: CtState) -> CtState:
        self._require_domain(a, "eval", "multiply_plain")
        pt_scale = float(self.params.scale_bits) \
            if self.scheme == "ckks" else 0.0
        noise = (a.noise_bits + (pt_scale or self.t_bits)
                 + self._root_n_bits())
        return replace(a, scale_log2=a.scale_log2 + pt_scale,
                       noise_bits=noise)

    def _op_rescale(self, op: Op, a: CtState) -> CtState:
        if a.level <= 0:
            self._error("C005",
                        "rescale at level 0: no chain prime left to drop")
            return replace(a, poisoned=True)
        dropped = math.log2(self.params.primes[a.level])
        return CtState(level=a.level - 1,
                       scale_log2=a.scale_log2 - dropped,
                       domain=a.domain, size=a.size,
                       noise_bits=self.est.rescale_bits(a.noise_bits,
                                                        dropped))

    def _op_mod_switch(self, op: Op, a: CtState) -> CtState:
        if a.level <= 0:
            self._error("C005",
                        "mod_switch at level 0: no chain prime left to drop")
            return replace(a, poisoned=True)
        dropped = math.log2(self.params.primes[a.level])
        floor = self.t_bits + self._root_n_bits()
        return replace(a, level=a.level - 1,
                       noise_bits=max(a.noise_bits - dropped, floor) + 1)

    def _galois(self, op: Op, a: CtState, what: str) -> CtState:
        self._require_size(a, 2, what)
        self._require_domain(a, "eval", what)
        ks = self._keyswitch_bits(a.level)
        return replace(a, noise_bits=max(a.noise_bits, ks) + 1)

    def _op_rotate(self, op: Op, a: CtState) -> CtState:
        return self._galois(op, a, "rotate")

    def _op_conjugate(self, op: Op, a: CtState) -> CtState:
        return self._galois(op, a, "conjugate")

    def _op_mod_reduce(self, op: Op, a: CtState) -> CtState:
        target = op.arg if op.arg is not None else a.level - 1
        if target < 0 or target > a.level:
            self._error(
                "C005",
                f"mod_reduce to level {target} from level {a.level}")
            return replace(a, poisoned=True)
        return replace(a, level=target)

    def _op_ntt(self, op: Op, a: CtState) -> CtState:
        self._require_domain(a, "coeff", "ntt")
        return replace(a, domain="eval")

    def _op_intt(self, op: Op, a: CtState) -> CtState:
        self._require_domain(a, "eval", "intt")
        return replace(a, domain="coeff")


def check_sequence(ops: Sequence[Op], params: Any, *,
                   scheme: str = "ckks",
                   label: str = "") -> CtStateReport:
    """Abstractly interpret a recorded op sequence.

    ``params`` is a :class:`~repro.fhe.params.CkksParams` for CKKS, or a
    :class:`~repro.fhe.bgv.BgvParams` for the exact schemes (the chain
    is unwrapped via ``ciphertext_params()``).  Returns a
    :class:`CtStateReport`; ``report.ok`` is False when any finding
    fired.
    """
    interp = _Interp(params, scheme, label)
    states: list[CtState | None] = []
    for index, op in enumerate(ops):
        interp.index = index
        states.append(interp.step(op, states))
        interp.report.ops += 1
    interp.report.states = states
    return interp.report


# ---------------------------------------------------------------------------
# Concrete replay + the checked entry point.
# ---------------------------------------------------------------------------


def _scheme_of(ctx: Any) -> str:
    name = type(ctx).__name__
    for scheme in _SCHEME_OPS:
        if name.lower().startswith(scheme):
            return scheme
    raise TypeError(f"cannot infer scheme from context {name}")


def execute_op(op: Op, ctx: Any, values: Sequence[Any], feed: Any,
               *, scheme: str | None = None) -> Any:
    """Execute **one** recorded op against a real scheme context.

    ``values`` holds the results of earlier ops (indexed by ``srcs``)
    and ``feed`` is an iterator yielding one value array per
    ``encrypt`` / ``multiply_plain`` op.  This is the single-step core
    both :func:`execute_sequence` and the durable executor
    (:mod:`repro.recover`) loop over; like the sequence executors it is
    subject to lint rule ``FHC008`` — callers must hold a
    ``check_sequence`` verdict for the sequence the op belongs to.
    """
    import numpy as np

    if scheme is None:
        scheme = _scheme_of(ctx)

    def ct_with_parts(ct: Any, parts: list[Any], scale: float) -> Any:
        from repro.fhe.ckks import Ciphertext
        return Ciphertext(parts, scale)

    a = values[op.srcs[0]] if op.srcs else None
    b = values[op.srcs[1]] if len(op.srcs) > 1 else None
    kind = op.kind
    if kind == "encrypt":
        out = ctx.encrypt(np.asarray(next(feed)))
    elif kind == "add":
        out = ctx.add(a, b)
    elif kind == "sub":
        out = ctx.sub(a, b)
    elif kind == "multiply":
        if scheme == "ckks":
            out = ctx.multiply(a, b, rescale_after=False)
        elif scheme == "bgv":
            out = ctx.multiply(a, b, switch_modulus=False)
        else:
            out = ctx.multiply(a, b)
    elif kind == "multiply_plain":
        values_in = np.asarray(next(feed))
        if scheme == "ckks":
            out = ctx.multiply_plain(a, values_in, rescale_after=False)
        else:
            out = ctx.multiply_plain(a, values_in)
    elif kind == "tensor":
        d0 = a.parts[0] * b.parts[0]
        d1 = a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0]
        d2 = a.parts[1] * b.parts[1]
        out = ct_with_parts(a, [d0, d1, d2], a.scale * b.scale)
    elif kind == "relinearize":
        out = ctx.relinearize(a)
    elif kind == "rescale":
        out = ctx.rescale(a)
    elif kind == "rotate":
        out = ctx.rotate(a, op.arg if op.arg is not None else 1)
    elif kind == "conjugate":
        out = ctx.conjugate(a)
    elif kind == "mod_reduce":
        target = op.arg if op.arg is not None else a.level - 1
        out = ctx.mod_reduce(a, target)
    elif kind == "mod_switch":
        out = ctx.mod_switch(a)
    elif kind == "ntt":
        out = ct_with_parts(a, [p.to_eval() for p in a.parts], a.scale)
    elif kind == "intt":
        out = ct_with_parts(a, [p.to_coeff() for p in a.parts], a.scale)
    else:
        raise ValueError(f"cannot execute op kind {kind!r}")
    return out


def execute_sequence(ops: Sequence[Op], ctx: Any,
                     inputs: Sequence[Any]) -> list[Any]:
    """Replay a sequence on a real scheme context.

    ``inputs`` supplies one value array per ``encrypt`` /
    ``multiply_plain`` op, in sequence order.  Returns the list of
    produced values (one per op).  Prefer :func:`run_checked`, which
    verifies the sequence first — calling this directly is flagged by
    lint rule ``FHC008``.
    """
    scheme = _scheme_of(ctx)
    feed = iter(inputs)
    values: list[Any] = []
    for op in ops:
        # execute_sequence is itself the guarded executor: its callers
        # hold the check_sequence verdict (run_checked's shape).
        # fhecheck: ok=FHC008 — the per-op core inherits this call's verdict
        values.append(execute_op(op, ctx, values, feed, scheme=scheme))
    return values


def run_checked(ops: Sequence[Op], ctx: Any, inputs: Sequence[Any], *,
                label: str = "") -> list[Any]:
    """The checked entry point: verify, then execute.

    Raises :class:`CtStateError` (carrying the full report) instead of
    executing when the abstract interpreter finds anything.
    """
    scheme = _scheme_of(ctx)
    report = check_sequence(ops, ctx.params, scheme=scheme, label=label)
    if report.ok:
        return execute_sequence(ops, ctx, inputs)
    raise CtStateError(report)


# ---------------------------------------------------------------------------
# Canonical workload sequences (used by the CLI and the mutation tests).
# ---------------------------------------------------------------------------


def ckks_mult_rotate_sequence(levels: int) -> list[Op]:
    """Encrypt two vectors, multiply/rescale down the chain, rotate.

    The canonical deep-pipeline shape: ``levels - 1`` multiply+rescale
    rounds (each consumes one chain prime) and a final rotation.
    """
    ops = [Op("encrypt"), Op("encrypt")]
    current = 0
    other = 1
    for _ in range(max(levels - 1, 1)):
        ops.append(Op("multiply", (current, other)))
        ops.append(Op("rescale", (len(ops) - 1,)))
        current = other = len(ops) - 1
    ops.append(Op("rotate", (current,), arg=1))
    return ops


def bgv_mult_switch_sequence(levels: int) -> list[Op]:
    """BGV: multiply then explicitly mod-switch, down the chain."""
    ops = [Op("encrypt"), Op("encrypt")]
    current, other = 0, 1
    for _ in range(max(levels - 1, 1)):
        ops.append(Op("multiply", (current, other)))
        ops.append(Op("mod_switch", (len(ops) - 1,)))
        current = other = len(ops) - 1
    return ops


def bfv_mult_add_sequence() -> list[Op]:
    """BFV: scale-invariant multiply plus an addition."""
    return [
        Op("encrypt"), Op("encrypt"),
        Op("multiply", (0, 1)),
        Op("add", (2, 0)),
    ]
