"""Entry point: ``python -m repro.analysis`` (the ``fhecheck`` CLI)."""

from __future__ import annotations

import sys

from repro.analysis.cli import main

sys.exit(main())
