"""Repository-specific AST lint rules (the ``fhecheck lint`` pass).

These are *heuristic* rules targeting the failure modes this codebase
has actually paid for in review time — each encodes one way the uint64
fast paths silently go wrong:

``FHC001`` **object-dtype leak** — an ``object``-dtype value (from
    ``.astype(object)`` or ``dtype=object``) is narrowed straight into a
    fixed-width integer (``.astype(np.uint64)``, ``np.uint64(...)``)
    without an intervening ``%`` reduction, or fed to ``np.minimum``
    (whose wraparound-clamp idiom is meaningless off uint64).

``FHC002`` **unchecked narrowing** — ``.astype`` to a *signed or
    narrower* integer dtype (``int64``/``int32``/``uint32``) in a
    function with no visible power-of-two range guard.  Widening to
    ``uint64`` is exempt.

``FHC003`` **unreduced product under %** — ``(a ± b) * c % q`` in
    uint64-handling code: the product of an unreduced sum can exceed
    uint64 *before* the reduction ever runs.  Operands already reduced
    by an inner ``%`` are exempt.

``FHC004`` **lazy value escapes unclamped** — a function calls one of
    the lazy/unclamped stage kernels but never applies a ``%`` or a
    ``np.minimum`` conditional subtract afterwards, so a ``>= q`` (or
    ``>= 2q``) value may become architecturally visible.

``FHC005`` **unguarded fault-hook dereference** — a method is invoked
    on a fault-injection hook (``*fault_hook`` attributes/names, or
    local aliases assigned from them, e.g.
    ``hook = self.fault_hook`` / ``hook = current_fault_hook()``)
    outside an ``if <hook> is not None`` guard.  Injection hooks must be
    exact no-ops when disabled — one predictable branch, zero modeled
    cycles — so every dereference needs the guard.  Calling the
    installer/accessor functions themselves
    (``install_fault_hook(...)``, ``current_fault_hook()``) is exempt.

``FHC006`` **unguarded observability-hook dereference** — same contract
    as FHC005 for the tracing/metrics hooks (``*obs_hook`` names and
    aliases assigned from them, e.g. ``obs = current_obs_hook()``).
    Observability must be an exact no-op when disabled — bit-identical
    outputs, integer-identical modeled cycles — so every hook method
    call needs an ``if <hook> is not None`` guard.  The accessor
    functions (``install_obs_hook(...)``, ``current_obs_hook()``) are
    exempt.

``FHC007`` **ungated compiled lazy kernel** — a ``cjit_*_lazy`` /
    ``cjit_*_unclamped`` compiled-kernel entry (:mod:`repro.kernels
    .provider`) is invoked outside a branch conditioned on an
    analyzer-derived eligibility gate (a ``*_ok`` name or attribute,
    e.g. ``plan.lazy_stages_ok`` from :func:`repro.analysis.bounds
    .compiled_ntt_ok`, or a local alias of one).  The lazy schedules
    are sound *only* where the interval analysis proves them — a direct
    call bypassing the gate reintroduces exactly the hand-coded width
    assumptions fhecheck exists to eliminate.

``FHC008`` **unchecked op-sequence execution** — a recorded-sequence
    executor (``execute_sequence`` / ``replay_sequence``) is invoked
    outside a branch conditioned on a :func:`repro.analysis.ctstate
    .check_sequence` verdict (or a local alias of one).  Op sequences
    must go through the checked entry point
    (:func:`repro.analysis.ctstate.run_checked`) or reproduce its
    check-then-execute shape — executing an unverified sequence skips
    the level/scale/domain/noise verification entirely.

``FHC009`` **unchecked SRAM staging** — a ``.stage(...)`` call on an
    SRAM model with no capacity evidence anywhere in the enclosing
    function (no ``.fits(...)`` call and no ``capacity`` mention).
    :meth:`repro.accel.sram.OnChipSram.stage` charges bandwidth for
    whatever it is handed; staging a working set that does not fit
    silently models a machine with infinite SRAM.

``FHC011`` **bare backend await in the serving layer** — inside
    :mod:`repro.serve` (the only async package), an ``await`` whose
    awaited expression reaches backend work (kernel dispatch, op
    execution, ``asyncio.to_thread``/``run_in_executor`` offloads) must
    be wrapped in the deadline/cancellation helper
    (:func:`repro.serve.deadline.with_deadline` or a ``*_with_deadline``
    wrapper).  A bare await on backend work can outlive its request's
    deadline — exactly the hang the serving layer promises can never
    happen.  Awaits on queue/lock/sleep primitives are exempt (they are
    bounded by the request watchdog), as is the wrapper's own internal
    ``asyncio.wait_for``.

``FHC012`` **non-durable write in the recovery layer** — inside
    :mod:`repro.recover` (the durable-execution package), a
    ``.write(...)`` call in a function with no visible fsync evidence
    (an ``os.fsync``/``*fsync*`` call in the same function).  The
    crash-recovery guarantee rests on the write-ahead log's fsync
    discipline: a journal append that is not flushed through the
    fsync'd :meth:`repro.recover.wal.WriteAheadLog.append` API can be
    lost (or half-written without detection) on a crash the campaign
    would then classify as silent.  Route journal appends through
    ``append()``; raw writes are legal only inside functions that fsync
    what they wrote.

``FHC013`` **context-free span creation in the serving/recovery
    layers** — inside :mod:`repro.serve` and :mod:`repro.recover`, a
    span created on the obs hook (``.begin(...)``, ``.span(...)``,
    ``.record(...)``) in a function with no trace-context evidence
    (``bind_trace``/``trace_scope``/``begin_request``/
    ``current_trace_context``/``TraceContext``/``trace_ctx``).  These
    layers run on interleaved asyncio tasks: a span begun without the
    request's :class:`~repro.obs.context.TraceContext` bound lands on
    whatever stack the worker last left, producing the mis-nested
    retrospective traces request-scoped tracing replaced.  Create spans
    through ``Observer.begin_request``/``end_request`` or under
    ``bind_trace``/``trace_scope`` of the ticket's context.

Suppression: append ``# fhecheck: ok`` (all rules) or
``# fhecheck: ok=FHC002`` (one rule) to the offending line — or to the
line directly above it when the line is too long — ideally with a
justification after an em-dash.  Suppressions are deliberate,
reviewable artifacts — the point is that the *reason* lives next to the
code instead of in a lost PR comment.  Suppression comments that no
longer suppress anything are themselves reported (``FHC010``, warning
severity, like ruff's unused-noqa) so stale waivers cannot outlive the
finding they excused.  Only real comments count: the scanner works on
tokenized COMMENT tokens, so suppression text inside string literals
(docstrings, test fixtures) is inert.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.analysis.findings import Finding, FindingList

_SUPPRESS_RE = re.compile(r"#\s*fhecheck:\s*ok(?:=(?P<rules>[A-Z0-9,]+))?")

_NARROW_DTYPES = {"int64", "int32", "uint32", "int16", "uint16",
                  "int8", "uint8"}
_LAZY_KERNELS = {"dif_stages_lazy", "dit_stages_lazy",
                 "dit_stages_unclamped"}
#: Compiled-kernel entries whose reduction discipline is conditional on
#: an analyzer-derived gate (FHC007).  The naming convention is load-
#: bearing: every gated entry in ``repro.kernels.provider`` carries a
#: ``_lazy``/``_unclamped`` suffix; ungated ones (pure gathers,
#: per-step-reduced accumulators) do not.
_CJIT_LAZY_RE = re.compile(r"^cjit_\w*_(?:lazy|unclamped)$")
#: Recorded-sequence executors that must go through the checked entry
#: point (FHC008); the verdict provider tracked as the guard.
_SEQUENCE_EXECUTORS = {"execute_sequence", "replay_sequence", "execute_op"}
_SEQUENCE_CHECK_SUFFIX = "check_sequence"
#: Files subject to FHC011: the async serving layer.
_SERVE_PATH_RE = re.compile(r"repro[/\\]serve[/\\]")
#: Files subject to FHC012: the durable-execution layer.
_RECOVER_PATH_RE = re.compile(r"repro[/\\]recover[/\\]")
#: Names that mark an awaited expression as *backend work* (FHC011):
#: kernel/op dispatch verbs and thread-offload primitives.  The naming
#: convention is load-bearing, like FHC007's ``cjit_*`` prefix: serve
#: code names its backend entry points with these verbs and keeps
#: bounded primitives (queue get, lock acquire, sleep) off the list.
_SERVE_WORK_RE = re.compile(
    r"(?:^|_)(?:ntt|intt|keyswitch|hmult|hrot|rescale|rotate|multiply|"
    r"automorphism|execute|compute|dispatch|kernel)(?:_|$)"
    r"|^to_thread$|^run_in_executor$|_batch$")
#: The sanctioned deadline/cancellation wrappers (FHC011).
_DEADLINE_WRAPPER = "with_deadline"
#: Span-creating verbs on the obs hook (FHC013).  ``begin_request`` /
#: ``end_request`` are the context-propagating API itself and exempt
#: by name.
_SPAN_CREATION_ATTRS = {"begin", "span", "record"}
#: Trace-context evidence (FHC013): any of these names in the same
#: function ties the span creation to the request-scoped context API.
_TRACE_CONTEXT_EVIDENCE = {
    "trace_scope", "bind_trace", "unbind_trace", "begin_request",
    "end_request", "current_trace_context", "TraceContext", "trace_ctx",
}


def _dtype_name(node: ast.expr) -> str | None:
    """Name of a dtype expression: ``np.int64`` -> ``int64``,
    ``"int64"`` -> ``int64``, ``object`` -> ``object``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _is_astype_call(node: ast.AST, dtypes: set[str]) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and len(node.args) == 1
            and _dtype_name(node.args[0]) in dtypes)


def _has_object_dtype(node: ast.AST, *, stop_at_mod: bool) -> bool:
    """Does the subtree produce/contain an object-dtype value?

    With ``stop_at_mod`` the search does not descend below a ``%`` or
    ``//`` operation — a value reduced (or re-bounded by division, as in
    the Shoup precompute ``(w << 32) // q``) is safe to narrow
    regardless of how it was produced.
    """
    if stop_at_mod and isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Mod, ast.FloorDiv)):
        return False
    if _is_astype_call(node, {"object"}):
        return True
    if isinstance(node, ast.keyword) and node.arg == "dtype" and \
            _dtype_name(node.value) == "object":
        return True
    return any(_has_object_dtype(child, stop_at_mod=stop_at_mod)
               for child in ast.iter_child_nodes(node))


def _is_np_call(node: ast.AST, name: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == name
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "np")


def _contains_unreduced_sum(node: ast.expr) -> bool:
    """Is this multiplicand syntactically an un-reduced sum/difference?"""
    return (isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub)))


def _function_has_range_guard(fn: ast.AST) -> bool:
    """Does the function visibly bound the narrowed value?

    Two accepted idioms:

    * an explicit power-of-two comparison (``x < (1 << 31)`` /
      ``2**31``) anywhere in the function — a deliberate width gate;
    * the repository's centered-lift pattern
      ``np.where(x > q // 2, x - q, x)`` — the comparison against
      ``_ // 2`` marks the value as a reduced residue (``< q < 2**62``,
      the Barrett modulus ceiling), which int64 holds exactly.
    """
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        for side in [node.left, *node.comparators]:
            for sub in ast.walk(side):
                if not isinstance(sub, ast.BinOp):
                    continue
                if isinstance(sub.op, (ast.LShift, ast.Pow)):
                    base = sub.left
                    if isinstance(base, ast.Constant) and \
                            base.value in (1, 2):
                        return True
                if isinstance(sub.op, ast.FloorDiv) and \
                        isinstance(sub.right, ast.Constant) and \
                        sub.right.value == 2:
                    return True
    return False


def _function_mentions_uint64(fn: ast.AST, source: str,
                              lines: list[str]) -> bool:
    """FHC003 scope guard: only numpy/uint64-handling functions are
    subject — scalar Python-int code is exact and exempt."""
    segment = ast.get_source_segment(source, fn)
    if segment is None:  # pragma: no cover - degenerate source
        return True
    return "uint64" in segment


#: The guarded no-op hook families this repo enforces.  Each row is
#: (rule, name suffix, human label, what "disabled" means).  The same
#: alias/guard machinery serves both: FHC005 covers the fault-injection
#: hooks, FHC006 the observability hooks.
_HOOK_RULES: tuple[tuple[str, str, str, str], ...] = (
    ("FHC005", "fault_hook", "fault-hook", "fault injection"),
    ("FHC006", "obs_hook", "observability-hook", "tracing"),
)


def _mentions_hook(node: ast.AST, aliases: set[str], suffix: str) -> bool:
    """Does the subtree reference a hook of this family — a
    ``*<suffix>`` attribute/name (including the accessor functions) or
    a tracked local alias?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and (sub.id.endswith(suffix)
                                          or sub.id in aliases):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.endswith(suffix):
            return True
    return False


def _collect_hook_aliases(fn: ast.AST, suffix: str) -> set[str]:
    """Names assigned (transitively) from a hook expression, to a
    fixed point: ``hook = self.fault_hook``, ``h = hook``,
    ``obs = current_obs_hook()``, ..."""
    aliases: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not _mentions_hook(node.value, aliases, suffix):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases.add(target.id)
                    changed = True
    return aliases


def _scan_guarded(fn: ast.AST, mentions, on_call) -> None:
    """Walk ``fn`` tracking branch-guardedness, invoking
    ``on_call(call, guarded)`` for every call expression.

    A node is *guarded* when it sits in the taken branch of an
    ``if``/``while``/conditional expression (or to the right of an
    ``and``) whose test satisfies ``mentions`` — the shared skeleton of
    the guarded-dereference rules (FHC005/FHC006) and the gated
    compiled-kernel rule (FHC007).  ``else`` branches inherit only the
    outer guardedness; nested function scopes get their own pass.
    """

    def scan(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)) and node is not fn:
            return  # nested scopes get their own pass
        if isinstance(node, (ast.If, ast.While)):
            scan(node.test, guarded)
            body_guarded = guarded or mentions(node.test)
            for stmt in node.body:
                scan(stmt, body_guarded)
            for stmt in node.orelse:
                scan(stmt, guarded)
            return
        if isinstance(node, ast.IfExp):
            scan(node.test, guarded)
            scan(node.body, guarded or mentions(node.test))
            scan(node.orelse, guarded)
            return
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            running = guarded
            for value in node.values:
                scan(value, running)
                running = running or mentions(value)
            return
        if isinstance(node, ast.Call):
            on_call(node, guarded)
        for child in ast.iter_child_nodes(node):
            scan(child, guarded)

    scan(fn, False)


class _Suppressions:
    """``# fhecheck: ok[=RULES]`` comments, from real COMMENT tokens.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    text inside string literals — docstrings, lint-test fixtures —
    inert, which in turn lets :meth:`unused` report stale waivers
    without false positives.
    """

    def __init__(self, source: str):
        self.by_line: dict[int, set[str] | None] = {}
        self.used: set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []  # unparseable files already yield FHC000
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                rules = match.group("rules")
                self.by_line[token.start[0]] = (set(rules.split(","))
                                                if rules else None)

    def active(self, lineno: int, rule: str) -> bool:
        # A suppression lives on the offending line or, when the line is
        # too long for a trailing comment, on the line directly above.
        for candidate in (lineno, lineno - 1):
            if candidate in self.by_line:
                rules = self.by_line[candidate]
                hit = rules is None or rule in rules
                if hit:
                    self.used.add(candidate)
                return hit
        return False

    def unused(self) -> list[int]:
        """Line numbers of suppressions that never suppressed anything."""
        return sorted(set(self.by_line) - self.used)


class _Linter(ast.NodeVisitor):
    def __init__(self, source: str, filename: str):
        self.source = source
        self.filename = filename
        self.lines = source.splitlines()
        self.suppressions = _Suppressions(source)
        self.findings = FindingList()
        self._fn_stack: list[ast.AST] = []
        #: FHC011 applies only inside the async serving layer.
        self._serve_file = bool(_SERVE_PATH_RE.search(filename))
        #: FHC012 applies only inside the durable-execution layer.
        self._recover_file = bool(_RECOVER_PATH_RE.search(filename))

    # -- helpers -----------------------------------------------------------

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 0)
        if self.suppressions.active(lineno, rule):
            return
        self.findings.error("lint", rule,
                            f"{self.filename}:{lineno}", message)

    # -- function context --------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: ast.AST) -> None:
        self._fn_stack.append(node)
        self._check_lazy_escape(node)
        self._check_fault_hook_guards(node)
        self._check_compiled_gate_guards(node)
        self._check_sequence_entry(node)
        self._check_sram_staging(node)
        self._check_durable_writes(node)
        self._check_span_context(node)
        self.generic_visit(node)
        self._fn_stack.pop()

    # -- FHC001 / FHC002: calls --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if _is_astype_call(node, _NARROW_DTYPES | {"uint64", "int_"}):
            dtype = _dtype_name(node.args[0])
            receiver = node.func.value  # type: ignore[union-attr]
            if _has_object_dtype(receiver, stop_at_mod=True):
                self._flag(
                    "FHC001", node,
                    f"object-dtype value narrowed straight to {dtype} "
                    f"without an intervening % reduction")
            elif dtype in _NARROW_DTYPES:
                self._check_narrow(node, dtype)
        elif _is_np_call(node, "uint64") or _is_np_call(node, "int64"):
            for arg in node.args:
                if _has_object_dtype(arg, stop_at_mod=True):
                    self._flag(
                        "FHC001", node,
                        "object-dtype value passed to a fixed-width "
                        "integer constructor without a % reduction")
        elif _is_np_call(node, "minimum"):
            for arg in node.args:
                if _has_object_dtype(arg, stop_at_mod=False):
                    self._flag(
                        "FHC001", node,
                        "np.minimum wraparound clamp applied to an "
                        "object-dtype value — the uint64 conditional-"
                        "subtract idiom does not hold off uint64")
        self.generic_visit(node)

    def _check_narrow(self, node: ast.Call, dtype: str) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None and _function_has_range_guard(fn):
            return
        self._flag(
            "FHC002", node,
            f".astype({dtype}) narrowing with no visible power-of-two "
            f"range guard in the enclosing function — values above the "
            f"target width wrap silently")

    # -- FHC003: unreduced product under % ---------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.BinOp) \
                and isinstance(node.left.op, ast.Mult):
            fn = self._fn_stack[-1] if self._fn_stack else None
            if fn is not None and _function_mentions_uint64(
                    fn, self.source, self.lines):
                mult = node.left
                for operand in (mult.left, mult.right):
                    if _contains_unreduced_sum(operand):
                        self._flag(
                            "FHC003", node,
                            "product of an unreduced sum taken mod q — "
                            "the uint64 product may overflow before the "
                            "% ever runs; reduce or clamp the sum first")
                        break
        self.generic_visit(node)

    # -- FHC004: lazy value escapes unclamped ------------------------------

    def _check_lazy_escape(self, fn: ast.AST) -> None:
        lazy_calls: list[ast.Call] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name in _LAZY_KERNELS:
                    lazy_calls.append(node)
        if not lazy_calls:
            return
        def _reduces_after(lineno: int) -> bool:
            for node in ast.walk(fn):
                if getattr(node, "lineno", 0) <= lineno:
                    continue
                if isinstance(node, ast.BinOp) and isinstance(
                        node.op, ast.Mod):
                    return True
                if isinstance(node, ast.AugAssign) and isinstance(
                        node.op, ast.Mod):
                    return True
                if _is_np_call(node, "minimum"):
                    return True
            return False
        for call in lazy_calls:
            if not _reduces_after(call.lineno):
                self._flag(
                    "FHC004", call,
                    "lazy/unclamped stage result is never clamped "
                    "(np.minimum) or reduced (%) afterwards — a >= q "
                    "value may escape this function")

    # -- FHC011: bare backend await in the serving layer -------------------

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def visit_Await(self, node: ast.Await) -> None:
        if self._serve_file:
            self._check_serve_await(node)
        self.generic_visit(node)

    def _check_serve_await(self, node: ast.Await) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            name = self._call_name(value)
            if name is not None and (name == _DEADLINE_WRAPPER
                                     or name.endswith("_" + _DEADLINE_WRAPPER)):
                return  # sanctioned: the wrapper owns the timeout
        for sub in ast.walk(value):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and _SERVE_WORK_RE.search(name):
                self._flag(
                    "FHC011", node,
                    f"backend work ({name!r}) awaited outside the "
                    f"deadline/cancellation helper — wrap the awaitable "
                    f"in with_deadline(...) so it cannot outlive the "
                    f"request deadline")
                return

    # -- FHC005/FHC006: unguarded hook dereference -------------------------

    def _check_fault_hook_guards(self, fn: ast.AST) -> None:
        for rule, suffix, label, disabled in _HOOK_RULES:
            self._check_hook_guards(fn, rule, suffix, label, disabled)

    def _check_hook_guards(self, fn: ast.AST, rule: str, suffix: str,
                           label: str, disabled: str) -> None:
        aliases = _collect_hook_aliases(fn, suffix)

        def mentions(node: ast.AST) -> bool:
            return _mentions_hook(node, aliases, suffix)

        def on_call(node: ast.Call, guarded: bool) -> None:
            self._check_hook_call(node, aliases, guarded,
                                  rule, suffix, label, disabled)

        _scan_guarded(fn, mentions, on_call)

    # -- FHC007: ungated compiled lazy kernel ------------------------------

    def _check_compiled_gate_guards(self, fn: ast.AST) -> None:
        """Every ``cjit_*_lazy``/``cjit_*_unclamped`` call must sit in a
        branch conditioned on an analyzer-derived ``*_ok`` gate (or a
        local alias of one) — the guard machinery is shared with
        FHC005/FHC006, with ``_ok`` as the tracked suffix."""
        aliases = _collect_hook_aliases(fn, "_ok")

        def mentions(node: ast.AST) -> bool:
            return _mentions_hook(node, aliases, "_ok")

        def on_call(node: ast.Call, guarded: bool) -> None:
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name is None or not _CJIT_LAZY_RE.match(name):
                return
            if guarded:
                return
            self._flag(
                "FHC007", node,
                f"compiled lazy-reduction kernel {name}() invoked "
                f"outside a branch conditioned on an analyzer-derived "
                f"*_ok eligibility gate — lazy schedules are sound only "
                f"where the interval analysis proves them")

        _scan_guarded(fn, mentions, on_call)

    # -- FHC008: op-sequence executor bypasses the checked entry point -----

    def _check_sequence_entry(self, fn: ast.AST) -> None:
        """Every ``execute_sequence``/``replay_sequence`` call must sit
        in a branch conditioned on a ``check_sequence`` verdict (or a
        local alias, e.g. ``report = check_sequence(...)`` guarding
        ``if report.ok:``) — the shape :func:`repro.analysis.ctstate
        .run_checked` canonicalizes."""
        aliases = _collect_hook_aliases(fn, _SEQUENCE_CHECK_SUFFIX)

        def mentions(node: ast.AST) -> bool:
            return _mentions_hook(node, aliases, _SEQUENCE_CHECK_SUFFIX)

        def on_call(node: ast.Call, guarded: bool) -> None:
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name not in _SEQUENCE_EXECUTORS or guarded:
                return
            self._flag(
                "FHC008", node,
                f"{name}() invoked outside a branch conditioned on a "
                f"check_sequence verdict — route op sequences through "
                f"the checked entry point (ctstate.run_checked) so "
                f"level/scale/domain/noise are verified before "
                f"execution")

        _scan_guarded(fn, mentions, on_call)

    # -- FHC009: SRAM staging without a capacity check ---------------------

    def _check_sram_staging(self, fn: ast.AST) -> None:
        """A ``<sram>.stage(...)`` call needs capacity evidence in the
        same function: a ``.fits(...)`` call or any ``capacity``
        mention (attribute, name, or keyword)."""

        def mentions_sram(node: ast.AST) -> bool:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and "sram" in sub.id.lower():
                    return True
                if isinstance(sub, ast.Attribute) and \
                        "sram" in sub.attr.lower():
                    return True
            return False

        stage_calls = [
            node for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stage"
            and mentions_sram(node.func.value)
        ]
        if not stage_calls:
            return
        has_capacity_evidence = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "fits":
                has_capacity_evidence = True
            elif isinstance(node, ast.Attribute) and \
                    "capacity" in node.attr:
                has_capacity_evidence = True
            elif isinstance(node, ast.Name) and "capacity" in node.id:
                has_capacity_evidence = True
            if has_capacity_evidence:
                break
        if has_capacity_evidence:
            return
        for call in stage_calls:
            self._flag(
                "FHC009", call,
                "SRAM staging without a capacity check in this function "
                "— call sram.fits(...) (or assert against capacity) "
                "before .stage(...), else oversized working sets model "
                "an infinite SRAM silently")

    # -- FHC012: non-durable write in the recovery layer -------------------

    def _check_durable_writes(self, fn: ast.AST) -> None:
        """Inside ``repro/recover/``, every function that performs a
        ``.write(...)`` must show fsync evidence (an ``os.fsync`` call
        or ``*fsync*`` name) in the same function — the WAL's
        :meth:`append` shape.  Journal appends elsewhere must go
        through that API instead of writing file handles directly."""
        if not self._recover_file:
            return
        writes = [
            node for node in ast.walk(fn)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "write"
        ]
        if not writes:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and "fsync" in node.attr:
                return
            if isinstance(node, ast.Name) and "fsync" in node.id:
                return
        for call in writes:
            self._flag(
                "FHC012", call,
                "file write in the recovery layer with no fsync evidence "
                "in this function — journal appends must go through the "
                "fsync'd WriteAheadLog.append() API (a bare write can be "
                "lost on the very crash the journal exists to survive)")

    # -- FHC013: context-free span creation in serve/recover ---------------

    def _check_span_context(self, fn: ast.AST) -> None:
        """Inside ``repro/serve/`` and ``repro/recover/``, a span
        created on the obs hook must show trace-context evidence in the
        same function (a ``bind_trace``/``trace_scope``/
        ``begin_request``/``current_trace_context``/``TraceContext``/
        ``trace_ctx`` mention) — the request-scoped tracing contract:
        spans in the async layers carry the request's trace or they
        mis-nest on whatever stack the worker last touched."""
        if not (self._serve_file or self._recover_file):
            return
        aliases = _collect_hook_aliases(fn, "obs_hook")
        creations: list[tuple[ast.Call, str]] = []
        for node in ast.walk(fn):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SPAN_CREATION_ATTRS
                    and _mentions_hook(node.func.value, aliases,
                                       "obs_hook")):
                creations.append((node, node.func.attr))
        if not creations:
            return
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and \
                    node.id in _TRACE_CONTEXT_EVIDENCE:
                return
            if isinstance(node, ast.Attribute) and \
                    node.attr in _TRACE_CONTEXT_EVIDENCE:
                return
        for call, verb in creations:
            self._flag(
                "FHC013", call,
                f"span created via .{verb}(...) in the serving/recovery "
                f"layer with no trace-context evidence in this function "
                f"— go through the context-propagating API "
                f"(begin_request/end_request, or bind_trace/trace_scope "
                f"of the ticket's TraceContext) so the span stitches "
                f"into its request's trace instead of mis-nesting on a "
                f"worker's stale stack")

    def _check_hook_call(self, node: ast.Call, aliases: set[str],
                         guarded: bool, rule: str, suffix: str,
                         label: str, disabled: str) -> None:
        func = node.func
        if not _mentions_hook(func, aliases, suffix):
            return
        # The install/accessor functions are not dereferences: calling
        # install_fault_hook(x), vpu.install_fault_hook(...),
        # current_fault_hook() or current_obs_hook() is how hooks are
        # managed, and is legal unguarded.
        if isinstance(func, ast.Name) and func.id.endswith(suffix):
            return
        if isinstance(func, ast.Attribute) and \
                func.attr.endswith(suffix) and \
                not _mentions_hook(func.value, aliases, suffix):
            return
        if guarded:
            return
        self._flag(
            rule, node,
            f"{label} dereference outside an `is not None` guard — "
            f"these hooks must be no-ops when {disabled} is "
            f"disabled (guard the call with `if <hook> is not None`)")


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint one source string; returns the findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        findings = FindingList()
        findings.error("lint", "FHC000",
                       f"{filename}:{exc.lineno or 0}",
                       f"syntax error: {exc.msg}")
        return findings.findings
    linter = _Linter(source, filename)
    linter.visit(tree)
    # FHC010: stale waivers (after the full visit, so every suppression
    # had its chance to fire).  Warning severity — a stale comment does
    # not gate CI, it just must not linger unnoticed.
    for lineno in linter.suppressions.unused():
        rules = linter.suppressions.by_line[lineno]
        what = "all rules" if rules is None else ",".join(sorted(rules))
        linter.findings.warning(
            "lint", "FHC010", f"{filename}:{lineno}",
            f"suppression comment ({what}) no longer suppresses any "
            f"finding — remove it or re-justify it")
    return linter.findings.findings


def lint_file(path: str | Path) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: list[str | Path]) -> list[Finding]:
    """Lint files and/or directories (``*.py``, recursively)."""
    findings: list[Finding] = []
    for entry in paths:
        entry = Path(entry)
        files = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for file in files:
            findings.extend(lint_file(file))
    return findings
