"""Def-use dataflow verification of compiled VPU micro-programs.

:func:`check_dataflow` walks a :class:`repro.core.isa.Program` under the
same dispatch semantics as :class:`repro.core.vpu.VectorProcessingUnit`
— including the diagonal per-lane register reads of the transpose
passes and the mux-level routing learned from the real
:class:`~repro.core.network.InterLaneNetwork` model — but tracks *which*
registers are defined and consumed instead of their value intervals
(that is :mod:`repro.analysis.program_check`'s job).

Rules
-----

============ ======== =========================================================
``D001``     error    read of a register no instruction has written
``D002``     warning  write whose value is overwritten (or the program ends)
                      without any intervening read — dead code in the compiler
``D003``     error    a network routing table is not a lane permutation (some
                      lane's value is dropped or duplicated by the muxes)
``D004``     error    diagonal-read WAR hazard: the destination register lies
                      inside the source window, so in-flight lanes would
                      observe the partially overwritten row
``D005``     error    register-file port budget exceeded (more than 2 distinct
                      read ports or 1 write port in one instruction)
============ ======== =========================================================

``D001`` dedupes per register (the first uninitialized read is reported,
then the register is treated as defined) so one compiler bug yields one
finding instead of a cascade.  In-place updates (``dst == src``) are the
*normal* idiom for CG NTT stages and are not findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import FindingList
from repro.analysis.program_check import _route_table
from repro.core.isa import Instruction, NetworkPass, NttStage, Program
from repro.core.network import NetworkConfig


@dataclass
class DataflowReport:
    """Outcome of one def-use walk over a micro-program."""

    label: str
    m: int
    instructions: int = 0
    #: Distinct registers the program ever writes.
    registers_written: int = 0
    #: Registers still holding an unread (dead) value at program end.
    dead_at_exit: int = 0
    findings: FindingList = field(default_factory=FindingList)

    @property
    def ok(self) -> bool:
        return self.findings.ok


def _loc(pc: int, instr: Instruction) -> str:
    return f"pc {pc}: {type(instr).__name__}"


def _routing_configs(instr: Instruction) -> list[NetworkConfig]:
    """Network configurations this instruction drives through the muxes."""
    if isinstance(instr, NetworkPass):
        return [instr.config]
    if isinstance(instr, NttStage):
        return [NetworkConfig(cg=instr.kind, cg_group_size=instr.group_size)]
    return []


def check_dataflow(program: Program, *, m: int) -> DataflowReport:
    """Def-use verify one compiled micro-program for an ``m``-lane VPU.

    Returns a :class:`DataflowReport`; ``report.ok`` is False when any
    error-severity finding fired.  Dead writes (``D002``) are warnings —
    they waste cycles but cannot corrupt results.
    """
    if m <= 0 or m & (m - 1):
        raise ValueError(f"lane count must be a power of two, got {m}")
    report = DataflowReport(label=program.label or "<program>", m=m)
    findings = report.findings
    defined: set[int] = set()
    #: reg -> pc of the last write that no later instruction has read yet.
    unread_writes: dict[int, int] = {}

    for pc, instr in enumerate(program):
        loc = _loc(pc, instr)
        reads = set(instr.data_read_regs(m))
        writes = set(instr.write_regs())

        # D005: the 2R1W port budget the register file enforces at run
        # time (RegisterFile.check_ports), proven statically here.
        port_reads = set(instr.read_regs())
        if len(port_reads) > 2 or len(writes) > 1:
            findings.error(
                "dataflow", "D005", loc,
                f"instruction needs {len(port_reads)} read / "
                f"{len(writes)} write ports; the lanes are 2R1W")

        # D001: reads of never-written registers.
        for reg in sorted(reads):
            if reg not in defined:
                findings.error(
                    "dataflow", "D001", loc,
                    f"read of register r{reg} before any write")
                defined.add(reg)  # report once per register, not per read
            unread_writes.pop(reg, None)

        # D003: every routed configuration must be a lane permutation.
        for config in _routing_configs(instr):
            route = _route_table(m, config)
            if sorted(route) != list(range(m)):
                missing = sorted(set(range(m)) - set(route))
                findings.error(
                    "dataflow", "D003", loc,
                    f"network routing is not a permutation of {m} lanes "
                    f"(lanes {missing[:8]} dropped)")

        # D004: diagonal reads gather one register per lane; writing into
        # that window in the same traversal is a WAR hazard in hardware.
        if isinstance(instr, NetworkPass) and instr.src_rot is not None:
            assert instr.src_window is not None
            window = {instr.src + (lane + instr.src_rot) % instr.src_window
                      for lane in range(m)}
            if instr.dst in window:
                findings.error(
                    "dataflow", "D004", loc,
                    f"destination r{instr.dst} lies inside the diagonal "
                    f"source window r{instr.src}..r{instr.src + instr.src_window - 1}")

        # D002: overwrite of a value nothing read.
        for reg in sorted(writes):
            stale = unread_writes.get(reg)
            if stale is not None:
                findings.warning(
                    "dataflow", "D002", _loc(stale, program.instructions[stale]),
                    f"write to r{reg} is dead: overwritten at pc {pc} "
                    f"with no intervening read")
            unread_writes[reg] = pc
            defined.add(reg)

        report.instructions += 1

    report.registers_written = len(defined)
    report.dead_at_exit = len(unread_writes)
    for reg, pc in sorted(unread_writes.items()):
        findings.warning(
            "dataflow", "D002", _loc(pc, program.instructions[pc]),
            f"write to r{reg} is dead: never read before program end")
    return report
