"""Symbolic interval analysis of the numpy lazy-reduction stage plans.

Each ``analyze_*`` function mirrors one kernel of
:mod:`repro.ntt.cooley_tukey` / :mod:`repro.ntt.negacyclic` /
:mod:`repro.fhe.keyswitch` **line by line**, propagating one lane-value
:class:`~repro.analysis.intervals.Interval` per stage and checking every
intermediate expression the kernel evaluates:

* uint64 fit of every product/sum before it is formed (rule ``S001``);
* the Shoup preconditions — ``q < 2**30`` and the multiplicand below the
  ``2**32`` precision radix (rules ``S002``/``S003``);
* the declared lane invariant after every stage (``< 2q`` for lazy
  plans; the documented growth schedule for the unclamped plan, rule
  ``S004``);
* the declared output invariant (rule ``S005``).

The mutation keyword arguments (``skip_total_clamp`` /
``skip_diff_clamp``) model *removing* one of the conditional subtracts,
so tests can confirm that the analyzer reports the resulting overflow —
exactly the regression the hand-derived comments could never catch.

Derived bounds (exact, inclusive):

* lazy DIF/DIT stages keep every lane ``<= 2q - 1`` with worst transient
  ``4q - 1`` before a clamp and ``(4q - 1)(q - 1)`` under the twiddle
  product;
* the unclamped DIT plan grows by exactly ``+q`` per stage from an entry
  of ``q - 1``: after stage ``s`` the lane bound is ``(s + 2)q - 1``, so
  after ``log2(n)`` stages it is ``(log2(n) + 1)q - 1`` — the hand-coded
  gate's ``(log2(n)+1) * q**2`` was the (safe) ceiling of the true
  binding product ``((log2(n)+1)q - 1)(q - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.findings import FindingList
from repro.analysis.intervals import U64_MAX, Interval

_SHOUP_RADIX = 1 << 32


@dataclass
class PlanReport:
    """Outcome of one symbolic stage-plan analysis."""

    name: str
    q: int
    stages: int
    #: Inclusive lane bound after each stage (entry bound first).
    stage_bounds: list[int] = field(default_factory=list)
    #: Largest uint64 intermediate formed anywhere in the plan.
    max_intermediate: int = 0
    #: Inclusive bound on the plan's output lanes.
    output_bound: int = 0
    findings: FindingList = field(default_factory=FindingList)

    @property
    def ok(self) -> bool:
        return self.findings.ok


class _Plan:
    """Bound bookkeeping shared by the stage mirrors."""

    def __init__(self, name: str, q: int, stages: int):
        self.q = q
        self.report = PlanReport(name=name, q=q, stages=stages)
        self.stage = -1  # -1 = entry / pre-stage work

    def _loc(self) -> str:
        return "entry" if self.stage < 0 else f"stage {self.stage}"

    def error(self, rule: str, message: str) -> None:
        self.report.findings.error("plan", rule, self._loc(), message)

    def intermediate(self, value: Interval, what: str) -> Interval:
        """Record an intermediate and check it fits uint64."""
        if value.hi > self.report.max_intermediate:
            self.report.max_intermediate = value.hi
        if not value.fits_uint64:
            self.error(
                "S001",
                f"{what}: bound {value.hi} exceeds uint64 max {U64_MAX}")
        return value

    def mul_mod(self, x: Interval, factor_hi: int, what: str) -> Interval:
        """``x * w % q`` with a fully reduced factor ``w <= factor_hi``."""
        self.intermediate(x.mul(Interval.upto(factor_hi)), what)
        return Interval.reduced(self.q)

    def shoup_mul(self, x: Interval, what: str) -> Interval:
        """Shoup product ``x*w - (x*w' >> 32)*q`` landing in ``[0, 2q)``.

        Preconditions (checked): ``q < 2**30`` so the quotient error is
        absorbed, and ``x < 2**32`` (the precision radix) so the
        estimate is within one of the true quotient.
        """
        q = self.q
        if q >= (1 << 30):
            self.error("S002",
                       f"{what}: Shoup path requires q < 2**30, q={q}")
        if x.hi >= _SHOUP_RADIX:
            self.error(
                "S003",
                f"{what}: Shoup multiplicand bound {x.hi} reaches the "
                f"2**32 precision radix — result no longer < 2q")
        # x * w' (w' < 2**32) and x * w (w < q) both fit checks:
        self.intermediate(x.mul(Interval.upto(_SHOUP_RADIX - 1)),
                          f"{what}: x * w_shoup")
        self.intermediate(x.mul(Interval.upto(q - 1)), f"{what}: x * w")
        return Interval.upto(2 * q - 1)

    def cond_sub(self, x: Interval, t: int, what: str) -> Interval:
        """``np.minimum(x, x - t)`` — requires the input to fit uint64."""
        self.intermediate(x, what)
        return x.cond_sub(t)

    def finish(self, out: Interval, declared_hi: int, what: str) -> PlanReport:
        self.report.output_bound = out.hi
        if out.hi > declared_hi:
            self.error(
                "S005",
                f"{what}: output bound {out.hi} exceeds the declared "
                f"invariant {declared_hi}")
        return self.report


def analyze_dif_lazy(log_n: int, q: int, *, shoup: bool,
                     entry_hi: int | None = None,
                     skip_total_clamp: bool = False,
                     skip_diff_clamp: bool = False) -> PlanReport:
    """Mirror of :func:`repro.ntt.cooley_tukey.dif_stages_lazy`.

    Entry lanes may be anywhere in ``[0, 2q)`` (the Shoup psi-folding of
    the negacyclic wrapper enters at ``2q - 1``); every stage restores
    the ``< 2q`` lane invariant.  Declared output: ``< 2q``.
    """
    plan = _Plan("dif_stages_lazy" + ("+shoup" if shoup else ""), q, log_n)
    two_q = 2 * q
    cur = Interval.upto(2 * q - 1 if entry_hi is None else entry_hi)
    plan.report.stage_bounds.append(cur.hi)
    for stage in range(log_n):
        plan.stage = stage
        u = v = cur
        total = plan.intermediate(u.add(v), "total = u + v")
        if not skip_total_clamp:
            total = plan.cond_sub(total, two_q, "clamp(total)")
        if v.hi > u.lo + two_q:
            plan.error(
                "S001",
                f"(u + 2q) - v may wrap below zero: v bound {v.hi} "
                f"exceeds u_min + 2q = {u.lo + two_q}")
        diff = plan.intermediate(u.add_const(two_q), "diff = (u + 2q) - v")
        last = stage == log_n - 1
        if last:
            # Final stage twiddle is omega**0 == 1: clamp the raw diff.
            if not skip_diff_clamp:
                diff = plan.cond_sub(diff, two_q, "clamp(diff)")
            out = diff
        elif shoup:
            out = plan.shoup_mul(diff, "diff * tw (Shoup)")
        else:
            out = plan.mul_mod(diff, q - 1, "diff * tw % q")
        cur = total.union(out)
        plan.report.stage_bounds.append(cur.hi)
        # Per-stage invariant: lanes must re-enter below 2q or the next
        # stage's derivation no longer holds.
        if cur.hi > two_q - 1:
            plan.error("S004",
                       f"lane bound {cur.hi} escapes the < 2q invariant "
                       f"({two_q})")
    plan.stage = log_n - 1
    return plan.finish(cur, 2 * q - 1, "dif lazy output")


def analyze_dit_lazy(log_n: int, q: int, *, shoup: bool,
                     entry_hi: int | None = None,
                     skip_total_clamp: bool = False,
                     skip_diff_clamp: bool = False) -> PlanReport:
    """Mirror of :func:`repro.ntt.cooley_tukey.dit_stages_lazy`.

    Entry and per-stage invariant ``< 2q``; both butterfly halves are
    clamped because a DIT stage mixes previous sum *and* difference
    lanes.  Declared output: ``< 2q``.
    """
    plan = _Plan("dit_stages_lazy" + ("+shoup" if shoup else ""), q, log_n)
    two_q = 2 * q
    cur = Interval.upto(2 * q - 1 if entry_hi is None else entry_hi)
    plan.report.stage_bounds.append(cur.hi)
    for stage in range(log_n):
        plan.stage = stage
        u = vin = cur
        if stage == 0:
            v = vin  # stage-0 twiddle is omega**0 == 1
        elif shoup:
            v = plan.shoup_mul(vin, "vin * tw (Shoup)")
        else:
            v = plan.mul_mod(vin, q - 1, "vin * tw % q")
        total = plan.intermediate(u.add(v), "total = u + v")
        if not skip_total_clamp:
            total = plan.cond_sub(total, two_q, "clamp(total)")
        if v.hi > u.lo + two_q:
            plan.error(
                "S001",
                f"(u + 2q) - v may wrap below zero: v bound {v.hi} "
                f"exceeds u_min + 2q = {u.lo + two_q}")
        diff = plan.intermediate(u.add_const(two_q), "diff = (u + 2q) - v")
        if not skip_diff_clamp:
            diff = plan.cond_sub(diff, two_q, "clamp(diff)")
        cur = total.union(diff)
        plan.report.stage_bounds.append(cur.hi)
        if cur.hi > two_q - 1:
            plan.error("S004",
                       f"lane bound {cur.hi} escapes the < 2q invariant "
                       f"({two_q})")
    plan.stage = log_n - 1
    return plan.finish(cur, 2 * q - 1, "dit lazy output")


def analyze_dit_unclamped(log_n: int, q: int,
                          entry_hi: int | None = None) -> PlanReport:
    """Mirror of :func:`repro.ntt.cooley_tukey.dit_stages_unclamped`.

    No per-stage clamps: the twiddled half is freshly reduced (``< q``)
    at every stage except stage 0 (identity twiddle), so lanes grow by
    exactly ``+q`` per stage from the ``< q`` entry — after stage ``s``
    the bound is ``(s + 2)q - 1``.  The declared output is the growth
    schedule itself, not ``< q``; callers must finish with one true
    reduction (checked by :func:`analyze_batched_inverse`).
    """
    plan = _Plan("dit_stages_unclamped", q, log_n)
    cur = Interval.upto(q - 1 if entry_hi is None else entry_hi)
    plan.report.stage_bounds.append(cur.hi)
    for stage in range(log_n):
        plan.stage = stage
        u = vin = cur
        if stage == 0:
            v = vin
        else:
            v = plan.mul_mod(vin, q - 1, "vin * tw % q")
        total = plan.intermediate(u.add(v), "u + v")
        diff = plan.intermediate(u.add_const(q), "(u + q) - v")
        cur = total.union(diff)
        plan.report.stage_bounds.append(cur.hi)
    plan.stage = log_n - 1
    # Output bound = the derived growth schedule; nothing to compare
    # against beyond uint64 fit (already checked per intermediate).
    return plan.finish(cur, cur.hi, "dit unclamped output")


def analyze_batched_forward(log_n: int, q: int) -> PlanReport:
    """Mirror of :meth:`repro.ntt.negacyclic.BatchedNegacyclicNtt.forward`:
    psi folding, lazy DIF stages, one final conditional subtract.

    Selects the Shoup variant exactly as the kernel does (``q < 2**30``).
    Declared output: fully reduced (``< q``).
    """
    shoup = q < (1 << 30)
    plan = _Plan("batched_forward" + ("+shoup" if shoup else ""), q, log_n)
    entry = Interval.reduced(q)
    if shoup:
        folded = plan.shoup_mul(entry, "psi fold (Shoup)")
    else:
        folded = plan.mul_mod(entry, q - 1, "x * psi % q")
    inner = analyze_dif_lazy(log_n, q, shoup=shoup, entry_hi=folded.hi)
    plan.report.findings.extend(inner.findings)
    plan.report.stage_bounds = [folded.hi] + inner.stage_bounds[1:]
    plan.report.max_intermediate = max(plan.report.max_intermediate,
                                       inner.max_intermediate)
    plan.stage = log_n - 1
    out = plan.cond_sub(Interval.upto(inner.output_bound), q,
                        "final conditional subtract")
    return plan.finish(out, q - 1, "batched forward output")


def analyze_batched_inverse(log_n: int, q: int, *,
                            unclamped: bool) -> PlanReport:
    """Mirror of :meth:`repro.ntt.negacyclic.BatchedNegacyclicNtt.inverse`
    (and :func:`repro.ntt.cooley_tukey.vec_intt_dit_multi`): reduced
    entry, DIT stages, fused ``psi^{-1} n^{-1}`` (or ``n^{-1}``) scaling
    with one true reduction.  Declared output: ``< q``.

    This is the analysis behind the production gate
    :func:`repro.analysis.bounds.unclamped_dit_ok`.
    """
    shoup = q < (1 << 30)
    name = "batched_inverse+" + ("unclamped" if unclamped else
                                 ("lazy+shoup" if shoup else "lazy"))
    plan = _Plan(name, q, log_n)
    if unclamped:
        inner = analyze_dit_unclamped(log_n, q, entry_hi=q - 1)
    else:
        inner = analyze_dit_lazy(log_n, q, shoup=shoup, entry_hi=q - 1)
    plan.report.findings.extend(inner.findings)
    plan.report.stage_bounds = list(inner.stage_bounds)
    plan.report.max_intermediate = inner.max_intermediate
    plan.stage = log_n - 1
    lanes = Interval.upto(inner.output_bound)
    if not unclamped and shoup:
        # Shoup unfold to [0, 2q), then one conditional subtract.
        scaled = plan.shoup_mul(lanes, "unfold * psi_inv*n_inv (Shoup)")
        out = plan.cond_sub(scaled, q, "final conditional subtract")
    else:
        out = plan.mul_mod(lanes, q - 1, "lanes * scale % q")
    return plan.finish(out, q - 1, "batched inverse output")


def analyze_keyswitch_accumulate(num_digits: int, max_q: int, *,
                                 lazy: bool = True) -> PlanReport:
    """Mirror of :func:`repro.fhe.keyswitch.accumulate_keyswitch`.

    Lazy mode: ``num_digits`` raw digit-by-key products accumulate
    unreduced before a single ``%``; the accumulator bound is exactly
    ``num_digits * (q - 1)**2``.  Non-lazy mode still forms each raw
    product before its per-digit reduction, so the per-product uint64
    fit is checked either way.
    """
    name = f"keyswitch_accumulate[{'lazy' if lazy else 'per-digit'}]"
    plan = _Plan(name, max_q, num_digits)
    acc = Interval.const(0)
    product = Interval.reduced(max_q).mul(Interval.reduced(max_q))
    plan.report.stage_bounds.append(0)
    for digit in range(num_digits):
        plan.stage = digit
        plan.intermediate(product, "digit * key product")
        if lazy:
            acc = plan.intermediate(acc.add(product), "acc += product")
        else:
            acc = plan.intermediate(
                acc.add(product.mod(max_q)), "acc += product % q")
        plan.report.stage_bounds.append(acc.hi)
    plan.stage = num_digits - 1
    out = acc.mod(max_q)
    return plan.finish(out, max_q - 1, "accumulator after final %")
