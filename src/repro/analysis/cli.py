"""The ``fhecheck`` command line: ``python -m repro.analysis``.

Three sections, all run by default:

* ``programs`` — compile every micro-program of the toy workload
  (forward/inverse negacyclic NTT for every chain + special prime, the
  rotation and conjugation automorphisms the keyswitch tests exercise)
  and interval-verify each with
  :func:`repro.analysis.program_check.check_program`.
* ``plans`` — symbolically verify the lazy-reduction stage plans across
  the supported modulus regimes (Shoup ``< 2**30``, plain lazy
  ``< 2**31``) plus the fused keyswitch accumulation for the toy
  parameter set, and confirm the unclamped-DIT gate agrees with the
  analysis on both sides of the boundary.
* ``lint`` — run the repository AST rules over ``src/repro``.

``--json`` emits machine-readable findings; the exit status is nonzero
iff any error-severity finding fired (the CI contract).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.bounds import unclamped_dit_ok
from repro.analysis.lint import lint_paths
from repro.analysis.program_check import ProgramCheckReport, check_program
from repro.analysis.stage_plans import (
    PlanReport,
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_keyswitch_accumulate,
)

_SECTIONS = ("programs", "plans", "lint")


def _check_programs(m: int, verbose: bool) -> tuple[list[Finding], list[str]]:
    """Compile and interval-verify the toy workload's micro-programs."""
    from repro.automorphism.mapping import (
        galois_element_for_rotation,
        galois_eval_permutation,
    )
    from repro.fhe.params import toy_params
    from repro.mapping import compile_automorphism
    from repro.mapping.ntt import (
        compile_negacyclic_intt,
        compile_negacyclic_ntt,
    )

    params = toy_params()
    n = params.n
    primes = params.primes + (params.special_prime,)
    findings: list[Finding] = []
    lines: list[str] = []
    reports: list[ProgramCheckReport] = []
    # The keyswitch workload is, per digit, a batch of forward NTTs over
    # every limb plus the accumulation — so verifying the forward and
    # inverse NTT programs for every prime of the full basis covers every
    # micro-program a toy keyswitch dispatches.
    for q in primes:
        for kind, compiler in (("ntt", compile_negacyclic_ntt),
                               ("intt", compile_negacyclic_intt)):
            program = compiler(n, m, q)
            reports.append(check_program(program, q=q, m=m))
    # Rotation + conjugation automorphisms (modulus-independent programs,
    # verified under the widest modulus of the basis).
    for galois_k in (galois_element_for_rotation(n, 1), 2 * n - 1):
        perm = galois_eval_permutation(n, galois_k)
        program = compile_automorphism(perm, m)
        reports.append(check_program(program, q=max(primes), m=m))
    for report in reports:
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        line = (f"[{status}] program {report.label:45s} q={report.q:<10d} "
                f"{report.instructions:5d} instrs, max intermediate "
                f"2^{report.max_intermediate.bit_length()}")
        lines.append(line)
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    return findings, lines


def _plan_regimes() -> Iterable[tuple[str, int, int]]:
    """(label, log_n, q) triples spanning the supported regimes."""
    from repro.arith.primes import find_ntt_prime
    from repro.fhe.params import toy_params

    params = toy_params()
    log_n = params.n.bit_length() - 1
    yield "toy chain max", log_n, max(params.primes + (params.special_prime,))
    n = params.n
    yield "shoup edge (just below 2^30)", log_n, find_ntt_prime(2 * n, 30)
    yield "widest vectorized (just below 2^31)", log_n, \
        find_ntt_prime(2 * n, 31)


def _check_plans(verbose: bool) -> tuple[list[Finding], list[str]]:
    from repro.fhe.params import toy_params

    findings: list[Finding] = []
    lines: list[str] = []
    reports: list[tuple[str, PlanReport]] = []
    for label, log_n, q in _plan_regimes():
        reports.append((label, analyze_batched_forward(log_n, q)))
        unclamped = unclamped_dit_ok(log_n, q)
        reports.append((label, analyze_batched_inverse(
            log_n, q, unclamped=unclamped)))
        # The gate must agree with the analysis on the rejected side too:
        # if the unclamped plan is refused, its analysis must say why.
        if not unclamped:
            refused = analyze_batched_inverse(log_n, q, unclamped=True)
            status = "ok " if not refused.ok else "FAIL"
            lines.append(f"[{status}] gate refuses unclamped DIT for "
                         f"q={q} (analysis agrees: {not refused.ok})")
            if refused.ok:
                findings.extend(
                    analyze_batched_inverse(log_n, q, unclamped=True)
                    .findings)
    params = toy_params()
    maxq = max(params.primes + (params.special_prime,))
    reports.append(("toy keyswitch", analyze_keyswitch_accumulate(
        params.levels, maxq, lazy=True)))
    for label, report in reports:
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        lines.append(
            f"[{status}] plan {report.name:32s} ({label}) q={report.q:<10d} "
            f"lane bound {report.stage_bounds[-1]}, max intermediate "
            f"2^{report.max_intermediate.bit_length()}")
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    return findings, lines


def _check_lint(root: Path, verbose: bool) -> tuple[list[Finding], list[str]]:
    findings = lint_paths([root])
    lines = [f"[{'ok ' if not findings else 'FAIL'}] lint over {root}: "
             f"{len(findings)} finding(s)"]
    lines += [f"    {f}" for f in findings]
    return findings, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="fhecheck: static bound/overflow verification for the "
                    "lazy-reduction kernels and VPU micro-programs.")
    parser.add_argument("sections", nargs="*", metavar="section",
                        default=[],
                        help=f"which sections to run: {', '.join(_SECTIONS)} "
                             f"(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable findings on stdout")
    parser.add_argument("--lint-root", default=None,
                        help="directory to lint (default: the installed "
                             "repro package source)")
    parser.add_argument("-m", "--lanes", type=int, default=16,
                        help="VPU lane count for program verification")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every finding, not just failures")
    args = parser.parse_args(argv)

    sections = args.sections or list(_SECTIONS)
    unknown = [s for s in sections if s not in _SECTIONS]
    if unknown:
        parser.error(f"unknown section(s) {unknown}; "
                     f"choose from {', '.join(_SECTIONS)}")
    started = time.perf_counter()
    findings: list[Finding] = []
    lines: list[str] = []
    if "programs" in sections:
        f, out = _check_programs(args.lanes, args.verbose)
        findings += f
        lines += out
    if "plans" in sections:
        f, out = _check_plans(args.verbose)
        findings += f
        lines += out
    if "lint" in sections:
        root = (Path(args.lint_root) if args.lint_root
                else Path(__file__).resolve().parents[1])
        f, out = _check_lint(root, args.verbose)
        findings += f
        lines += out

    errors = [f for f in findings if f.severity.value == "error"]
    elapsed = time.perf_counter() - started
    if args.json:
        print(json.dumps({
            "ok": not errors,
            "sections": sections,
            "elapsed_s": round(elapsed, 3),
            "findings": [f.to_dict() for f in findings],
        }, indent=2))
    else:
        print("\n".join(lines))
        verdict = "clean" if not errors else f"{len(errors)} error(s)"
        print(f"fhecheck: {verdict} across {', '.join(sections)} "
              f"in {elapsed:.2f}s")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
