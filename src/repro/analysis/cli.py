"""The ``fhecheck`` command line: ``python -m repro.analysis``.

Six sections, all run by default:

* ``programs`` — compile every micro-program of the toy workload
  (forward/inverse negacyclic NTT for every chain + special prime, the
  rotation and conjugation automorphisms the keyswitch tests exercise)
  and interval-verify each with
  :func:`repro.analysis.program_check.check_program`.
* ``dataflow`` — def-use verify the same compiled programs with
  :func:`repro.analysis.dataflow.check_dataflow`: uninitialized
  register reads, dead writes, non-permutation routing, diagonal WAR
  hazards, 2R1W port violations.
* ``plans`` — symbolically verify the lazy-reduction stage plans across
  the supported modulus regimes (Shoup ``< 2**30``, plain lazy
  ``< 2**31``) plus the fused keyswitch accumulation for the toy
  parameter set, and confirm the unclamped-DIT gate agrees with the
  analysis on both sides of the boundary.
* ``resources`` — replay the canonical keyswitch/NTT/automorphism
  staging schedules against the SRAM/DRAM models with
  :func:`repro.analysis.resources.analyze_staged_plan`, and confirm the
  analysis refuses an undersized SRAM.
* ``ctstate`` — abstractly interpret the canonical CKKS/BGV/BFV op
  sequences with :func:`repro.analysis.ctstate.check_sequence`, and
  confirm the interpreter refuses a rescale-dropped mutation.
* ``lint`` — run the repository AST rules over ``src/repro``.

``--bench-shapes`` widens ``programs``/``dataflow`` to every compiled
program shape the benchmark suite exercises (``small_params`` NTT and
automorphism programs, the m=64 four-step NTT).

Output: ``--format json`` emits machine-readable findings,
``--format sarif`` a SARIF 2.1.0 log for GitHub code scanning
(``--output FILE`` writes either to a file and keeps the text summary
on stdout).  ``--validate-sarif FILE`` shape-checks an emitted
envelope instead of running the analysis.

Exit status (the CI contract, also documented in README/DESIGN):

* ``0`` — analysis ran and no error-severity finding fired (warnings,
  e.g. dead writes or stale suppressions, do not gate);
* ``1`` — at least one error-severity finding, or an invalid SARIF
  envelope under ``--validate-sarif``;
* ``2`` — usage error (unknown section or flag; argparse's own exit).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.core.isa import Program

from repro.analysis.findings import Finding, Severity
from repro.analysis.bounds import unclamped_dit_ok
from repro.analysis.lint import lint_paths
from repro.analysis.program_check import ProgramCheckReport, check_program
from repro.analysis.sarif import to_sarif, validate_sarif
from repro.analysis.stage_plans import (
    PlanReport,
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_keyswitch_accumulate,
)

_SECTIONS = ("programs", "dataflow", "plans", "resources", "ctstate",
             "lint")


def _workload_programs(m: int, bench_shapes: bool) -> Iterator[
        "tuple[Program, int, int]"]:
    """``(program, q, m)`` for every compiled shape under verification.

    The toy workload covers every micro-program a toy keyswitch
    dispatches; ``bench_shapes`` adds the shapes the benchmark suite
    executes (``small_params`` at m=16 and the m=64 four-step NTT).
    """
    from repro.automorphism.mapping import (
        galois_element_for_rotation,
        galois_eval_permutation,
    )
    from repro.fhe.params import small_params, toy_params
    from repro.mapping import compile_automorphism, compile_ntt
    from repro.mapping.ntt import (
        compile_negacyclic_intt,
        compile_negacyclic_ntt,
    )

    param_sets = [(toy_params(), m)]
    if bench_shapes:
        param_sets.append((small_params(), m))
    for params, lanes in param_sets:
        n = params.n
        primes = params.primes + (params.special_prime,)
        # The keyswitch workload is, per digit, a batch of forward NTTs
        # over every limb plus the accumulation — so the forward and
        # inverse NTT programs for every prime of the full basis cover
        # every micro-program a keyswitch dispatches.
        for q in primes:
            yield compile_negacyclic_ntt(n, lanes, q), q, lanes
            yield compile_negacyclic_intt(n, lanes, q), q, lanes
        # Rotation + conjugation automorphisms (modulus-independent
        # programs, verified under the widest modulus of the basis).
        for galois_k in (galois_element_for_rotation(n, 1), 2 * n - 1):
            perm = galois_eval_permutation(n, galois_k)
            yield compile_automorphism(perm, lanes), max(primes), lanes
    if bench_shapes:
        yield compile_ntt(4096, 64, 998244353), 998244353, 64


def _check_programs(m: int, verbose: bool,
                    bench_shapes: bool) -> tuple[list[Finding], list[str]]:
    """Compile and interval-verify the workload's micro-programs."""
    findings: list[Finding] = []
    lines: list[str] = []
    reports: list[ProgramCheckReport] = []
    for program, q, lanes in _workload_programs(m, bench_shapes):
        reports.append(check_program(program, q=q, m=lanes))
    for report in reports:
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        line = (f"[{status}] program {report.label:45s} q={report.q:<10d} "
                f"{report.instructions:5d} instrs, max intermediate "
                f"2^{report.max_intermediate.bit_length()}")
        lines.append(line)
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    return findings, lines


def _check_dataflow(m: int, verbose: bool,
                    bench_shapes: bool) -> tuple[list[Finding], list[str]]:
    """Def-use verify the same compiled micro-programs."""
    from repro.analysis.dataflow import check_dataflow

    findings: list[Finding] = []
    lines: list[str] = []
    for program, _q, lanes in _workload_programs(m, bench_shapes):
        report = check_dataflow(program, m=lanes)
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        lines.append(
            f"[{status}] dataflow {report.label:44s} "
            f"{report.instructions:5d} instrs, "
            f"{report.registers_written:3d} regs, "
            f"{report.dead_at_exit} dead at exit")
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    return findings, lines


def _plan_regimes() -> Iterable[tuple[str, int, int]]:
    """(label, log_n, q) triples spanning the supported regimes."""
    from repro.arith.primes import find_ntt_prime
    from repro.fhe.params import toy_params

    params = toy_params()
    log_n = params.n.bit_length() - 1
    yield "toy chain max", log_n, max(params.primes + (params.special_prime,))
    n = params.n
    yield "shoup edge (just below 2^30)", log_n, find_ntt_prime(2 * n, 30)
    yield "widest vectorized (just below 2^31)", log_n, \
        find_ntt_prime(2 * n, 31)


def _check_plans(verbose: bool) -> tuple[list[Finding], list[str]]:
    from repro.fhe.params import toy_params

    findings: list[Finding] = []
    lines: list[str] = []
    reports: list[tuple[str, PlanReport]] = []
    for label, log_n, q in _plan_regimes():
        reports.append((label, analyze_batched_forward(log_n, q)))
        unclamped = unclamped_dit_ok(log_n, q)
        reports.append((label, analyze_batched_inverse(
            log_n, q, unclamped=unclamped)))
        # The gate must agree with the analysis on the rejected side too:
        # if the unclamped plan is refused, its analysis must say why.
        if not unclamped:
            refused = analyze_batched_inverse(log_n, q, unclamped=True)
            status = "ok " if not refused.ok else "FAIL"
            lines.append(f"[{status}] gate refuses unclamped DIT for "
                         f"q={q} (analysis agrees: {not refused.ok})")
            if refused.ok:
                findings.extend(
                    analyze_batched_inverse(log_n, q, unclamped=True)
                    .findings)
    params = toy_params()
    maxq = max(params.primes + (params.special_prime,))
    reports.append(("toy keyswitch", analyze_keyswitch_accumulate(
        params.levels, maxq, lazy=True)))
    for label, report in reports:
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        lines.append(
            f"[{status}] plan {report.name:32s} ({label}) q={report.q:<10d} "
            f"lane bound {report.stage_bounds[-1]}, max intermediate "
            f"2^{report.max_intermediate.bit_length()}")
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    return findings, lines


def _check_resources(verbose: bool) -> tuple[list[Finding], list[str]]:
    """Replay the canonical staging schedules against the SRAM model."""
    from repro.accel.sram import OnChipSram
    from repro.analysis.resources import (
        analyze_staged_plan,
        automorphism_staging_plan,
        keyswitch_staging_plan,
        ntt_staging_plan,
    )
    from repro.fhe.params import default_params, toy_params

    findings: list[Finding] = []
    lines: list[str] = []
    toy, big = toy_params(), default_params()
    plans = [
        keyswitch_staging_plan(toy),
        keyswitch_staging_plan(big),
        ntt_staging_plan(toy.n, 16),
        ntt_staging_plan(big.n, 64),
        automorphism_staging_plan(big.n, big.levels + 1),
    ]
    reports = [analyze_staged_plan(plan) for plan in plans]
    for report in reports:
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        lines.append(
            f"[{status}] staged {report.label:32s} peak "
            f"{report.peak_words * 8 // 1024:5d} KiB of "
            f"{report.capacity_words * 8 // 1024} KiB, dram "
            f"{report.dram_words * 8 // 1024} KiB "
            f"({report.dram_ns:.0f} ns)")
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    # Gate-agreement: an SRAM sized below the proven peak must be
    # refused — if the analysis verifies it anyway, that is a finding.
    big_report = reports[1]
    shrunk = OnChipSram(capacity_bytes=max(big_report.peak_words * 8 // 2, 8))
    refused = analyze_staged_plan(plans[1], shrunk)
    status = "ok " if not refused.ok else "FAIL"
    lines.append(f"[{status}] analysis refuses a half-peak SRAM for "
                 f"{refused.label} (agrees: {not refused.ok})")
    if refused.ok:
        findings.append(Finding(
            "resource", "R001", Severity.ERROR, refused.label,
            "undersized SRAM was not refused by the occupancy analysis"))
    return findings, lines


def _check_ctstate(verbose: bool) -> tuple[list[Finding], list[str]]:
    """Abstractly interpret the canonical scheme op sequences."""
    from repro.analysis.ctstate import (
        Op,
        bfv_mult_add_sequence,
        bgv_mult_switch_sequence,
        check_sequence,
        ckks_mult_rotate_sequence,
    )
    from repro.fhe.bgv import BgvParams
    from repro.fhe.params import default_params, toy_params

    findings: list[Finding] = []
    lines: list[str] = []
    bgv_params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)
    cases = [
        ("ckks", toy_params(),
         ckks_mult_rotate_sequence(toy_params().levels)),
        ("ckks", default_params(),
         ckks_mult_rotate_sequence(default_params().levels)),
        ("bgv", bgv_params, bgv_mult_switch_sequence(3)),
        ("bfv", bgv_params, bfv_mult_add_sequence()),
    ]
    for scheme, params, ops in cases:
        n = getattr(params, "n", 0)
        report = check_sequence(ops, params, scheme=scheme,
                                label=f"{scheme} n={n} canonical")
        findings.extend(report.findings)
        status = "ok " if report.ok else "FAIL"
        lines.append(
            f"[{status}] ctstate {report.label:28s} {report.ops:3d} ops, "
            f"min budget {report.min_budget_bits:6.1f} bits")
        if verbose or not report.ok:
            lines += [f"    {f}" for f in report.findings]
    # Gate-agreement: dropping the first rescale of the toy pipeline
    # must be refused — a verifier that accepts it is broken.
    ops = ckks_mult_rotate_sequence(toy_params().levels)
    drop = next(i for i, op in enumerate(ops) if op.kind == "rescale")
    remap: dict[int, int] = {}
    mutated: list[Op] = []
    for index, op in enumerate(ops):
        if index == drop:
            remap[index] = remap.get(op.srcs[0], op.srcs[0])
            continue
        remap[index] = len(mutated)
        mutated.append(Op(op.kind,
                          tuple(remap.get(s, s) for s in op.srcs),
                          op.arg))
    refused = check_sequence(mutated, toy_params(),
                             label="ckks dropped-rescale")
    status = "ok " if not refused.ok else "FAIL"
    lines.append(f"[{status}] analysis refuses a dropped rescale "
                 f"(agrees: {not refused.ok})")
    if refused.ok:
        findings.append(Finding(
            "ctstate", "C002", Severity.ERROR, "ckks dropped-rescale",
            "rescale-dropped mutation was not refused by the abstract "
            "interpreter"))
    return findings, lines


def _check_lint(root: Path, verbose: bool) -> tuple[list[Finding], list[str]]:
    findings = lint_paths([root])
    lines = [f"[{'ok ' if not findings else 'FAIL'}] lint over {root}: "
             f"{len(findings)} finding(s)"]
    lines += [f"    {f}" for f in findings]
    return findings, lines


def _emit_gauges(findings: list[Finding], errors: list[Finding]) -> None:
    """Publish finding counts to the observability layer, if enabled."""
    from repro.obs import current_obs_hook

    obs = current_obs_hook()
    if obs is not None:
        obs.gauge("analysis.findings.total", len(findings))
        obs.gauge("analysis.findings.errors", len(errors))
        for source, count in sorted(Counter(
                f.source for f in findings).items()):
            obs.gauge(f"analysis.findings.{source}", count)


def _run_validate_sarif(path: str) -> int:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"sarif: cannot read {path}: {exc}")
        return 1
    problems = validate_sarif(payload)
    if problems:
        for problem in problems:
            print(f"sarif: {problem}")
        print(f"sarif: {path} INVALID ({len(problems)} problem(s))")
        return 1
    results = sum(len(run.get("results", []))
                  for run in payload.get("runs", []))
    print(f"sarif: {path} ok ({results} result(s))")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="fhecheck: static bound/overflow, dataflow, resource "
                    "and ciphertext-state verification for the "
                    "lazy-reduction kernels and VPU micro-programs.")
    parser.add_argument("sections", nargs="*", metavar="section",
                        default=[],
                        help=f"which sections to run: {', '.join(_SECTIONS)} "
                             f"(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="shorthand for --format json")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="write the json/sarif payload to FILE and "
                             "keep the text summary on stdout")
    parser.add_argument("--validate-sarif", metavar="FILE", default=None,
                        help="validate a SARIF envelope and exit "
                             "(no analysis run)")
    parser.add_argument("--bench-shapes", action="store_true",
                        help="also verify every compiled program shape "
                             "the benchmark suite exercises")
    parser.add_argument("--lint-root", default=None,
                        help="directory to lint (default: the installed "
                             "repro package source)")
    parser.add_argument("-m", "--lanes", type=int, default=16,
                        help="VPU lane count for program verification")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every finding, not just failures")
    args = parser.parse_args(argv)

    if args.validate_sarif is not None:
        return _run_validate_sarif(args.validate_sarif)

    out_format = "json" if args.json else args.format
    sections = args.sections or list(_SECTIONS)
    unknown = [s for s in sections if s not in _SECTIONS]
    if unknown:
        parser.error(f"unknown section(s) {unknown}; "
                     f"choose from {', '.join(_SECTIONS)}")

    from repro.obs import enable_from_env
    enable_from_env()

    started = time.perf_counter()
    findings: list[Finding] = []
    lines: list[str] = []
    if "programs" in sections:
        f, out = _check_programs(args.lanes, args.verbose, args.bench_shapes)
        findings += f
        lines += out
    if "dataflow" in sections:
        f, out = _check_dataflow(args.lanes, args.verbose, args.bench_shapes)
        findings += f
        lines += out
    if "plans" in sections:
        f, out = _check_plans(args.verbose)
        findings += f
        lines += out
    if "resources" in sections:
        f, out = _check_resources(args.verbose)
        findings += f
        lines += out
    if "ctstate" in sections:
        f, out = _check_ctstate(args.verbose)
        findings += f
        lines += out
    if "lint" in sections:
        root = (Path(args.lint_root) if args.lint_root
                else Path(__file__).resolve().parents[1])
        f, out = _check_lint(root, args.verbose)
        findings += f
        lines += out

    errors = [f for f in findings if f.severity.value == "error"]
    elapsed = time.perf_counter() - started
    _emit_gauges(findings, errors)

    if out_format == "json":
        payload = json.dumps({
            "ok": not errors,
            "sections": sections,
            "elapsed_s": round(elapsed, 3),
            "findings": [f.to_dict() for f in findings],
        }, indent=2)
    elif out_format == "sarif":
        payload = json.dumps(to_sarif(findings), indent=2)
    else:
        payload = None

    if args.output is not None and payload is not None:
        Path(args.output).write_text(payload + "\n", encoding="utf-8")
        print("\n".join(lines))
        verdict = "clean" if not errors else f"{len(errors)} error(s)"
        print(f"fhecheck: {verdict} across {', '.join(sections)} "
              f"in {elapsed:.2f}s -> {args.output} ({out_format})")
    elif payload is not None:
        print(payload)
    else:
        print("\n".join(lines))
        verdict = "clean" if not errors else f"{len(errors)} error(s)"
        print(f"fhecheck: {verdict} across {', '.join(sections)} "
              f"in {elapsed:.2f}s")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
