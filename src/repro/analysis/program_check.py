"""Abstract interpretation of compiled VPU micro-programs.

:func:`check_program` walks a :class:`repro.core.isa.Program` exactly as
:class:`repro.core.vpu.VectorProcessingUnit` would execute it, but over
per-lane **value intervals** instead of values.  It proves, per
instruction:

* every uint64 intermediate of the vectorized Barrett datapath fits
  (``z = a * b`` with *raw* register values — the vectorized multiplier
  does not pre-reduce its operands);
* the Barrett precondition ``z < q**2`` holds, which is what guarantees
  the two-correction reduction bound;
* twiddle constants are fully reduced (``< q``), matching the table
  contract;
* reads never see an uninitialized register (the mapping compilers must
  route data through loads);
* every architecturally visible value — anything stored back to memory —
  is ``< q``, or ``< 2q`` where the program declares lazy output.

Network routing is resolved through the *actual* mux-level
:class:`~repro.core.network.InterLaneNetwork` model: the walker traverses
a lane-index vector to learn each pass's permutation, so the interval
flow sees exactly the routing the hardware would perform (including
grouped-CG sub-networks and diagonal register reads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.analysis.findings import Finding, FindingList
from repro.analysis.intervals import U64_MAX, Interval, IntervalVec
from repro.core.isa import (
    Butterfly,
    Instruction,
    Load,
    NetworkPass,
    NttStage,
    Program,
    Store,
    VAdd,
    VMul,
    VMulScalar,
    VMulTwiddle,
    VSub,
)
from repro.core.network import InterLaneNetwork, NetworkConfig


class ProgramVerificationError(RuntimeError):
    """Raised by the backend debug hook when a compiled program fails
    verification; carries the full report."""

    def __init__(self, report: "ProgramCheckReport"):
        self.report = report
        lines = [f"program {report.label!r} failed fhecheck "
                 f"({len(report.findings.errors)} errors):"]
        lines += [str(f) for f in report.findings.errors[:8]]
        super().__init__("\n".join(lines))


@dataclass
class ProgramCheckReport:
    """Outcome of one micro-program walk."""

    label: str
    q: int
    m: int
    instructions: int = 0
    #: Largest uint64 intermediate proven anywhere in the program.
    max_intermediate: int = 0
    findings: FindingList = field(default_factory=FindingList)

    @property
    def ok(self) -> bool:
        return self.findings.ok

    def raise_on_error(self) -> None:
        if not self.ok:
            raise ProgramVerificationError(self)


@lru_cache(maxsize=64)
def _network(m: int) -> InterLaneNetwork:
    return InterLaneNetwork(m)


@lru_cache(maxsize=1024)
def _route_table(m: int, config: NetworkConfig) -> tuple[int, ...]:
    """``src_of_dst`` lane permutation for one network configuration,
    learned by traversing a lane-index vector through the mux model."""
    routed = _network(m).traverse(np.arange(m, dtype=np.uint64), config)
    return tuple(int(v) for v in routed)


class _Walker:
    """One interval-execution of a program (mirrors ``VPU._dispatch``)."""

    def __init__(self, program: Program, q: int, m: int,
                 input_bound: int | None, lazy_output: bool):
        self.q = q
        self.m = m
        self.report = ProgramCheckReport(label=program.label or "<program>",
                                         q=q, m=m)
        self.regs: dict[int, IntervalVec] = {}
        self.memory: dict[int, IntervalVec] = {}
        # Contract for rows the program loads but never stored: the
        # caller packs fully reduced residues unless it says otherwise.
        self.input_row = IntervalVec.uniform(
            m, Interval.upto(input_bound if input_bound is not None
                             else q - 1))
        self.visible_bound = 2 * q - 1 if lazy_output else q - 1
        self.pc = 0
        self.instr: Instruction | None = None

    # -- finding helpers ---------------------------------------------------

    def _loc(self) -> str:
        return f"pc {self.pc}: {type(self.instr).__name__}"

    def _error(self, rule: str, message: str) -> None:
        self.report.findings.error("program", rule, self._loc(), message)

    def _note_intermediate(self, hi: int) -> None:
        if hi > self.report.max_intermediate:
            self.report.max_intermediate = hi

    # -- dataflow helpers --------------------------------------------------

    def _read(self, reg: int) -> IntervalVec:
        value = self.regs.get(reg)
        if value is None:
            self._error(
                "P004",
                f"read of register r{reg} before any write; assuming "
                f"[0, q-1]")
            value = IntervalVec.reduced(self.m, self.q)
            self.regs[reg] = value
        return value

    def _mul(self, a: IntervalVec, b: IntervalVec, what: str) -> IntervalVec:
        """The vectorized Barrett multiplier on raw register values."""
        q = self.q
        z = a.mul(b)
        self._note_intermediate(z.max_hi)
        if z.max_hi > U64_MAX:
            self._error(
                "P001",
                f"{what}: product bound {z.max_hi} exceeds uint64 "
                f"(operands up to {a.max_hi} and {b.max_hi})")
        if z.max_hi >= q * q:
            self._error(
                "P002",
                f"{what}: product bound {z.max_hi} breaks the Barrett "
                f"precondition z < q^2 = {q * q}")
        # Barrett output is fully reduced when the precondition holds.
        return IntervalVec.reduced(len(a), q)

    def _add_reduced(self, a: IntervalVec, b: IntervalVec) -> IntervalVec:
        # VPU._add reduces both operands first, so the (< 2q) transient
        # always fits and the result is always < q.
        self._note_intermediate(min(a.max_hi, self.q - 1)
                                + min(b.max_hi, self.q - 1))
        return IntervalVec.reduced(len(a), self.q)

    def _twiddles(self, twiddles: tuple[int, ...],
                  expect: int) -> IntervalVec:
        if len(twiddles) != expect:
            self._error(
                "P005",
                f"twiddle vector has {len(twiddles)} entries, lane "
                f"geometry needs {expect}")
            twiddles = tuple(twiddles)[:expect] + (0,) * (expect - len(twiddles))
        bad = [int(t) for t in twiddles if not 0 <= int(t) < self.q]
        if bad:
            self._error(
                "P003",
                f"{len(bad)} twiddle(s) not fully reduced mod q={self.q} "
                f"(worst: {max(bad)})")
        return IntervalVec.exact(int(t) % self.q for t in twiddles)

    # -- instruction semantics ---------------------------------------------

    def _butterfly(self, x: IntervalVec, kind: str,
                   twiddles: tuple[int, ...]) -> IntervalVec:
        tw = self._twiddles(twiddles, self.m // 2)
        u = x.every(0, 2)
        v = x.every(1, 2)
        if kind == "dif":
            even = self._add_reduced(u, v)
            # _sub reduces operands, so the multiplier sees [0, q).
            diff = IntervalVec.reduced(self.m // 2, self.q)
            odd = self._mul(diff, tw, "dif butterfly twiddle product")
        else:
            t = self._mul(v, tw, "dit butterfly twiddle product")
            even = self._add_reduced(u, t)
            odd = IntervalVec.reduced(self.m // 2, self.q)
        return IntervalVec.interleave(even, odd)

    def step(self, instr: Instruction) -> None:
        self.instr = instr
        q, m = self.q, self.m
        if isinstance(instr, VAdd):
            self.regs[instr.dst] = self._add_reduced(
                self._read(instr.a), self._read(instr.b))
        elif isinstance(instr, VSub):
            self._read(instr.a)
            self._read(instr.b)
            self.regs[instr.dst] = IntervalVec.reduced(m, q)
        elif isinstance(instr, VMul):
            self.regs[instr.dst] = self._mul(
                self._read(instr.a), self._read(instr.b), "VMul")
        elif isinstance(instr, VMulScalar):
            scalar = IntervalVec.uniform(
                m, Interval.const(int(instr.scalar) % q))
            self.regs[instr.dst] = self._mul(
                self._read(instr.a), scalar, "VMulScalar")
        elif isinstance(instr, VMulTwiddle):
            tw = self._twiddles(instr.twiddles, m)
            self.regs[instr.dst] = self._mul(
                self._read(instr.a), tw, "VMulTwiddle")
        elif isinstance(instr, Butterfly):
            self.regs[instr.dst] = self._butterfly(
                self._read(instr.src), instr.kind, instr.twiddles)
        elif isinstance(instr, NttStage):
            x = self._read(instr.src)
            if instr.kind == "dif":
                route = _route_table(m, NetworkConfig(
                    cg="dif", cg_group_size=instr.group_size))
                out = self._butterfly(x.permute(route), "dif",
                                      instr.twiddles)
            else:
                half = self._butterfly(x, "dit", instr.twiddles)
                route = _route_table(m, NetworkConfig(
                    cg="dit", cg_group_size=instr.group_size))
                out = half.permute(route)
            self.regs[instr.dst] = out
        elif isinstance(instr, NetworkPass):
            if instr.src_rot is None:
                value = self._read(instr.src)
            else:
                # Diagonal read: lane l fetches register
                # src + (l + rot) % window at its own lane position.
                assert instr.src_window is not None
                lo: list[int] = []
                hi: list[int] = []
                for lane in range(m):
                    reg = instr.src + (lane + instr.src_rot) % instr.src_window
                    lane_iv = self._read(reg).lane(lane)
                    lo.append(lane_iv.lo)
                    hi.append(lane_iv.hi)
                value = IntervalVec(lo, hi)
            route = _route_table(m, instr.config)
            self.regs[instr.dst] = value.permute(route)
        elif isinstance(instr, Load):
            self.regs[instr.dst] = self.memory.get(instr.addr,
                                                   self.input_row)
        elif isinstance(instr, Store):
            value = self._read(instr.src)
            if value.max_hi > self.visible_bound:
                self._error(
                    "P006",
                    f"stored value bound {value.max_hi} exceeds the "
                    f"architecturally visible limit {self.visible_bound} "
                    f"(q={q})")
            self.memory[instr.addr] = value
        else:
            self._error("P007", f"unknown instruction {instr!r}")
        self.report.instructions += 1
        self.pc += 1


def check_program(program: Program, *, q: int, m: int,
                  input_bound: int | None = None,
                  lazy_output: bool = False) -> ProgramCheckReport:
    """Interval-verify one compiled micro-program.

    Parameters
    ----------
    program:
        The compiled :class:`~repro.core.isa.Program`.
    q:
        The RNS modulus the program will execute under.
    m:
        Lane count of the target VPU.
    input_bound:
        Inclusive bound on memory rows the program loads without having
        stored them first (default ``q - 1`` — callers pack reduced
        residues).
    lazy_output:
        Declare the program's stored values lazily reduced: visible
        values may reach ``2q - 1`` instead of ``q - 1``.

    Returns a :class:`ProgramCheckReport`; ``report.ok`` is False when
    any error-severity finding fired.
    """
    if q <= 1:
        raise ValueError(f"modulus must exceed 1, got {q}")
    if m <= 0 or m & (m - 1):
        raise ValueError(f"lane count must be a power of two, got {m}")
    walker = _Walker(program, q, m, input_bound, lazy_output)
    for instr in program:
        walker.step(instr)
    return walker.report
