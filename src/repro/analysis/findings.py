"""Finding records shared by every ``fhecheck`` pass.

A finding is one violated (or suspicious) invariant with enough context
to act on: which pass produced it, which rule fired, where, and the
human-readable bound story.  The CLI serializes findings as JSON so CI
and editor tooling can consume them without scraping text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class Severity(enum.Enum):
    """How bad a finding is: ``ERROR`` findings fail the CI gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes
    ----------
    source:
        The pass that produced it: ``program`` (micro-program interval
        walk), ``plan`` (symbolic stage-plan check), or ``lint`` (AST
        rules).
    rule:
        Stable rule identifier (``P###`` program rules, ``S###`` stage
        plan rules, ``FHC###`` lint rules).
    severity:
        :class:`Severity`; only ``ERROR`` findings are gating.
    location:
        Where: ``"pc 12: VMul(...)"`` for programs, ``"stage 3"`` for
        plans, ``"path.py:41"`` for lint.
    message:
        The violated invariant, with the derived bounds spelled out.
    """

    source: str
    rule: str
    severity: Severity
    location: str
    message: str

    def to_dict(self) -> dict[str, str]:
        """JSON-friendly representation (used by ``--json``)."""
        return {
            "source": self.source,
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
        }

    def __str__(self) -> str:
        return (f"[{self.severity.value}] {self.rule} ({self.source}) "
                f"{self.location}: {self.message}")


@dataclass
class FindingList:
    """A mutable collection with convenience constructors for passes."""

    findings: list[Finding] = field(default_factory=list)

    def error(self, source: str, rule: str, location: str,
              message: str) -> None:
        self.findings.append(
            Finding(source, rule, Severity.ERROR, location, message))

    def warning(self, source: str, rule: str, location: str,
                message: str) -> None:
        self.findings.append(
            Finding(source, rule, Severity.WARNING, location, message))

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """True when no gating (error-severity) finding was recorded."""
        return not self.errors

    def extend(self, other: "FindingList | list[Finding]") -> None:
        if isinstance(other, FindingList):
            self.findings.extend(other.findings)
        else:
            self.findings.extend(other)

    def __iter__(self) -> "Iterator[Finding]":
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)
