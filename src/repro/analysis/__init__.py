"""``fhecheck`` — static bound/overflow verification for the repository.

The lazy-reduction kernels (:mod:`repro.ntt.cooley_tukey`) and the fused
keyswitch accumulation (:mod:`repro.fhe.keyswitch`) earn their speed by
*postponing* modular reduction: intermediate lane values deliberately
exceed the modulus, and correctness rests on hand-derived inequalities
("``(log2(n)+1)*q**2 < 2**64``") that silently break when someone widens
a prime, adds a stage, or batches deeper.  This package machine-checks
those invariants instead of trusting comments:

* :mod:`repro.analysis.intervals` — the unsigned interval domain shared
  by every check (exact Python-int bounds, uint64 overflow detection,
  wraparound conditional-subtract semantics).
* :mod:`repro.analysis.program_check` — abstract interpretation of
  compiled VPU micro-programs (:class:`repro.core.isa.Program`),
  propagating per-lane value intervals through every instruction.
* :mod:`repro.analysis.stage_plans` — symbolic per-stage analysis of the
  numpy lazy-reduction kernels, mirroring them line by line.
* :mod:`repro.analysis.bounds` — the production gate API: the single
  source of truth the NTT/keyswitch fast paths query instead of
  hand-coded inequalities.
* :mod:`repro.analysis.lint` — repository-specific AST lint rules
  (object-dtype leakage, unchecked ``astype`` narrowing, unreduced
  products under ``%``, lazy values escaping without a clamp).

Run everything with ``python -m repro.analysis`` (see
:mod:`repro.analysis.cli`); findings are machine-readable with
``--json``.
"""

from __future__ import annotations

from repro.analysis.bounds import (
    keyswitch_lazy_accumulate_ok,
    mul_fits_uint64,
    unclamped_dit_lane_bound,
    unclamped_dit_ok,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.intervals import U64_MAX, Interval, IntervalVec
from repro.analysis.stage_plans import (
    PlanReport,
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_dif_lazy,
    analyze_dit_lazy,
    analyze_dit_unclamped,
    analyze_keyswitch_accumulate,
)

__all__ = [
    "U64_MAX",
    "Finding",
    "Interval",
    "IntervalVec",
    "PlanReport",
    "ProgramCheckReport",
    "Severity",
    "analyze_batched_forward",
    "analyze_batched_inverse",
    "analyze_dif_lazy",
    "analyze_dit_lazy",
    "analyze_dit_unclamped",
    "analyze_keyswitch_accumulate",
    "check_program",
    "keyswitch_lazy_accumulate_ok",
    "mul_fits_uint64",
    "unclamped_dit_lane_bound",
    "unclamped_dit_ok",
]

_LAZY = {"ProgramCheckReport", "ProgramVerificationError", "check_program"}


def __getattr__(name: str) -> object:
    """Load the micro-program checker on first use (PEP 562).

    ``program_check`` imports :mod:`repro.core.isa`, whose own import
    chain reaches back here through the NTT kernels' bounds gates
    (``core.stages -> repro.ntt -> cooley_tukey -> analysis.bounds``) —
    an eager import would be circular.  The interval/plan/gate API stays
    eager; only the ISA-coupled checker is deferred.
    """
    if name in _LAZY:
        from repro.analysis import program_check

        return getattr(program_check, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
