"""``fhecheck`` — static bound/overflow verification for the repository.

The lazy-reduction kernels (:mod:`repro.ntt.cooley_tukey`) and the fused
keyswitch accumulation (:mod:`repro.fhe.keyswitch`) earn their speed by
*postponing* modular reduction: intermediate lane values deliberately
exceed the modulus, and correctness rests on hand-derived inequalities
("``(log2(n)+1)*q**2 < 2**64``") that silently break when someone widens
a prime, adds a stage, or batches deeper.  This package machine-checks
those invariants instead of trusting comments:

* :mod:`repro.analysis.intervals` — the unsigned interval domain shared
  by every check (exact Python-int bounds, uint64 overflow detection,
  wraparound conditional-subtract semantics).
* :mod:`repro.analysis.program_check` — abstract interpretation of
  compiled VPU micro-programs (:class:`repro.core.isa.Program`),
  propagating per-lane value intervals through every instruction.
* :mod:`repro.analysis.stage_plans` — symbolic per-stage analysis of the
  numpy lazy-reduction kernels, mirroring them line by line.
* :mod:`repro.analysis.bounds` — the production gate API: the single
  source of truth the NTT/keyswitch fast paths query instead of
  hand-coded inequalities.
* :mod:`repro.analysis.dataflow` — def-use verification of compiled VPU
  micro-programs under the real dispatch semantics: uninitialized
  register reads, dead writes, routing that is not a permutation,
  diagonal-read WAR hazards, 2R1W port violations.
* :mod:`repro.analysis.resources` — symbolic SRAM/DRAM occupancy replay
  of staged accelerator plans: capacity overflow, use-after-evict,
  double-buffer conflicts.
* :mod:`repro.analysis.ctstate` — ciphertext-state abstract
  interpretation of recorded CKKS/BFV/BGV op sequences (level, scale,
  NTT/coeff domain, noise budget), plus the checked execution entry
  point :func:`~repro.analysis.ctstate.run_checked`.
* :mod:`repro.analysis.lint` — repository-specific AST lint rules
  (object-dtype leakage, unchecked ``astype`` narrowing, unreduced
  products under ``%``, lazy values escaping without a clamp, unchecked
  sequence execution and SRAM staging, stale suppressions).
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 rendering of findings for
  GitHub code scanning, with an envelope validator CI runs.

Run everything with ``python -m repro.analysis`` (see
:mod:`repro.analysis.cli`); findings are machine-readable with
``--format json`` / ``--format sarif``.  Exit status: 0 clean, 1 when
any error-severity finding fired, 2 on usage errors.
"""

from __future__ import annotations

from repro.analysis.bounds import (
    keyswitch_lazy_accumulate_ok,
    mul_fits_uint64,
    unclamped_dit_lane_bound,
    unclamped_dit_ok,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.intervals import U64_MAX, Interval, IntervalVec
from repro.analysis.stage_plans import (
    PlanReport,
    analyze_batched_forward,
    analyze_batched_inverse,
    analyze_dif_lazy,
    analyze_dit_lazy,
    analyze_dit_unclamped,
    analyze_keyswitch_accumulate,
)

__all__ = [
    "U64_MAX",
    "CtState",
    "CtStateError",
    "CtStateReport",
    "DataflowReport",
    "Finding",
    "Interval",
    "IntervalVec",
    "Op",
    "PlanReport",
    "ProgramCheckReport",
    "ResourceReport",
    "Severity",
    "StagedPlan",
    "analyze_batched_forward",
    "analyze_batched_inverse",
    "analyze_dif_lazy",
    "analyze_dit_lazy",
    "analyze_dit_unclamped",
    "analyze_keyswitch_accumulate",
    "analyze_staged_plan",
    "automorphism_staging_plan",
    "check_dataflow",
    "check_program",
    "check_sequence",
    "execute_sequence",
    "keyswitch_lazy_accumulate_ok",
    "keyswitch_staging_plan",
    "mul_fits_uint64",
    "ntt_staging_plan",
    "run_checked",
    "to_sarif",
    "unclamped_dit_lane_bound",
    "unclamped_dit_ok",
    "validate_sarif",
]

#: PEP 562 lazy exports: name -> defining submodule.
_LAZY = {
    "ProgramCheckReport": "program_check",
    "ProgramVerificationError": "program_check",
    "check_program": "program_check",
    "DataflowReport": "dataflow",
    "check_dataflow": "dataflow",
    "ResourceReport": "resources",
    "StagedPlan": "resources",
    "analyze_staged_plan": "resources",
    "keyswitch_staging_plan": "resources",
    "ntt_staging_plan": "resources",
    "automorphism_staging_plan": "resources",
    "CtState": "ctstate",
    "CtStateError": "ctstate",
    "CtStateReport": "ctstate",
    "Op": "ctstate",
    "check_sequence": "ctstate",
    "execute_sequence": "ctstate",
    "run_checked": "ctstate",
    "to_sarif": "sarif",
    "validate_sarif": "sarif",
}


def __getattr__(name: str) -> object:
    """Load the heavier passes on first use (PEP 562).

    ``program_check``/``dataflow`` import :mod:`repro.core.isa`, whose
    own import chain reaches back here through the NTT kernels' bounds
    gates (``core.stages -> repro.ntt -> cooley_tukey ->
    analysis.bounds``) — an eager import would be circular.  The same
    deferral keeps ``resources`` (accel models) and ``ctstate`` (fhe
    layer) off the hot kernel import path.  The interval/plan/gate API
    stays eager.
    """
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.analysis.{_LAZY[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
