"""The durable executor: journaled, checkpointed, crash-resumable
replay of recorded ciphertext-op sequences.

:class:`DurableExecutor` wraps the checked execution shape of
:func:`repro.analysis.ctstate.run_checked` with a durability contract:

* every completed op's output digest is journaled (``OP_DONE``) before
  the next op starts, so after a SIGKILL at any instant the journal
  names exactly the work that happened;
* every ``checkpoint_interval`` ops the live set is serialized through
  :mod:`repro.fhe.serialize` and committed with a ``CHECKPOINT`` record
  (archives fsync'd *before* the record — the record is the commit
  point);
* :meth:`resume` rebuilds the run from the journal: truncate the torn
  tail, re-verify the program with ``check_sequence``, validate the
  newest usable checkpoint (content digest + abstract-state agreement),
  re-execute the suffix, and *prove* bit-identity by comparing each
  replayed op's digest against the journaled one — a mismatch raises
  :class:`DivergenceError` rather than silently committing wrong
  outputs.

Bit-identical resume requires taming the one stateful ambient input:
the context's encryption RNG.  A context encrypts through
``self._rng``, whose state depends on how many encryptions came before
— which a resumed process cannot replay cheaply.  The executor
therefore derives a fresh seeded generator **per op** from
``(run_seed, op_index)``; fresh runs and resumed runs draw identical
randomness by construction, which the kill campaign then verifies
empirically a hundred crashes at a time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.analysis.ctstate import (CtState, CtStateError, Op,
                                    check_sequence, execute_op)
from repro.fault.crash import SITE_OP_BOUNDARY, crash_point
from repro.fhe.serialize import ciphertext_digest
from repro.obs import current_obs_hook, current_trace_context
from repro.recover import checkpoint as ckpt
from repro.recover.journal import (RT_BEGIN, RT_CHECKPOINT, RT_COMMIT,
                                   RT_OP_DONE, JournalError, decode, encode)
from repro.recover.wal import WriteAheadLog

__all__ = ["DivergenceError", "DurableExecutor", "RecoveryReport",
           "ResumeFinding", "golden_outputs_digest", "outputs_digest"]

JOURNAL_NAME = "journal.wal"

#: Feed-consuming op kinds: each draws one entry from ``inputs``.
_FEED_KINDS = frozenset({"encrypt", "multiply_plain"})


class DivergenceError(RuntimeError):
    """A replayed op produced a different ciphertext than the journaled
    original — resume is NOT bit-identical.  Loud by design: the only
    unacceptable campaign outcome is this divergence going unnoticed."""


@dataclass(frozen=True)
class ResumeFinding:
    """One typed recovery observation.

    ``kind`` is one of ``torn_tail`` (WAL ended mid-record; tail
    truncated), ``corrupt_checkpoint`` (archive failed digest or
    abstract-state validation; fell back), ``stale_checkpoint``
    (checkpoint belongs to a different program; rejected).
    """

    kind: str
    detail: str


@dataclass
class RecoveryReport:
    """What a :meth:`DurableExecutor.run` / ``resume`` accomplished."""

    label: str
    scheme: str
    total_ops: int
    #: Checkpoint boundary resumed from (-1 = replayed from scratch).
    resumed_from: int = -1
    replayed_ops: int = 0
    skipped_ops: int = 0
    outputs_digest: str = ""
    committed: bool = False
    findings: list[ResumeFinding] = field(default_factory=list)

    def finding_kinds(self) -> list[str]:
        return [f.kind for f in self.findings]


def outputs_digest(ops: Sequence[Op], values: Sequence[Any]) -> str:
    """Combined digest over the run's sink values (its outputs)."""
    h = hashlib.sha256()
    for index in ckpt.sink_indices(ops):
        h.update(ciphertext_digest(values[index]).encode())
    return h.hexdigest()


def _reseed(ctx: Any, run_seed: int, op_index: int) -> None:
    """Pin the context's encryption randomness for one op.

    Derived from ``(run_seed, op_index)`` so a resumed process draws
    exactly the randomness the crashed one did — position in the
    sequence, not number of prior encryptions, determines the stream.
    """
    ctx._rng = np.random.default_rng((run_seed, op_index))


def golden_outputs_digest(ctx: Any, ops: Sequence[Op],
                          inputs: Sequence[Any], *, run_seed: int,
                          label: str = "golden") -> str:
    """Digest of an uninterrupted run under the durable RNG discipline.

    The campaign's ground truth: a resumed run is *bit-identical* iff
    its outputs digest equals this.
    """
    scheme = _scheme_name(ctx)
    report = check_sequence(ops, ctx.params, scheme=scheme, label=label)
    if report.ok:
        values: list[Any] = []
        feed = iter(inputs)
        for index, op in enumerate(ops):
            _reseed(ctx, run_seed, index)
            values.append(execute_op(op, ctx, values, feed, scheme=scheme))
        return outputs_digest(ops, values)
    raise CtStateError(report)


def _scheme_name(ctx: Any) -> str:
    name = type(ctx).__name__.lower()
    for scheme in ("ckks", "bfv", "bgv"):
        if name.startswith(scheme):
            return scheme
    raise TypeError(f"cannot infer scheme from context {type(ctx).__name__}")


def _op_to_json(op: Op) -> list:
    return [op.kind, list(op.srcs), op.arg, op.label]


def _op_from_json(row: Sequence[Any]) -> Op:
    kind, srcs, arg, label = row
    return Op(str(kind), tuple(srcs), arg, str(label))


def _inputs_to_json(inputs: Sequence[Any]) -> list:
    return [np.asarray(entry).tolist() for entry in inputs]


class DurableExecutor:
    """Run (or resume) one recorded sequence against one journal
    directory.

    The caller owns context construction — after a crash, keys must be
    regenerated deterministically (same seed) before resuming, exactly
    as a real service would reload its key material.
    """

    def __init__(self, ctx: Any, ops: Sequence[Op], inputs: Sequence[Any],
                 directory: str | Path, *, checkpoint_interval: int = 4,
                 run_seed: int = 0, label: str = "recover"):
        self.ctx = ctx
        self.ops = list(ops)
        self.inputs = list(inputs)
        self.directory = Path(directory)
        self.checkpoint_interval = int(checkpoint_interval)
        self.run_seed = int(run_seed)
        self.label = label
        self.scheme = _scheme_name(ctx)

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # -- fresh run ---------------------------------------------------------

    def run(self) -> RecoveryReport:
        """Execute from scratch, journaling as we go.

        Verifies the sequence with ``check_sequence`` first (the
        run_checked shape); raises :class:`CtStateError` on a bad
        program before any journal record is written.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        out = RecoveryReport(self.label, self.scheme, len(self.ops))
        with WriteAheadLog(self.journal_path) as wal:
            return self._fresh_under_wal(wal, out)

    # -- resume ------------------------------------------------------------

    def resume(self) -> RecoveryReport:
        """Rebuild the run from its journal after a crash.

        Torn tails, corrupt checkpoints, and stale checkpoints each
        surface as exactly one typed :class:`ResumeFinding`; silent
        divergence surfaces as a raised :class:`DivergenceError`.
        """
        obs = current_obs_hook()
        if obs is not None:
            # Stamp the ambient request trace (0 = standalone recovery)
            # so a resume triggered on behalf of a serving request shows
            # up inside that request's stitched trace.
            ctx = current_trace_context()
            obs.begin("recover.resume", "recover",
                      trace=0 if ctx is None else ctx.trace_id)
            obs.count("recover.resumes")
        try:
            return self._resume_inner()
        finally:
            obs = current_obs_hook()
            if obs is not None:
                obs.end()

    def _resume_inner(self) -> RecoveryReport:
        out = RecoveryReport(self.label, self.scheme, len(self.ops))
        wal, scanned = WriteAheadLog.open_clean(self.journal_path)
        if scanned.torn:
            out.findings.append(ResumeFinding(
                "torn_tail",
                f"journal ended mid-record at byte {scanned.valid_bytes} of "
                f"{scanned.total_bytes}; torn tail truncated"))
            obs = current_obs_hook()
            if obs is not None:
                obs.count("recover.torn_tails")
        with wal:
            begin, journaled, checkpoints, commit = self._parse(
                scanned.records)
            expected_digest = ckpt.ops_digest(self.ops, self.scheme)
            if begin is None:
                # The crash hit the very first append: nothing durable
                # happened, so this resume is a fresh run (keeping the
                # torn-tail finding if the BEGIN record itself tore).
                return self._fresh_under_wal(wal, out)
            if begin["ops_digest"] != expected_digest:
                raise JournalError(
                    "journal BEGIN record belongs to a different program "
                    f"({begin['ops_digest'][:12]}… != "
                    f"{expected_digest[:12]}…)")
            if commit is not None:
                # The crash happened after the commit point: the run is
                # already durable and nothing needs replaying.
                out.committed = True
                out.outputs_digest = commit["digest"]
                out.skipped_ops = len(self.ops)
                return out
            report = check_sequence(self.ops, self.ctx.params,
                                    scheme=self.scheme, label=self.label)
            if report.ok:
                values: list[Any] = [None] * len(self.ops)
                boundary = self._restore_checkpoint(
                    checkpoints, report.states, values, out)
                start = boundary + 1
                out.resumed_from = boundary
                out.skipped_ops = start
                self._execute_range(wal, values, start, report.states,
                                    journaled=journaled, out=out)
                out.outputs_digest = outputs_digest(self.ops, values)
                wal.append(RT_COMMIT, encode({
                    "digest": out.outputs_digest,
                    "outputs": ckpt.sink_indices(self.ops),
                }))
                out.committed = True
                return out
            raise CtStateError(report)

    def _fresh_under_wal(self, wal: WriteAheadLog,
                         out: RecoveryReport) -> RecoveryReport:
        """Start over on an empty (or fully-torn) journal."""
        report = check_sequence(self.ops, self.ctx.params,
                                scheme=self.scheme, label=self.label)
        if report.ok:
            wal.append(RT_BEGIN, encode({
                "label": self.label,
                "scheme": self.scheme,
                "ops": [_op_to_json(op) for op in self.ops],
                "inputs": _inputs_to_json(self.inputs),
                "run_seed": self.run_seed,
                "checkpoint_interval": self.checkpoint_interval,
                "ops_digest": ckpt.ops_digest(self.ops, self.scheme),
            }))
            values: list[Any] = [None] * len(self.ops)
            self._execute_range(wal, values, 0, report.states,
                                journaled={}, out=out)
            out.outputs_digest = outputs_digest(self.ops, values)
            wal.append(RT_COMMIT, encode({
                "digest": out.outputs_digest,
                "outputs": ckpt.sink_indices(self.ops),
            }))
            out.committed = True
            return out
        raise CtStateError(report)

    # -- shared machinery --------------------------------------------------

    def _execute_range(self, wal: WriteAheadLog, values: list[Any],
                       start: int, states: Sequence["CtState | None"],
                       *, journaled: dict[int, str],
                       out: RecoveryReport) -> None:
        """Execute ops ``start..end``, journaling and checkpointing.

        Only ever called under a ``check_sequence`` verdict held by
        ``run``/``_resume_inner`` (the run_checked shape).
        """
        feed = iter(self.inputs)
        for index in range(start):
            if self.ops[index].kind in _FEED_KINDS:
                next(feed)  # consumed by the journaled prefix
        obs = current_obs_hook()
        if obs is not None and start > 0:
            ctx = current_trace_context()
            obs.begin("recover.replay", "recover", start=start,
                      trace=0 if ctx is None else ctx.trace_id)
        for index in range(start, len(self.ops)):
            crash_point(SITE_OP_BOUNDARY)
            op = self.ops[index]
            _reseed(self.ctx, self.run_seed, index)
            # _execute_range runs only under its caller's check_sequence
            # verdict (run/_resume_inner hold `report.ok`).
            # fhecheck: ok=FHC008 — verdict held by the calling frame
            value = execute_op(op, self.ctx, values, feed,
                               scheme=self.scheme)
            values[index] = value
            digest = ciphertext_digest(value)
            previous = journaled.get(index)
            if previous is not None and previous != digest:
                raise DivergenceError(
                    f"op {index} ({op.kind}) replayed to digest "
                    f"{digest[:12]}… but the journal recorded "
                    f"{previous[:12]}… — resume is not bit-identical")
            if previous is None:
                wal.append(RT_OP_DONE, encode({
                    "index": index, "digest": digest}))
            out.replayed_ops += 1
            obs = current_obs_hook()
            if obs is not None:
                obs.count("recover.ops_executed")
            if (self.checkpoint_interval > 0
                    and (index + 1) % self.checkpoint_interval == 0
                    and index + 1 < len(self.ops)):
                self._take_checkpoint(wal, values, index, states)
        obs = current_obs_hook()
        if obs is not None and start > 0:
            obs.end()

    def _take_checkpoint(self, wal: WriteAheadLog, values: list[Any],
                         boundary: int,
                         states: Sequence["CtState | None"]) -> None:
        obs = current_obs_hook()
        if obs is not None:
            ctx = current_trace_context()
            obs.begin("recover.checkpoint", "recover", boundary=boundary,
                      trace=0 if ctx is None else ctx.trace_id)
            obs.count("recover.checkpoints")
        live = ckpt.live_set(self.ops, boundary)
        entries = ckpt.write_archives(self.directory, boundary, values,
                                      live, states)
        wal.append(RT_CHECKPOINT, encode({
            "boundary": boundary,
            "ops_digest": ckpt.ops_digest(self.ops, self.scheme),
            "entries": [{
                "value": e.value_index,
                "file": e.file_name,
                "digest": e.digest,
                "state": None if e.state is None else {
                    "level": e.state.level,
                    "scale_log2": e.state.scale_log2,
                    "domain": e.state.domain,
                    "size": e.state.size,
                },
            } for e in entries],
        }))
        obs = current_obs_hook()
        if obs is not None:
            obs.end()

    def _restore_checkpoint(self, checkpoints: list[dict],
                            states: Sequence["CtState | None"],
                            values: list[Any],
                            out: RecoveryReport) -> int:
        """Load the newest usable checkpoint into ``values``; returns
        its boundary (-1 when none is usable)."""
        expected_digest = ckpt.ops_digest(self.ops, self.scheme)
        for record in reversed(checkpoints):
            boundary = record["boundary"]
            if record["ops_digest"] != expected_digest:
                out.findings.append(ResumeFinding(
                    "stale_checkpoint",
                    f"checkpoint at op {boundary} was taken against a "
                    f"different program "
                    f"({record['ops_digest'][:12]}…); rejected"))
                continue
            try:
                loaded: list[tuple[int, Any]] = []
                for row in record["entries"]:
                    index = row["value"]
                    entry = ckpt.CheckpointEntry(
                        value_index=index,
                        file_name=row["file"],
                        digest=row["digest"],
                        # Validate against the interpreter's *fresh*
                        # prediction, not the journaled copy of it.
                        state=states[index] if index < len(states) else None,
                    )
                    loaded.append((index, ckpt.load_entry(self.directory,
                                                          entry)))
            except ckpt.CheckpointError as exc:
                out.findings.append(ResumeFinding(
                    "corrupt_checkpoint",
                    f"checkpoint at op {boundary} failed validation "
                    f"({exc}); falling back"))
                obs = current_obs_hook()
                if obs is not None:
                    obs.count("recover.corrupt_checkpoints")
                continue
            for index, ct in loaded:
                values[index] = ct
            return boundary
        return -1

    @staticmethod
    def _parse(records) -> tuple["dict | None", dict[int, str], list[dict],
                                 "dict | None"]:
        """Split a scanned journal into (begin or None, op digests by
        index, checkpoint records in order, commit record or None)."""
        begin: "dict | None" = None
        journaled: dict[int, str] = {}
        checkpoints: list[dict] = []
        commit: "dict | None" = None
        for record in records:
            if record.rtype == RT_BEGIN:
                begin = decode(record)
            elif record.rtype == RT_OP_DONE:
                entry = decode(record)
                journaled[entry["index"]] = entry["digest"]
            elif record.rtype == RT_CHECKPOINT:
                checkpoints.append(decode(record))
            elif record.rtype == RT_COMMIT:
                commit = decode(record)
        return begin, journaled, checkpoints, commit
