"""Typed records over the WAL: the op journal and the serve request
journal.

The WAL (:mod:`repro.recover.wal`) knows only bytes; this module gives
those bytes meaning.  An execution journal is a strict grammar::

    BEGIN (OP_DONE | CHECKPOINT)* COMMIT?

* ``BEGIN`` pins the workload: label, scheme, the full op list, the
  input feed, the run seed, and a digest over the ops so a later resume
  can detect a *stale* checkpoint taken against a different program.
* ``OP_DONE`` records the digest of each produced ciphertext the moment
  the op completes — the bit-identity ledger replay is checked against.
* ``CHECKPOINT`` names the serialized live-set archives on disk (with
  their content digests and expected abstract states) so resume can
  skip the replayed prefix.
* ``COMMIT`` seals the run with the output digest.

Payloads are JSON (UTF-8): every field is an int, a string, or a list
thereof, so round-trips are exact — no floats cross the boundary except
``scale_log2`` inside checkpoint states, which is compared with a
tolerance, never for identity.

:class:`RequestJournal` is the serve-side cousin: ``SUBMIT`` /
``RESOLVE`` pairs over the same WAL machinery, so a restarted
:class:`repro.serve.ServeEngine` can re-enqueue requests that were
admitted but never answered.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import current_obs_hook, current_trace_context
from repro.recover.wal import Record, WriteAheadLog

__all__ = [
    "RT_BEGIN", "RT_OP_DONE", "RT_CHECKPOINT", "RT_COMMIT",
    "RT_SERVE_SUBMIT", "RT_SERVE_RESOLVE", "RECORD_TYPE_NAMES",
    "JournalError", "encode", "decode", "RequestJournal",
]

RT_BEGIN = 1
RT_OP_DONE = 2
RT_CHECKPOINT = 3
RT_COMMIT = 4
RT_SERVE_SUBMIT = 5
RT_SERVE_RESOLVE = 6

RECORD_TYPE_NAMES = {
    RT_BEGIN: "begin",
    RT_OP_DONE: "op_done",
    RT_CHECKPOINT: "checkpoint",
    RT_COMMIT: "commit",
    RT_SERVE_SUBMIT: "serve_submit",
    RT_SERVE_RESOLVE: "serve_resolve",
}


class JournalError(ValueError):
    """A structurally valid WAL record with semantically bad content."""


def encode(obj: dict) -> bytes:
    """JSON-encode a record payload (sorted keys, compact, UTF-8)."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode(record: Record) -> dict:
    """Decode a record payload; :class:`JournalError` on bad JSON."""
    try:
        obj = json.loads(record.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(
            f"record seq={record.seq} "
            f"({RECORD_TYPE_NAMES.get(record.rtype, record.rtype)}) has an "
            f"undecodable payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise JournalError(
            f"record seq={record.seq} payload is not a JSON object")
    return obj


@dataclass
class RequestJournal:
    """Durable submit/resolve ledger for :class:`repro.serve.ServeEngine`.

    ``record_submit`` runs after admission control passes and before the
    ticket is enqueued; ``record_resolve`` runs when the result future
    resolves.  After a crash, :meth:`pending` is exactly the set of
    requests the engine accepted but never answered — the restart path
    re-submits them with a fresh deadline of the same original budget.
    """

    path: Path
    _wal: "WriteAheadLog | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)

    def _log(self) -> WriteAheadLog:
        if self._wal is None:
            self._wal, _ = WriteAheadLog.open_clean(self.path)
        return self._wal

    def record_submit(self, request_id: int, *, tenant: str, op: str,
                      timeout_s: float, payload: int = 0) -> None:
        entry = {
            "id": request_id,
            "tenant": tenant,
            "op": op,
            "timeout_us": int(timeout_s * 1_000_000),
            "payload": payload,
        }
        obs = current_obs_hook()
        if obs is not None:
            # Stamp the request's trace id into the durable record (and
            # count the append) so a post-crash inspection of the WAL
            # links each admitted request back to its distributed trace.
            # With observability off the journal bytes are exactly the
            # pre-tracing encoding — no key, no id minting.
            ctx = current_trace_context()
            if ctx is not None:
                entry["trace"] = ctx.trace_id
            obs.count("recover.journal.submits")
        self._log().append(RT_SERVE_SUBMIT, encode(entry))

    def record_resolve(self, request_id: int, status: str) -> None:
        entry = {"id": request_id, "status": status}
        obs = current_obs_hook()
        if obs is not None:
            ctx = current_trace_context()
            if ctx is not None:
                entry["trace"] = ctx.trace_id
            obs.count("recover.journal.resolves")
        self._log().append(RT_SERVE_RESOLVE, encode(entry))

    def pending(self) -> list[dict]:
        """Replay the ledger: submits with no matching resolve, in
        submission order.  Timeouts come back as ``timeout_s`` floats."""
        from repro.recover.wal import scan
        submitted: dict[str, dict] = {}
        for record in scan(self.path).records:
            if record.rtype == RT_SERVE_SUBMIT:
                entry = decode(record)
                submitted[entry["id"]] = entry
            elif record.rtype == RT_SERVE_RESOLVE:
                submitted.pop(decode(record)["id"], None)
        out = []
        for entry in submitted.values():
            entry = dict(entry)
            entry["timeout_s"] = entry.pop("timeout_us") / 1_000_000
            out.append(entry)
        return out

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None
