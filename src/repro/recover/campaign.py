"""The kill campaign: seeded SIGKILL injection against the durable
executor, with every run judged against an uninterrupted golden.

Protocol per injection (mirroring the one-fault-per-run discipline of
:mod:`repro.fault.campaign`, but at process granularity):

1. **fork** a worker; the child installs a :class:`CrashInjector` with
   one seeded :class:`CrashSpec` — either ``op_boundary`` (SIGKILL
   between two journaled ops) or ``wal_mid_record`` (SIGKILL halfway
   through a WAL append, leaving a torn record) — then runs the
   workload through :class:`DurableExecutor.run` and dies by its own
   SIGKILL.  The parent confirms the child actually died by signal.
2. **fork** a second worker with *no* crash hook; it rebuilds the
   context (deterministic keygen) and calls
   :meth:`DurableExecutor.resume`, writing its outcome (outputs digest,
   typed findings, resume stats) to a result file before ``os._exit``.
3. the parent classifies:

   * ``recovered_bit_identical`` — outputs digest equals the golden's
     and the journal tail was whole;
   * ``detected_torn`` — outputs digest equals the golden's *and* the
     resume surfaced the ``torn_tail`` finding (the torn write was
     detected, truncated, and survived);
   * ``failed`` — the resume crashed, raised, or produced different
     outputs.  A wrong digest with a clean exit is additionally marked
     a **silent divergence** — the one outcome the whole subsystem
     exists to make impossible, and the one that fails CI.

Forked children never return into the parent's interpreter: they leave
via SIGKILL or ``os._exit``, so pytest/atexit machinery runs exactly
once.
"""

from __future__ import annotations

import json
import os
import random
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.analysis.ctstate import (Op, bgv_mult_switch_sequence,
                                    ckks_mult_rotate_sequence)
from repro.fault.crash import (SITE_OP_BOUNDARY, SITE_WAL_MID_RECORD,
                               CrashInjector, CrashSpec, install_crash_hook)
from repro.recover.executor import DurableExecutor, golden_outputs_digest

__all__ = [
    "CLASSIFICATIONS", "EXECUTORS", "CrashRun", "KillCampaignResult",
    "Workload", "build_workload", "run_campaign", "recovery_latency_sweep",
]

CLASS_RECOVERED = "recovered_bit_identical"
CLASS_DETECTED_TORN = "detected_torn"
CLASS_FAILED = "failed"
CLASSIFICATIONS = (CLASS_RECOVERED, CLASS_DETECTED_TORN, CLASS_FAILED)

#: The two recover workload executors the campaign sweeps.
EXECUTORS = ("ckks", "bgv")

_KEY_SEED = 2025
_INPUT_SEED = 7
_RUN_SEED = 42


@dataclass
class Workload:
    """One campaign executor: a context factory plus a recorded run."""

    name: str
    make_ctx: Callable[[], Any]
    ops: list[Op]
    inputs: list[Any]
    run_seed: int = _RUN_SEED

    def executor(self, directory: Path, *,
                 checkpoint_interval: int = 4) -> DurableExecutor:
        return DurableExecutor(self.make_ctx(), self.ops, self.inputs,
                               directory,
                               checkpoint_interval=checkpoint_interval,
                               run_seed=self.run_seed,
                               label=f"recover-{self.name}")

    def golden(self) -> str:
        return golden_outputs_digest(self.make_ctx(), self.ops, self.inputs,
                                     run_seed=self.run_seed,
                                     label=f"golden-{self.name}")


def _feed_count(ops: Sequence[Op]) -> int:
    return sum(1 for op in ops if op.kind in ("encrypt", "multiply_plain"))


def build_workload(name: str) -> Workload:
    """The named campaign executor (``ckks`` or ``bgv``).

    Both rebuild their context deterministically from a fixed key seed
    — exactly what a restarted service does when it reloads key
    material — so resume operates against bit-identical keys.
    """
    if name == "ckks":
        from repro.fhe.ckks import CkksContext
        from repro.fhe.params import toy_params

        params = toy_params()

        def make_ctx() -> Any:
            ctx = CkksContext(params, seed=_KEY_SEED)
            ctx.generate_galois_keys([1])
            return ctx

        ops = ckks_mult_rotate_sequence(params.levels)
        ops = ops + [Op("add", (len(ops) - 1, len(ops) - 1)),
                     Op("rotate", (len(ops),), arg=1)]
        rng = np.random.default_rng(_INPUT_SEED)
        inputs = [rng.standard_normal(params.n // 2).tolist()
                  for _ in range(_feed_count(ops))]
        return Workload(name, make_ctx, ops, inputs)
    if name == "bgv":
        from repro.fhe.bgv import BgvContext, BgvParams

        params = BgvParams(n=256, levels=3, plaintext_modulus=65537,
                           prime_bits=30)

        def make_ctx() -> Any:
            ctx = BgvContext(params, seed=_KEY_SEED)
            ctx.generate_galois_keys([1])
            return ctx

        ops = bgv_mult_switch_sequence(params.levels)
        ops = ops + [Op("add", (len(ops) - 1, len(ops) - 1)),
                     Op("rotate", (len(ops),), arg=1)]
        rng = np.random.default_rng(_INPUT_SEED)
        inputs = [rng.integers(0, params.plaintext_modulus,
                               size=params.n).tolist()
                  for _ in range(_feed_count(ops))]
        return Workload(name, make_ctx, ops, inputs)
    raise ValueError(f"unknown campaign executor {name!r}; "
                     f"choose from {EXECUTORS}")


@dataclass
class CrashRun:
    """One seeded crash + resume, classified."""

    executor: str
    site: str
    at: int
    classification: str
    crashed: bool
    silent_divergence: bool = False
    findings: list[str] = field(default_factory=list)
    resumed_from: int = -1
    replayed_ops: int = 0
    error: str = ""

    def to_json(self) -> dict:
        return {
            "executor": self.executor, "site": self.site, "at": self.at,
            "classification": self.classification, "crashed": self.crashed,
            "silent_divergence": self.silent_divergence,
            "findings": self.findings, "resumed_from": self.resumed_from,
            "replayed_ops": self.replayed_ops, "error": self.error,
        }


@dataclass
class KillCampaignResult:
    """Aggregate campaign outcome; ``ok`` is the CI gate."""

    runs: list[CrashRun] = field(default_factory=list)
    goldens: dict[str, str] = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        out = {name: 0 for name in CLASSIFICATIONS}
        for run in self.runs:
            out[run.classification] += 1
        return out

    @property
    def silent_divergences(self) -> int:
        return sum(1 for run in self.runs if run.silent_divergence)

    @property
    def ok(self) -> bool:
        return (bool(self.runs) and self.silent_divergences == 0
                and self.counts[CLASS_FAILED] == 0)

    def to_json(self) -> dict:
        return {
            "injections": len(self.runs),
            "counts": self.counts,
            "silent_divergences": self.silent_divergences,
            "ok": self.ok,
            "goldens": self.goldens,
            "runs": [run.to_json() for run in self.runs],
        }


def _wait_killed(pid: int) -> "tuple[bool, int]":
    """(died_by_sigkill, exit_status) for a forked child."""
    _, status = os.waitpid(pid, 0)
    if os.WIFSIGNALED(status):
        return os.WTERMSIG(status) == signal.SIGKILL, -os.WTERMSIG(status)
    return False, os.WIFEXITED(status) and os.WEXITSTATUS(status) or 0


def _fork_crash_worker(workload: Workload, directory: Path,
                       spec: CrashSpec, *,
                       checkpoint_interval: int) -> bool:
    """Fork, run the workload under the crash spec, confirm the kill.

    Returns True when the child died by SIGKILL (the seeded crash
    fired); False when it ran to completion (spec beyond the run's
    occurrence count — still a valid, crash-free journal)."""
    pid = os.fork()
    if pid == 0:
        # Child: one seeded crash, then die.  Never return to the
        # caller's interpreter — SIGKILL or os._exit only.
        try:
            install_crash_hook(CrashInjector([spec]))
            workload.executor(
                directory,
                checkpoint_interval=checkpoint_interval).run()
            os._exit(0)  # spec never fired; run committed
        except BaseException:
            os._exit(3)
    killed, _ = _wait_killed(pid)
    return killed


def _fork_resume_worker(workload: Workload, directory: Path,
                        result_path: Path, *,
                        checkpoint_interval: int) -> int:
    """Fork a clean worker that resumes and reports; returns its exit
    status (0 = resume completed and wrote its report)."""
    pid = os.fork()
    if pid == 0:
        try:
            report = workload.executor(
                directory,
                checkpoint_interval=checkpoint_interval).resume()
            payload = {
                "digest": report.outputs_digest,
                "findings": report.finding_kinds(),
                "resumed_from": report.resumed_from,
                "replayed_ops": report.replayed_ops,
                "committed": report.committed,
            }
            result_path.write_text(json.dumps(payload))
            os._exit(0)
        except BaseException as exc:  # noqa: BLE001 — crash report
            try:
                result_path.write_text(json.dumps(
                    {"error": f"{type(exc).__name__}: {exc}"}))
            except OSError:
                pass
            os._exit(1)
    _, status = os.waitpid(pid, 0)
    return status


def _classify(run: CrashRun, payload: "dict | None", status: int,
              golden: str) -> None:
    if status != 0 or payload is None:
        run.classification = CLASS_FAILED
        run.error = (payload or {}).get("error", f"resume exit {status}")
        return
    run.findings = payload.get("findings", [])
    run.resumed_from = payload.get("resumed_from", -1)
    run.replayed_ops = payload.get("replayed_ops", 0)
    if payload.get("digest") == golden and payload.get("committed"):
        run.classification = (CLASS_DETECTED_TORN
                              if "torn_tail" in run.findings
                              else CLASS_RECOVERED)
        return
    run.classification = CLASS_FAILED
    # Wrong outputs with a clean exit: the divergence nobody caught.
    run.silent_divergence = True
    run.error = (f"outputs digest {payload.get('digest', '')[:12]}… != "
                 f"golden {golden[:12]}… with no error raised")


def run_campaign(*, executors: Sequence[str] = EXECUTORS,
                 injections: int = 100, seed: int = 0,
                 checkpoint_interval: int = 4,
                 progress: "Callable[[str], None] | None" = None,
                 ) -> KillCampaignResult:
    """SIGKILL the durable executor ``injections`` times; classify every
    resume.  Deterministic in ``seed``."""
    rng = random.Random(seed)
    result = KillCampaignResult()
    workloads = {name: build_workload(name) for name in executors}
    goldens = {name: wl.golden() for name, wl in workloads.items()}
    result.goldens = dict(goldens)
    for index in range(injections):
        name = list(workloads)[index % len(workloads)]
        workload = workloads[name]
        n_ops = len(workload.ops)
        # WAL appends in a whole run: BEGIN + one OP_DONE per op +
        # checkpoints + COMMIT.
        n_ckpts = (0 if checkpoint_interval <= 0 else
                   sum(1 for i in range(n_ops)
                       if (i + 1) % checkpoint_interval == 0
                       and i + 1 < n_ops))
        n_appends = 2 + n_ops + n_ckpts
        if index % 2 == 0:
            spec = CrashSpec(SITE_OP_BOUNDARY, rng.randrange(n_ops))
        else:
            spec = CrashSpec(SITE_WAL_MID_RECORD, rng.randrange(n_appends),
                             tear_fraction=rng.choice((0.25, 0.5, 0.9)))
        run = CrashRun(name, spec.site, spec.at, CLASS_FAILED,
                       crashed=False)
        with tempfile.TemporaryDirectory(prefix="recover-kill-") as tmp:
            directory = Path(tmp)
            run.crashed = _fork_crash_worker(
                workload, directory, spec,
                checkpoint_interval=checkpoint_interval)
            result_path = directory / "resume-result.json"
            status = _fork_resume_worker(
                workload, directory, result_path,
                checkpoint_interval=checkpoint_interval)
            payload = None
            if result_path.exists():
                try:
                    payload = json.loads(result_path.read_text())
                except json.JSONDecodeError:
                    payload = None
            _classify(run, payload, status, goldens[name])
        result.runs.append(run)
        if progress is not None and (index + 1) % 10 == 0:
            counts = result.counts
            progress(f"  [{index + 1}/{injections}] "
                     f"recovered={counts[CLASS_RECOVERED]} "
                     f"torn={counts[CLASS_DETECTED_TORN]} "
                     f"failed={counts[CLASS_FAILED]}")
    return result


def recovery_latency_sweep(*, executor: str = "ckks",
                           intervals: Sequence[int] = (0, 1, 2, 4, 8),
                           repeats: int = 3, seed: int = 0,
                           ) -> list[dict]:
    """Measure resume latency vs. checkpoint interval.

    For each interval, crash a forked worker at the last op boundary
    (maximum completed work) and time :meth:`DurableExecutor.resume` in
    the parent.  Interval 0 disables checkpoints entirely — the
    full-replay baseline the other rows are read against.
    """
    workload = build_workload(executor)
    golden = workload.golden()
    crash_at = len(workload.ops) - 1
    rows = []
    for interval in intervals:
        times = []
        replayed = skipped = 0
        for repeat in range(repeats):
            with tempfile.TemporaryDirectory(
                    prefix="recover-bench-") as tmp:
                directory = Path(tmp)
                killed = _fork_crash_worker(
                    workload, directory,
                    CrashSpec(SITE_OP_BOUNDARY, crash_at),
                    checkpoint_interval=interval)
                if not killed:
                    raise RuntimeError("bench worker failed to crash")
                t0 = time.perf_counter()
                report = workload.executor(
                    directory, checkpoint_interval=interval).resume()
                times.append(time.perf_counter() - t0)
                if report.outputs_digest != golden:
                    raise RuntimeError(
                        f"bench resume diverged at interval {interval}")
                replayed = report.replayed_ops
                skipped = report.skipped_ops
        rows.append({
            "executor": executor,
            "checkpoint_interval": interval,
            "ops": len(workload.ops),
            "crash_at": crash_at,
            "replayed_ops": replayed,
            "skipped_ops": skipped,
            "resume_ms_best": round(min(times) * 1e3, 3),
            "resume_ms_mean": round(sum(times) / len(times) * 1e3, 3),
        })
    return rows
