"""Durable execution: crash-safe op journaling, checkpoint/resume, and
the kill-campaign harness.

The serving layer (:mod:`repro.serve`) survives *request* failures —
timeouts, integrity faults, overload.  This package survives *process*
failures: SIGKILL, OOM, power loss.  The contract is the classic
database one, applied to recorded ciphertext-op sequences:

* every state transition is journaled to an append-only, checksummed,
  fsync-disciplined write-ahead log **before** it is acted on
  (:mod:`repro.recover.wal`, :mod:`repro.recover.journal`);
* periodic ciphertext checkpoints bound replay time, serialized through
  :mod:`repro.fhe.serialize` with content digests and abstract-state
  expectations (:mod:`repro.recover.checkpoint`);
* restart scans the journal, truncates the torn tail, validates the
  newest usable checkpoint, and resumes **bit-identically** — proven
  per-op against the journaled digests
  (:mod:`repro.recover.executor`);
* the kill campaign (:mod:`repro.recover.campaign`,
  ``python -m repro.recover --campaign``) SIGKILLs forked workers at
  seeded op boundaries and mid-WAL-record torn writes, classifying
  every resume and failing loudly on any silent divergence.

Lint rule ``FHC012`` (:mod:`repro.analysis.lint`) pins the fsync
discipline statically: a bare file write in this package is a finding
unless the surrounding function carries fsync evidence.
"""

from repro.recover.campaign import (CLASSIFICATIONS, EXECUTORS, CrashRun,
                                    KillCampaignResult, Workload,
                                    build_workload, recovery_latency_sweep,
                                    run_campaign)
from repro.recover.checkpoint import (CheckpointEntry, CheckpointError,
                                      live_set, ops_digest)
from repro.recover.executor import (DivergenceError, DurableExecutor,
                                    RecoveryReport, ResumeFinding,
                                    golden_outputs_digest, outputs_digest)
from repro.recover.journal import (JournalError, RECORD_TYPE_NAMES,
                                   RequestJournal)
from repro.recover.wal import Record, ScanResult, WriteAheadLog, scan

__all__ = [
    "CLASSIFICATIONS",
    "EXECUTORS",
    "RECORD_TYPE_NAMES",
    "CheckpointEntry",
    "CheckpointError",
    "CrashRun",
    "DivergenceError",
    "DurableExecutor",
    "JournalError",
    "KillCampaignResult",
    "Record",
    "RecoveryReport",
    "RequestJournal",
    "ResumeFinding",
    "ScanResult",
    "Workload",
    "WriteAheadLog",
    "build_workload",
    "golden_outputs_digest",
    "live_set",
    "ops_digest",
    "outputs_digest",
    "recovery_latency_sweep",
    "run_campaign",
    "scan",
]
