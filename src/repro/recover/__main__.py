"""Entry point: ``python -m repro.recover``."""

import sys

from repro.recover.cli import main

sys.exit(main())
