"""``python -m repro.recover`` — the kill campaign and recovery bench.

Modes:

* ``--campaign`` — fork/SIGKILL the durable executor at seeded crash
  points, resume every journal, and classify each run
  (recovered-bit-identical / detected-torn / failed).  Exit status is
  non-zero on any failed run or silent divergence — the CI gate.
* ``--bench`` — the committed-artifact mode: a full two-executor
  campaign plus the resume-latency-vs-checkpoint-interval sweep,
  written as a ``schema: 1`` envelope (``BENCH_recover.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import host_envelope
from repro.recover.campaign import (CLASSIFICATIONS, EXECUTORS,
                                    recovery_latency_sweep, run_campaign)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recover",
        description="durable-execution kill campaign and recovery bench")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--campaign", action="store_true",
                      help="run the seeded SIGKILL campaign")
    mode.add_argument("--bench", action="store_true",
                      help="campaign + latency sweep, written as a "
                           "schema:1 artifact")
    parser.add_argument("--executor", choices=(*EXECUTORS, "both"),
                        default="both",
                        help="workload executor to crash (default both)")
    parser.add_argument("--injections", type=int, default=100,
                        help="seeded crash injections (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--interval", type=int, default=4,
                        help="checkpoint interval in ops (default 4)")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the campaign result JSON here")
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_recover.json"),
                        help="bench artifact path "
                             "(default BENCH_recover.json)")
    return parser


def _executors(choice: str) -> tuple[str, ...]:
    return EXECUTORS if choice == "both" else (choice,)


def _print_summary(result) -> None:
    counts = result.counts
    print(f"kill campaign: {len(result.runs)} injections")
    for name in CLASSIFICATIONS:
        print(f"  {name:24s} {counts[name]}")
    print(f"  {'silent divergences':24s} {result.silent_divergences}")
    for run in result.runs:
        if run.classification == "failed":
            print(f"  FAILED {run.executor}/{run.site}@{run.at}: "
                  f"{run.error}")
    print("PASS" if result.ok else "FAIL")


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.campaign:
        result = run_campaign(
            executors=_executors(args.executor),
            injections=args.injections, seed=args.seed,
            checkpoint_interval=args.interval, progress=print)
        _print_summary(result)
        if args.json is not None:
            args.json.write_text(json.dumps(result.to_json(), indent=2)
                                 + "\n")
            print(f"wrote {args.json}")
        return 0 if result.ok else 1

    # --bench: the committed artifact.
    result = run_campaign(
        executors=_executors(args.executor),
        injections=args.injections, seed=args.seed,
        checkpoint_interval=args.interval, progress=print)
    _print_summary(result)
    print("latency sweep (resume time vs checkpoint interval):")
    sweep = recovery_latency_sweep(seed=args.seed)
    for row in sweep:
        print(f"  interval={row['checkpoint_interval']:2d}  "
              f"skipped={row['skipped_ops']:2d}  "
              f"replayed={row['replayed_ops']:2d}  "
              f"resume={row['resume_ms_best']:.1f} ms")
    artifact = host_envelope("recover")
    campaign_json = result.to_json()
    campaign_json.pop("runs")  # per-run detail stays in --json mode
    artifact["campaign"] = campaign_json
    artifact["latency_sweep"] = sweep
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
