"""The append-only, checksummed, fsync-disciplined write-ahead log.

Record framing (little-endian)::

    +----------------+----------------+----------------+-------+---------+
    | payload len u32| crc32      u32 | sequence   u64 | type  | payload |
    +----------------+----------------+----------------+-------+---------+
          4                 4                8            1       len

The CRC covers sequence, type, and payload, so a flipped bit anywhere
in a record (or a half-written tail) fails verification.  Sequence
numbers are dense from zero; a gap or repeat marks the scan boundary
exactly like a bad CRC does.

Durability discipline — the property lint rule ``FHC012`` enforces
statically and the kill campaign enforces dynamically:

* :meth:`WriteAheadLog.append` writes the framed record, flushes, and
  ``os.fsync``\\ s before returning.  Once ``append`` returns, the
  record survives SIGKILL.
* Readers (:func:`scan`) treat the first unparseable record as the
  *torn tail*: everything before it is trusted (CRC-verified),
  everything from it on is discarded.  :func:`truncate_torn_tail`
  physically truncates the file (fsync'd) so the next append extends a
  clean log.

A torn tail is an expected artifact of a crash mid-append, not
corruption: the WAL's contract is that a record is either durably whole
or detectably absent — never silently half-applied.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.fault.crash import pending_tear

__all__ = ["Record", "ScanResult", "WriteAheadLog", "scan",
           "truncate_torn_tail"]

_HEADER = struct.Struct("<IIQB")
#: Max payload the scanner will believe; a torn length field otherwise
#: makes it try to read gigabytes.
_MAX_PAYLOAD = 1 << 28


@dataclass(frozen=True)
class Record:
    """One durable log record."""

    seq: int
    rtype: int
    payload: bytes


@dataclass
class ScanResult:
    """Everything a recovery pass needs to know about a log file."""

    records: list[Record]
    #: Byte offset of the first unparseable record (== file size when
    #: the log is whole).
    valid_bytes: int
    #: Total bytes on disk at scan time.
    total_bytes: int

    @property
    def torn(self) -> bool:
        """True when the log ends in a torn (or corrupt) tail."""
        return self.valid_bytes < self.total_bytes


def _crc(seq: int, rtype: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<QB", seq, rtype) + payload)


class WriteAheadLog:
    """Append-only writer over one log file.

    Opening an existing file resumes its sequence numbering from the
    valid prefix (the caller is expected to have truncated a torn tail
    first — :meth:`open_clean` does both).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        result = scan(self.path) if self.path.exists() else None
        if result is not None and result.torn:
            raise TornLogError(
                f"{self.path} has a torn tail at byte {result.valid_bytes}"
                f" of {result.total_bytes}; truncate before appending")
        self._seq = len(result.records) if result is not None else 0
        self._fh = open(self.path, "ab")
        self.appended = 0

    @classmethod
    def open_clean(cls, path: str | Path) -> "tuple[WriteAheadLog, ScanResult]":
        """Scan, truncate any torn tail, and open for appending.

        Returns the writer and the *pre-truncation* scan: its
        ``records`` are the valid prefix, and ``torn`` stays True when
        a tail was dropped — the signal recovery turns into a typed
        ``torn_tail`` finding.
        """
        result = scan(path)
        if result.torn:
            truncate_torn_tail(path, result.valid_bytes)
        return cls(path), result

    @property
    def next_seq(self) -> int:
        return self._seq

    def append(self, rtype: int, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        This is the **only** sanctioned write path (lint rule FHC012):
        the framed record is written, flushed, and ``os.fsync``'d before
        the call returns.  When a seeded ``wal_mid_record`` crash spec
        is installed (:mod:`repro.fault.crash`), only a prefix of the
        record's bytes is flushed and the process is SIGKILLed — the
        torn write the recovery scanner must detect.
        """
        seq = self._seq
        blob = _HEADER.pack(len(payload), _crc(seq, rtype, payload),
                            seq, rtype) + payload
        tear = pending_tear()
        if tear is not None:
            # Torn write: flush a strict prefix durably, then die.
            cut = min(max(int(len(blob) * tear.tear_fraction), 1),
                      len(blob) - 1)
            self._fh.write(blob[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            tear.kill()  # SIGKILL; never returns
        self._fh.write(blob)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._seq += 1
        self.appended += 1
        return seq

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TornLogError(RuntimeError):
    """Appending to a log whose tail has not been truncated."""


def scan(path: str | Path) -> ScanResult:
    """Read every verifiable record; stop at the first bad one.

    Never raises on malformed content — a torn tail is an expected
    crash artifact, reported through :attr:`ScanResult.torn` so the
    recovery path can classify it as a typed finding.
    """
    path = Path(path)
    if not path.exists():
        return ScanResult([], 0, 0)
    blob = path.read_bytes()
    records: list[Record] = []
    offset = 0
    expect_seq = 0
    while offset + _HEADER.size <= len(blob):
        length, crc, seq, rtype = _HEADER.unpack_from(blob, offset)
        end = offset + _HEADER.size + length
        if length > _MAX_PAYLOAD or end > len(blob):
            break  # torn: header or payload ran off the file
        payload = blob[offset + _HEADER.size:end]
        if seq != expect_seq or _crc(seq, rtype, payload) != crc:
            break  # torn or corrupt: CRC/sequence check failed
        records.append(Record(seq, rtype, payload))
        offset = end
        expect_seq += 1
    return ScanResult(records, offset, len(blob))


def truncate_torn_tail(path: str | Path, valid_bytes: int) -> None:
    """Physically drop a torn tail (fsync'd), leaving the valid prefix."""
    with open(path, "r+b") as fh:
        fh.truncate(valid_bytes)
        fh.flush()
        os.fsync(fh.fileno())
