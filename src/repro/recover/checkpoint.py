"""Ciphertext checkpoints: live-set selection, durable archives, and
validated loading.

A checkpoint at op boundary ``k`` persists exactly the *live set* —
values ``i <= k`` that some later op still reads, plus sinks (values no
later op consumes, i.e. the run's outputs so far).  Dead intermediates
are never written: on the deep multiply/rescale chains the canonical
workloads use, the live set stays O(1) while the value list grows O(n).

Write protocol (crash-ordering matters):

1. each live ciphertext is serialized through
   :func:`repro.fhe.serialize.save_ciphertext` and fsync'd;
2. only then is the ``CHECKPOINT`` record appended to the WAL, naming
   every archive with its content digest and expected abstract state.

A crash between (1) and (2) leaves orphan archives and no record —
resume never sees them.  A crash during (1) leaves a partial archive
that the journal never references.  The record is therefore the commit
point: if it is durable, every archive it names was durable first.

Load-side validation is three layers deep, each one a distinct typed
finding in the resume report:

* archive digest (``SerializationError`` from the serialize layer, or
  a journal-vs-archive digest mismatch) → ``corrupt_checkpoint``;
* the journal record's ``ops_digest`` vs the current program →
  ``stale_checkpoint``;
* the loaded ciphertext's abstract state (level / domain / size, and
  ``scale_log2`` within tolerance) vs a fresh
  :func:`repro.analysis.ctstate.check_sequence` of the same prefix →
  also ``corrupt_checkpoint`` (the archive decoded but does not match
  the program's verdict).
"""

from __future__ import annotations

import hashlib
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.analysis.ctstate import CtState, Op
from repro.fhe.serialize import (SerializationError, ciphertext_digest,
                                 load_ciphertext, save_ciphertext)

__all__ = [
    "CheckpointEntry", "CheckpointError", "live_set", "ops_digest",
    "checkpoint_file_name", "write_archives", "load_entry", "state_matches",
]

#: ``scale_log2`` agreement tolerance between a loaded ciphertext and
#: the abstract interpreter's prediction (floats cross a JSON boundary).
SCALE_LOG2_TOL = 1e-6


class CheckpointError(RuntimeError):
    """A checkpoint that failed validation (corrupt or stale)."""


@dataclass(frozen=True)
class CheckpointEntry:
    """One live value inside a checkpoint record."""

    value_index: int
    file_name: str
    digest: str
    state: "CtState | None"


def live_set(ops: Sequence[Op], boundary: int) -> list[int]:
    """Value indices that must survive a checkpoint at ``boundary``.

    A value ``i <= boundary`` is live when a later op reads it, or when
    nothing ever reads it (a sink — it is an output of the run).
    """
    consumed: set[int] = set()
    future: set[int] = set()
    for index, op in enumerate(ops):
        for src in op.srcs:
            consumed.add(src)
            if index > boundary:
                future.add(src)
    live = []
    for index in range(boundary + 1):
        if index in future or index not in consumed:
            live.append(index)
    return live


def sink_indices(ops: Sequence[Op]) -> list[int]:
    """Values no op consumes — the run's outputs."""
    consumed = {src for op in ops for src in op.srcs}
    return [i for i in range(len(ops)) if i not in consumed]


def ops_digest(ops: Sequence[Op], scheme: str) -> str:
    """Digest pinning the program a journal/checkpoint belongs to."""
    h = hashlib.sha256()
    h.update(scheme.encode())
    for op in ops:
        h.update(repr((op.kind, op.srcs, op.arg)).encode())
    return h.hexdigest()


def checkpoint_file_name(boundary: int, value_index: int) -> str:
    return f"ckpt_{boundary:05d}_v{value_index:03d}.npz"


def write_archives(directory: Path, boundary: int,
                   values: Sequence[Any], live: Sequence[int],
                   states: Sequence["CtState | None"]) -> list[CheckpointEntry]:
    """Serialize the live set durably; returns the journal entries.

    Archives are fsync'd individually *before* the caller appends the
    CHECKPOINT record — see the module docstring for why this ordering
    is load-bearing.
    """
    entries = []
    for index in live:
        name = checkpoint_file_name(boundary, index)
        path = directory / name
        save_ciphertext(values[index], path)
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        entries.append(CheckpointEntry(
            value_index=index,
            file_name=name,
            digest=ciphertext_digest(values[index]),
            state=states[index] if index < len(states) else None,
        ))
    return entries


def state_matches(ct: Any, expected: "CtState | None") -> "str | None":
    """Compare a loaded ciphertext against the interpreter's predicted
    abstract state; returns a mismatch description or None when they
    agree."""
    if expected is None:
        return None
    level = getattr(ct, "level", None)
    if level != expected.level:
        return f"level {level} != expected {expected.level}"
    size = len(getattr(ct, "parts", ()))
    if size != expected.size:
        return f"size {size} != expected {expected.size}"
    domain = "eval" if ct.parts[0].is_eval else "coeff"
    if domain != expected.domain:
        return f"domain {domain!r} != expected {expected.domain!r}"
    scale = getattr(ct, "scale", None)
    if scale is not None and scale > 0 and expected.scale_log2 > 0:
        got = math.log2(scale)
        if abs(got - expected.scale_log2) > SCALE_LOG2_TOL:
            return (f"scale_log2 {got:.6f} != expected "
                    f"{expected.scale_log2:.6f}")
    return None


def load_entry(directory: Path, entry: CheckpointEntry) -> Any:
    """Load and fully validate one checkpointed ciphertext.

    Raises :class:`CheckpointError` on any of: missing/truncated/corrupt
    archive (via :class:`SerializationError`), journal-vs-archive digest
    mismatch, or abstract-state disagreement.
    """
    path = directory / entry.file_name
    try:
        ct = load_ciphertext(path)
    except FileNotFoundError as exc:
        raise CheckpointError(
            f"checkpoint archive {entry.file_name} missing: {exc}") from exc
    except SerializationError as exc:
        raise CheckpointError(
            f"checkpoint archive {entry.file_name} corrupt: {exc}") from exc
    digest = ciphertext_digest(ct)
    if digest != entry.digest:
        raise CheckpointError(
            f"checkpoint archive {entry.file_name} digest mismatch: "
            f"journal says {entry.digest[:12]}…, archive decodes to "
            f"{digest[:12]}…")
    mismatch = state_matches(ct, entry.state)
    if mismatch is not None:
        raise CheckpointError(
            f"checkpoint value v{entry.value_index} abstract-state "
            f"disagreement: {mismatch}")
    return ct
