"""Roofline analysis: are the accelerator's FHE operations compute- or
memory-bound?

For each ciphertext-level operation the model computes the *arithmetic
intensity* (lane operations per byte of scratchpad traffic) and compares
it with the machine balance (lane throughput over scratchpad bandwidth):
intensities below the balance point leave lanes starved — the regime
where adding VPUs stops helping and the paper's SRAM-reuse structure
(Fig. 1a) earns its area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (accel uses perf)
    from repro.accel.accelerator import Accelerator


@dataclass(frozen=True)
class RooflinePoint:
    """One operation placed on the roofline."""

    operation: str
    lane_ops: int
    bytes_moved: int
    machine_balance: float  # lane ops per byte at which the knee sits

    @property
    def arithmetic_intensity(self) -> float:
        return self.lane_ops / self.bytes_moved if self.bytes_moved else float("inf")

    @property
    def compute_bound(self) -> bool:
        return self.arithmetic_intensity >= self.machine_balance


def machine_balance(acc: Accelerator) -> float:
    """Lane ops per byte at peak: lane throughput / SRAM bandwidth."""
    ops_per_cycle = acc.num_vpus * acc.lanes
    bytes_per_cycle = acc.sram.words_per_cycle * 8
    return ops_per_cycle / bytes_per_cycle


def place_operation(acc: Accelerator, operation: str, n: int,
                    level: int) -> RooflinePoint:
    """Compute one operation's roofline position."""
    if operation == "hmult":
        reports = acc.schedule_hmult(n, level)
    elif operation == "hrot":
        reports = acc.schedule_hrot(n, level)
    elif operation == "hadd":
        reports = [acc.schedule_elementwise(n, level + 1)]
    else:
        raise ValueError(f"unknown operation {operation!r}")
    lane_ops = sum(
        sum(r.vpu_cycles) * acc.lanes for r in reports
    )
    bytes_moved = sum(
        r.kernel_instances * n * 2 * 8 for r in reports  # in + out per kernel
    )
    return RooflinePoint(operation, lane_ops, bytes_moved,
                         machine_balance(acc))


def roofline_table(acc: Accelerator, n: int = 4096,
                   level: int = 5) -> list[RooflinePoint]:
    """All three §II-A operations on the roofline."""
    return [place_operation(acc, op, n, level)
            for op in ("hadd", "hrot", "hmult")]


def render_roofline(points: list[RooflinePoint]) -> str:
    lines = [f"machine balance: {points[0].machine_balance:.2f} lane-ops/byte",
             f"{'op':6s} {'lane ops':>12s} {'bytes':>12s} {'intensity':>10s} "
             f"{'bound':>8s}"]
    for p in points:
        lines.append(
            f"{p.operation:6s} {p.lane_ops:12d} {p.bytes_moved:12d} "
            f"{p.arithmetic_intensity:10.2f} "
            f"{'compute' if p.compute_bound else 'memory':>8s}"
        )
    return "\n".join(lines)
