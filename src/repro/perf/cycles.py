"""Analytic cycle accounting for VPU operations (paper §V-C).

The model counts *vector cycles* — each cycle the VPU either retires one
fused NTT stage (network + butterflies, all lanes busy), one element-wise
pass, or one network-only pass:

* **compute**: every dimension's fused CG stages — ``(N/m) * log2(N)``
  cycles in total, which is exactly the ideal all-lanes-busy cycle count
  (``N/2 * log2 N`` butterflies over ``m/2`` butterfly pairs).
* **transpose**: the two-pass diagonal transpose moves every element
  through the network twice per dimension boundary —
  ``2 * (N/m) * (d-1)`` network-only cycles.  These cannot hide under
  compute because the fused stages already occupy the network; the
  element-wise twiddle passes *do* hide under them (multipliers are idle
  during transposes, and row-level pipelining overlaps the two).
* **drain**: each of the ``2d - 1`` phases (``d`` dimension sweeps,
  ``d-1`` transposes) refills the ``log2(m) + 2``-stage pipeline once.

The compute and transpose terms are validated instruction-for-
instruction against the executable compiler
(:mod:`repro.mapping.ntt`) in the test-suite; the drain term models the
pipeline behaviour a one-instruction-per-cycle executor cannot see.

Automorphisms take ``N/m`` single-traversal passes with every lane
carrying a useful element every cycle — 100% throughput, the Table III
right-hand column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ntt.decomposition import choose_dimensions


@dataclass(frozen=True)
class CycleReport:
    """Cycle breakdown of one operation on the VPU."""

    n: int
    m: int
    compute_cycles: int
    network_only_cycles: int
    drain_cycles: int
    ideal_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.network_only_cycles + self.drain_cycles

    @property
    def utilization(self) -> float:
        """Throughput utilization: ideal cycles over actual cycles."""
        return self.ideal_cycles / self.total_cycles


def pipeline_depth(m: int) -> int:
    """Depth of the lane/network pipeline: the physical stage count."""
    cg = 1 if m == 4 else 2
    return (m.bit_length() - 1) + cg


def ntt_cycle_model(n: int, m: int = 64) -> CycleReport:
    """Cycle model of a length-``n`` NTT on an ``m``-lane VPU."""
    dims = choose_dimensions(n, m)
    d = len(dims)
    rows = max(n // m, 1)
    log_n = n.bit_length() - 1
    compute = rows * log_n
    transpose = 2 * rows * (d - 1)
    drain = pipeline_depth(m) * (2 * d - 1)
    return CycleReport(
        n=n, m=m,
        compute_cycles=compute,
        network_only_cycles=transpose,
        drain_cycles=drain,
        ideal_cycles=compute,
    )


def automorphism_cycle_model(n: int, m: int = 64) -> CycleReport:
    """Cycle model of a length-``n`` automorphism: one network traversal
    per element, full throughput (no idle or repeated passes)."""
    rows = max(n // m, 1)
    return CycleReport(
        n=n, m=m,
        compute_cycles=rows,
        network_only_cycles=0,
        drain_cycles=0,
        ideal_cycles=rows,
    )


def baseline_automorphism_passes(n: int, m: int, design: str) -> int:
    """Network/buffer passes per length-``n`` automorphism for the
    baselines (the pass-count ablation).

    * ``ours`` / ``bts`` / ``ark`` / ``sharp``: one pass per column.
    * ``f1``: uniform shifts only — one masked pass per distinct shift
      distance in each column's affine map, up to m/2 per column.
    """
    from repro.automorphism.controls import affine_controls  # noqa: F401
    from repro.automorphism.decomposition import column_decompose
    from repro.automorphism.mapping import AffinePermutation
    from repro.baselines.f1 import affine_via_uniform_shifts

    cols = n // m
    if design in ("ours", "bts", "ark", "sharp"):
        return cols
    if design != "f1":
        raise ValueError(f"unknown design {design!r}")
    perm = AffinePermutation(n, 5 % n if (5 % n) % 2 else 3, 0)
    _, row_maps = column_decompose(perm, rows=m)
    return sum(len(affine_via_uniform_shifts(rm)) for rm in row_maps)
