"""Dynamic energy accounting for executed VPU programs.

The static model (:mod:`repro.hwmodel`) prices average power from
structure; this module walks the other direction: take the instruction
mix of an *executed* program (:class:`~repro.core.vpu.ExecutionStats`)
and integrate per-instruction energies built from the same technology
constants.  Dividing by runtime recovers an average power that should —
and, per the test-suite, does — land near the static model for
NTT-heavy programs, closing the loop between the behavioral and the
cost models.

At 1 GHz, 1 mW of average power equals 1 pJ per cycle, which keeps the
unit conversions trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.vpu import ExecutionStats
from repro.hwmodel import technology as tech
from repro.hwmodel.components import (
    barrett_multiplier_cost,
    modular_adder_cost,
    register_file_cost,
)
from repro.hwmodel.network_cost import our_network_cost


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one program run (picojoules)."""

    network_pj: float
    multiplier_pj: float
    adder_pj: float
    regfile_pj: float
    memory_pj: float
    cycles: int

    @property
    def total_pj(self) -> float:
        return (self.network_pj + self.multiplier_pj + self.adder_pj
                + self.regfile_pj + self.memory_pj)

    @property
    def average_power_mw(self) -> float:
        """Average power at 1 GHz (pJ/cycle = mW)."""
        return self.total_pj / self.cycles if self.cycles else 0.0


def per_cycle_energies(m: int, bits: int = tech.WORD_BITS) -> dict[str, float]:
    """Energy per fully-active cycle of each resource, in pJ.

    Static power (mW) at 1 GHz is energy (pJ) per cycle; the static
    network/lane numbers already embody realistic switching activity, so
    they transfer directly.
    """
    network = our_network_cost(m, bits).power_mw
    mult = barrett_multiplier_cost(bits).power_mw * m
    add = modular_adder_cost(bits).power_mw * m
    regfile = register_file_cost(bits=bits).power_mw * m
    sram_row = m * bits * tech.SRAM_ACCESS_POWER_PER_BIT_PORT
    return {
        "network_pass": network,
        "multipliers": mult,
        "adders": add,
        "regfile_access": regfile,
        "memory_row": sram_row,
    }


def estimate_program_energy(stats: ExecutionStats, m: int,
                            bits: int = tech.WORD_BITS) -> EnergyReport:
    """Integrate a run's instruction mix into an energy breakdown."""
    e = per_cycle_energies(m, bits)
    network_cycles = stats.network_passes
    mult_cycles = stats.multiplier_busy
    add_cycles = stats.adder_busy
    # Every instruction reads/writes the register file.
    regfile_cycles = stats.cycles
    memory_rows = stats.loads + stats.stores
    return EnergyReport(
        network_pj=network_cycles * e["network_pass"],
        multiplier_pj=mult_cycles * e["multipliers"],
        adder_pj=add_cycles * e["adders"],
        regfile_pj=regfile_cycles * e["regfile_access"],
        memory_pj=memory_rows * e["memory_row"],
        cycles=stats.cycles,
    )
