"""Performance models: throughput utilization of the VPU (Table III).

* :mod:`repro.perf.cycles` — analytic cycle accounting for NTT and
  automorphism programs, validated instruction-for-instruction against
  the executable compilers at sizes the VPU model can run.
* :mod:`repro.perf.utilization` — the Table III reproduction: throughput
  utilization over N = 2^10 .. 2^20, plus baseline pass-count
  comparisons.
"""

from repro.perf.cycles import (
    CycleReport,
    automorphism_cycle_model,
    ntt_cycle_model,
)
from repro.perf.energy import EnergyReport, estimate_program_energy
from repro.perf.roofline import (
    RooflinePoint,
    machine_balance,
    roofline_table,
)
from repro.perf.utilization import (
    PAPER_TABLE_III,
    table3_rows,
    utilization_report,
)

__all__ = [
    "CycleReport",
    "EnergyReport",
    "PAPER_TABLE_III",
    "RooflinePoint",
    "automorphism_cycle_model",
    "estimate_program_energy",
    "machine_balance",
    "ntt_cycle_model",
    "roofline_table",
    "table3_rows",
    "utilization_report",
]
