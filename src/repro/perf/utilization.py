"""Table III reproduction: throughput utilization of NTT and automorphism.

The paper evaluates N = 2^10 .. 2^20 on the default 64-lane VPU and
reports 74–85% lane utilization for NTTs (transposes occupy the network
without feeding the butterflies) and exactly 100% for automorphisms
(single-traversal passes).  The utilization dips whenever N crosses a
power of m = 64 (2^12 and 2^18) because the decomposition gains a
dimension and with it another round of transposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ntt.decomposition import choose_dimensions
from repro.perf.cycles import automorphism_cycle_model, ntt_cycle_model

#: Paper Table III: N -> (NTT utilization, automorphism utilization).
PAPER_TABLE_III = {
    2**10: (0.7477, 1.0),
    2**12: (0.8514, 1.0),
    2**14: (0.7763, 1.0),
    2**16: (0.7996, 1.0),
    2**18: (0.8181, 1.0),
    2**20: (0.8080, 1.0),
}


@dataclass(frozen=True)
class UtilizationRow:
    """One row of the reproduced Table III."""

    n: int
    dimensions: tuple[int, ...]
    ntt_utilization: float
    automorphism_utilization: float
    paper_ntt: float | None = None
    paper_automorphism: float | None = None

    @property
    def ntt_delta_pp(self) -> float | None:
        """Model minus paper, in percentage points."""
        if self.paper_ntt is None:
            return None
        return 100 * (self.ntt_utilization - self.paper_ntt)


def utilization_report(n: int, m: int = 64) -> UtilizationRow:
    """Compute one utilization row for a given transform length."""
    ntt = ntt_cycle_model(n, m)
    autom = automorphism_cycle_model(n, m)
    paper = PAPER_TABLE_III.get(n) if m == 64 else None
    return UtilizationRow(
        n=n,
        dimensions=tuple(choose_dimensions(n, m)),
        ntt_utilization=ntt.utilization,
        automorphism_utilization=autom.utilization,
        paper_ntt=paper[0] if paper else None,
        paper_automorphism=paper[1] if paper else None,
    )


def table3_rows(m: int = 64) -> list[UtilizationRow]:
    """Reproduce all rows of Table III."""
    return [utilization_report(n, m) for n in sorted(PAPER_TABLE_III)]


def format_table3(rows: list[UtilizationRow] | None = None) -> str:
    """Render the reproduced table next to the paper's numbers."""
    rows = rows if rows is not None else table3_rows()
    lines = [
        f"{'N':>8} {'dims':>16} {'NTT util':>9} {'paper':>7} {'delta':>7} "
        f"{'autom':>6} {'paper':>6}",
    ]
    for r in rows:
        dims = "x".join(str(d) for d in r.dimensions)
        paper_ntt = f"{100 * r.paper_ntt:6.2f}%" if r.paper_ntt else "    --"
        delta = f"{r.ntt_delta_pp:+5.1f}pp" if r.ntt_delta_pp is not None else "     --"
        paper_a = (f"{100 * r.paper_automorphism:5.0f}%"
                   if r.paper_automorphism else "   --")
        lines.append(
            f"2^{r.n.bit_length() - 1:<5} {dims:>16} "
            f"{100 * r.ntt_utilization:8.2f}% {paper_ntt} {delta} "
            f"{100 * r.automorphism_utilization:5.0f}% {paper_a}"
        )
    return "\n".join(lines)
