"""Homomorphic linear algebra: encrypted matrix-vector products.

These are the linear phases of CKKS bootstrapping (CoeffToSlot /
SlotToCoeff) and of private inference — and the workloads that make
HRot, hence the paper's automorphism hardware, the hot kernel:

* :func:`encrypted_matvec` — the Halevi–Shoup diagonal method:
  ``y = sum_d diag_d(W) * rot(x, d)``; one rotation per nonzero diagonal.
* :func:`encrypted_matvec_bsgs` — the baby-step/giant-step variant that
  cuts rotations from ``d`` to ``~2*sqrt(d)`` by pre-rotating diagonals,
  the optimization every bootstrapping implementation uses.

Both operate on a square ``dim x dim`` matrix acting on a vector that is
tiled across the slot ring (cyclic tiling makes slot rotations emulate
length-``dim`` rotations).
"""

from __future__ import annotations

import math

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext


def matrix_diagonal(matrix: np.ndarray, d: int) -> np.ndarray:
    """The d-th generalized diagonal: ``diag_d[i] = W[i][(i + d) % dim]``."""
    dim = matrix.shape[0]
    i = np.arange(dim)
    return matrix[i, (i + d) % dim]


def _tile(vec: np.ndarray, slots: int) -> np.ndarray:
    dim = len(vec)
    if slots % dim:
        raise ValueError(f"matrix dim {dim} must divide slot count {slots}")
    return np.tile(vec, slots // dim)


def required_rotations(dim: int, bsgs: bool = False) -> list[int]:
    """Galois keys a matvec needs (generate these up front)."""
    if not bsgs:
        return list(range(1, dim))
    baby = int(math.isqrt(dim))
    while dim % baby:
        baby -= 1
    giant = dim // baby
    return sorted(set(range(1, baby)) | {g * baby for g in range(1, giant)})


def encrypted_matvec(ctx: CkksContext, ct: Ciphertext,
                     matrix: np.ndarray) -> Ciphertext:
    """Diagonal-method ``W @ x``: ``dim - 1`` rotations."""
    dim = matrix.shape[0]
    if matrix.shape != (dim, dim):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    slots = ctx.params.slots
    acc = None
    for d in range(dim):
        diag = matrix_diagonal(matrix, d)
        if not np.any(diag):
            continue
        rotated = ctx.rotate(ct, d) if d else ct
        term = ctx.multiply_plain(rotated, _tile(diag, slots))
        acc = term if acc is None else ctx.add(acc, term)
    if acc is None:
        return ctx.multiply_plain(ct, np.zeros(slots))
    return acc


def encrypted_matvec_bsgs(ctx: CkksContext, ct: Ciphertext,
                          matrix: np.ndarray) -> Ciphertext:
    """Baby-step/giant-step ``W @ x``: ``~2*sqrt(dim)`` rotations.

    Decompose ``d = g*n1 + b``; then
    ``y = sum_g rot( sum_b rot(diag_{g*n1+b}, -g*n1) * rot(x, b), g*n1 )``
    — the inner rotations of ``x`` are shared across all ``g``.
    """
    dim = matrix.shape[0]
    if matrix.shape != (dim, dim):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    slots = ctx.params.slots
    baby = int(math.isqrt(dim))
    while dim % baby:
        baby -= 1
    giant = dim // baby

    # Baby steps: rot(x, b) for b in [0, baby).
    baby_rotations = [ct]
    for b in range(1, baby):
        baby_rotations.append(ctx.rotate(ct, b))

    acc = None
    for g in range(giant):
        inner = None
        for b in range(baby):
            diag = matrix_diagonal(matrix, g * baby + b)
            if not np.any(diag):
                continue
            # Pre-rotate the diagonal by -g*baby so the outer rotation
            # lands it in place.
            pre = np.roll(diag, g * baby)
            term = ctx.multiply_plain(baby_rotations[b], _tile(pre, slots))
            inner = term if inner is None else ctx.add(inner, term)
        if inner is None:
            continue
        outer = ctx.rotate(inner, g * baby) if g else inner
        acc = outer if acc is None else ctx.add(acc, outer)
    if acc is None:
        return ctx.multiply_plain(ct, np.zeros(slots))
    return acc
