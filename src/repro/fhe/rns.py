"""Residue-number-system machinery.

:class:`RnsBasis` bundles a prime chain plus one special prime and
precomputes what the digit-decomposition keyswitch needs: the CRT
idempotents ``B_i`` of the *full* basis (``B_i === 1 mod q_i``,
``=== 0 mod q_j``) reduced modulo every prime.  Using idempotents as the
gadget makes the keyswitch keys level-agnostic: a partial sum
``sum_i [x]_{q_i} * B_i`` over any level prefix is still congruent to
``x`` modulo that prefix's composite modulus.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.arith.modular import mod_inverse


class RnsBasis:
    """A chain of NTT primes plus one keyswitch special prime."""

    def __init__(self, primes: tuple[int, ...], special_prime: int):
        if len(set(primes)) != len(primes) or special_prime in primes:
            raise ValueError("RNS primes must be pairwise distinct")
        self.primes = tuple(primes)
        self.special_prime = special_prime
        self.levels = len(primes)
        #: Full composite modulus Q = prod(primes).
        self.big_q = 1
        for q in primes:
            self.big_q *= q
        # CRT idempotents of the full chain basis: B_i = Qhat_i * inv.
        self._idempotents = []
        for i, q in enumerate(primes):
            q_hat = self.big_q // q
            b = q_hat * mod_inverse(q_hat, q)
            self._idempotents.append(b)
        #: B_i mod q_j for all (i, j): shape (levels, levels) uint64.
        self.idempotent_mod_chain = np.array(
            [[b % q for q in primes] for b in self._idempotents],
            dtype=np.uint64,
        )
        #: B_i mod special_prime, shape (levels,).
        self.idempotent_mod_special = np.array(
            [b % special_prime for b in self._idempotents], dtype=np.uint64
        )
        #: special_prime^{-1} mod q_j for ModDown.
        self.special_inv_mod_chain = np.array(
            [mod_inverse(special_prime, q) for q in primes], dtype=np.uint64
        )

    def prime_inv_mod_others(self, dropped: int) -> np.ndarray:
        """``q_dropped^{-1} mod q_j`` for ``j < dropped`` (rescaling)."""
        qd = self.primes[dropped]
        return np.array([mod_inverse(qd, q) for q in self.primes[:dropped]],
                        dtype=np.uint64)

    # -- integer <-> RNS conversions (golden-model helpers) -----------------

    def to_rns(self, value: int, level: int) -> list[int]:
        """Residues of an integer modulo ``q_0..q_level``."""
        return [value % q for q in self.primes[:level + 1]]

    def from_rns(self, residues: list[int], level: int) -> int:
        """CRT reconstruction over ``q_0..q_level`` into ``[0, Q_level)``."""
        q_prod = 1
        for q in self.primes[:level + 1]:
            q_prod *= q
        total = 0
        for i, (r, q) in enumerate(zip(residues, self.primes[:level + 1])):
            q_hat = q_prod // q
            total += int(r) * q_hat * mod_inverse(q_hat, q)
        return total % q_prod

    def centered(self, residues: list[int], level: int) -> int:
        """CRT reconstruction into the balanced range ``(-Q/2, Q/2]``."""
        q_prod = 1
        for q in self.primes[:level + 1]:
            q_prod *= q
        v = self.from_rns(residues, level)
        return v - q_prod if v > q_prod // 2 else v


@lru_cache(maxsize=16)
def get_basis(primes: tuple[int, ...], special_prime: int) -> RnsBasis:
    """Cached basis lookup (one per parameter set)."""
    return RnsBasis(primes, special_prime)
