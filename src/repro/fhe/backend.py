"""Pluggable kernel backends for the FHE layer.

Every polynomial-level kernel the accelerator cares about — forward and
inverse negacyclic NTTs and evaluation-domain automorphisms — funnels
through the active backend:

* :class:`NumpyBackend` — the fast vectorized golden path.
* :class:`VpuBackend` — routes the kernels through the behavioral VPU
  model (compiled ISA programs executed on the mux-level network), so a
  whole CKKS workload can be run "on the hardware" and checked
  bit-for-bit against the numpy path.

The unit of dispatch is the full ``(L, n)`` residue matrix of a
double-CRT polynomial: the ``*_batch`` methods take every limb at once
(the paper's batch shape — a keyswitch is "per digit, a batch of NTTs",
§II-A), and the legacy single-row methods remain for golden-model and
mapping tests.  On the numpy path a batch is one stacked vectorized
transform; on the VPU path it is a replay of one cached compiled
program per limb — programs are compiled once per ``(kernel, n, m, q)``
and counted in ``program_compilations``.

Swap with :func:`set_backend`, or temporarily with :func:`use_backend`.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.automorphism.mapping import galois_eval_permutation
from repro.ntt.negacyclic import NegacyclicNtt, get_batched_ntt

_NTT_CACHE: dict[tuple[int, int], NegacyclicNtt] = {}


def _ntt(n: int, q: int) -> NegacyclicNtt:
    key = (n, q)
    if key not in _NTT_CACHE:
        _NTT_CACHE[key] = NegacyclicNtt(n, q)
    return _NTT_CACHE[key]


class NumpyBackend:
    """Vectorized numpy kernels (the default)."""

    name = "numpy"

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        """Negacyclic coefficients -> natural-order evaluation values."""
        return _ntt(len(coeffs), q).forward(coeffs)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        """Natural-order evaluation values -> coefficients."""
        return _ntt(len(values), q).inverse(values)

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        """Apply the Galois action ``X -> X^k`` in the evaluation domain."""
        perm = galois_eval_permutation(len(values), galois_k)
        return perm.apply(values)

    # -- limb-batched kernels -------------------------------------------------

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        """Forward-NTT every limb of an ``(L, n)`` residue matrix in one
        stacked dispatch (row ``i`` modulo ``primes[i]``)."""
        residues = np.asarray(residues)
        if all(q < (1 << 31) for q in primes):
            return get_batched_ntt(residues.shape[1], primes).forward(residues)
        return np.stack([self.forward_ntt(residues[i], q)
                         for i, q in enumerate(primes)])

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        """Inverse-NTT every limb of an ``(L, n)`` value matrix at once."""
        values = np.asarray(values)
        if all(q < (1 << 31) for q in primes):
            return get_batched_ntt(values.shape[1], primes).inverse(values)
        return np.stack([self.inverse_ntt(values[i], q)
                         for i, q in enumerate(primes)])

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        """Galois action on every limb: the permutation is prime-independent,
        so the whole matrix moves in one fancy-indexed assignment."""
        values = np.asarray(values)
        perm = galois_eval_permutation(values.shape[1], galois_k)
        out = np.empty_like(values)
        out[:, perm.destinations()] = values
        return out


class VpuBackend:
    """Kernels executed on the behavioral VPU model.

    Works for any power-of-two ``n >= m`` (full-width dimensions peel
    off recursively; ragged tails run in the packed grouped-CG layout);
    automorphisms work for any ``n`` divisible by ``m``.  The psi-folding
    scalings of the negacyclic wrap run as element-wise twiddle work,
    which the real VPU also does in its element-wise mode.

    Compiled ISA programs are cached per ``(kernel, n, m, q)`` — limb
    batches replay one program per limb instead of recompiling it, so
    ``program_compilations`` grows with the number of *distinct* kernels
    while ``kernel_invocations`` grows with the work actually executed.
    """

    name = "vpu"

    def __init__(self, m: int = 16, verify_programs: bool | None = None):
        from repro.core import VectorProcessingUnit
        from repro.mapping import required_registers

        self.m = m
        self._vpu = VectorProcessingUnit(
            m=m, q=3, regfile_entries=required_registers(m),
            memory_rows=8,
        )
        self.kernel_invocations = 0
        self.program_compilations = 0
        self.programs_verified = 0
        if verify_programs is None:
            import os
            verify_programs = bool(os.environ.get("REPRO_VERIFY_PROGRAMS"))
        #: Debug hook: interval-verify every newly compiled micro-program
        #: (repro.analysis.program_check) before it enters the cache.
        self.verify_programs = verify_programs
        self._programs: dict[tuple, object] = {}

    def _prepare(self, n: int, q: int):
        from repro.core import VectorMemory

        self._vpu.set_modulus(q)
        needed = 2 * max(n // self.m, 2)
        if self._vpu.memory.rows < needed:
            self._vpu.memory = VectorMemory(self.m, needed)

    def _program(self, kind: str, n: int, q: int, galois_k: int | None = None):
        """Fetch (or compile once) the program for one kernel shape.

        Automorphism programs are pure permutations — independent of the
        modulus — so their cache key drops ``q`` and one program serves
        every limb of a batch.
        """
        key = (kind, n, self.m, None if kind == "auto" else q, galois_k)
        prog = self._programs.get(key)
        if prog is None:
            from repro.mapping import compile_automorphism
            from repro.mapping.ntt import (
                compile_negacyclic_intt,
                compile_negacyclic_ntt,
            )

            if kind == "ntt":
                prog = compile_negacyclic_ntt(n, self.m, q)
            elif kind == "intt":
                prog = compile_negacyclic_intt(n, self.m, q)
            elif kind == "auto":
                perm = galois_eval_permutation(n, galois_k)
                prog = compile_automorphism(perm, self.m)
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown kernel kind {kind!r}")
            if self.verify_programs:
                # Raises ProgramVerificationError before a bad program
                # can enter the cache (and be replayed limb after limb).
                from repro.analysis.program_check import check_program

                check_program(prog, q=q, m=self.m).raise_on_error()
                self.programs_verified += 1
            self.program_compilations += 1
            self._programs[key] = prog
        return prog

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_for_ntt, unpack_ntt_result

        n = len(coeffs)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_for_ntt(
            np.asarray(coeffs, dtype=np.uint64), self.m)
        # psi-folding runs on the VPU too (element-wise twiddle mode).
        self._vpu.execute(self._program("ntt", n, q))
        self.kernel_invocations += 1
        # Natural-order negacyclic values, matching NegacyclicNtt.forward.
        return unpack_ntt_result(self._vpu.memory, n, self.m)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_ntt_values

        n = len(values)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_ntt_values(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(self._program("intt", n, q))
        self.kernel_invocations += 1
        rows = self._vpu.memory.data[:n // self.m]
        return rows.T.reshape(-1).copy()  # undo pack_for_ntt layout

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        from repro.mapping import (
            automorphism_layout_pack,
            automorphism_layout_unpack,
        )

        n = len(values)
        self._prepare(n, q)
        cols = n // self.m
        self._vpu.memory.data[:cols] = automorphism_layout_pack(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(self._program("auto", n, q, galois_k))
        self.kernel_invocations += 1
        return automorphism_layout_unpack(self._vpu.memory, n, self.m,
                                          base_row=cols)

    # -- limb-batched kernels -------------------------------------------------
    #
    # The VPU model is a single-polynomial engine, so a batch replays the
    # cached program once per limb — the compile cost is paid once per
    # (kernel, n, m, q) while the data movement stays per limb, exactly
    # the replay schedule a real dispatch queue would issue.

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        residues = np.asarray(residues)
        return np.stack([self.forward_ntt(residues[i], q)
                         for i, q in enumerate(primes)])

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        return np.stack([self.inverse_ntt(values[i], q)
                         for i, q in enumerate(primes)])

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        return np.stack([self.automorphism_eval(values[i], galois_k, q)
                         for i, q in enumerate(primes)])


_ACTIVE: NumpyBackend | VpuBackend = NumpyBackend()


def get_backend():
    """The backend all FHE polynomial kernels currently use."""
    return _ACTIVE


def set_backend(backend) -> None:
    """Install a kernel backend globally."""
    global _ACTIVE
    _ACTIVE = backend


@contextmanager
def use_backend(backend):
    """Temporarily install a backend (restores the previous on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    try:
        yield backend
    finally:
        _ACTIVE = previous
