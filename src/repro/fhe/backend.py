"""Pluggable kernel backends for the FHE layer.

Every polynomial-level kernel the accelerator cares about — forward and
inverse negacyclic NTTs and evaluation-domain automorphisms — funnels
through the active backend:

* :class:`NumpyBackend` — the fast vectorized golden path.
* :class:`VpuBackend` — routes the kernels through the behavioral VPU
  model (compiled ISA programs executed on the mux-level network), so a
  whole CKKS workload can be run "on the hardware" and checked
  bit-for-bit against the numpy path.

Swap with :func:`set_backend`, or temporarily with :func:`use_backend`.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.automorphism.mapping import AffinePermutation, galois_eval_permutation
from repro.ntt.negacyclic import NegacyclicNtt

_NTT_CACHE: dict[tuple[int, int], NegacyclicNtt] = {}


def _ntt(n: int, q: int) -> NegacyclicNtt:
    key = (n, q)
    if key not in _NTT_CACHE:
        _NTT_CACHE[key] = NegacyclicNtt(n, q)
    return _NTT_CACHE[key]


class NumpyBackend:
    """Vectorized numpy kernels (the default)."""

    name = "numpy"

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        """Negacyclic coefficients -> natural-order evaluation values."""
        return _ntt(len(coeffs), q).forward(coeffs)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        """Natural-order evaluation values -> coefficients."""
        return _ntt(len(values), q).inverse(values)

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        """Apply the Galois action ``X -> X^k`` in the evaluation domain."""
        perm = galois_eval_permutation(len(values), galois_k)
        return perm.apply(values)


class VpuBackend:
    """Kernels executed on the behavioral VPU model.

    Works for any power-of-two ``n >= m`` (full-width dimensions peel
    off recursively; ragged tails run in the packed grouped-CG layout);
    automorphisms work for any ``n`` divisible by ``m``.  The psi-folding
    scalings of the negacyclic wrap run as element-wise twiddle work,
    which the real VPU also does in its element-wise mode.
    """

    name = "vpu"

    def __init__(self, m: int = 16):
        from repro.core import VectorProcessingUnit
        from repro.mapping import required_registers

        self.m = m
        self._vpu = VectorProcessingUnit(
            m=m, q=3, regfile_entries=required_registers(m),
            memory_rows=8,
        )
        self.kernel_invocations = 0

    def _prepare(self, n: int, q: int):
        from repro.core import VectorMemory

        self._vpu.set_modulus(q)
        needed = 2 * max(n // self.m, 2)
        if self._vpu.memory.rows < needed:
            self._vpu.memory = VectorMemory(self.m, needed)

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_for_ntt, unpack_ntt_result
        from repro.mapping.ntt import compile_negacyclic_ntt

        n = len(coeffs)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_for_ntt(
            np.asarray(coeffs, dtype=np.uint64), self.m)
        # psi-folding runs on the VPU too (element-wise twiddle mode).
        self._vpu.execute(compile_negacyclic_ntt(n, self.m, q))
        self.kernel_invocations += 1
        # Natural-order negacyclic values, matching NegacyclicNtt.forward.
        return unpack_ntt_result(self._vpu.memory, n, self.m)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_ntt_values
        from repro.mapping.ntt import compile_negacyclic_intt

        n = len(values)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_ntt_values(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(compile_negacyclic_intt(n, self.m, q))
        self.kernel_invocations += 1
        rows = self._vpu.memory.data[:n // self.m]
        return rows.T.reshape(-1).copy()  # undo pack_for_ntt layout

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        from repro.mapping import (
            automorphism_layout_pack,
            automorphism_layout_unpack,
            compile_automorphism,
        )

        n = len(values)
        perm = galois_eval_permutation(n, galois_k)
        self._prepare(n, q)
        cols = n // self.m
        self._vpu.memory.data[:cols] = automorphism_layout_pack(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(compile_automorphism(perm, self.m))
        self.kernel_invocations += 1
        return automorphism_layout_unpack(self._vpu.memory, n, self.m,
                                          base_row=cols)


_ACTIVE: NumpyBackend | VpuBackend = NumpyBackend()


def get_backend():
    """The backend all FHE polynomial kernels currently use."""
    return _ACTIVE


def set_backend(backend) -> None:
    """Install a kernel backend globally."""
    global _ACTIVE
    _ACTIVE = backend


@contextmanager
def use_backend(backend):
    """Temporarily install a backend (restores the previous on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    try:
        yield backend
    finally:
        _ACTIVE = previous
