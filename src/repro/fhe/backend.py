"""Pluggable kernel backends for the FHE layer.

Every polynomial-level kernel the accelerator cares about — forward and
inverse negacyclic NTTs and evaluation-domain automorphisms — funnels
through the active backend:

* :class:`NumpyBackend` — the fast vectorized golden path.
* :class:`repro.kernels.CompiledBackend` — fused JIT kernels (Numba or
  a runtime-compiled C extension): the whole transform per dispatch,
  bit-identical to the numpy path, falling back to it whenever a
  provider or an eligibility gate is missing.
* :class:`VpuBackend` — routes the kernels through the behavioral VPU
  model (compiled ISA programs executed on the mux-level network), so a
  whole CKKS workload can be run "on the hardware" and checked
  bit-for-bit against the numpy path.
* :class:`IntegrityBackend` — wraps any of the above with the ABFT
  runtime integrity layer: O(n) linear checksums after every batched
  kernel, policy-driven bounded replay, compiled-program quarantine and
  graceful degradation down to the golden per-row path
  (:mod:`repro.fault`).

The unit of dispatch is the full ``(L, n)`` residue matrix of a
double-CRT polynomial: the ``*_batch`` methods take every limb at once
(the paper's batch shape — a keyswitch is "per digit, a batch of NTTs",
§II-A), and the legacy single-row methods remain for golden-model and
mapping tests.  On the numpy path a batch is one stacked vectorized
transform; on the VPU path it is a replay of one cached compiled
program per limb — programs are compiled once per ``(kernel, n, m, q)``
and counted in ``program_compilations``.

Swap with :func:`set_backend`, or temporarily with :func:`use_backend`;
the process default honors ``REPRO_BACKEND=numpy|compiled|vpu``
(:func:`backend_from_env`).
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
from contextlib import contextmanager

import numpy as np

from repro.automorphism.mapping import galois_eval_permutation
from repro.fault.injector import current_fault_hook
from repro.fault.integrity import AbftChecker
from repro.fault.policy import IntegrityPolicy
from repro.ntt.negacyclic import NegacyclicNtt, get_batched_ntt
from repro.obs import current_obs_hook

_NTT_CACHE: dict[tuple[int, int], NegacyclicNtt] = {}
_NTT_CACHE_LOCK = threading.Lock()


def _ntt(n: int, q: int) -> NegacyclicNtt:
    # Lock-protected lookup-and-build: the serving layer hits this cache
    # from overlapping tasks, and each (n, q) must be built exactly once.
    key = (n, q)
    with _NTT_CACHE_LOCK:
        ntt = _NTT_CACHE.get(key)
        if ntt is None:
            ntt = _NTT_CACHE[key] = NegacyclicNtt(n, q)
    return ntt


class NumpyBackend:
    """Vectorized numpy kernels (the default).

    ``mode`` selects the rung of the integrity layer's degradation
    ladder this instance runs at:

    * ``"fast"`` — the default: Shoup/unclamped batched stage kernels.
    * ``"clamped"`` — batched, but every butterfly product strictly
      reduced (no Shoup companions, no unclamped DIT).
    * ``"golden"`` — per-row :class:`NegacyclicNtt` reference, the
      slowest and simplest path.
    """

    name = "numpy"
    #: Class-level default so subclasses overriding __init__ (test
    #: doubles that count kernel calls) inherit the fast path.
    mode = "fast"

    def __init__(self, mode: str = "fast"):
        if mode not in ("fast", "clamped", "golden"):
            raise ValueError(f"unknown NumpyBackend mode {mode!r}")
        self.mode = mode

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        """Negacyclic coefficients -> natural-order evaluation values."""
        return _ntt(len(coeffs), q).forward(coeffs)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        """Natural-order evaluation values -> coefficients."""
        return _ntt(len(values), q).inverse(values)

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        """Apply the Galois action ``X -> X^k`` in the evaluation domain."""
        perm = galois_eval_permutation(len(values), galois_k)
        return perm.apply(values)

    # -- limb-batched kernels -------------------------------------------------

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        """Forward-NTT every limb of an ``(L, n)`` residue matrix in one
        stacked dispatch (row ``i`` modulo ``primes[i]``)."""
        residues = np.asarray(residues)
        if self.mode != "golden" and all(q < (1 << 31) for q in primes):
            ntt = get_batched_ntt(residues.shape[1], primes,
                                  self.mode == "clamped")
            return ntt.forward(residues)
        return np.stack([self.forward_ntt(residues[i], q)
                         for i, q in enumerate(primes)])

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        """Inverse-NTT every limb of an ``(L, n)`` value matrix at once."""
        values = np.asarray(values)
        if self.mode != "golden" and all(q < (1 << 31) for q in primes):
            ntt = get_batched_ntt(values.shape[1], primes,
                                  self.mode == "clamped")
            return ntt.inverse(values)
        return np.stack([self.inverse_ntt(values[i], q)
                         for i, q in enumerate(primes)])

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        """Galois action on every limb: the permutation is prime-independent,
        so the whole matrix moves in one fancy-indexed assignment."""
        values = np.asarray(values)
        perm = galois_eval_permutation(values.shape[1], galois_k)
        out = np.empty_like(values)
        out[:, perm.destinations()] = values
        return out


class ProgramQuarantinedError(RuntimeError):
    """A kernel resolved to a quarantined compiled program.

    Raised by :meth:`VpuBackend._program` after the integrity layer
    blacklisted the program (repeated checksum failures); callers are
    expected to degrade to a software path rather than replay it.
    """


class VpuBackend:
    """Kernels executed on the behavioral VPU model.

    Works for any power-of-two ``n >= m`` (full-width dimensions peel
    off recursively; ragged tails run in the packed grouped-CG layout);
    automorphisms work for any ``n`` divisible by ``m``.  The psi-folding
    scalings of the negacyclic wrap run as element-wise twiddle work,
    which the real VPU also does in its element-wise mode.

    Compiled ISA programs are cached per ``(kernel, n, m, q)`` — limb
    batches replay one program per limb instead of recompiling it, so
    ``program_compilations`` grows with the number of *distinct* kernels
    while ``kernel_invocations`` grows with the work actually executed.
    """

    name = "vpu"

    def __init__(self, m: int = 16, verify_programs: bool | None = None):
        from repro.core import VectorProcessingUnit
        from repro.mapping import required_registers

        self.m = m
        self._vpu = VectorProcessingUnit(
            m=m, q=3, regfile_entries=required_registers(m),
            memory_rows=8,
        )
        self.kernel_invocations = 0
        self.program_compilations = 0
        self.programs_verified = 0
        #: Compiled-program cache hit/miss counters.  Unlike
        #: ``program_compilations`` (the lifetime experiment record)
        #: these reset with :meth:`clear_caches`, tracking the cache
        #: *instance* — the figures the metrics registry mirrors.
        self.program_cache_hits = 0
        self.program_cache_misses = 0
        if verify_programs is None:
            import os
            verify_programs = bool(os.environ.get("REPRO_VERIFY_PROGRAMS"))
        #: Debug hook: interval-verify every newly compiled micro-program
        #: (repro.analysis.program_check) before it enters the cache.
        self.verify_programs = verify_programs
        self._programs: dict[tuple, object] = {}
        self._quarantined: set[tuple] = set()
        #: Guards the compiled-program cache and quarantine set (the
        #: serving layer shares one backend across overlapping tasks;
        #: per-key compilation must happen exactly once).  RLock so
        #: clear/quarantine paths may nest.
        self._cache_lock = threading.RLock()

    @property
    def vpu(self):
        """The underlying behavioral VPU (fault hooks install here)."""
        return self._vpu

    def _prepare(self, n: int, q: int):
        self._vpu.set_modulus(q)
        needed = 2 * max(n // self.m, 2)
        if self._vpu.memory.rows < needed:
            # resize_memory keeps any installed fault hook attached.
            self._vpu.resize_memory(needed)

    def _key(self, kind: str, n: int, q: int,
             galois_k: int | None = None) -> tuple:
        return (kind, n, self.m, None if kind == "auto" else q, galois_k)

    def invalidate_program(self, kind: str, n: int, q: int,
                           galois_k: int | None = None) -> bool:
        """Drop one cached compiled program (recompiled on next use) —
        the integrity layer's first response to a failed check, since
        the cached artifact itself may be the poisoned state."""
        with self._cache_lock:
            return self._programs.pop(self._key(kind, n, q, galois_k),
                                      None) is not None

    def quarantine_program(self, kind: str, n: int, q: int,
                           galois_k: int | None = None) -> None:
        """Blacklist a compiled program: dropped now and refused later
        (:class:`ProgramQuarantinedError`) until :meth:`clear_caches`."""
        key = self._key(kind, n, q, galois_k)
        with self._cache_lock:
            self._programs.pop(key, None)
            self._quarantined.add(key)

    @property
    def quarantined_programs(self) -> tuple[tuple, ...]:
        with self._cache_lock:
            return tuple(sorted(self._quarantined, key=repr))

    def clear_caches(self) -> None:
        """Forget every compiled program, lift all quarantines, and
        zero the cache hit/miss counters (a fresh cache instance)."""
        with self._cache_lock:
            self._programs.clear()
            self._quarantined.clear()
            self.program_cache_hits = 0
            self.program_cache_misses = 0
        obs = current_obs_hook()
        if obs is not None:
            obs.count("backend.program_cache.clears")
            self._publish_cache_metrics(obs)

    def _publish_cache_metrics(self, obs) -> None:
        """Mirror the cache/quarantine state into the metrics registry
        (only ever called through a guarded obs hook)."""
        obs.gauge("backend.program_cache.hits", self.program_cache_hits)
        obs.gauge("backend.program_cache.misses", self.program_cache_misses)
        obs.gauge("backend.program_cache.size", len(self._programs))
        obs.gauge("backend.quarantined_programs", len(self._quarantined))

    def _program(self, kind: str, n: int, q: int, galois_k: int | None = None):
        """Fetch (or compile once) the program for one kernel shape.

        Automorphism programs are pure permutations — independent of the
        modulus — so their cache key drops ``q`` and one program serves
        every limb of a batch.
        """
        key = self._key(kind, n, q, galois_k)
        obs = current_obs_hook()
        with self._cache_lock:
            if key in self._quarantined:
                if obs is not None:
                    obs.count("backend.program_cache.quarantine_refusals")
                raise ProgramQuarantinedError(
                    f"compiled program {key} is quarantined after detected "
                    f"corruption")
            prog = self._programs.get(key)
            if prog is not None:
                self.program_cache_hits += 1
            else:
                self.program_cache_misses += 1
            if obs is not None:
                obs.count("backend.program_cache.hit" if prog is not None
                          else "backend.program_cache.miss")
            if prog is None:
                from repro.mapping import compile_automorphism
                from repro.mapping.ntt import (
                    compile_negacyclic_intt,
                    compile_negacyclic_ntt,
                )

                if kind == "ntt":
                    prog = compile_negacyclic_ntt(n, self.m, q)
                elif kind == "intt":
                    prog = compile_negacyclic_intt(n, self.m, q)
                elif kind == "auto":
                    perm = galois_eval_permutation(n, galois_k)
                    prog = compile_automorphism(perm, self.m)
                else:  # pragma: no cover - internal misuse
                    raise ValueError(f"unknown kernel kind {kind!r}")
                if self.verify_programs:
                    # Raises ProgramVerificationError before a bad program
                    # can enter the cache (and be replayed limb after limb).
                    from repro.analysis.program_check import check_program

                    check_program(prog, q=q, m=self.m).raise_on_error()
                    self.programs_verified += 1
                self.program_compilations += 1
                self._programs[key] = prog
        if obs is not None:
            self._publish_cache_metrics(obs)
        return prog

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_for_ntt, unpack_ntt_result

        n = len(coeffs)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.kernel.ntt", cat="kernel", n=n, q=q)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_for_ntt(
            np.asarray(coeffs, dtype=np.uint64), self.m)
        # psi-folding runs on the VPU too (element-wise twiddle mode).
        self._vpu.execute(self._program("ntt", n, q))
        self.kernel_invocations += 1
        if obs is not None:
            obs.count("backend.kernels.ntt")
            obs.end()
        # Natural-order negacyclic values, matching NegacyclicNtt.forward.
        return unpack_ntt_result(self._vpu.memory, n, self.m)

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        from repro.mapping import pack_ntt_values

        n = len(values)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.kernel.intt", cat="kernel", n=n, q=q)
        self._prepare(n, q)
        self._vpu.memory.data[:n // self.m] = pack_ntt_values(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(self._program("intt", n, q))
        self.kernel_invocations += 1
        if obs is not None:
            obs.count("backend.kernels.intt")
            obs.end()
        rows = self._vpu.memory.data[:n // self.m]
        return rows.T.reshape(-1).copy()  # undo pack_for_ntt layout

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        from repro.mapping import (
            automorphism_layout_pack,
            automorphism_layout_unpack,
        )

        n = len(values)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.kernel.auto", cat="kernel", n=n, q=q,
                      galois_k=galois_k)
        self._prepare(n, q)
        cols = n // self.m
        self._vpu.memory.data[:cols] = automorphism_layout_pack(
            np.asarray(values, dtype=np.uint64), self.m)
        self._vpu.execute(self._program("auto", n, q, galois_k))
        self.kernel_invocations += 1
        if obs is not None:
            obs.count("backend.kernels.auto")
            obs.end()
        return automorphism_layout_unpack(self._vpu.memory, n, self.m,
                                          base_row=cols)

    # -- limb-batched kernels -------------------------------------------------
    #
    # The VPU model is a single-polynomial engine, so a batch replays the
    # cached program once per limb — the compile cost is paid once per
    # (kernel, n, m, q) while the data movement stays per limb, exactly
    # the replay schedule a real dispatch queue would issue.

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        residues = np.asarray(residues)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.batch.ntt", cat="kernel", limbs=len(primes),
                      n=residues.shape[1])
        out = np.stack([self.forward_ntt(residues[i], q)
                        for i, q in enumerate(primes)])
        if obs is not None:
            obs.end()
        return out

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.batch.intt", cat="kernel", limbs=len(primes),
                      n=values.shape[1])
        out = np.stack([self.inverse_ntt(values[i], q)
                        for i, q in enumerate(primes)])
        if obs is not None:
            obs.end()
        return out

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        values = np.asarray(values)
        obs = current_obs_hook()
        if obs is not None:
            obs.begin("vpu.batch.auto", cat="kernel", limbs=len(primes),
                      n=values.shape[1], galois_k=galois_k)
        out = np.stack([self.automorphism_eval(values[i], galois_k, q)
                        for i, q in enumerate(primes)])
        if obs is not None:
            obs.end()
        return out


class IntegrityBackend:
    """The runtime ABFT integrity layer, wrapping any kernel backend.

    Every batched kernel dispatch is verified after the fact with an
    O(n) algorithm-based check (:class:`~repro.fault.integrity
    .AbftChecker`): random-combination checksums for NTT batches, exact
    permutation replay for automorphisms.  What happens on a failed
    check is the :class:`~repro.fault.policy.IntegrityPolicy`:

    * ``OFF`` — no checks, no staging copies: bit-identical dispatch
      straight to the wrapped backend.
    * ``DETECT`` — count and flag, keep the result.
    * ``DETECT_RETRY`` — bounded replay (``max_retries``), invalidating
      the wrapped backend's cached compiled program first.
    * ``DETECT_DEGRADE`` — replay, then quarantine the compiled program
      (after ``quarantine_threshold`` failures) and walk the ladder:
      level 0 = wrapped backend, level 1 = clamped numpy batched path,
      level 2 = golden per-row path.  Degraded levels bypass the
      dram/sram staging models — the redundant re-read path.

    Optional ``dram``/``sram`` models stage inputs through
    :meth:`DramModel.transfer`/:meth:`OnChipSram.stage`, which is where
    buffer-site fault injection lands; checksums are taken from the
    *pristine* caller array (checksummed at the producer), so staging
    corruption is detectable.
    """

    name = "integrity"

    def __init__(self, inner=None,
                 policy: IntegrityPolicy | str = IntegrityPolicy.DETECT_RETRY,
                 *, seed: int = 0, max_retries: int = 2,
                 quarantine_threshold: int = 2, dram=None, sram=None):
        self.inner = NumpyBackend() if inner is None else inner
        self.policy = IntegrityPolicy.parse(policy)
        self.checker = AbftChecker(seed)
        self.max_retries = max_retries
        self.quarantine_threshold = quarantine_threshold
        self.dram = dram
        self.sram = sram
        self.detections = 0
        self.corrected = 0
        self.retries = 0
        self.flagged = 0
        self.degrade_level = 0
        self.degradations = 0
        self.keyswitch_detections = 0
        self.keyswitch_recomputed = 0
        self.dram_ns = 0.0
        self.sram_cycles = 0
        self._failures: dict[tuple, int] = {}
        self._clamped: NumpyBackend | None = None
        self._golden: NumpyBackend | None = None

    # -- degradation ladder ------------------------------------------------

    def _level_backend(self, level: int):
        if level == 0:
            return self.inner
        if level == 1:
            if self._clamped is None:
                self._clamped = NumpyBackend(mode="clamped")
            return self._clamped
        if self._golden is None:
            self._golden = NumpyBackend(mode="golden")
        return self._golden

    def _degrade(self) -> None:
        self.degrade_level = min(self.degrade_level + 1, 2)
        self.degradations += 1
        obs = current_obs_hook()
        if obs is not None:
            obs.count("integrity.degradations")
            obs.gauge("integrity.degrade_level", self.degrade_level)

    def _note_failure(self, key: tuple, primes: tuple[int, ...]) -> None:
        """Failed-check bookkeeping against the wrapped backend's
        compiled-program cache: invalidate on early failures, quarantine
        (under DETECT_DEGRADE) once the threshold is reached."""
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        invalidate = getattr(self.inner, "invalidate_program", None)
        if invalidate is None:
            return
        kind, n, _, galois_k = key
        quarantine = (self.policy is IntegrityPolicy.DETECT_DEGRADE
                      and count >= self.quarantine_threshold)
        for q in sorted(set(primes)):
            if quarantine:
                self.inner.quarantine_program(kind, n, q, galois_k)
            else:
                invalidate(kind, n, q, galois_k)

    # -- staging / dispatch -------------------------------------------------

    def _stage_in(self, rows: np.ndarray) -> np.ndarray:
        if rows.dtype == object:
            return rows  # wide-modulus path: exact big ints, no staging
        work = rows
        if self.dram is not None:
            work, ns = self.dram.transfer(work, current_fault_hook())
            self.dram_ns += ns
        if self.sram is not None:
            if not self.sram.fits(int(work.size)):
                raise ValueError(
                    f"working set of {int(work.size)} words does not fit "
                    f"the {self.sram.capacity_bytes}-byte SRAM; stage in "
                    f"tiles or enlarge the scratchpad")
            work, cycles = self.sram.stage(work)
            self.sram_cycles += cycles
        return work

    def _run(self, kind: str, rows: np.ndarray, primes: tuple[int, ...],
             galois_k: int | None, level: int) -> np.ndarray:
        backend = self._level_backend(level)
        if kind == "ntt":
            return backend.forward_ntt_batch(rows, primes)
        if kind == "intt":
            return backend.inverse_ntt_batch(rows, primes)
        return backend.automorphism_eval_batch(rows, galois_k, primes)

    def _verify(self, kind: str, inputs: np.ndarray, outputs: np.ndarray,
                primes: tuple[int, ...], galois_k: int | None) -> bool:
        if kind == "auto":
            return self.checker.check_automorphism_batch(inputs, outputs,
                                                         galois_k)
        return self.checker.check_ntt_batch(inputs, outputs, primes,
                                            inverse=kind == "intt")

    def _dispatch(self, kind: str, rows: np.ndarray,
                  primes: tuple[int, ...],
                  galois_k: int | None = None) -> np.ndarray:
        rows = np.asarray(rows)
        if self.policy is IntegrityPolicy.OFF:
            return self._run(kind, self._stage_in(rows), primes, galois_k, 0)
        attempts = 0
        key = (kind, rows.shape[1], primes, galois_k)
        while True:
            level = self.degrade_level
            work = self._stage_in(rows) if level == 0 else rows
            obs = current_obs_hook()
            if obs is not None and attempts:
                # A replay re-run: spans inherit the ambient request
                # trace (if any), so serve traces show the integrity
                # layer's recovery work inside the request's attempt.
                obs.begin("integrity.replay", cat="integrity", kind=kind,
                          attempt=attempts, level=level)
            try:
                out = self._run(kind, work, primes, galois_k, level)
            except ProgramQuarantinedError:
                obs = current_obs_hook()
                if obs is not None and attempts:
                    obs.end(quarantined=True)
                self._degrade()
                continue
            obs = current_obs_hook()
            if obs is not None and attempts:
                obs.end()
            if obs is not None:
                obs.begin("integrity.verify", cat="integrity", kind=kind,
                          rows=int(rows.shape[0]), attempt=attempts)
            verified = self._verify(kind, rows, out, primes, galois_k)
            obs = current_obs_hook()
            if obs is not None:
                obs.end(ok=verified)
            if verified:
                if attempts:
                    self.corrected += 1
                    if obs is not None:
                        obs.count("integrity.corrected")
                return out
            self.detections += 1
            if obs is not None:
                obs.count("integrity.detections")
            hook = current_fault_hook()
            if hook is not None:
                hook.note_detection()
            if self.policy is IntegrityPolicy.DETECT:
                self.flagged += 1
                if obs is not None:
                    obs.count("integrity.flagged")
                return out
            self._note_failure(key, primes)
            if attempts < self.max_retries:
                attempts += 1
                self.retries += 1
                if obs is not None:
                    obs.count("integrity.retries")
                continue
            if (self.policy is IntegrityPolicy.DETECT_DEGRADE
                    and self.degrade_level < 2):
                self._degrade()
                attempts = 0
                continue
            # Replay budget and ladder exhausted: surface the (flagged)
            # result rather than loop forever against a persistent fault.
            self.flagged += 1
            return out

    # -- the backend protocol ----------------------------------------------

    def forward_ntt(self, coeffs: np.ndarray, q: int) -> np.ndarray:
        return self._dispatch("ntt", np.asarray(coeffs)[None, :], (q,))[0]

    def inverse_ntt(self, values: np.ndarray, q: int) -> np.ndarray:
        return self._dispatch("intt", np.asarray(values)[None, :], (q,))[0]

    def automorphism_eval(self, values: np.ndarray, galois_k: int,
                          q: int) -> np.ndarray:
        return self._dispatch("auto", np.asarray(values)[None, :], (q,),
                              galois_k)[0]

    def forward_ntt_batch(self, residues: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        return self._dispatch("ntt", residues, tuple(primes))

    def inverse_ntt_batch(self, values: np.ndarray,
                          primes: tuple[int, ...]) -> np.ndarray:
        return self._dispatch("intt", values, tuple(primes))

    def automorphism_eval_batch(self, values: np.ndarray, galois_k: int,
                                primes: tuple[int, ...]) -> np.ndarray:
        return self._dispatch("auto", values, tuple(primes), galois_k)

    # -- keyswitch spare-modulus channel ------------------------------------

    def check_keyswitch_accumulation(self, acc_raw: np.ndarray,
                                     digit_stack: np.ndarray,
                                     key_stack: np.ndarray) -> bool:
        """Verify one lazy keyswitch accumulator over the spare modulus.

        Returns True to accept the accumulator as-is; False tells the
        caller to recompute on the independent per-step reduced channel
        (only under retry/degrade policies).
        """
        if self.policy is IntegrityPolicy.OFF:
            return True
        if self.checker.check_keyswitch_accumulation(acc_raw, digit_stack,
                                                     key_stack):
            return True
        self.detections += 1
        self.keyswitch_detections += 1
        obs = current_obs_hook()
        if obs is not None:
            obs.count("integrity.detections")
            obs.count("integrity.keyswitch_detections")
        hook = current_fault_hook()
        if hook is not None:
            hook.note_detection()
        if self.policy is IntegrityPolicy.DETECT:
            self.flagged += 1
            if obs is not None:
                obs.count("integrity.flagged")
            return True
        self.keyswitch_recomputed += 1
        if obs is not None:
            obs.count("integrity.keyswitch_recomputed")
        return False

    # -- reporting ----------------------------------------------------------

    def integrity_counters(self) -> dict[str, int]:
        """The structured counter block a :class:`~repro.fault.report
        .FaultReport` aggregates per injection."""
        return {
            "checks": self.checker.checks,
            "mismatches": self.checker.mismatches,
            "detections": self.detections,
            "corrected": self.corrected,
            "retries": self.retries,
            "flagged": self.flagged,
            "degrade_level": self.degrade_level,
            "degradations": self.degradations,
            "keyswitch_detections": self.keyswitch_detections,
            "keyswitch_recomputed": self.keyswitch_recomputed,
        }

    def clear_caches(self) -> None:
        """Clear the wrapped backend's caches and the failure counts
        (detection counters are the experiment record and survive)."""
        inner_clear = getattr(self.inner, "clear_caches", None)
        if inner_clear is not None:
            inner_clear()
        self._failures.clear()


def backend_from_env(default: str = "numpy"):
    """Construct the backend ``REPRO_BACKEND`` selects (``numpy`` |
    ``compiled`` | ``vpu``); ``default`` applies when unset or empty.
    Raises :class:`ValueError` on an unknown name."""
    name = os.environ.get("REPRO_BACKEND", default).strip().lower() or default
    if name == "numpy":
        return NumpyBackend()
    if name == "compiled":
        from repro.kernels import CompiledBackend

        return CompiledBackend()
    if name == "vpu":
        return VpuBackend()
    raise ValueError(
        f"unknown REPRO_BACKEND {name!r} (expected numpy, compiled or vpu)")


def _initial_backend() -> NumpyBackend | VpuBackend:
    try:
        return backend_from_env()
    except ValueError as exc:
        # Import-time typo in the environment must not make the package
        # unimportable — warn and run on the default path.
        warnings.warn(f"{exc}; falling back to NumpyBackend",
                      RuntimeWarning, stacklevel=2)
        return NumpyBackend()


_ACTIVE: NumpyBackend | VpuBackend | IntegrityBackend = _initial_backend()


def get_backend():
    """The backend all FHE polynomial kernels currently use."""
    return _ACTIVE


def clear_caches() -> None:
    """Drop every kernel-level cache: the per-``(n, q)`` golden NTT
    objects, the batched-NTT stacks, the compiled-kernel plans and
    workspaces (:mod:`repro.kernels`, when loaded), and the active
    backend's compiled programs and quarantines.  Fault campaigns and
    tests call this between runs so poisoned state cannot leak across
    experiments.  (Twiddle tables stay cached: they are pure functions
    of ``(n, q)`` that no injection site ever writes.)

    With a live metrics registry the cache hit/miss/size gauges of both
    program caches are zeroed as well — a metrics snapshot taken after a
    reset must not report the dropped caches' stale counters, even when
    the backend that published them is no longer the active one — and
    the telemetry ring is dropped (its entries snapshot the zeroed
    series, so windowed deltas across a reset would be nonsense)."""
    with _NTT_CACHE_LOCK:
        _NTT_CACHE.clear()
    get_batched_ntt.cache_clear()
    kernel_plans = sys.modules.get("repro.kernels.plan")
    if kernel_plans is not None:
        kernel_plans.clear_compiled_caches()
    clearer = getattr(_ACTIVE, "clear_caches", None)
    if clearer is not None:
        clearer()
    obs = current_obs_hook()
    if obs is not None:
        obs.zero_gauges("backend.program_cache.")
        obs.zero_gauges("backend.compiled_plan_cache.")
        obs.reset_telemetry()


def set_backend(backend) -> None:
    """Install a kernel backend globally."""
    global _ACTIVE
    _ACTIVE = backend


@contextmanager
def use_backend(backend):
    """Temporarily install a backend (restores the previous on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = backend
    try:
        yield backend
    finally:
        _ACTIVE = previous
