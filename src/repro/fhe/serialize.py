"""Key and ciphertext persistence.

Ciphertexts and plaintext polynomials serialize to ``.npz`` archives (an
array of residue rows, the moduli, the domain flag, and the per-scheme
bookkeeping), so an encrypted workload can be handed between processes —
a client encrypting on one machine, the evaluator running elsewhere —
without either side holding the other's state.  Secret keys deliberately
have no serializer here; persisting those safely is a key-management
problem out of scope for a research library.

All three schemes serialize through the same archive format:
:class:`repro.fhe.ckks.Ciphertext` (carries a scale),
:class:`repro.fhe.bfv.BfvCiphertext` (no bookkeeping), and
:class:`repro.fhe.bgv.BgvCiphertext` (carries the mod-switch plaintext
correction ``factor``).  A ``scheme`` tag in the archive routes the
loader to the right class.

Robustness contract (the durable-execution layer in
:mod:`repro.recover` leans on it): every archive carries a SHA-256
content digest over the residue payload and its metadata, recomputed
and checked on load, and every malformed input — truncated file, bad
zip, missing arrays, residue matrix whose shape disagrees with its
primes tuple, digest mismatch — raises the typed
:class:`SerializationError` instead of an opaque numpy/zipfile/KeyError
crash.  :func:`ciphertext_digest` is the same digest over an in-memory
ciphertext, so checkpoint manifests can name the bytes they expect.
"""

from __future__ import annotations

import hashlib
import io
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.fhe.polynomial import RnsPoly

#: v1 archives are CKKS-only and carry no digest; v2 adds the scheme
#: tag, the BGV factor, and the content digest.  Both load.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

#: Scheme tags stored in the archive, mapped to ciphertext class names.
_SCHEMES = ("ckks", "bfv", "bgv")


class SerializationError(ValueError):
    """A ciphertext archive is malformed, truncated, or corrupt.

    Subclasses :class:`ValueError` so pre-v2 callers that caught the
    loader's version error keep working.
    """


def _ciphertext_scheme(ct: Any) -> str:
    """Infer the scheme tag from the ciphertext's class name."""
    name = type(ct).__name__.lower()
    for scheme in ("bfv", "bgv"):
        if name.startswith(scheme):
            return scheme
    if name == "ciphertext":
        return "ckks"
    raise SerializationError(
        f"cannot serialize {type(ct).__name__}: expected a CKKS "
        f"Ciphertext, BfvCiphertext, or BgvCiphertext")


def ciphertext_digest(ct: Any) -> str:
    """SHA-256 hex digest of a ciphertext's full content.

    Covers every residue word, the primes tuple and domain flag of each
    part, and the scheme bookkeeping (CKKS scale / BGV factor), so two
    ciphertexts share a digest iff they are bit-identical — the
    identity the crash-recovery campaign checks resumed runs against.
    """
    scheme = _ciphertext_scheme(ct)
    h = hashlib.sha256()
    h.update(scheme.encode())
    if scheme == "ckks":
        h.update(np.float64(ct.scale).tobytes())
    elif scheme == "bgv":
        h.update(str(int(ct.factor)).encode())
    for part in ct.parts:
        h.update(np.asarray(part.residues, dtype=np.uint64).tobytes())
        h.update(np.array(part.primes, dtype=np.uint64).tobytes())
        h.update(b"\x01" if part.is_eval else b"\x00")
    return h.hexdigest()


def poly_to_arrays(poly: RnsPoly) -> dict[str, np.ndarray]:
    """Flatten one polynomial into named arrays."""
    return {
        "residues": poly.residues,
        "primes": np.array(poly.primes, dtype=np.uint64),
        "is_eval": np.array([poly.is_eval]),
    }


def poly_from_arrays(arrays: dict[str, np.ndarray]) -> RnsPoly:
    residues = np.asarray(arrays["residues"])
    primes = tuple(int(q) for q in arrays["primes"])
    if residues.ndim != 2 or residues.shape[0] != len(primes):
        raise SerializationError(
            f"residue matrix shape {residues.shape} does not match the "
            f"{len(primes)}-prime modulus tuple")
    return RnsPoly(residues, primes, bool(arrays["is_eval"][0]))


def save_ciphertext(ct: Any, path: str | Path | io.BytesIO) -> None:
    """Serialize a CKKS/BFV/BGV ciphertext to an ``.npz`` archive."""
    scheme = _ciphertext_scheme(ct)
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "scheme": np.array([scheme]),
        "scale": np.array([getattr(ct, "scale", 0.0)], dtype=np.float64),
        "factor": np.array([getattr(ct, "factor", 1)], dtype=np.int64),
        "num_parts": np.array([ct.size]),
        "digest": np.array([ciphertext_digest(ct)]),
    }
    for k, part in enumerate(ct.parts):
        for name, arr in poly_to_arrays(part).items():
            payload[f"part{k}_{name}"] = arr
    np.savez_compressed(path, **payload)


def _load_archive(path: str | Path | io.BytesIO) -> Any:
    try:
        return np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise SerializationError(
            f"unreadable ciphertext archive: {exc}") from exc


def load_ciphertext(path: str | Path | io.BytesIO) -> Any:
    """Deserialize a ciphertext; the archive's scheme tag picks the
    class (:class:`~repro.fhe.ckks.Ciphertext`,
    :class:`~repro.fhe.bfv.BfvCiphertext`, or
    :class:`~repro.fhe.bgv.BgvCiphertext`).

    Raises :class:`SerializationError` on any malformed input:
    truncated/corrupt zip payloads, missing arrays, residue matrices
    whose shape disagrees with their primes tuple, unknown scheme tags,
    or a content-digest mismatch.
    """
    with _load_archive(path) as data:
        try:
            version = int(data["version"][0])
            if version not in _SUPPORTED_VERSIONS:
                raise SerializationError(
                    f"unsupported ciphertext format v{version}")
            scheme = (str(data["scheme"][0]) if "scheme" in data.files
                      else "ckks")
            if scheme not in _SCHEMES:
                raise SerializationError(f"unknown scheme tag {scheme!r}")
            parts = []
            num_parts = int(data["num_parts"][0])
            if num_parts < 1:
                raise SerializationError(
                    f"archive declares {num_parts} ciphertext parts")
            for k in range(num_parts):
                parts.append(poly_from_arrays({
                    "residues": data[f"part{k}_residues"],
                    "primes": data[f"part{k}_primes"],
                    "is_eval": data[f"part{k}_is_eval"],
                }))
            if any(p.residues.shape != parts[0].residues.shape
                   for p in parts[1:]):
                raise SerializationError(
                    "ciphertext parts disagree on residue-matrix shape")
            ct = _construct(scheme, parts, float(data["scale"][0]),
                            int(data["factor"][0])
                            if "factor" in data.files else 1)
            if "digest" in data.files:
                stored = str(data["digest"][0])
                actual = ciphertext_digest(ct)
                if stored != actual:
                    raise SerializationError(
                        f"content digest mismatch: archive says "
                        f"{stored[:16]}…, payload hashes to "
                        f"{actual[:16]}… (corrupt or tampered archive)")
            return ct
        except KeyError as exc:
            raise SerializationError(
                f"truncated ciphertext archive: missing array {exc}"
            ) from exc


def _construct(scheme: str, parts: list[RnsPoly], scale: float,
               factor: int) -> Any:
    if scheme == "bfv":
        from repro.fhe.bfv import BfvCiphertext
        return BfvCiphertext(parts)
    if scheme == "bgv":
        from repro.fhe.bgv import BgvCiphertext
        return BgvCiphertext(parts, factor=factor)
    from repro.fhe.ckks import Ciphertext
    return Ciphertext(parts, scale)


def ciphertext_size_bytes(ct: Any) -> int:
    """In-memory payload size: parts x limbs x N x 8 bytes."""
    return sum(p.residues.nbytes for p in ct.parts)
