"""Key and ciphertext persistence.

Ciphertexts and plaintext polynomials serialize to ``.npz`` archives (an
array of residue rows, the moduli, the domain flag, and the scale), so
an encrypted workload can be handed between processes — a client
encrypting on one machine, the evaluator running elsewhere — without
either side holding the other's state.  Secret keys deliberately have no
serializer here; persisting those safely is a key-management problem out
of scope for a research library.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.fhe.ckks import Ciphertext
from repro.fhe.polynomial import RnsPoly

_FORMAT_VERSION = 1


def poly_to_arrays(poly: RnsPoly) -> dict[str, np.ndarray]:
    """Flatten one polynomial into named arrays."""
    return {
        "residues": poly.residues,
        "primes": np.array(poly.primes, dtype=np.uint64),
        "is_eval": np.array([poly.is_eval]),
    }


def poly_from_arrays(arrays: dict[str, np.ndarray]) -> RnsPoly:
    return RnsPoly(
        arrays["residues"],
        tuple(int(q) for q in arrays["primes"]),
        bool(arrays["is_eval"][0]),
    )


def save_ciphertext(ct: Ciphertext, path: str | Path | io.BytesIO) -> None:
    """Serialize a CKKS ciphertext to an ``.npz`` archive."""
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "scale": np.array([ct.scale], dtype=np.float64),
        "num_parts": np.array([ct.size]),
    }
    for k, part in enumerate(ct.parts):
        for name, arr in poly_to_arrays(part).items():
            payload[f"part{k}_{name}"] = arr
    np.savez_compressed(path, **payload)


def load_ciphertext(path: str | Path | io.BytesIO) -> Ciphertext:
    """Deserialize a CKKS ciphertext."""
    with np.load(path) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported ciphertext format v{version}")
        parts = []
        for k in range(int(data["num_parts"][0])):
            parts.append(poly_from_arrays({
                "residues": data[f"part{k}_residues"],
                "primes": data[f"part{k}_primes"],
                "is_eval": data[f"part{k}_is_eval"],
            }))
        return Ciphertext(parts, float(data["scale"][0]))


def ciphertext_size_bytes(ct: Ciphertext) -> int:
    """In-memory payload size: parts x limbs x N x 8 bytes."""
    return sum(p.residues.nbytes for p in ct.parts)
