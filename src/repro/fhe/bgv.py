"""BGV: exact integer homomorphic encryption on the same substrate.

The paper notes (§II-A) that BGV/BFV "can also be similarly supported
given their similar computation patterns" — the kernels are the same
element-wise modular ops, NTTs and automorphisms the unified VPU
accelerates.  This module proves that in code: BGV reuses this
repository's RNS polynomials, digit-decomposition keyswitch and Galois
machinery wholesale; only the plaintext encoding (exact integers modulo
``t``) and the noise placement (``t * e`` instead of CKKS's scaled
reals) differ.

Supported: SIMD slot packing over ``Z_t`` (``t`` prime, ``t === 1 mod
2N``), encryption, HAdd/HSub, HMult with relinearization, slot rotation
and modulus switching for noise management.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.modular import mod_inverse
from repro.arith.primes import is_prime
from repro.fhe.keyswitch import (
    KeySwitchKey,
    apply_keyswitch,
    generate_keyswitch_key,
    mod_down,
    mod_switch_exact,
)
from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import get_basis
from repro.fhe.sampling import sample_gaussian, sample_ternary, sample_uniform_poly
from repro.ntt.negacyclic import NegacyclicNtt


@dataclass(frozen=True)
class BgvParams:
    """BGV parameter set: a ciphertext chain plus a plaintext modulus.

    ``plaintext_modulus`` must be a prime with ``t === 1 (mod 2n)`` so
    the plaintext ring splits into ``n`` integer slots (SIMD batching).
    """

    n: int = 1024
    levels: int = 3
    plaintext_modulus: int = 65537
    prime_bits: int = 30
    error_std: float = 3.2

    def __post_init__(self) -> None:
        t = self.plaintext_modulus
        if not is_prime(t):
            raise ValueError(f"plaintext modulus must be prime, got {t}")
        if (t - 1) % (2 * self.n):
            raise ValueError(
                f"need t === 1 (mod 2n) for slot packing: t={t}, n={self.n}"
            )

    def ciphertext_params(self) -> CkksParams:
        """The underlying chain (reuses the CKKS parameter machinery)."""
        return CkksParams(n=self.n, levels=self.levels,
                          scale_bits=self.prime_bits - 2,
                          prime_bits=self.prime_bits,
                          error_std=self.error_std)


@dataclass
class BgvCiphertext:
    """A BGV ciphertext.

    ``factor`` tracks the plaintext correction accumulated by modulus
    switching: dropping prime ``q_l`` multiplies the carried plaintext by
    ``q_l^{-1} (mod t)``, so decryption multiplies the decoded slots by
    ``factor`` (the product of dropped primes mod ``t``) to undo it.
    """

    parts: list[RnsPoly]
    factor: int = 1

    @property
    def level(self) -> int:
        return self.parts[0].num_limbs - 1

    @property
    def size(self) -> int:
        return len(self.parts)


class BgvContext:
    """Keys and evaluator for BGV."""

    def __init__(self, params: BgvParams, seed: int = 2025):
        self.params = params
        self.t = params.plaintext_modulus
        self._cp = params.ciphertext_params()
        self.basis = get_basis(self._cp.primes, self._cp.special_prime)
        self._rng = np.random.default_rng(seed)
        self._full = self._cp.primes + (self._cp.special_prime,)
        self._plain_ntt = NegacyclicNtt(params.n, self.t)
        self._slot_order = self._build_slot_order()
        self._keygen()
        self.galois_keys: dict[int, KeySwitchKey] = {}

    # -- slot packing -----------------------------------------------------

    def _build_slot_order(self) -> np.ndarray:
        """Natural-eval-index of slot ``u``: the power-of-5 (and negative)
        ordering that turns Galois maps into slot rotations.

        The ``n`` evaluation points split into two size-``n/2`` orbits
        under multiplication by 5; slots ``0..n/2-1`` walk the ``+5^u``
        orbit and slots ``n/2..n-1`` the ``-5^u`` orbit.
        """
        n = self.params.n
        order = np.empty(n, dtype=np.int64)
        exponent = 1
        for u in range(n // 2):
            order[u] = (exponent - 1) // 2
            order[u + n // 2] = (2 * n - exponent - 1) // 2
            exponent = exponent * 5 % (2 * n)
        return order

    def encode(self, values: np.ndarray) -> RnsPoly:
        """Integer slots (mod t) -> plaintext polynomial over the chain."""
        values = np.asarray(values)
        n = self.params.n
        if len(values) != n:
            raise ValueError(f"expected {n} slots, got {len(values)}")
        evals = np.zeros(n, dtype=np.uint64)
        evals[self._slot_order] = np.asarray(values, dtype=object) % self.t
        coeffs = self._plain_ntt.inverse(evals)
        centered = np.where(coeffs.astype(np.int64) > self.t // 2,
                            coeffs.astype(np.int64) - self.t,
                            coeffs.astype(np.int64))
        return RnsPoly.from_int_coeffs(centered, self._cp.primes)

    def decode(self, plain_coeffs: np.ndarray) -> np.ndarray:
        """Centered integer coefficients -> integer slots (mod t)."""
        evals = self._plain_ntt.forward(
            np.asarray(plain_coeffs, dtype=object) % self.t)
        # fhecheck: ok=FHC002 — evals are residues mod t < 2**62
        return evals[self._slot_order].astype(np.int64)

    # -- keys ----------------------------------------------------------------

    def _keygen(self) -> None:
        cp = self._cp
        n = self.params.n
        secret_coeffs = sample_ternary(n, self._rng)
        self._secret_full = RnsPoly.from_int_coeffs(secret_coeffs, self._full)
        self.secret = self._secret_full.limbs_prefix(cp.levels)
        a = sample_uniform_poly(n, cp.primes, self._rng)
        e = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng) * self.t, cp.primes)
        self.public_key = ((-(a * self.secret)) + e, a)
        s_squared = self._secret_full * self._secret_full
        self.relin_key = generate_keyswitch_key(
            cp, s_squared, self._secret_full, self._rng,
            error_scale=self.t)

    def generate_galois_keys(self, rotations: list[int]) -> None:
        for r in rotations:
            k = pow(5, r, 2 * self.params.n)
            if k in self.galois_keys:
                continue
            s_rot = self._secret_full.automorphism(k)
            self.galois_keys[k] = generate_keyswitch_key(
                self._cp, s_rot, self._secret_full, self._rng,
                error_scale=self.t)

    # -- encryption -------------------------------------------------------------

    def encrypt(self, values: np.ndarray) -> BgvCiphertext:
        cp = self._cp
        n = self.params.n
        m = self.encode(values)
        b, a = self.public_key
        u = RnsPoly.from_int_coeffs(sample_ternary(n, self._rng), cp.primes)
        e0 = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng) * self.t, cp.primes)
        e1 = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng) * self.t, cp.primes)
        return BgvCiphertext([b * u + e0 + m, a * u + e1])

    def decrypt(self, ct: BgvCiphertext) -> np.ndarray:
        s = self.secret.limbs_prefix(ct.level + 1)
        acc = ct.parts[0].copy()
        s_power = s
        for part in ct.parts[1:]:
            acc = acc + part * s_power
            s_power = s_power * s
        coeff = acc.to_coeff()
        # Centered CRT lift, then reduce mod t.
        q_prod = 1
        for q in coeff.primes:
            q_prod *= q
        total = np.zeros(self.params.n, dtype=object)
        for i, q in enumerate(coeff.primes):
            q_hat = q_prod // q
            factor = q_hat * mod_inverse(q_hat, q) % q_prod
            total = (total + coeff.residues[i].astype(object) * factor) % q_prod
        centered = np.where(total > q_prod // 2, total - q_prod, total)
        decoded = self.decode(centered)
        return (decoded * ct.factor) % self.t

    # -- evaluator ------------------------------------------------------------

    def _align(self, a: BgvCiphertext, b: BgvCiphertext):
        if a.factor != b.factor:
            raise ValueError(
                f"plaintext correction factors differ ({a.factor} vs "
                f"{b.factor}): operands took different mod-switch paths"
            )
        level = min(a.level, b.level)
        return (BgvCiphertext([p.limbs_prefix(level + 1) for p in a.parts],
                              a.factor),
                BgvCiphertext([p.limbs_prefix(level + 1) for p in b.parts],
                              b.factor))

    def add(self, a: BgvCiphertext, b: BgvCiphertext) -> BgvCiphertext:
        a, b = self._align(a, b)
        return BgvCiphertext([x + y for x, y in zip(a.parts, b.parts)],
                             a.factor)

    def sub(self, a: BgvCiphertext, b: BgvCiphertext) -> BgvCiphertext:
        a, b = self._align(a, b)
        return BgvCiphertext([x - y for x, y in zip(a.parts, b.parts)],
                             a.factor)

    def add_plain(self, ct: BgvCiphertext, values: np.ndarray) -> BgvCiphertext:
        if ct.factor != 1:
            values = (np.asarray(values, dtype=object)
                      * mod_inverse(ct.factor, self.t)) % self.t
        m = self.encode(values).limbs_prefix(ct.level + 1)
        return BgvCiphertext([ct.parts[0] + m]
                             + [p.copy() for p in ct.parts[1:]], ct.factor)

    def multiply_plain(self, ct: BgvCiphertext, values: np.ndarray) -> BgvCiphertext:
        m = self.encode(values).limbs_prefix(ct.level + 1)
        return BgvCiphertext([p * m for p in ct.parts], ct.factor)

    def multiply(self, a: BgvCiphertext, b: BgvCiphertext,
                 switch_modulus: bool = True) -> BgvCiphertext:
        """HMult: tensor, relinearize, then modulus-switch to tame noise."""
        a, b = self._align(a, b)
        d0 = a.parts[0] * b.parts[0]
        d1 = a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0]
        d2 = a.parts[1] * b.parts[1]
        t0, t1 = apply_keyswitch(d2, self.relin_key, self._cp)
        out = BgvCiphertext(
            [d0 + mod_down(t0, self.basis, self.t),
             d1 + mod_down(t1, self.basis, self.t)],
            a.factor * b.factor % self.t)
        if switch_modulus and out.level > 0:
            out = self.mod_switch(out)
        return out

    def rotate(self, ct: BgvCiphertext, steps: int) -> BgvCiphertext:
        """Rotate the first-orbit slots by ``steps`` (and the second orbit
        correspondingly), via the Galois action + keyswitch."""
        k = pow(5, steps % (self.params.n // 2), 2 * self.params.n)
        if k == 1:
            return BgvCiphertext([p.copy() for p in ct.parts], ct.factor)
        if k not in self.galois_keys:
            raise KeyError(f"no Galois key for rotation {steps}")
        c0 = ct.parts[0].automorphism(k)
        c1 = ct.parts[1].automorphism(k)
        t0, t1 = apply_keyswitch(c1, self.galois_keys[k], self._cp)
        return BgvCiphertext([c0 + mod_down(t0, self.basis, self.t),
                              mod_down(t1, self.basis, self.t)], ct.factor)

    def mod_switch(self, ct: BgvCiphertext) -> BgvCiphertext:
        """Drop the top chain prime, scaling noise down by ~q_l while
        preserving the plaintext modulo ``t``.

        ``c' = (c - delta) / q_l`` with ``delta === c (mod q_l)`` and
        ``delta === 0 (mod t)``.
        """
        if ct.level == 0:
            raise ValueError("cannot modulus-switch below one limb")
        dropped = ct.parts[0].primes[-1]
        return BgvCiphertext(
            [mod_switch_exact(p, self.basis, self.t) for p in ct.parts],
            ct.factor * dropped % self.t)
