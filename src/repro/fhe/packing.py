"""Vector packing utilities: arbitrary-length data over CKKS ciphertexts.

Application data rarely arrives in exact ``N/2``-slot chunks.  A
:class:`PackedVector` splits a real/complex vector of any length across
however many ciphertexts it needs (zero-padding the tail), and applies
element-wise and rotation operations chunk-wise so callers can stay at
the "encrypted numpy array" level of abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext


@dataclass
class PackedVector:
    """A logical vector spread over one or more ciphertexts."""

    chunks: list[Ciphertext]
    length: int
    slots: int

    @property
    def num_ciphertexts(self) -> int:
        return len(self.chunks)


def encrypt_vector(ctx: CkksContext, values: np.ndarray) -> PackedVector:
    """Encrypt an arbitrary-length vector (zero-padded tail)."""
    values = np.asarray(values)
    if values.ndim != 1 or len(values) == 0:
        raise ValueError("expected a non-empty 1-D vector")
    slots = ctx.params.slots
    chunks = []
    for start in range(0, len(values), slots):
        piece = values[start:start + slots]
        padded = np.zeros(slots, dtype=complex)
        padded[:len(piece)] = piece
        chunks.append(ctx.encrypt(padded))
    return PackedVector(chunks, len(values), slots)


def decrypt_vector(ctx: CkksContext, packed: PackedVector) -> np.ndarray:
    """Decrypt back to the original length."""
    parts = [ctx.decrypt(chunk) for chunk in packed.chunks]
    return np.concatenate(parts)[:packed.length]


def _check_compatible(a: PackedVector, b: PackedVector) -> None:
    if a.length != b.length or a.slots != b.slots:
        raise ValueError(
            f"packed vectors differ: {a.length}/{a.slots} vs "
            f"{b.length}/{b.slots}"
        )


def add_packed(ctx: CkksContext, a: PackedVector, b: PackedVector) -> PackedVector:
    """Element-wise encrypted addition."""
    _check_compatible(a, b)
    return PackedVector([ctx.add(x, y) for x, y in zip(a.chunks, b.chunks)],
                        a.length, a.slots)


def multiply_packed(ctx: CkksContext, a: PackedVector,
                    b: PackedVector) -> PackedVector:
    """Element-wise encrypted multiplication."""
    _check_compatible(a, b)
    return PackedVector(
        [ctx.multiply(x, y) for x, y in zip(a.chunks, b.chunks)],
        a.length, a.slots)


def multiply_plain_packed(ctx: CkksContext, a: PackedVector,
                          values: np.ndarray) -> PackedVector:
    """Element-wise multiply by a plaintext vector of the same length."""
    values = np.asarray(values)
    if len(values) != a.length:
        raise ValueError(f"length mismatch: {len(values)} vs {a.length}")
    chunks = []
    for i, chunk in enumerate(a.chunks):
        piece = values[i * a.slots:(i + 1) * a.slots]
        padded = np.zeros(a.slots, dtype=complex)
        padded[:len(piece)] = piece
        chunks.append(ctx.multiply_plain(chunk, padded))
    return PackedVector(chunks, a.length, a.slots)


def inner_sum(ctx: CkksContext, a: PackedVector) -> complex:
    """Decrypt-side helper: the sum of all logical entries.

    Sums each chunk homomorphically with log-depth rotations (requires
    power-of-two rotation keys up to ``slots/2``), then decrypts only
    slot 0 of each chunk — the aggregate leaves nothing else readable
    beyond what the sum itself reveals.
    """
    total = 0.0 + 0.0j
    for chunk in a.chunks:
        acc = chunk
        steps = 1
        while steps < a.slots:
            acc = ctx.add(acc, ctx.rotate(acc, steps))
            steps *= 2
        total += ctx.decrypt(acc)[0]
    return total


def rotation_keys_for_inner_sum(slots: int) -> list[int]:
    """The power-of-two rotation amounts :func:`inner_sum` needs."""
    keys = []
    steps = 1
    while steps < slots:
        keys.append(steps)
        steps *= 2
    return keys
