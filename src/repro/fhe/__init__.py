"""RNS-CKKS fully homomorphic encryption.

The FHE workload that motivates the paper's accelerator (§II-A): each
ciphertext is two polynomials of degree ``N`` whose coefficients live in
a residue number system over NTT-friendly primes ("double-CRT"), so
every homomorphic operation reduces to exactly the kernels the VPU
accelerates — element-wise modular arithmetic, NTTs, and automorphisms.

Modules:

* :mod:`repro.fhe.params` — parameter presets (ring degree, modulus
  chain, scale).
* :mod:`repro.fhe.rns` — the RNS basis with CRT idempotents used by the
  digit-decomposition keyswitch.
* :mod:`repro.fhe.polynomial` — double-CRT polynomials.
* :mod:`repro.fhe.sampling` — ternary/Gaussian/uniform samplers.
* :mod:`repro.fhe.encoding` — the canonical-embedding encoder with the
  power-of-5 slot ordering that makes HRot a cyclic slot rotation.
* :mod:`repro.fhe.keyswitch` — RNS digit-decomposition keyswitching with
  one special prime.
* :mod:`repro.fhe.ckks` — keygen, encryption, and the evaluator
  (HAdd/HSub/HMult/HRot/conjugate/rescale).
* :mod:`repro.fhe.bgv` / :mod:`repro.fhe.bfv` — the BGV and BFV schemes
  (exact integer slots) on the identical substrate, as §II-A
  anticipates.
* :mod:`repro.fhe.packing` — arbitrary-length vectors over multiple
  ciphertexts.
* :mod:`repro.fhe.linear` — homomorphic matrix-vector products
  (diagonal and baby-step/giant-step methods).
* :mod:`repro.fhe.polyeval` — homomorphic polynomial evaluation
  (Horner and Paterson-Stockmeyer).
* :mod:`repro.fhe.noise` — noise measurement and budget estimation.
* :mod:`repro.fhe.serialize` — key/ciphertext persistence.
* :mod:`repro.fhe.backend` — pluggable kernel backends, including the
  one that routes NTTs and automorphisms through the VPU model.
"""

from repro.fhe.bfv import BfvCiphertext, BfvContext
from repro.fhe.bgv import BgvCiphertext, BgvContext, BgvParams
from repro.fhe.ckks import CkksContext, Ciphertext
from repro.fhe.encoding import CkksEncoder
from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import RnsBasis

__all__ = [
    "BfvCiphertext",
    "BfvContext",
    "BgvCiphertext",
    "BgvContext",
    "BgvParams",
    "Ciphertext",
    "CkksContext",
    "CkksEncoder",
    "CkksParams",
    "RnsBasis",
    "RnsPoly",
]
