"""Noise measurement and budget estimation.

FHE correctness is a noise race: every homomorphic operation grows the
error carried inside a ciphertext, and decryption fails once it crosses
``Q_level / 2``.  This module provides

* :func:`measure_noise` — the *exact* infinity-norm of a CKKS
  ciphertext's noise, obtained with the secret key (a debugging/research
  tool, obviously not part of the public API of a deployment);
* :func:`noise_budget_bits` — how many doubling steps remain before
  decryption failure;
* :class:`NoiseEstimator` — closed-form worst-case-ish bounds for each
  operation, validated against measurements in the test-suite.  The
  estimator uses the standard heuristic bounds (canonical-embedding
  style, sqrt(N) expansion for ring products of independent polynomials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arith.modular import mod_inverse
from repro.fhe.ckks import Ciphertext, CkksContext


def _lift_centered(poly) -> np.ndarray:
    """Centered CRT lift of an RNS polynomial to integer coefficients."""
    coeff = poly.to_coeff()
    q_prod = 1
    for q in coeff.primes:
        q_prod *= q
    total = np.zeros(coeff.n, dtype=object)
    for i, q in enumerate(coeff.primes):
        q_hat = q_prod // q
        factor = q_hat * mod_inverse(q_hat, q) % q_prod
        total = (total + coeff.residues[i].astype(object) * factor) % q_prod
    return np.where(total > q_prod // 2, total - q_prod, total)


def measure_noise(ctx: CkksContext, ct: Ciphertext,
                  expected: np.ndarray) -> float:
    """Exact noise infinity-norm of a CKKS ciphertext, in bits.

    ``expected`` is the plaintext slot vector the ciphertext should
    carry.  Returns ``log2 || <ct, s> - encode(expected) ||_inf``.
    """
    s = ctx.secret.limbs_prefix(ct.level + 1)
    acc = ct.parts[0].copy()
    s_power = s
    for part in ct.parts[1:]:
        acc = acc + part * s_power
        s_power = s_power * s
    carried = _lift_centered(acc)
    ideal = np.rint(ctx.encoder.embed(expected) * ct.scale).astype(object)
    noise = np.abs(carried - ideal).max()
    return math.log2(max(int(noise), 1))


def noise_budget_bits(ctx: CkksContext, ct: Ciphertext,
                      expected: np.ndarray) -> float:
    """Bits of headroom before the noise reaches ``Q_level / 2``."""
    q_bits = sum(math.log2(q) for q in ct.parts[0].primes)
    return q_bits - 1 - measure_noise(ctx, ct, expected)


@dataclass
class NoiseEstimator:
    """Closed-form noise bounds for the CKKS evaluator.

    All bounds are in bits (log2 of the coefficient infinity-norm) and
    use sqrt-expansion heuristics for ring products, which track the
    measured values within a few bits for random inputs.
    """

    n: int
    error_std: float = 3.2
    #: Hamming-style bound on the ternary secret's 1-norm contribution.
    secret_norm: float = 1.0

    @property
    def _root_n(self) -> float:
        return math.sqrt(self.n)

    def fresh_bits(self) -> float:
        """Noise of a fresh public-key encryption:
        ``e0 + u*e + e1*s ~ e * sqrt(N) * (1 + 2*sqrt(N)/...)``."""
        bound = self.error_std * self._root_n * (1 + 2 * self.secret_norm
                                                 * self._root_n / 2)
        return math.log2(bound * 8)

    def add_bits(self, a_bits: float, b_bits: float) -> float:
        """Addition: noises add."""
        return max(a_bits, b_bits) + 1

    def multiply_bits(self, a_bits: float, b_bits: float,
                      a_scale_bits: float, b_scale_bits: float) -> float:
        """Tensor product: cross terms ``e_a * m_b`` dominate."""
        cross1 = a_bits + b_scale_bits + math.log2(self._root_n)
        cross2 = b_bits + a_scale_bits + math.log2(self._root_n)
        return max(cross1, cross2) + 1

    def keyswitch_bits(self, digits: int, digit_width_bits: float,
                       special_bits: float) -> float:
        """Digit keyswitch: ``sum_i x_i * e_i / P``."""
        per_digit = (digit_width_bits - 1 + math.log2(self.error_std * 8)
                     + math.log2(self._root_n))
        return per_digit + math.log2(max(digits, 1)) - special_bits

    def rescale_bits(self, in_bits: float, dropped_bits: float) -> float:
        """Rescale: divide noise, add rounding ~ sqrt(N)*||s||."""
        rounding = math.log2(self._root_n * 2)
        return max(in_bits - dropped_bits, rounding) + 1


def estimate_fresh(ctx: CkksContext) -> float:
    """Estimated fresh-encryption noise bits for a context."""
    est = NoiseEstimator(ctx.params.n, ctx.params.error_std)
    return est.fresh_bits()
