"""Double-CRT polynomials for RNS-CKKS.

An :class:`RnsPoly` stores one residue row per modulus — the chain
primes of its level, optionally followed by the keyswitch special prime
— in either the coefficient or the evaluation (NTT) domain.  All ring
operations are limb-wise and vectorized; NTTs and automorphisms route
through the active :mod:`repro.fhe.backend`, which is how the whole FHE
stack can run on the behavioral VPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.backend import get_backend


@dataclass
class RnsPoly:
    """A polynomial in RNS form.

    Attributes
    ----------
    residues:
        ``(len(primes), n)`` uint64 array; row ``i`` holds the polynomial
        modulo ``primes[i]``.
    primes:
        The moduli, in chain order (special prime last when present).
    is_eval:
        True when rows are natural-order evaluation values.
    """

    residues: np.ndarray
    primes: tuple[int, ...]
    is_eval: bool

    def __post_init__(self) -> None:
        self.residues = np.asarray(self.residues, dtype=np.uint64)
        if self.residues.ndim != 2 or self.residues.shape[0] != len(self.primes):
            raise ValueError(
                f"residue shape {self.residues.shape} does not match "
                f"{len(self.primes)} primes"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, n: int, primes: tuple[int, ...], is_eval: bool = True) -> "RnsPoly":
        return cls(np.zeros((len(primes), n), dtype=np.uint64), primes, is_eval)

    @classmethod
    def from_int_coeffs(cls, coeffs: np.ndarray, primes: tuple[int, ...],
                        to_eval: bool = True) -> "RnsPoly":
        """Build from signed integer coefficients (reduced per limb)."""
        coeffs = np.asarray(coeffs, dtype=object)
        rows = np.stack([
            (coeffs % q).astype(np.uint64) for q in primes
        ])
        poly = cls(rows, primes, is_eval=False)
        return poly.to_eval() if to_eval else poly

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.residues.shape[1]

    @property
    def num_limbs(self) -> int:
        return len(self.primes)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.residues.copy(), self.primes, self.is_eval)

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.primes != other.primes:
            raise ValueError(
                f"modulus mismatch: {len(self.primes)} vs {len(other.primes)} limbs"
            )
        if self.is_eval != other.is_eval:
            raise ValueError("domain mismatch (coeff vs eval)")

    # -- ring operations -----------------------------------------------------

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = (self.residues[i] + other.residues[i]) % np.uint64(q)
        return RnsPoly(out, self.primes, self.is_eval)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            qq = np.uint64(q)
            out[i] = (self.residues[i] + (qq - other.residues[i])) % qq
        return RnsPoly(out, self.primes, self.is_eval)

    def __neg__(self) -> "RnsPoly":
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            qq = np.uint64(q)
            out[i] = (qq - self.residues[i]) % qq
        return RnsPoly(out, self.primes, self.is_eval)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Ring product; both operands must be in the evaluation domain
        (point-wise multiply, the form the lanes execute)."""
        self._check_compatible(other)
        if not self.is_eval:
            raise ValueError("ring multiplication requires eval domain")
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = self.residues[i] * other.residues[i] % np.uint64(q)
        return RnsPoly(out, self.primes, self.is_eval)

    def mul_scalar(self, scalar: int) -> "RnsPoly":
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = self.residues[i] * np.uint64(scalar % q) % np.uint64(q)
        return RnsPoly(out, self.primes, self.is_eval)

    # -- domain conversion ----------------------------------------------------

    def to_eval(self) -> "RnsPoly":
        if self.is_eval:
            return self.copy()
        backend = get_backend()
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = backend.forward_ntt(self.residues[i], q)
        return RnsPoly(out, self.primes, is_eval=True)

    def to_coeff(self) -> "RnsPoly":
        if not self.is_eval:
            return self.copy()
        backend = get_backend()
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = backend.inverse_ntt(self.residues[i], q)
        return RnsPoly(out, self.primes, is_eval=False)

    # -- Galois action ---------------------------------------------------------

    def automorphism(self, galois_k: int) -> "RnsPoly":
        """Apply ``X -> X^k`` (evaluation domain: a pure permutation)."""
        if not self.is_eval:
            raise ValueError("automorphism is applied in the eval domain")
        backend = get_backend()
        out = np.empty_like(self.residues)
        for i, q in enumerate(self.primes):
            out[i] = backend.automorphism_eval(self.residues[i], galois_k, q)
        return RnsPoly(out, self.primes, is_eval=True)

    # -- level / limb management ------------------------------------------------

    def drop_limb(self, index: int) -> "RnsPoly":
        """Remove one residue row (used by rescale and ModDown)."""
        keep = [i for i in range(self.num_limbs) if i != index]
        return RnsPoly(self.residues[keep],
                       tuple(self.primes[i] for i in keep), self.is_eval)

    def limbs_prefix(self, count: int) -> "RnsPoly":
        """Keep only the first ``count`` limbs (level truncation)."""
        if not 1 <= count <= self.num_limbs:
            raise ValueError(f"count {count} out of range")
        return RnsPoly(self.residues[:count], self.primes[:count], self.is_eval)

    def centered_limb(self, index: int) -> np.ndarray:
        """One limb's coefficients lifted to the balanced range, as int64
        (requires coefficient domain)."""
        if self.is_eval:
            raise ValueError("centered lift requires coefficient domain")
        q = self.primes[index]
        row = self.residues[index].astype(np.int64)
        return np.where(row > q // 2, row - q, row)
