"""Double-CRT polynomials for RNS-CKKS.

An :class:`RnsPoly` stores one residue row per modulus — the chain
primes of its level, optionally followed by the keyswitch special prime
— in either the coefficient or the evaluation (NTT) domain.  The unit
of work is the whole ``(L, n)`` residue matrix: ring operations
broadcast an ``(L, 1)`` prime column across the limbs, and NTTs and
automorphisms go through the active :mod:`repro.fhe.backend`'s batched
kernels in a single dispatch — which is how the whole FHE stack can run
on the behavioral VPU and how the numpy path reaches its throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.backend import get_backend


def _reduce_int_rows(coeffs: np.ndarray,
                     primes: tuple[int, ...]) -> np.ndarray | None:
    """Reduce integer coefficients modulo every prime in one broadcast.

    Returns the ``(L, n)`` uint64 matrix, or ``None`` when the input
    does not fit the int64 fast path (oversized big-int coefficients).
    Centered digits and sampled noise are always far below ``2**62``,
    so in practice only genuinely wide inputs (BFV lifts, CRT
    recompositions) fall back to the object-dtype path.
    """
    if any(q >= (1 << 31) for q in primes):
        return None
    if coeffs.dtype == object or not np.issubdtype(coeffs.dtype, np.integer):
        try:
            coeffs = coeffs.astype(np.int64)
        except (OverflowError, TypeError, ValueError):
            return None
    elif coeffs.dtype == np.uint64 and len(coeffs) \
            and coeffs.max() > np.iinfo(np.int64).max:
        return None
    else:
        coeffs = coeffs.astype(np.int64)
    q_col = np.array(primes, dtype=np.int64)[:, None]
    return (coeffs[None, :] % q_col).astype(np.uint64)


@dataclass
class RnsPoly:
    """A polynomial in RNS form.

    Attributes
    ----------
    residues:
        ``(len(primes), n)`` uint64 array; row ``i`` holds the polynomial
        modulo ``primes[i]``.
    primes:
        The moduli, in chain order (special prime last when present).
    is_eval:
        True when rows are natural-order evaluation values.
    """

    residues: np.ndarray
    primes: tuple[int, ...]
    is_eval: bool

    def __post_init__(self) -> None:
        self.residues = np.asarray(self.residues, dtype=np.uint64)
        if self.residues.ndim != 2 or self.residues.shape[0] != len(self.primes):
            raise ValueError(
                f"residue shape {self.residues.shape} does not match "
                f"{len(self.primes)} primes"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, n: int, primes: tuple[int, ...], is_eval: bool = True) -> "RnsPoly":
        return cls(np.zeros((len(primes), n), dtype=np.uint64), primes, is_eval)

    @classmethod
    def from_int_coeffs(cls, coeffs: np.ndarray, primes: tuple[int, ...],
                        to_eval: bool = True) -> "RnsPoly":
        """Build from signed integer coefficients (reduced per limb).

        Inputs that fit int64 — every sampled secret/noise vector and
        every centered keyswitch digit — reduce in one broadcast modulo
        the ``(L, 1)`` prime column; only oversized big-int coefficients
        take the object-dtype per-limb path.
        """
        coeffs = np.asarray(coeffs)
        rows = _reduce_int_rows(coeffs, primes)
        if rows is None:
            wide = coeffs.astype(object)
            rows = np.stack([
                (wide % q).astype(np.uint64) for q in primes
            ])
        poly = cls(rows, primes, is_eval=False)
        return poly.to_eval() if to_eval else poly

    # -- basic properties ----------------------------------------------------

    @property
    def n(self) -> int:
        return self.residues.shape[1]

    @property
    def num_limbs(self) -> int:
        return len(self.primes)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.residues.copy(), self.primes, self.is_eval)

    @property
    def _q_col(self) -> np.ndarray:
        """The ``(L, 1)`` broadcast column of moduli."""
        return np.array(self.primes, dtype=np.uint64)[:, None]

    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.primes != other.primes:
            raise ValueError(
                f"modulus mismatch: {len(self.primes)} vs {len(other.primes)} limbs"
            )
        if self.is_eval != other.is_eval:
            raise ValueError("domain mismatch (coeff vs eval)")

    # -- ring operations -----------------------------------------------------
    #
    # All limb-wise ops run as one broadcast over the full residue
    # matrix.  Residues stay below 2**30 (30-bit primes), so sums fit
    # uint64 with room and products fit below 2**60 — no per-limb loop,
    # no intermediate overflow.

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        out = (self.residues + other.residues) % self._q_col
        return RnsPoly(out, self.primes, self.is_eval)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        q_col = self._q_col
        out = (self.residues + (q_col - other.residues)) % q_col
        return RnsPoly(out, self.primes, self.is_eval)

    def __neg__(self) -> "RnsPoly":
        q_col = self._q_col
        out = (q_col - self.residues) % q_col
        return RnsPoly(out, self.primes, self.is_eval)

    def __mul__(self, other: "RnsPoly") -> "RnsPoly":
        """Ring product; both operands must be in the evaluation domain
        (point-wise multiply, the form the lanes execute)."""
        self._check_compatible(other)
        if not self.is_eval:
            raise ValueError("ring multiplication requires eval domain")
        out = self.residues * other.residues % self._q_col
        return RnsPoly(out, self.primes, self.is_eval)

    def mul_scalar(self, scalar: int) -> "RnsPoly":
        s_col = np.array([scalar % q for q in self.primes],
                         dtype=np.uint64)[:, None]
        out = self.residues * s_col % self._q_col
        return RnsPoly(out, self.primes, self.is_eval)

    # -- domain conversion ----------------------------------------------------

    def to_eval(self) -> "RnsPoly":
        if self.is_eval:
            return self.copy()
        out = get_backend().forward_ntt_batch(self.residues, self.primes)
        return RnsPoly(out, self.primes, is_eval=True)

    def to_coeff(self) -> "RnsPoly":
        if not self.is_eval:
            return self.copy()
        out = get_backend().inverse_ntt_batch(self.residues, self.primes)
        return RnsPoly(out, self.primes, is_eval=False)

    # -- Galois action ---------------------------------------------------------

    def automorphism(self, galois_k: int) -> "RnsPoly":
        """Apply ``X -> X^k`` (evaluation domain: a pure permutation)."""
        if not self.is_eval:
            raise ValueError("automorphism is applied in the eval domain")
        out = get_backend().automorphism_eval_batch(
            self.residues, galois_k, self.primes)
        return RnsPoly(out, self.primes, is_eval=True)

    # -- level / limb management ------------------------------------------------

    def drop_limb(self, index: int) -> "RnsPoly":
        """Remove one residue row (used by rescale and ModDown)."""
        keep = [i for i in range(self.num_limbs) if i != index]
        return RnsPoly(self.residues[keep],
                       tuple(self.primes[i] for i in keep), self.is_eval)

    def limbs_prefix(self, count: int) -> "RnsPoly":
        """Keep only the first ``count`` limbs (level truncation)."""
        if not 1 <= count <= self.num_limbs:
            raise ValueError(f"count {count} out of range")
        return RnsPoly(self.residues[:count], self.primes[:count], self.is_eval)

    def centered_limb(self, index: int) -> np.ndarray:
        """One limb's coefficients lifted to the balanced range, as int64
        (requires coefficient domain)."""
        if self.is_eval:
            raise ValueError("centered lift requires coefficient domain")
        q = self.primes[index]
        row = self.residues[index].astype(np.int64)
        return np.where(row > q // 2, row - q, row)
