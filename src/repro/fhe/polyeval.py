"""Homomorphic polynomial evaluation.

The nonlinear phase of CKKS bootstrapping (EvalMod) and most private-ML
activations reduce to evaluating a fixed polynomial on an encrypted
value.  Two evaluators:

* :func:`evaluate_horner` — classic Horner; multiplicative depth equals
  the degree.  Simple, used for shallow polynomials.
* :func:`evaluate_power_basis` — Paterson–Stockmeyer baby/giant-step:
  depth ``~log2(degree)`` at the cost of a few extra ciphertext
  multiplications; the form bootstrapping actually uses.

Coefficients are real scalars applied through plaintext multiplies; the
constant term enters through an add_plain.
"""

from __future__ import annotations

import math

import numpy as np

from repro.fhe.ckks import Ciphertext, CkksContext


def _const(ctx: CkksContext, value: float) -> np.ndarray:
    return np.full(ctx.params.slots, value)


def _level_align(ctx: CkksContext, ct: Ciphertext, level: int) -> Ciphertext:
    """Drop a ciphertext to ``level`` by modulus reduction — free (no
    scale decay, no added noise); :func:`_add_matched` reconciles the
    scale differences this leaves behind."""
    if ct.level > level:
        return ctx.mod_reduce(ct, level)
    if ct.level != level:
        raise ValueError(f"cannot raise level {ct.level} to {level}")
    return ct


def _add_matched(ctx: CkksContext, a: Ciphertext, b: Ciphertext) -> Ciphertext:
    """Add two ciphertexts from branches of different multiplicative
    depth.

    Three strategies, cheapest first: direct add when scales already
    agree; an exact integer scalar multiply when the scales differ by a
    near-integer ratio at the same level (free — no level consumed);
    otherwise spend one level on :meth:`CkksContext.match_scale`.
    """
    # Level alignment is free (modulus reduction keeps the scale).
    if a.level != b.level:
        target_level = min(a.level, b.level)
        a = ctx.mod_reduce(a, target_level) if a.level > target_level else a
        b = ctx.mod_reduce(b, target_level) if b.level > target_level else b
    if abs(np.log2(a.scale) - np.log2(b.scale)) < 0.01:
        return ctx.add(a, b)
    if a.scale < b.scale:
        a, b = b, a
    ratio = a.scale / b.scale
    k = round(ratio)
    if k >= 1 and abs(k - ratio) / ratio < 0.01:
        boosted = Ciphertext([p.mul_scalar(k) for p in b.parts],
                             b.scale * k)
        return ctx.add(a, boosted)
    # Last resort: spend one level to land both on a common scale.
    target = b.scale
    return ctx.add(ctx.match_scale(a, a.level - 1, target),
                   ctx.match_scale(b, b.level - 1, target))


def evaluate_horner(ctx: CkksContext, ct: Ciphertext,
                    coeffs: list[float]) -> Ciphertext:
    """Evaluate ``sum_k coeffs[k] * x^k`` by Horner's rule.

    Depth = ``len(coeffs) - 1`` multiplications; requires that many
    levels.
    """
    if not coeffs:
        raise ValueError("need at least one coefficient")
    if len(coeffs) == 1:
        return ctx.multiply_plain(ctx.add_plain(
            ctx.multiply_plain(ct, _const(ctx, 0.0)), _const(ctx, coeffs[0])),
            _const(ctx, 1.0))
    acc = ctx.multiply_plain(ct, _const(ctx, coeffs[-1]))
    for c in reversed(coeffs[1:-1]):
        acc = ctx.add_plain(acc, _const(ctx, c))
        acc = ctx.multiply(acc, _level_align(ctx, ct, acc.level))
    return ctx.add_plain(acc, _const(ctx, coeffs[0]))


def evaluate_power_basis(ctx: CkksContext, ct: Ciphertext,
                         coeffs: list[float]) -> Ciphertext:
    """Paterson–Stockmeyer evaluation with ``~log`` depth.

    Split the degree-``D`` polynomial into blocks of ``k ~ sqrt(D+1)``
    coefficients, evaluate each block over precomputed baby powers
    ``x..x^(k-1)``, and combine blocks with giant powers of ``x^k``.
    """
    if not coeffs:
        raise ValueError("need at least one coefficient")
    degree = len(coeffs) - 1
    if degree == 0:
        return evaluate_horner(ctx, ct, coeffs)
    k = max(1, int(math.isqrt(degree + 1)))

    # Baby powers x^1 .. x^k (binary products keep depth log2 k + 1).
    powers: dict[int, Ciphertext] = {1: ct}
    for j in range(2, k + 1):
        half = j // 2
        a = powers[half]
        b = powers[j - half]
        powers[j] = ctx.multiply(a, b)

    def block_value(block: list[float], level_floor: int) -> Ciphertext | None:
        """Evaluate ``block[0] + block[1] x + ...`` over the baby powers,
        aligned to a common level."""
        acc = None
        for j, c in enumerate(block):
            if j == 0 or c == 0.0:
                continue
            term = ctx.multiply_plain(
                _level_align(ctx, powers[j], level_floor + 1),
                _const(ctx, c))
            acc = term if acc is None else ctx.add(acc, term)
        if acc is None:
            acc = ctx.multiply_plain(_level_align(ctx, ct, level_floor + 1),
                                     _const(ctx, 0.0))
        if block[0] != 0.0:
            acc = ctx.add_plain(acc, _const(ctx, block[0]))
        return acc

    # The deepest baby power's level bounds every block's working level.
    min_power_level = min(p.level for p in powers.values())
    blocks = [coeffs[i:i + k] for i in range(0, len(coeffs), k)]

    # Giant powers of g = x^k.
    giant: dict[int, Ciphertext] = {}
    if len(blocks) > 1:
        giant[1] = powers[k]
        g = 2
        while g < len(blocks):
            half = g // 2
            giant[g] = ctx.multiply(giant[half], giant[g - half])
            g += 1

    result = block_value(blocks[0], min_power_level - 1)
    for idx, block in enumerate(blocks[1:], start=1):
        value = block_value(block, min_power_level - 1)
        common = min(value.level, giant[idx].level)
        lifted = ctx.multiply(_level_align(ctx, value, common),
                              _level_align(ctx, giant[idx], common))
        result = _add_matched(ctx, result, lifted)
    return result
