"""Random samplers for RLWE key material and noise.

* ternary secrets (coefficients in {-1, 0, 1}),
* centered discrete Gaussian errors (sigma ~ 3.2, the standard choice),
* uniform ring elements for the public randomness.

All samplers take an explicit :class:`numpy.random.Generator` so tests
are reproducible; none of this is meant to be side-channel hardened.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.polynomial import RnsPoly


def sample_ternary(n: int, rng: np.random.Generator,
                   hamming_weight: int | None = None) -> np.ndarray:
    """Ternary secret coefficients in {-1, 0, 1} (int64).

    With ``hamming_weight`` set, exactly that many coefficients are
    nonzero (the sparse-secret variant common in CKKS deployments).
    """
    if hamming_weight is None:
        # fhecheck: ok=FHC002 — ternary samples in {-1, 0, 1}
        return rng.integers(-1, 2, size=n).astype(np.int64)
    if not 0 < hamming_weight <= n:
        raise ValueError(f"hamming weight {hamming_weight} out of range")
    coeffs = np.zeros(n, dtype=np.int64)
    support = rng.choice(n, size=hamming_weight, replace=False)
    coeffs[support] = rng.choice([-1, 1], size=hamming_weight)
    return coeffs


def sample_gaussian(n: int, std: float, rng: np.random.Generator) -> np.ndarray:
    """Centered discrete Gaussian (rounded normal) coefficients."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    # fhecheck: ok=FHC002 — rounded Gaussian, |x| ~ 6*std << 2**63
    return np.rint(rng.normal(0.0, std, size=n)).astype(np.int64)


def sample_uniform_poly(n: int, primes: tuple[int, ...],
                        rng: np.random.Generator) -> RnsPoly:
    """A uniformly random ring element, directly in RNS eval form.

    Sampling each limb independently and uniformly is exactly uniform
    over the composite modulus by CRT.
    """
    rows = np.stack([
        rng.integers(0, q, size=n, dtype=np.uint64) for q in primes
    ])
    return RnsPoly(rows, primes, is_eval=True)
