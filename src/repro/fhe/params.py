"""CKKS parameter sets.

A parameter set fixes the ring degree ``N``, the RNS modulus chain
``q_0 .. q_{L-1}`` (one 30-bit NTT-friendly prime per level, so the
vectorized uint64 arithmetic paths apply), one special prime ``p`` for
keyswitching, and the encoding scale.

These presets are sized for *functional* reproduction on a laptop, not
for cryptographic security — a production deployment would use
N >= 2^15 with 40-60-bit primes and a security analysis.  The paper's
hardware arguments are insensitive to this distinction: the kernel mix
(element-wise ops, NTTs, automorphisms) is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.arith.primes import find_ntt_primes


@dataclass(frozen=True)
class CkksParams:
    """A CKKS parameter set.

    Parameters
    ----------
    n:
        Ring degree (polynomial modulus ``X^n + 1``); power of two.
    levels:
        Number of RNS limbs ``L`` in the fresh-ciphertext modulus chain;
        supports ``L - 1`` rescaling multiplications.
    scale_bits:
        ``log2`` of the encoding scale Delta.
    prime_bits:
        Bit width of every chain prime and the special prime.
    error_std:
        Standard deviation of the discrete Gaussian encryption noise.
    secret_hamming_weight:
        When set, the ternary secret has exactly this many nonzero
        coefficients (the sparse-secret variant CKKS bootstrapping
        deployments use to tame EvalMod's input range).
    """

    n: int = 4096
    levels: int = 6
    scale_bits: int = 27
    prime_bits: int = 30
    error_std: float = 3.2
    secret_hamming_weight: int | None = None
    primes: tuple[int, ...] = field(init=False)
    special_prime: int = field(init=False)

    def __post_init__(self) -> None:
        if self.n < 8 or self.n & (self.n - 1):
            raise ValueError(f"n must be a power of two >= 8, got {self.n}")
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.scale_bits >= self.prime_bits:
            raise ValueError("scale must be below the prime width")
        if self.prime_bits > 30:
            raise ValueError("prime_bits > 30 breaks the uint64 fast paths")
        if (self.secret_hamming_weight is not None
                and not 0 < self.secret_hamming_weight <= self.n):
            raise ValueError(
                f"secret hamming weight {self.secret_hamming_weight} "
                f"out of range (0, {self.n}]"
            )
        found = find_ntt_primes(2 * self.n, self.prime_bits, self.levels + 1)
        object.__setattr__(self, "primes", tuple(found[:self.levels]))
        object.__setattr__(self, "special_prime", found[self.levels])

    @property
    def slots(self) -> int:
        """Number of complex plaintext slots: N/2."""
        return self.n // 2

    @property
    def scale(self) -> float:
        return float(1 << self.scale_bits)

    def modulus_at_level(self, level: int) -> int:
        """The composite modulus ``Q_level = q_0 * ... * q_level``."""
        if not 0 <= level < self.levels:
            raise ValueError(f"level {level} out of range [0, {self.levels})")
        q = 1
        for prime in self.primes[:level + 1]:
            q *= prime
        return q

    @property
    def top_level(self) -> int:
        return self.levels - 1


@lru_cache(maxsize=8)
def toy_params() -> CkksParams:
    """Tiny ring for exhaustive tests (N=256, 3 levels)."""
    return CkksParams(n=256, levels=3, scale_bits=26, prime_bits=28)


@lru_cache(maxsize=8)
def small_params() -> CkksParams:
    """Small ring for integration tests (N=1024, 4 levels)."""
    return CkksParams(n=1024, levels=4, scale_bits=26, prime_bits=29)


@lru_cache(maxsize=8)
def default_params() -> CkksParams:
    """The documentation default (N=4096, 6 levels)."""
    return CkksParams()
