"""BFV: scale-invariant exact integer FHE — the third §II-A scheme.

Where BGV carries its plaintext next to the noise (``m + t*e``) and
manages scale through modulus switching, BFV embeds the plaintext at the
*top* of the modulus (``Delta*m`` with ``Delta = floor(Q/t)``) and
divides by ``Q/t`` after every multiplication.  Same ring, same NTT and
automorphism kernels, same digit keyswitch — one more datapoint for the
paper's claim that the unified VPU serves every mainstream scheme.

Scope note: homomorphic multiplication's tensor step must be computed
over the integers before the ``t/Q`` rounding, which RNS-optimized BFV
implementations (HPS/BEHZ) do with auxiliary-basis extensions.  This
module instead lifts to exact big-integer coefficient arithmetic — the
golden-model formulation, quadratic in ``N`` — which keeps the scheme
bit-exact and the code auditable at the ring sizes the test-suite uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.modular import mod_inverse
from repro.fhe.bgv import BgvParams
from repro.fhe.keyswitch import apply_keyswitch, generate_keyswitch_key, mod_down
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import get_basis
from repro.fhe.sampling import sample_gaussian, sample_ternary, sample_uniform_poly
from repro.ntt.negacyclic import NegacyclicNtt


@dataclass
class BfvCiphertext:
    """A BFV ciphertext (no auxiliary bookkeeping needed: scale
    invariance is the scheme's selling point)."""

    parts: list[RnsPoly]

    @property
    def size(self) -> int:
        return len(self.parts)


class BfvContext:
    """Keys and evaluator for BFV (single-level modulus: the chain's
    full product; BFV needs no level ladder)."""

    def __init__(self, params: BgvParams, seed: int = 2025):
        self.params = params
        self.t = params.plaintext_modulus
        self._cp = params.ciphertext_params()
        self.basis = get_basis(self._cp.primes, self._cp.special_prime)
        self._rng = np.random.default_rng(seed)
        self._full = self._cp.primes + (self._cp.special_prime,)
        self.big_q = self.basis.big_q
        self.delta = self.big_q // self.t
        self._plain_ntt = NegacyclicNtt(params.n, self.t)
        self._slot_order = self._build_slot_order()
        self._keygen()

    # -- slot packing (same power-of-5 orbits as BGV) -----------------------

    def _build_slot_order(self) -> np.ndarray:
        n = self.params.n
        order = np.empty(n, dtype=np.int64)
        exponent = 1
        for u in range(n // 2):
            order[u] = (exponent - 1) // 2
            order[u + n // 2] = (2 * n - exponent - 1) // 2
            exponent = exponent * 5 % (2 * n)
        return order

    def _encode_coeffs(self, values: np.ndarray) -> np.ndarray:
        n = self.params.n
        if len(values) != n:
            raise ValueError(f"expected {n} slots, got {len(values)}")
        evals = np.zeros(n, dtype=np.uint64)
        evals[self._slot_order] = np.asarray(values, dtype=object) % self.t
        coeffs = self._plain_ntt.inverse(evals).astype(np.int64)
        return np.where(coeffs > self.t // 2, coeffs - self.t, coeffs)

    def _decode_coeffs(self, coeffs: np.ndarray) -> np.ndarray:
        evals = self._plain_ntt.forward(
            np.asarray(coeffs, dtype=object) % self.t)
        # fhecheck: ok=FHC002 — evals are residues mod t < 2**62
        return evals[self._slot_order].astype(np.int64)

    # -- keys ---------------------------------------------------------------

    def _keygen(self) -> None:
        cp = self._cp
        n = self.params.n
        secret = sample_ternary(n, self._rng)
        self._secret_full = RnsPoly.from_int_coeffs(secret, self._full)
        self.secret = self._secret_full.limbs_prefix(cp.levels)
        a = sample_uniform_poly(n, cp.primes, self._rng)
        e = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng), cp.primes)
        self.public_key = ((-(a * self.secret)) + e, a)
        s_squared = self._secret_full * self._secret_full
        self.relin_key = generate_keyswitch_key(
            cp, s_squared, self._secret_full, self._rng)

    # -- encryption -----------------------------------------------------------

    def encrypt(self, values: np.ndarray) -> BfvCiphertext:
        cp = self._cp
        n = self.params.n
        m_coeffs = self._encode_coeffs(values)
        scaled = (m_coeffs.astype(object) * self.delta)
        m_poly = RnsPoly.from_int_coeffs(scaled, cp.primes)
        b, a = self.public_key
        u = RnsPoly.from_int_coeffs(sample_ternary(n, self._rng), cp.primes)
        e0 = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng), cp.primes)
        e1 = RnsPoly.from_int_coeffs(
            sample_gaussian(n, cp.error_std, self._rng), cp.primes)
        return BfvCiphertext([b * u + e0 + m_poly, a * u + e1])

    def _lift(self, poly: RnsPoly) -> np.ndarray:
        """Centered big-integer coefficients of a chain polynomial."""
        coeff = poly.to_coeff()
        total = np.zeros(self.params.n, dtype=object)
        for i, q in enumerate(coeff.primes):
            q_hat = self.big_q // q
            factor = q_hat * mod_inverse(q_hat, q) % self.big_q
            total = (total + coeff.residues[i].astype(object) * factor) \
                % self.big_q
        return np.where(total > self.big_q // 2, total - self.big_q, total)

    def decrypt(self, ct: BfvCiphertext) -> np.ndarray:
        s = self.secret
        acc = ct.parts[0].copy()
        s_power = s
        for part in ct.parts[1:]:
            acc = acc + part * s_power
            s_power = s_power * s
        carried = self._lift(acc)
        # m = round(t * carried / Q) mod t.
        rounded = np.array(
            [(2 * self.t * int(v) + self.big_q) // (2 * self.big_q)
             for v in carried], dtype=object)
        return self._decode_coeffs(rounded % self.t)

    # -- evaluator ---------------------------------------------------------------

    def add(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        return BfvCiphertext([x + y for x, y in zip(a.parts, b.parts)])

    def sub(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        return BfvCiphertext([x - y for x, y in zip(a.parts, b.parts)])

    def add_plain(self, ct: BfvCiphertext, values: np.ndarray) -> BfvCiphertext:
        scaled = self._encode_coeffs(values).astype(object) * self.delta
        m_poly = RnsPoly.from_int_coeffs(scaled, self._cp.primes)
        return BfvCiphertext([ct.parts[0] + m_poly]
                             + [p.copy() for p in ct.parts[1:]])

    def multiply_plain(self, ct: BfvCiphertext,
                       values: np.ndarray) -> BfvCiphertext:
        # Plaintext multiplicand is NOT Delta-scaled (the ciphertext
        # already carries one Delta).
        m_poly = RnsPoly.from_int_coeffs(
            self._encode_coeffs(values), self._cp.primes)
        return BfvCiphertext([p * m_poly for p in ct.parts])

    def multiply(self, a: BfvCiphertext, b: BfvCiphertext) -> BfvCiphertext:
        """HMult: integer tensor, ``t/Q`` rounding, relinearization."""
        if a.size != 2 or b.size != 2:
            raise ValueError("multiply expects 2-part ciphertexts")
        lifted_a = [self._lift(p) for p in a.parts]
        lifted_b = [self._lift(p) for p in b.parts]

        def negacyclic(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            n = self.params.n
            out = np.zeros(n, dtype=object)
            for i in range(n):
                xi = int(x[i])
                if xi == 0:
                    continue
                for j in range(n):
                    k = i + j
                    v = xi * int(y[j])
                    if k < n:
                        out[k] += v
                    else:
                        out[k - n] -= v
            return out

        def scale_round(poly: np.ndarray) -> np.ndarray:
            return np.array(
                [(2 * self.t * int(v) + self.big_q) // (2 * self.big_q)
                 for v in poly], dtype=object)

        d0 = scale_round(negacyclic(lifted_a[0], lifted_b[0]))
        d1 = scale_round(negacyclic(lifted_a[0], lifted_b[1])
                         + negacyclic(lifted_a[1], lifted_b[0]))
        d2 = scale_round(negacyclic(lifted_a[1], lifted_b[1]))

        primes = self._cp.primes
        d0p = RnsPoly.from_int_coeffs(d0, primes)
        d1p = RnsPoly.from_int_coeffs(d1, primes)
        d2p = RnsPoly.from_int_coeffs(d2, primes)
        t0, t1 = apply_keyswitch(d2p, self.relin_key, self._cp)
        return BfvCiphertext([d0p + mod_down(t0, self.basis),
                              d1p + mod_down(t1, self.basis)])
