"""CKKS canonical-embedding encoder.

A plaintext vector of ``N/2`` complex slots embeds into a real
polynomial through the canonical embedding: slot ``t`` is the value of
the polynomial at the primitive ``2N``-th root ``zeta^(5^t)`` (and its
conjugate at ``zeta^(-5^t)``), scaled by Delta and rounded.

The **power-of-five slot ordering** is what makes homomorphic rotation
work: the Galois action ``X -> X^(5^r)`` sends evaluation point
``zeta^(5^t)`` to ``zeta^(5^(t+r))``, i.e. it *cyclically rotates* the
slot vector by ``r`` — the paper's §II-C, where applying
``sigma_{Phi,r}`` rotates the plaintexts.  With ascending odd-exponent
ordering the same action would scramble the slots.

Transforms are O(N log N): one FFT plus an index permutation.
"""

from __future__ import annotations

import numpy as np

from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly


class CkksEncoder:
    """Encoder/decoder bound to one parameter set."""

    def __init__(self, params: CkksParams):
        self.params = params
        n = params.n
        self.n = n
        self.slots = params.slots
        # Map slot t to the DFT bin j with 2j+1 = 5^t mod 2N, and the
        # conjugate bin for -5^t.
        exponent = 1
        self._slot_bin = np.empty(self.slots, dtype=np.int64)
        self._conj_bin = np.empty(self.slots, dtype=np.int64)
        for t in range(self.slots):
            self._slot_bin[t] = (exponent - 1) // 2
            self._conj_bin[t] = (2 * n - exponent - 1) // 2
            exponent = exponent * 5 % (2 * n)
        #: Twist factors e^{i pi k / N} linking the odd-root transform to
        #: the standard DFT.
        k = np.arange(n)
        self._twist = np.exp(1j * np.pi * k / n)

    # -- complex vector <-> real coefficient vector -------------------------

    def embed(self, slots_vec: np.ndarray) -> np.ndarray:
        """Slot values -> real (float) polynomial coefficients, unscaled."""
        z = np.asarray(slots_vec, dtype=np.complex128)
        if len(z) != self.slots:
            raise ValueError(f"expected {self.slots} slots, got {len(z)}")
        spectrum = np.zeros(self.n, dtype=np.complex128)
        spectrum[self._slot_bin] = z
        spectrum[self._conj_bin] = np.conj(z)
        # c_k = (1/N) * e^{-i pi k/N} * sum_j v_j e^{-2 pi i jk/N}
        coeffs = np.fft.fft(spectrum) * np.conj(self._twist) / self.n
        return coeffs.real

    def project(self, coeffs: np.ndarray) -> np.ndarray:
        """Real polynomial coefficients -> slot values, unscaled."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if len(coeffs) != self.n:
            raise ValueError(f"expected {self.n} coefficients, got {len(coeffs)}")
        spectrum = np.fft.ifft(coeffs * self._twist) * self.n
        return spectrum[self._slot_bin]

    # -- plaintext encode/decode ---------------------------------------------

    def encode(self, slots_vec: np.ndarray, level: int | None = None,
               scale: float | None = None) -> tuple[RnsPoly, float]:
        """Encode slots into a double-CRT plaintext polynomial.

        Returns ``(poly, scale)``; the poly is at the given level (default
        top) in the evaluation domain.
        """
        level = self.params.top_level if level is None else level
        scale = self.params.scale if scale is None else scale
        coeffs = self.embed(slots_vec) * scale
        rounded = np.rint(coeffs).astype(object)
        primes = self.params.primes[:level + 1]
        return RnsPoly.from_int_coeffs(rounded, primes), scale

    def decode(self, poly: RnsPoly, scale: float) -> np.ndarray:
        """Decode a plaintext polynomial back to slot values."""
        coeff_poly = poly.to_coeff()
        q_prod = 1
        for q in coeff_poly.primes:
            q_prod *= q
        # Centered CRT lift limb-by-limb (vectorized Garner would be
        # overkill at these sizes).
        acc = np.zeros(self.n, dtype=object)
        for i, q in enumerate(coeff_poly.primes):
            q_hat = q_prod // q
            factor = q_hat * pow(q_hat, -1, q) % q_prod
            acc = (acc + coeff_poly.residues[i].astype(object) * factor) % q_prod
        centered = np.where(acc > q_prod // 2, acc - q_prod, acc)
        return self.project(centered.astype(np.float64)) / scale
