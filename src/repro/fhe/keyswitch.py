"""RNS digit-decomposition keyswitching with one special prime.

A keyswitch converts a polynomial known under key ``s_from`` into a
2-part ciphertext under ``s_to``.  We use the per-prime digit gadget:
the digits of ``x`` are its raw residues ``[x]_{q_i}`` (centered), and
the gadget vector is the CRT-idempotent family ``B_i`` of the full
chain, pre-multiplied by the special prime ``P``:

``ksk_i = (-a_i s_to + e_i + P * B_i * s_from,  a_i)  mod (Q_L * P)``

Because ``sum_{i <= level} [x]_{q_i} B_i === x`` modulo any level prefix
of the chain, one key works at **every** level — no per-level keys.
The noise added is ``~ sum_i x_i e_i / P``, small since digits are at
most ``q_i / 2`` in magnitude and ``P ~ q_i``.

This is the computation pattern the paper's keyswitch workload refers
to (§II-A): per digit, a batch of NTTs to re-express the digit in every
limb, then element-wise multiply-accumulates — plus the ModDown by
``P`` at the end.  The implementation dispatches it that way too: all
``L * (L + 1)`` digit-row NTTs go to the backend as **one** batch, and
the per-digit products accumulate in place over the full residue
matrices with a single final reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bounds import keyswitch_lazy_accumulate_ok, mul_fits_uint64
from repro.arith.modular import mod_inverse
from repro.fault.injector import current_fault_hook
from repro.fhe.backend import get_backend
from repro.fhe.params import CkksParams
from repro.obs import CAT_PHASE, current_obs_hook
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import RnsBasis, get_basis
from repro.fhe.sampling import sample_gaussian, sample_uniform_poly


@dataclass
class KeySwitchKey:
    """One digit-decomposed keyswitch key (relinearization or Galois)."""

    #: Per digit i: (b_i, a_i), both over the full basis Q_L * P, eval domain.
    pairs: list[tuple[RnsPoly, RnsPoly]]

    @property
    def num_digits(self) -> int:
        return len(self.pairs)


def _full_primes(params: CkksParams) -> tuple[int, ...]:
    return params.primes + (params.special_prime,)


def generate_keyswitch_key(
    params: CkksParams,
    s_from_eval_full: RnsPoly,
    s_to_eval_full: RnsPoly,
    rng: np.random.Generator,
    error_scale: int = 1,
) -> KeySwitchKey:
    """Build the digit keys taking ``s_from`` to ``s_to``.

    Both secrets must be given over the full basis (chain + special) in
    the evaluation domain.  ``error_scale`` multiplies the key errors —
    BGV keys need errors that are multiples of the plaintext modulus so
    keyswitch noise stays invisible modulo ``t``.
    """
    basis = get_basis(params.primes, params.special_prime)
    full = _full_primes(params)
    n = params.n
    p = params.special_prime
    pairs = []
    for i in range(params.levels):
        a = sample_uniform_poly(n, full, rng)
        e = RnsPoly.from_int_coeffs(
            sample_gaussian(n, params.error_std, rng) * error_scale, full)
        # P * B_i reduced in every limb of the full basis, as a broadcast
        # column over the secret's residue matrix.
        pb_col = np.array([
            (p % q) * (int(basis.idempotent_mod_chain[i][j])
                       if j < params.levels
                       else int(basis.idempotent_mod_special[i])) % q
            for j, q in enumerate(full)
        ], dtype=np.uint64)[:, None]
        q_col = np.array(full, dtype=np.uint64)[:, None]
        gadget = RnsPoly(s_from_eval_full.residues * pb_col % q_col,
                         full, is_eval=True)
        b = (-(a * s_to_eval_full)) + e + gadget
        pairs.append((b, a))
    return KeySwitchKey(pairs)


def decompose_digits(x: RnsPoly, params: CkksParams) -> list[RnsPoly]:
    """Digit-decompose an eval-domain chain polynomial.

    Digit ``i`` is the centered lift of ``[x]_{q_i}`` re-expressed over
    every chain limb of ``x``'s level plus the special prime, in the
    evaluation domain.  All ``L`` centered lifts reduce against the
    target basis in one ``(L, L+1, n)`` broadcast, and the resulting
    ``L * (L+1)`` rows go to the backend as a **single** forward-NTT
    batch — the NTT batch the accelerator speeds up, dispatched as one
    unit instead of one call per residue row.
    """
    obs = current_obs_hook()
    if obs is not None:
        # Phase 1 of the §II-A keyswitch: digit extraction (the inverse
        # NTT back to coefficients plus the centered-lift broadcast).
        obs.begin("keyswitch.decompose", cat=CAT_PHASE,
                  limbs=x.num_limbs, n=x.n)
    coeff = x.to_coeff()
    level_primes = x.primes
    target = level_primes + (params.special_prime,)
    lcount = len(level_primes)
    tcount = len(target)
    evals = np.empty((lcount, tcount, x.n), dtype=np.uint64)
    # Digit i needs no transform in its own limb: the centered lift is
    # congruent to the original residue row mod q_i, and forward(inverse)
    # is an exact identity — so NTT(digit_i mod q_i) == x.residues[i]
    # bit-for-bit.  Only the off-diagonal (i, j != i) rows hit the NTT.
    for i in range(lcount):
        evals[i, i] = x.residues[i]
    off_diag = [(i, j) for i in range(lcount) for j in range(tcount)
                if j != i]
    if max(level_primes) // 2 < min(target):
        # |centered| <= q_i/2 < every target prime (equal-width chains),
        # so reduction mod t_j is res[i] + (t_j - q_i) when res[i] is in
        # the upper half — pure uint64 with wraparound, no int64 `%`.
        res = coeff.residues
        half_col = np.array([q // 2 for q in level_primes],
                            dtype=np.uint64)[:, None]
        upper = res > half_col
        src = [i for i, _ in off_diag]
        offsets = np.array(
            [(target[j] - level_primes[i]) % (1 << 64) for i, j in off_diag],
            dtype=np.uint64)[:, None]
        rows = res[src] + offsets * upper[src]
    else:
        q_col = np.array(level_primes, dtype=np.int64)[:, None]
        res = coeff.residues.astype(np.int64)
        centered = np.where(res > q_col // 2, res - q_col, res)
        rows = np.stack([
            (centered[i] % np.int64(target[j])).astype(np.uint64)
            for i, j in off_diag
        ])
    if obs is not None:
        obs.end()
        # Phase 2: the digit NTT batch — all L*(L+1) off-diagonal rows
        # in one dispatch, the batch the accelerator accelerates.
        obs.begin("keyswitch.ntt", cat=CAT_PHASE, rows=len(off_diag))
    batch = get_backend().forward_ntt_batch(
        rows, tuple(target[j] for _, j in off_diag))
    if obs is not None:
        obs.end()
    for r, (i, j) in enumerate(off_diag):
        evals[i, j] = batch[r]
    return [RnsPoly(evals[i], target, is_eval=True) for i in range(lcount)]


def accumulate_keyswitch(
    digits: list[RnsPoly], ksk: KeySwitchKey, keep: list[int],
    primes: tuple[int, ...],
) -> tuple[RnsPoly, RnsPoly]:
    """Fused multiply-accumulate of digits against the key pairs.

    Accumulates ``sum_i digit_i * b_i`` and ``sum_i digit_i * a_i`` in
    place over the ``(L+1, n)`` residue matrices with lazy reduction:
    when the analyzer proves the full unreduced accumulator
    ``num_digits * (max(q)-1)**2`` fits uint64 (always true for the
    repository's <=30-bit primes and practical digit counts) the raw
    products accumulate unreduced and each sum takes exactly **one**
    final ``%``.  Otherwise each product is reduced as it is added —
    through uint64 while a single raw product still fits, through
    object dtype beyond that (moduli of 2**32 and up, where even one
    product would wrap).  ``keep`` selects the key limbs matching the
    digits' basis (level prefix plus special prime).
    """
    obs = current_obs_hook()
    if obs is not None:
        # Phase 3: the per-digit inner product (element-wise MACs over
        # the (L+1, n) residue matrices, lazily reduced when provable).
        obs.begin("keyswitch.inner_product", cat=CAT_PHASE,
                  digits=len(digits))
    q_col = np.array(primes, dtype=np.uint64)[:, None]
    maxq = max(primes)
    lazy = keyswitch_lazy_accumulate_ok(len(digits), maxq)
    wide = not mul_fits_uint64(maxq - 1, maxq - 1)
    inner = getattr(get_backend(), "keyswitch_inner_product", None)
    if (inner is not None and not wide and digits
            and current_fault_hook() is None):
        # Fused compiled path: one kernel call over the (D, L+1, n)
        # stacks.  Skipped under an active fault hook so injection sites
        # and the ABFT spare-modulus check keep seeing the python loop
        # (IntegrityBackend never exposes the fused method itself).
        digit_stack = np.stack([d.residues for d in digits])
        b_stack = np.stack([ksk.pairs[i][0].residues[keep]
                            for i in range(len(digits))])
        a_stack = np.stack([ksk.pairs[i][1].residues[keep]
                            for i in range(len(digits))])
        acc0, acc1 = inner(digit_stack, b_stack, a_stack, primes)
        if obs is not None:
            obs.end(lazy=lazy, fused=True)
        return (RnsPoly(acc0, primes, is_eval=True),
                RnsPoly(acc1, primes, is_eval=True))
    acc0 = np.zeros_like(digits[0].residues)
    acc1 = np.zeros_like(digits[0].residues)
    if wide:
        acc0 = acc0.astype(object)
        acc1 = acc1.astype(object)
        q_col = q_col.astype(object)
    for i, digit in enumerate(digits):
        b_i, a_i = ksk.pairs[i]
        if lazy:
            acc0 += digit.residues * b_i.residues[keep]
            acc1 += digit.residues * a_i.residues[keep]
        elif wide:
            d = digit.residues.astype(object)
            acc0 = (acc0 + d * b_i.residues[keep].astype(object)) % q_col
            acc1 = (acc1 + d * a_i.residues[keep].astype(object)) % q_col
        else:
            # Each summand is reduced (< q) and the running sum is kept
            # < q, so the uint64 addition transient stays below 2q.
            acc0 = (acc0 + digit.residues * b_i.residues[keep] % q_col) % q_col
            acc1 = (acc1 + digit.residues * a_i.residues[keep] % q_col) % q_col
    if lazy:
        hook = current_fault_hook()
        if hook is not None:
            # Expose the unreduced lazy accumulators to injection (site
            # "keyswitch") before the spare-modulus verification runs.
            hook.corrupt_buffer("keyswitch", acc0)
            hook.corrupt_buffer("keyswitch", acc1)
        check = getattr(get_backend(), "check_keyswitch_accumulation", None)
        if check is not None:
            # Spare-modulus (redundant-residue) verification: the exact
            # uint64 accumulator must agree with the independent sum of
            # spare-channel products.  A False verdict (retry/degrade
            # policies) recomputes on the per-step reduced channel.
            digit_stack = np.stack([d.residues for d in digits])
            b_stack = np.stack([ksk.pairs[i][0].residues[keep]
                                for i in range(len(digits))])
            a_stack = np.stack([ksk.pairs[i][1].residues[keep]
                                for i in range(len(digits))])
            if not check(acc0, digit_stack, b_stack):
                acc0 = (digit_stack * b_stack % q_col).sum(
                    axis=0, dtype=np.uint64)
            if not check(acc1, digit_stack, a_stack):
                acc1 = (digit_stack * a_stack % q_col).sum(
                    axis=0, dtype=np.uint64)
    acc0 %= q_col
    acc1 %= q_col
    if wide:
        # Reduced residues < q < 2**62 fit uint64 exactly.
        acc0 = acc0.astype(np.uint64)
        acc1 = acc1.astype(np.uint64)
    if obs is not None:
        obs.end(lazy=lazy)
    return (RnsPoly(acc0, primes, is_eval=True),
            RnsPoly(acc1, primes, is_eval=True))


def apply_keyswitch(
    x: RnsPoly, ksk: KeySwitchKey, params: CkksParams
) -> tuple[RnsPoly, RnsPoly]:
    """Switch ``x`` (eval domain, chain limbs only) to the target key.

    Returns the two accumulated parts still over ``chain + special``;
    follow with :func:`mod_down` to drop the special prime.
    """
    digits = decompose_digits(x, params)
    keep = list(range(x.num_limbs)) + [params.levels]  # limbs of Q_l * P
    primes = x.primes + (params.special_prime,)
    return accumulate_keyswitch(digits, ksk, keep, primes)


def _divide_by_top_limb(poly: RnsPoly, inv_table: np.ndarray,
                        plaintext_modulus: int | None = None) -> RnsPoly:
    """Drop the last limb with rounding: ``(x - delta) / q_top``.

    ``delta === x (mod q_top)``; with ``plaintext_modulus`` set, ``delta``
    is additionally forced to ``0 (mod t)`` so the division leaves exact
    BGV plaintexts untouched (CKKS treats the rounding as approximation
    noise and skips the correction).
    """
    coeff = poly.to_coeff()
    top = coeff.num_limbs - 1
    q_top = poly.primes[top]
    tail = coeff.centered_limb(top)
    if plaintext_modulus is None:
        delta = tail
    elif plaintext_modulus < (1 << 31):
        # int64 throughout: |tail| < q_top/2 < 2**30 and the correction
        # magnitude is <= t/2 < 2**31, so delta stays below 2**61.
        t = plaintext_modulus
        correction = (-tail * mod_inverse(q_top, t)) % t
        correction = np.where(correction > t // 2, correction - t, correction)
        delta = tail + correction * q_top
    else:  # oversized plaintext modulus: exact big-int fallback
        t = plaintext_modulus
        correction = (-tail.astype(object) * mod_inverse(q_top, t)) % t
        correction = np.where(correction > t // 2, correction - t, correction)
        delta = tail.astype(object) + correction * q_top
    chain = coeff.limbs_prefix(top)
    q_col = np.array(chain.primes, dtype=np.int64)[:, None]
    if delta.dtype == object:
        lifted = np.stack([(delta % q).astype(np.uint64)
                           for q in chain.primes])
    elif plaintext_modulus is None and q_top // 2 < min(chain.primes):
        # CKKS rescale/moddown: |delta| <= q_top/2 below every chain
        # prime, so reduction is a conditional add.
        d = delta[None, :]
        lifted = (d + q_col * (d < 0)).astype(np.uint64)
    else:
        lifted = (delta[None, :] % q_col).astype(np.uint64)
    qq = q_col.astype(np.uint64)
    inv_col = np.asarray(inv_table, dtype=np.uint64)[:, None]
    s = chain.residues + (qq - lifted)  # < 2q: one conditional subtract
    np.minimum(s, s - qq, out=s)
    out = s * inv_col % qq
    return RnsPoly(out, chain.primes, is_eval=False).to_eval()


def mod_down(t: RnsPoly, basis: RnsBasis,
             plaintext_modulus: int | None = None) -> RnsPoly:
    """Divide by the special prime with rounding: ``(t - [t]_p) / p``.

    Consumes a poly whose last limb is the special prime; returns the
    chain-only poly in the evaluation domain.  ``plaintext_modulus``
    enables the exact-scheme correction (see :func:`_divide_by_top_limb`).
    """
    if t.primes[-1] != basis.special_prime:
        raise ValueError("mod_down expects the special prime as last limb")
    inv_table = basis.special_inv_mod_chain[:t.num_limbs - 1]
    obs = current_obs_hook()
    if obs is not None:
        # Phase 4: ModDown by the special prime (inverse NTT, rounding
        # division, forward NTT back to the evaluation domain).
        obs.begin("keyswitch.mod_down", cat=CAT_PHASE, limbs=t.num_limbs)
    out = _divide_by_top_limb(t, inv_table, plaintext_modulus)
    if obs is not None:
        obs.end()
    return out


def rescale(poly: RnsPoly, basis: RnsBasis) -> RnsPoly:
    """Drop the top chain limb with rounding: ``(x - [x]_{q_l}) / q_l``.

    The CKKS rescale after multiplication; same arithmetic as
    :func:`mod_down` but dividing by the last *chain* prime.
    """
    if poly.num_limbs < 2:
        raise ValueError("cannot rescale below one limb")
    q_top = poly.primes[poly.num_limbs - 1]
    inv_table = basis.prime_inv_mod_others(basis.primes.index(q_top))
    obs = current_obs_hook()
    if obs is not None:
        obs.begin("ckks.rescale", cat=CAT_PHASE, limbs=poly.num_limbs)
    out = _divide_by_top_limb(poly, inv_table)
    if obs is not None:
        obs.end()
    return out


def mod_switch_exact(poly: RnsPoly, basis: RnsBasis,
                     plaintext_modulus: int) -> RnsPoly:
    """BGV modulus switch: drop the top chain prime while keeping the
    carried value exact modulo ``t`` (up to the tracked ``q_top^{-1}``
    plaintext factor)."""
    if poly.num_limbs < 2:
        raise ValueError("cannot modulus-switch below one limb")
    q_top = poly.primes[poly.num_limbs - 1]
    inv_table = basis.prime_inv_mod_others(basis.primes.index(q_top))
    return _divide_by_top_limb(poly, inv_table, plaintext_modulus)
