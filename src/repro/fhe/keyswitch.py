"""RNS digit-decomposition keyswitching with one special prime.

A keyswitch converts a polynomial known under key ``s_from`` into a
2-part ciphertext under ``s_to``.  We use the per-prime digit gadget:
the digits of ``x`` are its raw residues ``[x]_{q_i}`` (centered), and
the gadget vector is the CRT-idempotent family ``B_i`` of the full
chain, pre-multiplied by the special prime ``P``:

``ksk_i = (-a_i s_to + e_i + P * B_i * s_from,  a_i)  mod (Q_L * P)``

Because ``sum_{i <= level} [x]_{q_i} B_i === x`` modulo any level prefix
of the chain, one key works at **every** level — no per-level keys.
The noise added is ``~ sum_i x_i e_i / P``, small since digits are at
most ``q_i / 2`` in magnitude and ``P ~ q_i``.

This is the computation pattern the paper's keyswitch workload refers
to (§II-A): per digit, a batch of NTTs to re-express the digit in every
limb, then element-wise multiply-accumulates — plus the ModDown by
``P`` at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arith.modular import mod_inverse
from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import RnsBasis, get_basis
from repro.fhe.sampling import sample_gaussian, sample_uniform_poly


@dataclass
class KeySwitchKey:
    """One digit-decomposed keyswitch key (relinearization or Galois)."""

    #: Per digit i: (b_i, a_i), both over the full basis Q_L * P, eval domain.
    pairs: list[tuple[RnsPoly, RnsPoly]]

    @property
    def num_digits(self) -> int:
        return len(self.pairs)


def _full_primes(params: CkksParams) -> tuple[int, ...]:
    return params.primes + (params.special_prime,)


def generate_keyswitch_key(
    params: CkksParams,
    s_from_eval_full: RnsPoly,
    s_to_eval_full: RnsPoly,
    rng: np.random.Generator,
    error_scale: int = 1,
) -> KeySwitchKey:
    """Build the digit keys taking ``s_from`` to ``s_to``.

    Both secrets must be given over the full basis (chain + special) in
    the evaluation domain.  ``error_scale`` multiplies the key errors —
    BGV keys need errors that are multiples of the plaintext modulus so
    keyswitch noise stays invisible modulo ``t``.
    """
    basis = get_basis(params.primes, params.special_prime)
    full = _full_primes(params)
    n = params.n
    pairs = []
    for i in range(params.levels):
        a = sample_uniform_poly(n, full, rng)
        e = RnsPoly.from_int_coeffs(
            (sample_gaussian(n, params.error_std, rng) * error_scale)
            .astype(object), full)
        # P * B_i reduced in every limb of the full basis.
        pb_rows = np.empty(len(full), dtype=object)
        p = params.special_prime
        for j, q in enumerate(full):
            b_mod = (int(basis.idempotent_mod_chain[i][j])
                     if j < params.levels else int(basis.idempotent_mod_special[i]))
            pb_rows[j] = (p % q) * b_mod % q
        gadget = RnsPoly(
            np.stack([
                s_from_eval_full.residues[j] * np.uint64(pb_rows[j]) % np.uint64(q)
                for j, q in enumerate(full)
            ]),
            full, is_eval=True,
        )
        b = (-(a * s_to_eval_full)) + e + gadget
        pairs.append((b, a))
    return KeySwitchKey(pairs)


def decompose_digits(x: RnsPoly, params: CkksParams) -> list[RnsPoly]:
    """Digit-decompose an eval-domain chain polynomial.

    Digit ``i`` is the centered lift of ``[x]_{q_i}`` re-expressed over
    every chain limb of ``x``'s level plus the special prime, returned
    in the evaluation domain (one inverse NTT + L+1 forward NTTs per
    digit — the NTT batch the accelerator speeds up).
    """
    coeff = x.to_coeff()
    level_primes = x.primes
    target = level_primes + (params.special_prime,)
    digits = []
    for i in range(len(level_primes)):
        lifted = coeff.centered_limb(i).astype(object)
        digits.append(RnsPoly.from_int_coeffs(lifted, target))
    return digits


def apply_keyswitch(
    x: RnsPoly, ksk: KeySwitchKey, params: CkksParams
) -> tuple[RnsPoly, RnsPoly]:
    """Switch ``x`` (eval domain, chain limbs only) to the target key.

    Returns the two accumulated parts still over ``chain + special``;
    follow with :func:`mod_down` to drop the special prime.
    """
    digits = decompose_digits(x, params)
    level_count = x.num_limbs
    keep = list(range(level_count)) + [params.levels]  # limbs of Q_l * P
    t0 = t1 = None
    for i, digit in enumerate(digits):
        b_i, a_i = ksk.pairs[i]
        b_i = RnsPoly(b_i.residues[keep],
                      tuple(b_i.primes[j] for j in keep), True)
        a_i = RnsPoly(a_i.residues[keep],
                      tuple(a_i.primes[j] for j in keep), True)
        tb = digit * b_i
        ta = digit * a_i
        t0 = tb if t0 is None else t0 + tb
        t1 = ta if t1 is None else t1 + ta
    return t0, t1


def _divide_by_top_limb(poly: RnsPoly, inv_table: np.ndarray,
                        plaintext_modulus: int | None = None) -> RnsPoly:
    """Drop the last limb with rounding: ``(x - delta) / q_top``.

    ``delta === x (mod q_top)``; with ``plaintext_modulus`` set, ``delta``
    is additionally forced to ``0 (mod t)`` so the division leaves exact
    BGV plaintexts untouched (CKKS treats the rounding as approximation
    noise and skips the correction).
    """
    coeff = poly.to_coeff()
    top = coeff.num_limbs - 1
    q_top = poly.primes[top]
    tail = coeff.centered_limb(top)
    if plaintext_modulus is None:
        delta = tail.astype(object)
    else:
        t = plaintext_modulus
        correction = (-tail.astype(object) * mod_inverse(q_top, t)) % t
        correction = np.where(correction > t // 2, correction - t, correction)
        delta = tail.astype(object) + correction * q_top
    chain = coeff.limbs_prefix(top)
    out = np.empty_like(chain.residues)
    for j, q in enumerate(chain.primes):
        qq = np.uint64(q)
        lifted = (delta % q).astype(np.uint64)
        diff = (chain.residues[j] + (qq - lifted)) % qq
        out[j] = diff * np.uint64(int(inv_table[j])) % qq
    return RnsPoly(out, chain.primes, is_eval=False).to_eval()


def mod_down(t: RnsPoly, basis: RnsBasis,
             plaintext_modulus: int | None = None) -> RnsPoly:
    """Divide by the special prime with rounding: ``(t - [t]_p) / p``.

    Consumes a poly whose last limb is the special prime; returns the
    chain-only poly in the evaluation domain.  ``plaintext_modulus``
    enables the exact-scheme correction (see :func:`_divide_by_top_limb`).
    """
    if t.primes[-1] != basis.special_prime:
        raise ValueError("mod_down expects the special prime as last limb")
    inv_table = basis.special_inv_mod_chain[:t.num_limbs - 1]
    return _divide_by_top_limb(t, inv_table, plaintext_modulus)


def rescale(poly: RnsPoly, basis: RnsBasis) -> RnsPoly:
    """Drop the top chain limb with rounding: ``(x - [x]_{q_l}) / q_l``.

    The CKKS rescale after multiplication; same arithmetic as
    :func:`mod_down` but dividing by the last *chain* prime.
    """
    if poly.num_limbs < 2:
        raise ValueError("cannot rescale below one limb")
    q_top = poly.primes[poly.num_limbs - 1]
    inv_table = basis.prime_inv_mod_others(basis.primes.index(q_top))
    return _divide_by_top_limb(poly, inv_table)


def mod_switch_exact(poly: RnsPoly, basis: RnsBasis,
                     plaintext_modulus: int) -> RnsPoly:
    """BGV modulus switch: drop the top chain prime while keeping the
    carried value exact modulo ``t`` (up to the tracked ``q_top^{-1}``
    plaintext factor)."""
    if poly.num_limbs < 2:
        raise ValueError("cannot modulus-switch below one limb")
    q_top = poly.primes[poly.num_limbs - 1]
    inv_table = basis.prime_inv_mod_others(basis.primes.index(q_top))
    return _divide_by_top_limb(poly, inv_table, plaintext_modulus)
