"""CKKS key generation, encryption, and the homomorphic evaluator.

Implements the scheme exactly as the paper's workload description needs
it (§II-A): ciphertexts are pairs of double-CRT polynomials; HAdd is
element-wise; HMult is point-wise products plus a relinearization
keyswitch and a rescale; HRot is an evaluation-domain automorphism plus
a Galois keyswitch.  Every polynomial kernel routes through
:mod:`repro.fhe.backend`, so the whole evaluator can run on the
behavioral VPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fhe.encoding import CkksEncoder
from repro.fhe.keyswitch import (
    KeySwitchKey,
    apply_keyswitch,
    generate_keyswitch_key,
    mod_down,
    rescale,
)
from repro.fhe.params import CkksParams
from repro.fhe.polynomial import RnsPoly
from repro.fhe.rns import get_basis
from repro.obs import CAT_PHASE, current_obs_hook
from repro.fhe.sampling import sample_gaussian, sample_ternary, sample_uniform_poly


@dataclass
class Ciphertext:
    """An RLWE ciphertext: ``sum_k parts[k] * s^k`` decrypts the message.

    Fresh and relinearized ciphertexts have two parts; the transient
    result of a multiplication has three until relinearization.
    """

    parts: list[RnsPoly]
    scale: float

    @property
    def level(self) -> int:
        return self.parts[0].num_limbs - 1

    @property
    def size(self) -> int:
        return len(self.parts)

    def copy(self) -> "Ciphertext":
        return Ciphertext([p.copy() for p in self.parts], self.scale)


class CkksContext:
    """Keys plus evaluator for one parameter set."""

    def __init__(self, params: CkksParams, seed: int = 2025):
        self.params = params
        self.encoder = CkksEncoder(params)
        self.basis = get_basis(params.primes, params.special_prime)
        self._rng = np.random.default_rng(seed)
        self._full = params.primes + (params.special_prime,)
        self._keygen()
        self.galois_keys: dict[int, KeySwitchKey] = {}

    # -- key generation -------------------------------------------------------

    def _keygen(self) -> None:
        p = self.params
        secret_coeffs = sample_ternary(p.n, self._rng,
                                       hamming_weight=p.secret_hamming_weight)
        self._secret_full = RnsPoly.from_int_coeffs(secret_coeffs, self._full)
        self.secret = self._secret_full.limbs_prefix(p.levels)
        # Public key (over the chain only; encryption happens at top level).
        a = sample_uniform_poly(p.n, p.primes, self._rng)
        e = RnsPoly.from_int_coeffs(
            sample_gaussian(p.n, p.error_std, self._rng), p.primes)
        self.public_key = ((-(a * self.secret)) + e, a)
        # Relinearization key: s^2 -> s.
        s_squared = self._secret_full * self._secret_full
        self.relin_key = generate_keyswitch_key(
            p, s_squared, self._secret_full, self._rng)

    def generate_galois_keys(self, rotations: list[int],
                             conjugation: bool = False) -> None:
        """Create keyswitch keys for the given slot rotations."""
        p = self.params
        elements = [pow(5, r, 2 * p.n) for r in rotations]
        if conjugation:
            elements.append(2 * p.n - 1)
        for k in elements:
            if k in self.galois_keys:
                continue
            s_rotated = self._secret_full.automorphism(k)
            self.galois_keys[k] = generate_keyswitch_key(
                p, s_rotated, self._secret_full, self._rng)

    # -- encryption ------------------------------------------------------------

    def encode(self, values: np.ndarray) -> tuple[RnsPoly, float]:
        return self.encoder.encode(values)

    def encrypt(self, values: np.ndarray) -> Ciphertext:
        """Encode and encrypt a slot vector under the public key."""
        p = self.params
        plaintext, scale = self.encode(values)
        b, a = self.public_key
        u = RnsPoly.from_int_coeffs(
            sample_ternary(p.n, self._rng), p.primes)
        e0 = RnsPoly.from_int_coeffs(
            sample_gaussian(p.n, p.error_std, self._rng), p.primes)
        e1 = RnsPoly.from_int_coeffs(
            sample_gaussian(p.n, p.error_std, self._rng), p.primes)
        c0 = b * u + e0 + plaintext
        c1 = a * u + e1
        return Ciphertext([c0, c1], scale)

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        """Decrypt and decode back to slot values."""
        level = ct.level
        s = self.secret.limbs_prefix(level + 1)
        acc = ct.parts[0].copy()
        s_power = s
        for part in ct.parts[1:]:
            acc = acc + part * s_power
            s_power = s_power * s
        return self.encoder.decode(acc, ct.scale)

    # -- evaluator: linear ops ---------------------------------------------------

    def _check_levels(self, a: Ciphertext, b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        if a.level == b.level:
            return a, b
        target = min(a.level, b.level)
        return self.mod_reduce(a, target), self.mod_reduce(b, target)

    def _check_scales(self, a: Ciphertext, b: Ciphertext) -> None:
        # Chain primes share a bit width but are not identical, so two
        # pipelines that rescaled by different primes carry scales a few
        # parts in 10^4 apart.  Treating them as equal introduces that
        # much relative error — standard approximate-CKKS practice — so
        # only reject genuinely different scales (> 1% apart in log2).
        if abs(np.log2(a.scale) - np.log2(b.scale)) > 0.01:
            raise ValueError(
                f"scale mismatch: 2^{np.log2(a.scale):.3f} vs "
                f"2^{np.log2(b.scale):.3f}; rescale or re-encode first"
            )

    def mod_reduce(self, ct: Ciphertext, target_level: int) -> Ciphertext:
        """Drop limbs to a lower level (scale unchanged)."""
        if target_level > ct.level:
            raise ValueError("cannot raise a ciphertext's level")
        parts = [p.limbs_prefix(target_level + 1) for p in ct.parts]
        return Ciphertext(parts, ct.scale)

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._check_levels(a, b)
        self._check_scales(a, b)
        size = max(a.size, b.size)
        parts = []
        for k in range(size):
            if k < a.size and k < b.size:
                parts.append(a.parts[k] + b.parts[k])
            else:
                parts.append((a.parts[k] if k < a.size else b.parts[k]).copy())
        return Ciphertext(parts, a.scale)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.add(a, self.negate(b))

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext([-p for p in ct.parts], ct.scale)

    def add_plain(self, ct: Ciphertext, values: np.ndarray) -> Ciphertext:
        plaintext, _ = self.encoder.encode(values, level=ct.level,
                                           scale=ct.scale)
        parts = [ct.parts[0] + plaintext] + [p.copy() for p in ct.parts[1:]]
        return Ciphertext(parts, ct.scale)

    def multiply_plain(self, ct: Ciphertext, values: np.ndarray,
                       rescale_after: bool = True) -> Ciphertext:
        plaintext, pt_scale = self.encoder.encode(values, level=ct.level)
        parts = [p * plaintext for p in ct.parts]
        out = Ciphertext(parts, ct.scale * pt_scale)
        return self.rescale(out) if rescale_after else out

    # -- evaluator: multiplication ------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 rescale_after: bool = True) -> Ciphertext:
        """HMult: tensor product, relinearize, rescale."""
        a, b = self._check_levels(a, b)
        if a.size != 2 or b.size != 2:
            raise ValueError("multiply expects relinearized (2-part) inputs")
        d0 = a.parts[0] * b.parts[0]
        d1 = a.parts[0] * b.parts[1] + a.parts[1] * b.parts[0]
        d2 = a.parts[1] * b.parts[1]
        out = self.relinearize(Ciphertext([d0, d1, d2], a.scale * b.scale))
        return self.rescale(out) if rescale_after else out

    def square(self, ct: Ciphertext, rescale_after: bool = True) -> Ciphertext:
        return self.multiply(ct, ct, rescale_after)

    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Fold the ``s^2`` part back onto ``(1, s)`` with the relin key."""
        if ct.size == 2:
            return ct.copy()
        if ct.size != 3:
            raise ValueError(f"cannot relinearize a {ct.size}-part ciphertext")
        t0, t1 = apply_keyswitch(ct.parts[2], self.relin_key, self.params)
        return Ciphertext(
            [ct.parts[0] + mod_down(t0, self.basis),
             ct.parts[1] + mod_down(t1, self.basis)],
            ct.scale,
        )

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the current top chain prime; scale shrinks with it."""
        dropped = ct.parts[0].primes[-1]
        parts = [rescale(p, self.basis) for p in ct.parts]
        return Ciphertext(parts, ct.scale / dropped)

    def match_scale(self, ct: Ciphertext, target_level: int,
                    target_scale: float) -> Ciphertext:
        """Bring a ciphertext to exactly ``(target_level, target_scale)``.

        Walks down with canonical ones-multiplies, then spends the final
        level on a ones-multiply encoded at the custom scale
        ``target_scale * q_next / ct.scale`` so the rescale lands on the
        target exactly — the scale-stabilization step deep evaluation
        trees (Paterson-Stockmeyer, bootstrapping) need when branches of
        different multiplicative depth are recombined.
        """
        if target_level >= ct.level:
            raise ValueError(
                f"need at least one level of headroom: at {ct.level}, "
                f"target {target_level}"
            )
        while ct.level > target_level + 1:
            ct = self.multiply_plain(ct, np.ones(self.params.slots))
        q_next = ct.parts[0].primes[-1]
        pt_scale = target_scale * q_next / ct.scale
        if not 1.0 <= pt_scale < q_next / 4:
            raise ValueError(
                f"cannot reach scale 2^{np.log2(target_scale):.2f} from "
                f"2^{np.log2(ct.scale):.2f} in one step"
            )
        plaintext, _ = self.encoder.encode(np.ones(self.params.slots),
                                           level=ct.level, scale=pt_scale)
        adjusted = Ciphertext([p * plaintext for p in ct.parts],
                              ct.scale * pt_scale)
        out = self.rescale(adjusted)
        return Ciphertext(out.parts, target_scale)

    # -- evaluator: rotations ------------------------------------------------------

    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """HRot: cyclically rotate the slot vector by ``steps``.

        Applies the Galois automorphism (a single-pass permutation on
        the VPU) and a keyswitch back to the canonical secret.
        """
        p = self.params
        k = pow(5, steps % p.slots, 2 * p.n)
        if k == 1:
            return ct.copy()
        if k not in self.galois_keys:
            raise KeyError(
                f"no Galois key for rotation {steps}; call "
                "generate_galois_keys first"
            )
        return self._apply_galois(ct, k)

    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        """Complex-conjugate every slot (Galois element 2N-1)."""
        k = 2 * self.params.n - 1
        if k not in self.galois_keys:
            raise KeyError("no conjugation key; call generate_galois_keys "
                           "with conjugation=True")
        return self._apply_galois(ct, k)

    def _apply_galois(self, ct: Ciphertext, k: int) -> Ciphertext:
        if ct.size != 2:
            raise ValueError("rotate expects a relinearized ciphertext")
        obs = current_obs_hook()
        if obs is not None:
            # The single-pass permutation phase of an HRot; the Galois
            # keyswitch that follows traces its own four phases.
            obs.begin("hrot.automorphism", cat=CAT_PHASE, galois_k=k)
        c0 = ct.parts[0].automorphism(k)
        c1 = ct.parts[1].automorphism(k)
        if obs is not None:
            obs.end()
        t0, t1 = apply_keyswitch(c1, self.galois_keys[k], self.params)
        return Ciphertext(
            [c0 + mod_down(t0, self.basis), mod_down(t1, self.basis)],
            ct.scale,
        )

    def rotate_hoisted(self, ct: Ciphertext,
                       steps_list: list[int]) -> list[Ciphertext]:
        """Rotate one ciphertext by several amounts, hoisting the digit
        decomposition.

        The expensive part of a rotation keyswitch is decomposing ``c1``
        into digits (one inverse NTT plus a batch of forward NTTs per
        digit).  Because the Galois action commutes with the per-prime
        digit decomposition, the digits can be computed **once** and
        merely permuted (an evaluation-domain automorphism — a single
        network pass on the VPU) for every rotation: ``r`` rotations cost
        one decomposition instead of ``r``.  This is the standard
        hoisting optimization bootstrapping and BSGS matvecs lean on.
        """
        from repro.fhe.keyswitch import accumulate_keyswitch, decompose_digits

        if ct.size != 2:
            raise ValueError("rotate expects a relinearized ciphertext")
        p = self.params
        digits = decompose_digits(ct.parts[1], p)
        level_count = ct.parts[0].num_limbs
        keep = list(range(level_count)) + [p.levels]
        primes = ct.parts[0].primes + (p.special_prime,)
        results = []
        for steps in steps_list:
            k = pow(5, steps % p.slots, 2 * p.n)
            if k == 1:
                results.append(ct.copy())
                continue
            if k not in self.galois_keys:
                raise KeyError(f"no Galois key for rotation {steps}")
            c0 = ct.parts[0].automorphism(k)
            rotated = [digit.automorphism(k) for digit in digits]
            t0, t1 = accumulate_keyswitch(rotated, self.galois_keys[k],
                                          keep, primes)
            results.append(Ciphertext(
                [c0 + mod_down(t0, self.basis), mod_down(t1, self.basis)],
                ct.scale,
            ))
        return results
